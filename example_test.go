package txmldb_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"txmldb"
)

// figure1 loads the paper's running example: the guide.com restaurant list
// as retrieved on January 1st, 15th and 31st, 2001.
func figure1() *txmldb.DB {
	db := txmldb.Open(txmldb.Config{
		Clock: func() txmldb.Time { return txmldb.Date(2001, time.February, 10) },
	})
	id, _ := db.PutXML("http://guide.com/restaurants.xml", strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 1))
	db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>15</price></restaurant>`+
			`<restaurant><name>Akropolis</name><price>13</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 15))
	db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 31))
	return db
}

// A snapshot query returns the document state valid at an instant.
func ExampleDB_Query_snapshot() {
	db := figure1()
	res, _ := db.Query(`SELECT R/name FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R ORDER BY R/name`)
	for _, row := range res.Rows {
		fmt.Println(row[0].([]txmldb.Elem)[0].Node.Text())
	}
	// Output:
	// Akropolis
	// Napoli
}

// EVERY retrieves all versions; TIME(R) is each element version's timestamp.
func ExampleDB_Query_history() {
	db := figure1()
	res, _ := db.Query(`SELECT TIME(R), R/price
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli" ORDER BY TIME(R)`)
	for _, row := range res.Rows {
		fmt.Printf("%s: %s\n", row[0].(txmldb.Time), row[1].([]txmldb.Elem)[0].Node.Text())
	}
	// Output:
	// 2001-01-01 00:00:00: 15
	// 2001-01-31 00:00:00: 18
}

// Aggregates run without reconstructing any document version.
func ExampleDB_Query_count() {
	db := figure1()
	res, _ := db.Query(`SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	fmt.Printf("%v restaurants, %d reconstructions\n", res.Rows[0][0], res.Metrics.Reconstructions)
	// Output:
	// 2 restaurants, 0 reconstructions
}

// Explain shows the operator plan — which PatternScan variant runs, the
// pattern tree after predicate pushdown — without executing the query.
func ExampleDB_Explain() {
	db := figure1()
	out, _ := db.Explain(`SELECT R/name FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	fmt.Print(out)
	// Output:
	// scan 1: TPatternScan at 26/01/2001 of doc("http://guide.com/restaurants.xml")
	//   pattern: /restaurant*
	//   binds:   R
	// project: R/name
	// output: <results> document
}

// QueryContext threads a deadline into execution; a canceled context
// aborts the query with the context's error.
func ExampleDB_QueryContext() {
	db := figure1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // give up before execution starts
	_, err := db.QueryContext(ctx, `SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	fmt.Println(err)
	// Output:
	// context canceled
}

// Syntax errors carry their position; match them with errors.As.
func ExampleParseError() {
	db := figure1()
	_, err := db.Query(`SELECT R FORM doc("u")/restaurant R`)
	var pe *txmldb.ParseError
	if errors.As(err, &pe) {
		fmt.Printf("line %d, col %d: %s\n", pe.Line, pe.Col, pe.Msg)
	}
	// Output:
	// line 1, col 10: expected FROM, found "FORM"
}

// The operator-level API underneath the language: TPatternScan returns
// temporal element identifiers, Reconstruct materializes them.
func ExampleDB_TPatternScan() {
	db := figure1()
	pat := &txmldb.Pattern{Name: "restaurant", Rel: txmldb.Child, Project: true}
	teids, _ := db.TPatternScan(pat, txmldb.Date(2001, time.January, 5))
	for _, teid := range teids {
		node, _ := db.Reconstruct(teid)
		fmt.Println(node.SelectPath("name")[0].Text())
	}
	// Output:
	// Napoli
}
