// Package txmldb is a temporal XML database: a from-scratch Go
// implementation of the system described in Kjetil Nørvåg, "Algorithms for
// Temporal Query Operators in XML Databases" (EDBT 2002 Workshops).
//
// The database stores every version of every XML document — the current
// version complete, previous versions as chains of completed deltas that
// apply both forward and backward — indexes all words (including element
// names) in a temporal full-text index, and executes the paper's temporal
// query operators: TPatternScan, TPatternScanAll, DocHistory,
// ElementHistory, CreTime, DelTime, PreviousTS, NextTS, CurrentTS,
// Reconstruct and Diff. A SELECT/FROM/WHERE temporal query language with
// snapshot timestamps, the EVERY keyword and NOW-relative time arithmetic
// runs on top of the operators.
//
// # Quick start
//
//	db := txmldb.Open(txmldb.Config{})
//	id, _ := db.PutXML("http://guide.com/restaurants.xml",
//	    strings.NewReader(`<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>`),
//	    txmldb.Date(2001, time.January, 1))
//	db.UpdateXML(id, strings.NewReader(`...new version...`), txmldb.Date(2001, time.January, 15))
//
//	res, _ := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
//	fmt.Println(res.Doc().Pretty())
//
// Identity follows the paper's Section 3: every element carries a
// persistent XID that survives updates (maintained by the XyDiff-style
// change detector); an EID is (document, XID); a TEID adds the version
// timestamp. All intervals are half-open transaction-time intervals
// [start, end), with Forever as the open upper bound of current versions.
package txmldb

import (
	"time"

	"txmldb/internal/checkpoint"
	"txmldb/internal/core"
	"txmldb/internal/diff"
	"txmldb/internal/doctime"
	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/parallel"
	"txmldb/internal/pattern"
	"txmldb/internal/plan"
	"txmldb/internal/query"
	"txmldb/internal/resilience"
	"txmldb/internal/shard"
	"txmldb/internal/similarity"
	"txmldb/internal/store"
	"txmldb/internal/tdocgen"
	"txmldb/internal/vcache"
	"txmldb/internal/warehouse"
	"txmldb/internal/xmltree"
)

// DB is a temporal XML database. Open one with Open; it is safe for
// concurrent use.
type DB = core.DB

// Config parameterizes Open.
type Config = core.Config

// IndexKind selects the full-text-index maintenance alternative
// (Section 7.2 of the paper): IndexVersions, IndexDeltas or IndexBoth.
type IndexKind = core.IndexKind

// Index alternatives.
const (
	IndexVersions = core.IndexVersions
	IndexDeltas   = core.IndexDeltas
	IndexBoth     = core.IndexBoth
)

// Open creates an empty database.
func Open(cfg Config) *DB { return core.Open(cfg) }

// OpenDurable opens (or creates) a crash-safe database stored in a
// write-ahead log under dir. Committed versions survive process crashes:
// reopening replays the log, truncates any torn tail and rebuilds all
// in-memory indexes. Close the database to release the log file.
func OpenDurable(cfg Config, dir string) (*DB, error) { return core.OpenDurable(cfg, dir) }

// Sharding tier (DESIGN.md §3i): a ShardedDB partitions documents across
// N independent engines by a stable URL hash, routes single-document
// operators to the owning shard and scatter-gathers the multi-document
// temporal operators with a deterministic merge — results are
// byte-identical to a single engine at every shard count. It exposes the
// same query surface as DB, so the query planner, CLI and txserved run
// unmodified on top of it.
type (
	// ShardedDB is a DocID-partitioned ensemble of engines behind one
	// router. Open one with OpenSharded or OpenShardedDurable.
	ShardedDB = shard.Router
	// ShardConfig parameterizes the router and its engines.
	ShardConfig = shard.Config
	// ShardStats is one shard's serving counters, from
	// (*ShardedDB).ShardStats.
	ShardStats = shard.Stats
	// ShardHealth is one shard's health, from (*ShardedDB).ShardHealth.
	ShardHealth = shard.ShardHealth
)

// OpenSharded creates an empty in-memory sharded database.
func OpenSharded(cfg ShardConfig) *ShardedDB { return shard.Open(cfg) }

// OpenShardedDurable opens (or creates) a durable sharded database under
// root: a shards.json manifest, one crash-safe engine per shard-NN/
// subdirectory, and an append-only global DocID map. Reopening with a
// different shard count fails with ErrShardCountMismatch.
func OpenShardedDurable(cfg ShardConfig, root string) (*ShardedDB, error) {
	return shard.OpenDurable(cfg, root)
}

// ShardLayout inspects a durable root: it reports the shard count and
// per-shard data directories when root holds a sharded database, ok=false
// for a plain single-engine datadir.
func ShardLayout(root string) (shards int, dirs []string, ok bool, err error) {
	return shard.Layout(root)
}

// ShardDirName returns the name of shard i's subdirectory under a durable
// root ("shard-00", "shard-01", …).
func ShardDirName(i int) string { return shard.ShardDirName(i) }

// Typed sharding errors, matched with errors.Is.
var (
	// ErrShardCountMismatch reports a durable root opened with a shard
	// count different from its manifest.
	ErrShardCountMismatch = shard.ErrShardCountMismatch
)

// Durability and corruption-detection types (the storage fault model is
// described in DESIGN.md, "Durability & fault model").
type (
	// FsckReport is a structured storage-verification report.
	FsckReport = store.FsckReport
	// FsckProblem is one damaged extent and the versions it makes
	// unreachable.
	FsckProblem = store.FsckProblem
	// WALStats are write-ahead-log counters (write amplification etc.).
	WALStats = pagestore.WALStats

	// GroupStats are WAL group-commit counters (fsync amortization), from
	// (*DB).CommitBatchStats / (*ShardedDB).CommitBatchStats. Enable
	// batching with PageConfig.GroupWindow.
	GroupStats = pagestore.GroupStats
)

// Typed write-path errors surfaced by group commit (match with errors.Is).
var (
	// ErrGroupCommit marks a commit that failed because its batch's shared
	// fsync failed; the concrete error attributes the batch.
	ErrGroupCommit = pagestore.ErrGroupCommit
)

// Epoch-pinned snapshot reads: (*DB).Epoch returns the commit horizon,
// WithEpoch pins a context to it, and every read on that context observes
// the store exactly as of the pin while concurrent writers proceed.
// QueryContext pins automatically; these are for multi-query pinning.
var (
	// WithEpoch returns a context carrying the commit-horizon pin e.
	WithEpoch = store.WithEpoch
	// EpochOf reports the pin carried by a context, if any.
	EpochOf = store.EpochOf
)

// Typed storage errors, matched with errors.Is.
var (
	// ErrCorrupt reports an extent whose checksum no longer matches.
	ErrCorrupt = pagestore.ErrCorrupt
	// ErrUnreachable reports a version that cannot be reconstructed
	// because the chain it depends on is damaged.
	ErrUnreachable = store.ErrUnreachable
)

// Checkpoint & compaction subsystem (DESIGN.md §3h): durable databases
// periodically snapshot their live state into checksummed checkpoint
// images, so reopening replays only the log suffix behind the checkpoint
// instead of the full history; log segments wholly covered by a published
// checkpoint are reclaimed, and (*DB).Vacuum applies a version retention
// policy before compacting.
type (
	// CheckpointConfig parameterizes the subsystem (Config.Checkpoint);
	// the zero value means manual checkpoints only.
	CheckpointConfig = checkpoint.Config
	// CheckpointRunStats describes one checkpoint run, from
	// (*DB).Checkpoint.
	CheckpointRunStats = checkpoint.RunStats
	// CheckpointStats aggregates a database's checkpoint activity, from
	// (*DB).CheckpointStats.
	CheckpointStats = core.CheckpointStats
	// OpenReport describes how OpenDurable recovered the database, from
	// (*DB).OpenReport.
	OpenReport = core.OpenReport
	// Retention is a version retention policy for (*DB).Vacuum.
	Retention = store.Retention
	// RetentionPolicy selects which versions Vacuum keeps.
	RetentionPolicy = store.RetentionPolicy
	// VacuumReport summarizes what a Vacuum pruned and freed.
	VacuumReport = store.VacuumReport
)

// Retention policies.
const (
	// KeepAll prunes nothing (still intersperses snapshots).
	KeepAll = store.KeepAll
	// KeepLast keeps the newest Retention.KeepLast versions per document.
	KeepLast = store.KeepLast
	// KeepSince keeps versions alive at or after Retention.KeepSince.
	KeepSince = store.KeepSince
)

// Typed checkpoint and retention errors, matched with errors.Is.
var (
	// ErrPruned reports a version removed by a retention policy.
	ErrPruned = store.ErrPruned
	// ErrNotDurable reports a checkpoint request against a database
	// without a durable segmented backend.
	ErrNotDurable = core.ErrNotDurable
	// ErrCheckpointBusy reports a checkpoint request while another run is
	// in flight.
	ErrCheckpointBusy = core.ErrCheckpointBusy
)

// Resilience tier (Config.Resilience): a circuit breaker around backend
// reads plus per-component health state machines driving degraded,
// cache-first serving. (*DB).Health snapshots it; the txserved server maps
// it onto /readyz and /metrics.
type (
	// ResilienceConfig enables and parameterizes the tier (zero value:
	// disabled).
	ResilienceConfig = resilience.Config
	// BreakerConfig parameterizes the circuit breaker around backend reads.
	BreakerConfig = resilience.BreakerConfig
	// HealthConfig parameterizes the per-component health hysteresis.
	HealthConfig = resilience.HealthConfig
	// HealthSnapshot is a consistent view of the tier, from (*DB).Health.
	HealthSnapshot = resilience.Snapshot
	// HealthState is a component's health: healthy, degraded or failing.
	HealthState = resilience.State
	// BreakerState is the circuit breaker's position.
	BreakerState = resilience.BreakerState
)

// Health states and breaker positions, for matching HealthSnapshot fields.
const (
	StateHealthy  = resilience.Healthy
	StateDegraded = resilience.Degraded
	StateFailing  = resilience.Failing

	BreakerClosed   = resilience.BreakerClosed
	BreakerHalfOpen = resilience.BreakerHalfOpen
	BreakerOpen     = resilience.BreakerOpen
)

// Typed serving errors of the resilience tier, matched with errors.Is.
var (
	// ErrCircuitOpen reports a backend read failed fast because the
	// circuit breaker is open.
	ErrCircuitOpen = resilience.ErrCircuitOpen
	// ErrDegraded reports a write (or other coverage-requiring operation)
	// rejected while the engine serves in degraded mode.
	ErrDegraded = resilience.ErrDegraded
)

// Temporal identity types (Section 3 of the paper).
type (
	// Time is a transaction-time instant in milliseconds since the epoch.
	Time = model.Time
	// Interval is a half-open transaction-time interval [Start, End).
	Interval = model.Interval
	// DocID identifies a stored document.
	DocID = model.DocID
	// XID is a persistent per-document element identifier.
	XID = model.XID
	// EID identifies an element in a document, independent of time.
	EID = model.EID
	// TEID identifies one version of one element.
	TEID = model.TEID
	// VersionNo numbers a document's versions, starting at 1.
	VersionNo = model.VersionNo
)

// Forever is the open upper bound of current versions' validity.
const Forever = model.Forever

// Always is the interval covering all of transaction time.
var Always = model.Always

// Date returns the instant at midnight UTC of the given day.
func Date(year int, month time.Month, day int) Time { return model.Date(year, month, day) }

// TimeOf converts a time.Time.
func TimeOf(t time.Time) Time { return model.TimeOf(t) }

// XML tree types.
type (
	// Node is one node of an XML tree (element or text).
	Node = xmltree.Node
	// Attr is an element attribute.
	Attr = xmltree.Attr
)

// ParseXML parses an XML document into a tree.
var ParseXML = xmltree.ParseString

// Pattern trees (Section 6: the PatternScan family's input).
type (
	// Pattern is a pattern-tree node.
	Pattern = pattern.PNode
	// ValuePred is a word-containment predicate on a pattern node.
	ValuePred = pattern.ValuePred
	// Match is one pattern-scan result.
	Match = pattern.Match
)

// Pattern axes.
const (
	// Child is the isParentOf relationship.
	Child = pattern.Child
	// Descendant is the isAscendantOf relationship (the // axis).
	Descendant = pattern.Descendant
)

// Storage and result types.
type (
	// StoreConfig configures the version store and its simulated disk.
	StoreConfig = store.Config
	// PageConfig configures the simulated paged disk.
	PageConfig = pagestore.Config
	// CacheConfig configures the shared version-reconstruction cache
	// (set Config.Cache; MaxBytes <= 0 disables it).
	CacheConfig = vcache.Config
	// CacheStats are the version-cache counters, from (*DB).CacheStats.
	CacheStats = vcache.Stats
	// IOStats are simulated-disk counters.
	IOStats = pagestore.IOStats
	// PoolStats are the shared worker pool's counters, from
	// (*DB).PoolStats (sized by Config.Workers).
	PoolStats = parallel.Stats
	// PoolScopeStats are the pool's per-operator counters, including the
	// task-time/wall-time speedup proxy.
	PoolScopeStats = parallel.ScopeStats
	// VersionInfo is one entry of a document's delta index.
	VersionInfo = store.VersionInfo
	// VersionTree is a reconstructed document version.
	VersionTree = store.VersionTree
	// DocInfo is document metadata.
	DocInfo = store.DocInfo
	// Result is an executed query.
	Result = plan.Result
	// QueryMetrics counts the work a query performed (pattern matches,
	// reconstructions, rows examined).
	QueryMetrics = plan.Metrics
	// Elem is an element value inside a query result row.
	Elem = plan.Elem
	// Script is a completed edit script (delta) between two versions.
	Script = diff.Script
	// Posting is a temporal full-text-index entry.
	Posting = fti.Posting
	// Query is a parsed query.
	Query = query.Query
	// ParseError is a query syntax error carrying the byte offset and
	// 1-based line/column of the offending token; match it with errors.As.
	ParseError = query.ParseError
)

// ParseQuery parses a temporal query without executing it.
var ParseQuery = query.Parse

// Query execution entry points, shared by library users, the CLI and the
// txserved HTTP server:
//
//	(*DB).Query(src)                 — parse and execute
//	(*DB).QueryContext(ctx, src)     — with cancellation/deadline support
//	(*DB).Explain(src)               — operator plan without executing
//
// See the DB method documentation in internal/core and the examples in
// example_test.go.

// Similarity helpers (Section 7.4).
var (
	// ShallowEqual compares element name, attributes and direct text.
	ShallowEqual = similarity.ShallowEqual
	// DeepEqual compares whole subtrees.
	DeepEqual = similarity.DeepEqual
	// SimilarityScore is the Theobald/Weikum-style similarity in [0,1].
	SimilarityScore = similarity.Score
	// Similar applies SimilarityScore with a threshold (the ~ operator).
	Similar = similarity.Similar
)

// Placement policies of the simulated disk.
const (
	// Unclustered scatters extents (the paper's delta worst case).
	Unclustered = pagestore.Unclustered
	// Clustered groups a document's extents in arenas.
	Clustered = pagestore.Clustered
)

// Workload generation (the TDocGen-style corpus generator) and the
// warehouse crawl simulation (Section 3.1 of the paper).
type (
	// WorkloadConfig parameterizes the deterministic document generator.
	WorkloadConfig = tdocgen.Config
	// Workload generates evolving document corpora.
	Workload = tdocgen.Generator
	// WorkloadVersion is one generated document state.
	WorkloadVersion = tdocgen.Version
	// Source is a simulated web document with its true change history.
	Source = warehouse.Source
	// Crawler fetches sources into a DB at retrieval timestamps.
	Crawler = warehouse.Crawler
	// CrawlStats summarizes a crawl run (fetches, missed versions,
	// staleness).
	CrawlStats = warehouse.Stats
)

// NewWorkload returns a deterministic corpus generator.
func NewWorkload(cfg WorkloadConfig) *Workload { return tdocgen.New(cfg) }

// DocTimeEntry is one hit of a document-time range query (Section 3.1 of
// the paper): an element carrying a timestamp inside the document content.
type DocTimeEntry = doctime.Entry

// GenerateSources builds a synthetic web from a workload configuration.
var GenerateSources = warehouse.GenerateSources
