package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"txmldb"
)

func TestParseGen(t *testing.T) {
	cfg, err := parseGen("docs=5,versions=9,elems=3,ops=2,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Docs != 5 || cfg.Versions != 9 || cfg.InitialElems != 3 ||
		cfg.OpsPerVersion != 2 || cfg.Seed != 7 {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, bad := range []string{"docs", "docs=x", "nope=3"} {
		if _, err := parseGen(bad); err == nil {
			t.Errorf("parseGen(%q): expected error", bad)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.xml")
	v2 := filepath.Join(dir, "v2.xml")
	os.WriteFile(v1, []byte(`<g><r>one</r></g>`), 0o644)
	os.WriteFile(v2, []byte(`<g><r>two</r></g>`), 0o644)

	db := txmldb.Open(txmldb.Config{})
	if err := loadFile(db, "http://x/doc.xml="+v1+"@01/01/2001"); err != nil {
		t.Fatal(err)
	}
	if err := loadFile(db, "http://x/doc.xml="+v2+"@15/01/2001"); err != nil {
		t.Fatal(err)
	}
	id, ok := db.LookupDoc("http://x/doc.xml")
	if !ok {
		t.Fatal("document not loaded")
	}
	info, err := db.Info(id)
	if err != nil || info.Versions != 2 {
		t.Fatalf("versions = %+v, %v", info, err)
	}

	for _, bad := range []string{
		"no-equals@01/01/2001",
		"u=" + v1,               // missing date
		"u=" + v1 + "@31/31/31", // bad date
		"u=/nonexistent@01/01/2001",
	} {
		if err := loadFile(db, bad); err == nil {
			t.Errorf("loadFile(%q): expected error", bad)
		}
	}
}

func TestRunQuery(t *testing.T) {
	db := txmldb.Open(txmldb.Config{})
	if err := loadDemo(db); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(db, `SELECT COUNT(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(db, `garbage`); err == nil {
		t.Fatal("bad query must error")
	}
}

// TestDurableCLIRoundTrip drives the -datadir path: load the demo durably,
// reopen, query, and fsck it clean.
func TestDurableCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := openDB(dir, true, 64<<20, 0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadDemo(db); err != nil {
		t.Fatal(err)
	}
	// Idempotent: loading again must notice the data is already there.
	if err := loadDemo(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := openDB(dir, true, 64<<20, 0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadDemo(r); err != nil { // reopen: data already present
		t.Fatal(err)
	}
	if err := runQuery(r, `SELECT COUNT(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`); err != nil {
		t.Fatal(err)
	}
	r.Close()

	if code := runFsck([]string{"-datadir", dir, "-v"}); code != 0 {
		t.Fatalf("fsck of healthy database exited %d", code)
	}
	if code := runFsck([]string{}); code != 2 {
		t.Fatalf("fsck without -datadir exited %d, want 2", code)
	}
}

// TestCompactCLI drives the compact subcommand: grow a durable history
// with auto-checkpointing on, compact with -keep-last, and verify the
// pruned database reopens clean and smaller.
func TestCompactCLI(t *testing.T) {
	dir := t.TempDir()
	db, err := openDB(dir, false, 64<<20, 0, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Put("http://x/doc.xml", mustParse(t, `<g><r>v1</r></g>`), txmldb.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= 12; v++ {
		tree := mustParse(t, `<g><r>version `+strings.Repeat("x", v)+`</r></g>`)
		if _, _, err := db.Update(id, tree, txmldb.Date(2001, 1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if stats, ok := db.CheckpointStats(); !ok || stats.Runs == 0 {
		t.Fatalf("-checkpoint-every 4 produced no checkpoints: %+v", stats)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if code := runCompact([]string{"-datadir", dir, "-keep-last", "3", "-granule", "2"}); code != 0 {
		t.Fatalf("compact exited %d", code)
	}
	if code := runCompact([]string{}); code != 2 {
		t.Fatalf("compact without -datadir exited %d, want 2", code)
	}
	if code := runCompact([]string{"-datadir", dir, "-keep-last", "1", "-keep-since", "01/01/2001"}); code != 2 {
		t.Fatalf("compact with conflicting policies exited %d, want 2", code)
	}

	r, err := openDB(dir, false, 64<<20, 0, true, 0)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer r.Close()
	rid, ok := r.LookupDoc("http://x/doc.xml")
	if !ok {
		t.Fatal("document lost across compact")
	}
	if _, err := r.ReconstructVersion(rid, 2); !errors.Is(err, txmldb.ErrPruned) {
		t.Fatalf("version 2 after -keep-last 3: %v, want ErrPruned", err)
	}
	if _, err := r.ReconstructVersion(rid, 12); err != nil {
		t.Fatalf("current version after compact: %v", err)
	}
	if rep := r.Fsck(); !rep.Clean() {
		t.Fatalf("fsck after compact:\n%s", rep)
	}
}

func mustParse(t *testing.T, src string) *txmldb.Node {
	t.Helper()
	n, err := txmldb.ParseXML(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPrintQueryErrorCaret(t *testing.T) {
	db := txmldb.Open(txmldb.Config{})
	src := `SELECT R FORM doc("u")/restaurant R`
	err := runQuery(db, src)
	if err == nil {
		t.Fatal("malformed query succeeded")
	}
	var b strings.Builder
	printQueryError(&b, src, err)
	out := b.String()
	if !strings.Contains(out, "line 1, col 10") {
		t.Errorf("missing position in %q", out)
	}
	if !strings.Contains(out, src) || !strings.Contains(out, "\n           ^") {
		t.Errorf("missing caret rendering in:\n%s", out)
	}
}

func TestPrintQueryErrorNonParse(t *testing.T) {
	var b strings.Builder
	printQueryError(&b, "q", errors.New("boom"))
	if got := b.String(); got != "error: boom\n" {
		t.Errorf("non-parse rendering = %q", got)
	}
}
