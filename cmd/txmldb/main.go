// Command txmldb is an interactive shell and one-shot query runner for the
// temporal XML database.
//
// Usage:
//
//	txmldb -demo -q 'SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R'
//	txmldb -demo                     # REPL over the paper's Figure 1 data
//	txmldb -gen docs=4,versions=8    # REPL over a generated corpus
//	txmldb -load url=FILE@dd/mm/yyyy # load version files (repeatable)
//	txmldb -datadir DIR ...          # durable: store in a WAL under DIR
//	txmldb fsck -datadir DIR         # verify a durable database's storage
//	txmldb compact -datadir DIR -keep-last 4   # prune old versions, compact
//
// With -datadir the database lives in a segmented write-ahead log under
// the given directory and survives restarts; without it everything is in
// memory. Durable databases checkpoint periodically (-checkpoint-every)
// so reopening replays only the log suffix behind the newest checkpoint.
// The fsck subcommand replays the log and verifies every stored extent,
// reporting damaged extents (with their log-segment provenance) and the
// versions they make unreachable; it exits non-zero if corruption is
// found. The compact subcommand applies a version retention policy
// (-keep-last K or -keep-since dd/mm/yyyy), checkpoints and drops the log
// segments the checkpoint covers, and prints the reclaimed disk space.
// Both subcommands recognize a sharded root (written by txserved -shards
// N, marked by its shards.json manifest) and iterate every shard-NN/
// subdirectory, reporting per-shard provenance in one summary table.
//
// In the REPL, each line is one query; ".docs" lists documents, ".health"
// prints the resilience tier's state (see -resilience), ".quit" exits.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"txmldb"
	"txmldb/internal/experiments"
	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
)

// loadFlags collects repeatable -load url=FILE@date arguments.
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fsck" {
		os.Exit(runFsck(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "compact" {
		os.Exit(runCompact(os.Args[2:]))
	}

	var loads loadFlags
	demo := flag.Bool("demo", false, "load the paper's Figure 1 restaurant history")
	gen := flag.String("gen", "", "load a generated corpus, e.g. docs=4,versions=8,elems=10,seed=1")
	q := flag.String("q", "", "run one query and exit")
	dump := flag.String("dump", "", "after loading, dump the database to this directory and exit")
	loadDir := flag.String("loaddir", "", "load a database dump directory before anything else")
	dataDir := flag.String("datadir", "", "durable mode: keep the database in a write-ahead log under this directory")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "byte budget of the shared version-reconstruction cache (0 disables)")
	workers := flag.Int("workers", 0, "worker-pool size for parallel operators (0 = GOMAXPROCS, 1 = sequential)")
	resil := flag.Bool("resilience", true, "enable the health state machine and circuit breaker (\".health\" shows the state)")
	ckptEvery := flag.Int("checkpoint-every", 0, "durable mode: checkpoint after this many commits (0 = manual only)")
	flag.Var(&loads, "load", "load a document version: url=FILE@dd/mm/yyyy (repeatable)")
	flag.Parse()

	db, err := openDB(*dataDir, *demo, *cacheBytes, *workers, *resil, *ckptEvery)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	switch {
	case *demo:
		if err := loadDemo(db); err != nil {
			log.Fatal(err)
		}
	case *gen != "":
		cfg, err := parseGen(*gen)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tdocgen.New(cfg).Load(db); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d generated documents\n", cfg.Docs)
	}
	if *loadDir != "" {
		if err := db.Load(*loadDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded dump from %s\n", *loadDir)
	}
	for _, spec := range loads {
		if err := loadFile(db, spec); err != nil {
			log.Fatal(err)
		}
	}
	if *dump != "" {
		if err := db.Dump(*dump); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dumped database to %s\n", *dump)
		return
	}

	if *q != "" {
		if err := runQuery(db, *q); err != nil {
			printQueryError(os.Stderr, *q, err)
			os.Exit(1)
		}
		return
	}
	repl(db)
}

// openDB opens the database: in memory, or durably under dataDir. The demo
// pins the clock to the paper's "today" (February 10, 2001) so NOW-relative
// queries match the text.
func openDB(dataDir string, demo bool, cacheBytes int64, workers int, resil bool, ckptEvery int) (*txmldb.DB, error) {
	cfg := txmldb.Config{
		Cache:      txmldb.CacheConfig{MaxBytes: cacheBytes},
		Workers:    workers,
		Resilience: txmldb.ResilienceConfig{Enabled: resil},
	}
	if demo {
		cfg.Clock = func() txmldb.Time { return txmldb.Date(2001, time.February, 10) }
	}
	if dataDir == "" {
		return txmldb.Open(cfg), nil
	}
	cfg.Checkpoint.EveryCommits = ckptEvery
	cfg.OpenLogf = log.Printf
	return txmldb.OpenDurable(cfg, dataDir)
}

// loadDemo plays the Figure 1 history into db, skipping documents already
// present (a durable demo directory being reopened).
func loadDemo(db *txmldb.DB) error {
	if _, ok := db.LookupDoc(experiments.Figure1URL); ok {
		fmt.Fprintln(os.Stderr, "demo data already present")
		return nil
	}
	return experiments.Figure1Load(db)
}

// runFsck implements the fsck subcommand: replay the write-ahead log under
// -datadir, verify every referenced extent and report the damage. A
// sharded root (shards.json manifest) is verified shard by shard, with a
// per-shard provenance table and one aggregate verdict. Exit status 0
// means clean, 1 corrupt, 2 unusable.
func runFsck(args []string) int {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dataDir := fs.String("datadir", "", "data directory of the durable database to verify")
	verbose := fs.Bool("v", false, "also print write-ahead-log recovery statistics")
	fs.Parse(args)
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "fsck: -datadir is required")
		return 2
	}
	if n, dirs, sharded, err := txmldb.ShardLayout(*dataDir); err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		return 2
	} else if sharded {
		return fsckShards(n, dirs, *verbose)
	}
	db, err := txmldb.OpenDurable(txmldb.Config{}, *dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		return 2
	}
	defer db.Close()
	if *verbose {
		fmt.Println(db.OpenReport().String())
		if st, ok := db.WALStats(); ok {
			fmt.Printf("wal: %d bytes of committed log replayed, %d bytes of torn tail truncated\n",
				st.RecoveredBytes, st.TruncatedOnOpen)
		}
	}
	rep := db.Fsck()
	fmt.Println(rep.String())
	if !rep.Clean() {
		return 1
	}
	return 0
}

// fsckShards verifies every shard of a sharded root independently and
// prints one summary table: each shard's document/version/extent counts
// and problems, then the aggregate verdict. A shard that fails to open is
// reported in its row and makes the run exit 2; any corruption exits 1.
func fsckShards(n int, dirs []string, verbose bool) int {
	fmt.Printf("fsck: sharded database, %d shards\n", n)
	fmt.Printf("  %-10s %6s %9s %8s %9s\n", "shard", "docs", "versions", "extents", "problems")
	status := 0
	var docs, versions, extents, problems int
	for i, dir := range dirs {
		db, err := txmldb.OpenDurable(txmldb.Config{}, dir)
		if err != nil {
			fmt.Printf("  %-10s open failed: %v\n", txmldb.ShardDirName(i), err)
			status = 2
			continue
		}
		if verbose {
			fmt.Printf("  %-10s %s\n", txmldb.ShardDirName(i), db.OpenReport().String())
		}
		rep := db.Fsck()
		db.Close()
		fmt.Printf("  %-10s %6d %9d %8d %9d\n",
			txmldb.ShardDirName(i), rep.Docs, rep.Versions, rep.Extents, len(rep.Problems))
		for _, p := range rep.Problems {
			fmt.Printf("             %s\n", p.String())
		}
		docs += rep.Docs
		versions += rep.Versions
		extents += rep.Extents
		problems += len(rep.Problems)
		if len(rep.Problems) > 0 && status == 0 {
			status = 1
		}
	}
	fmt.Printf("  %-10s %6d %9d %8d %9d\n", "total", docs, versions, extents, problems)
	if problems == 0 && status == 0 {
		fmt.Println("fsck: clean")
	}
	return status
}

// runCompact implements the compact subcommand: open the durable database
// under -datadir, apply the requested retention policy, checkpoint, drop
// covered log segments and report the reclaimed space. Exit status 0 on
// success, 2 on bad usage or failure.
func runCompact(args []string) int {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dataDir := fs.String("datadir", "", "data directory of the durable database to compact")
	keepLast := fs.Int("keep-last", 0, "keep only the newest K versions of each document")
	keepSince := fs.String("keep-since", "", "keep versions alive at or after dd/mm/yyyy")
	granule := fs.Int("granule", 0, "snapshot-interspersal granule among survivors (0 = store default)")
	fs.Parse(args)
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "compact: -datadir is required")
		return 2
	}
	ret := txmldb.Retention{Policy: txmldb.KeepAll, Granule: *granule}
	switch {
	case *keepLast > 0 && *keepSince != "":
		fmt.Fprintln(os.Stderr, "compact: -keep-last and -keep-since are mutually exclusive")
		return 2
	case *keepLast > 0:
		ret.Policy, ret.KeepLast = txmldb.KeepLast, *keepLast
	case *keepSince != "":
		std, err := time.Parse("02/01/2006", *keepSince)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compact: bad -keep-since date %q: %v\n", *keepSince, err)
			return 2
		}
		ret.Policy, ret.KeepSince = txmldb.KeepSince, txmldb.TimeOf(std)
	}
	if n, dirs, sharded, err := txmldb.ShardLayout(*dataDir); err != nil {
		fmt.Fprintf(os.Stderr, "compact: %v\n", err)
		return 2
	} else if sharded {
		return compactShards(n, dirs, ret)
	}
	before, err := dirBytes(*dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compact: %v\n", err)
		return 2
	}
	db, err := txmldb.OpenDurable(txmldb.Config{OpenLogf: log.Printf}, *dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compact: %v\n", err)
		return 2
	}
	rep, cs, err := db.Vacuum(ret)
	if err != nil {
		db.Close()
		fmt.Fprintf(os.Stderr, "compact: %v\n", err)
		return 2
	}
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "compact: close: %v\n", err)
		return 2
	}
	after, err := dirBytes(*dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compact: %v\n", err)
		return 2
	}
	fmt.Printf("retention %s: %s\n", ret.Policy, rep)
	fmt.Printf("checkpoint %s (%d bytes), %d log segments dropped\n", cs.File, cs.Bytes, cs.SegmentsDeleted)
	fmt.Printf("directory: %d -> %d bytes (%+d)\n", before, after, after-before)
	return 0
}

// compactShards applies the retention policy to every shard of a sharded
// root independently and prints one summary table with per-shard
// provenance: versions pruned, extents and bytes freed, log segments
// dropped and the on-disk delta per shard directory. A failing shard is
// reported in its row; the others still compact. Exit 0 when every shard
// compacted, 2 otherwise.
func compactShards(n int, dirs []string, ret txmldb.Retention) int {
	fmt.Printf("compact: sharded database, %d shards, retention %s\n", n, ret.Policy)
	fmt.Printf("  %-10s %6s %8s %9s %12s %9s %14s\n",
		"shard", "docs", "pruned", "extents", "bytes-freed", "seg-drop", "dir-delta")
	status := 0
	var docs, pruned, extents, segs int
	var bytesFreed, delta int64
	for i, dir := range dirs {
		before, err := dirBytes(dir)
		if err != nil {
			fmt.Printf("  %-10s %v\n", txmldb.ShardDirName(i), err)
			status = 2
			continue
		}
		db, err := txmldb.OpenDurable(txmldb.Config{}, dir)
		if err != nil {
			fmt.Printf("  %-10s open failed: %v\n", txmldb.ShardDirName(i), err)
			status = 2
			continue
		}
		rep, cs, err := db.Vacuum(ret)
		if cerr := db.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Printf("  %-10s %v\n", txmldb.ShardDirName(i), err)
			status = 2
			continue
		}
		after, err := dirBytes(dir)
		if err != nil {
			fmt.Printf("  %-10s %v\n", txmldb.ShardDirName(i), err)
			status = 2
			continue
		}
		fmt.Printf("  %-10s %6d %8d %9d %12d %9d %+14d\n",
			txmldb.ShardDirName(i), rep.Docs, rep.VersionsPruned, rep.ExtentsFreed,
			rep.BytesFreed, cs.SegmentsDeleted, after-before)
		docs += rep.Docs
		pruned += rep.VersionsPruned
		extents += rep.ExtentsFreed
		bytesFreed += rep.BytesFreed
		segs += cs.SegmentsDeleted
		delta += after - before
	}
	fmt.Printf("  %-10s %6d %8d %9d %12d %9d %+14d\n",
		"total", docs, pruned, extents, bytesFreed, segs, delta)
	return status
}

// dirBytes sums the sizes of the regular files directly under dir.
func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total, nil
}

func parseGen(spec string) (tdocgen.Config, error) {
	cfg := tdocgen.Config{Seed: 1, Docs: 2, Versions: 5, Start: model.Date(2001, 1, 1)}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("bad -gen entry %q (want key=value)", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return cfg, fmt.Errorf("bad -gen value %q: %w", kv, err)
		}
		switch parts[0] {
		case "docs":
			cfg.Docs = n
		case "versions":
			cfg.Versions = n
		case "elems":
			cfg.InitialElems = n
		case "ops":
			cfg.OpsPerVersion = n
		case "seed":
			cfg.Seed = int64(n)
		default:
			return cfg, fmt.Errorf("unknown -gen key %q", parts[0])
		}
	}
	return cfg, nil
}

// loadFile handles url=FILE@dd/mm/yyyy: puts a new document or updates an
// existing one at the given transaction time.
func loadFile(db *txmldb.DB, spec string) error {
	eq := strings.Index(spec, "=")
	at := strings.LastIndex(spec, "@")
	if eq < 0 || at < eq {
		return fmt.Errorf("bad -load %q (want url=FILE@dd/mm/yyyy)", spec)
	}
	url, file, date := spec[:eq], spec[eq+1:at], spec[at+1:]
	std, err := time.Parse("02/01/2006", date)
	if err != nil {
		return fmt.Errorf("bad -load date %q: %w", date, err)
	}
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	stamp := txmldb.TimeOf(std)
	if id, ok := db.LookupDoc(url); ok {
		_, _, err = db.UpdateXML(id, f, stamp)
	} else {
		_, err = db.PutXML(url, f, stamp)
	}
	if err != nil {
		return fmt.Errorf("loading %s: %w", file, err)
	}
	fmt.Fprintf(os.Stderr, "loaded %s as %s @ %s\n", file, url, date)
	return nil
}

// printQueryError renders a query failure; syntax errors point at the
// offending spot in the query text with a caret.
func printQueryError(w io.Writer, src string, err error) {
	var pe *txmldb.ParseError
	if !errors.As(err, &pe) {
		fmt.Fprintln(w, "error:", err)
		return
	}
	fmt.Fprintf(w, "error: %v\n", pe)
	lines := strings.Split(src, "\n")
	if pe.Line >= 1 && pe.Line <= len(lines) && pe.Col >= 1 {
		line := lines[pe.Line-1]
		fmt.Fprintf(w, "  %s\n", line)
		col := pe.Col
		if col > len(line)+1 {
			col = len(line) + 1
		}
		fmt.Fprintf(w, "  %s^\n", strings.Repeat(" ", col-1))
	}
}

func runQuery(db *txmldb.DB, src string) error {
	res, err := db.Query(src)
	if err != nil {
		return err
	}
	fmt.Println(res.Doc().Pretty())
	fmt.Fprintf(os.Stderr, "%d rows; %d pattern matches, %d reconstructions\n",
		len(res.Rows), res.Metrics.PatternMatches, res.Metrics.Reconstructions)
	return nil
}

func repl(db *txmldb.DB) {
	fmt.Fprintln(os.Stderr, `txmldb shell — one query per line; ".docs" lists documents, ".explain <query>" shows the plan, ".health" shows the resilience tier, ".quit" exits`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(os.Stderr, "txmldb> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case strings.HasPrefix(line, ".explain "):
			src := strings.TrimPrefix(line, ".explain ")
			out, err := db.Explain(src)
			if err != nil {
				printQueryError(os.Stderr, src, err)
				continue
			}
			fmt.Print(out)
		case line == ".health":
			snap, ok := db.Health()
			if !ok {
				fmt.Fprintln(os.Stderr, "resilience tier disabled (run with -resilience)")
				continue
			}
			fmt.Printf("  state    %s (backend %s, data %s)\n",
				snap.State, snap.Backend.State, snap.Data.State)
			fmt.Printf("  breaker  %s (%d opens, %d fast-fails, %d probes)\n",
				snap.Breaker.State, snap.Breaker.Opens, snap.Breaker.FastFails, snap.Breaker.Probes)
			fmt.Printf("  degraded %d reads served, %d operations rejected\n",
				snap.DegradedServes, snap.DegradedRejects)
		case line == ".docs":
			for _, id := range db.Docs() {
				info, err := db.Info(id)
				if err != nil {
					continue
				}
				state := "live"
				if !info.Live() {
					state = "deleted " + info.Deleted.String()
				}
				fmt.Printf("  %3d  %-50s %2d versions, created %s, %s\n",
					info.ID, info.Name, info.Versions, info.Created, state)
			}
		default:
			if err := runQuery(db, line); err != nil {
				printQueryError(os.Stderr, line, err)
			}
		}
	}
}
