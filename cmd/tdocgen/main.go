// Command tdocgen generates temporal XML document corpora for testing and
// benchmarking: deterministic histories of evolving restaurant-guide
// documents (or news feeds) written as one XML file per version.
//
// Usage:
//
//	tdocgen -docs 4 -versions 8 -out ./corpus
//	tdocgen -news -versions 12 -out ./feed
//	tdocgen -docs 1 -versions 3            # print to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

func main() {
	var (
		docs     = flag.Int("docs", 1, "number of documents")
		versions = flag.Int("versions", 5, "versions per document")
		elems    = flag.Int("elems", 10, "initial elements per document")
		ops      = flag.Int("ops", 2, "edit operations per version")
		seed     = flag.Int64("seed", 1, "random seed (same seed, same corpus)")
		news     = flag.Bool("news", false, "generate news feeds instead of restaurant guides")
		out      = flag.String("out", "", "output directory (default: stdout)")
	)
	flag.Parse()

	g := tdocgen.New(tdocgen.Config{
		Seed: *seed, Docs: *docs, Versions: *versions,
		InitialElems: *elems, OpsPerVersion: *ops,
		Start: model.Date(2001, 1, 1),
	})

	for d := 0; d < *docs; d++ {
		var hist []tdocgen.Version
		if *news {
			hist = g.NewsHistory(d)
		} else {
			hist = g.History(d)
		}
		for v, hv := range hist {
			if *out == "" {
				fmt.Printf("<!-- %s version %d at %s -->\n", g.URL(d), v+1, hv.At)
				fmt.Println(hv.Tree.Pretty())
				continue
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			name := filepath.Join(*out, fmt.Sprintf("doc%03d-v%03d.xml", d, v+1))
			if err := os.WriteFile(name, []byte(hv.Tree.Pretty()+"\n"), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *out != "" {
		fmt.Printf("wrote %d documents x %d versions to %s\n", *docs, *versions, *out)
		// A manifest records URL and timestamps so loaders can replay
		// the history in transaction-time order.
		manifest := xmltree.NewElement("manifest")
		for d := 0; d < *docs; d++ {
			doc := xmltree.NewElement("document")
			doc.SetAttr("url", g.URL(d))
			hist := g.History(d)
			if *news {
				hist = g.NewsHistory(d)
			}
			for v, hv := range hist {
				ver := xmltree.NewElement("version")
				ver.SetAttr("file", fmt.Sprintf("doc%03d-v%03d.xml", d, v+1))
				ver.SetAttr("stampms", fmt.Sprint(int64(hv.At)))
				doc.AppendChild(ver)
			}
			manifest.AppendChild(doc)
		}
		path := filepath.Join(*out, "manifest.xml")
		if err := os.WriteFile(path, []byte(manifest.Pretty()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
