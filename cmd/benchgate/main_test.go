package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

const baseOutput = `goos: linux
goarch: amd64
pkg: txmldb
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkC1Scan/docs=64-4         	       3	 100000000 ns/op
BenchmarkC3CachedReconstruct-4    	      50	   5000000 ns/op
BenchmarkC1ParallelScan/workers=4-4	       3	 640000000 ns/op
PASS
ok  	txmldb	12.345s
`

// headSlow is the injected regression: every benchmark exactly 2x slower.
const headSlow = `goos: linux
goarch: amd64
pkg: txmldb
BenchmarkC1Scan/docs=64-4         	       3	 200000000 ns/op
BenchmarkC3CachedReconstruct-4    	      50	  10000000 ns/op
BenchmarkC1ParallelScan/workers=4-4	       3	1280000000 ns/op
PASS
`

// headNoise is within-threshold jitter plus one added, one removed bench.
const headNoise = `BenchmarkC1Scan/docs=64-4         	       3	 108000000 ns/op
BenchmarkC1ParallelScan/workers=4-4	       3	 601600000 ns/op
BenchmarkP1DocHistory/workers=4-4 	       3	  24000000 ns/op
`

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchAveragesRepeats(t *testing.T) {
	path := writeFixture(t, "rep.txt", `
BenchmarkX-4	10	100 ns/op
BenchmarkX-4	10	300 ns/op
not a bench line
BenchmarkBroken-4	10	abc ns/op
`)
	got, err := parseBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkX-4"] != 200 {
		t.Fatalf("parseBench = %v, want BenchmarkX-4: 200", got)
	}
}

// TestGateFailsOnInjectedSlowdown is the required local verification: a
// uniform 2x slowdown must trip the 15%-geomean gate.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	old, err := parseBench(writeFixture(t, "base.txt", baseOutput))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseBench(writeFixture(t, "head.txt", headSlow))
	if err != nil {
		t.Fatal(err)
	}
	r := gate(old, new, 1.15)
	if r.Pass {
		t.Fatalf("gate passed a uniform 2x slowdown: %+v", r)
	}
	if math.Abs(r.Geomean-2.0) > 0.01 {
		t.Fatalf("geomean = %.3f, want ~2.0", r.Geomean)
	}
	if r.Compared != 3 {
		t.Fatalf("compared %d benchmarks, want 3", r.Compared)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	old, err := parseBench(writeFixture(t, "base.txt", baseOutput))
	if err != nil {
		t.Fatal(err)
	}
	new, err := parseBench(writeFixture(t, "head.txt", headNoise))
	if err != nil {
		t.Fatal(err)
	}
	r := gate(old, new, 1.15)
	if !r.Pass {
		t.Fatalf("gate failed on within-threshold jitter: geomean %.3f", r.Geomean)
	}
	// 1.08 and 0.94 ratios over the two shared benchmarks.
	if r.Compared != 2 {
		t.Fatalf("compared %d benchmarks, want 2 (only shared names)", r.Compared)
	}
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "BenchmarkC3CachedReconstruct-4" {
		t.Fatalf("only_in_old = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "BenchmarkP1DocHistory/workers=4-4" {
		t.Fatalf("only_in_new = %v", r.OnlyNew)
	}
}

func TestGateNeutralGeomeanWhenEmpty(t *testing.T) {
	r := gate(map[string]float64{"BenchmarkA-4": 1}, map[string]float64{"BenchmarkB-4": 1}, 1.15)
	if r.Compared != 0 || r.Geomean != 1.0 {
		t.Fatalf("disjoint inputs: %+v", r)
	}
}
