// Command benchgate compares two `go test -bench` outputs and fails when
// the geometric-mean ns/op ratio (new over old) regresses past a
// threshold. It is the CI perf gate: the workflow benchmarks the PR head
// and its merge-base, then runs
//
//	benchgate -old base.txt -new head.txt -threshold 1.15
//
// Only benchmarks present in both files are compared. Exit status 1 means
// the gate tripped (or an input could not be parsed); a JSON report of
// every ratio goes to -json for artifact upload.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result: name with the -N GOMAXPROCS
// suffix kept (it distinguishes sub-benchmarks only when procs differ,
// which the gate treats as distinct configurations).
type benchLine struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// parseBench extracts "BenchmarkX-N  iters  ns/op" lines from go test
// -bench output. Repeated runs of the same benchmark (e.g. -count=3) are
// averaged so the gate sees one number per benchmark.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sums := map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		sums[fields[0]] += ns
		counts[fields[0]]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

// report is the JSON artifact the gate writes.
type report struct {
	Threshold float64      `json:"threshold"`
	Geomean   float64      `json:"geomean"`
	Pass      bool         `json:"pass"`
	Compared  int          `json:"compared"`
	Ratios    []ratioEntry `json:"ratios"`
	OnlyOld   []string     `json:"only_in_old,omitempty"`
	OnlyNew   []string     `json:"only_in_new,omitempty"`
}

type ratioEntry struct {
	Name  string  `json:"name"`
	OldNs float64 `json:"old_ns_per_op"`
	NewNs float64 `json:"new_ns_per_op"`
	Ratio float64 `json:"ratio"`
}

// gate compares the two result sets and builds the report. Pure so the
// fixture test can drive it directly.
func gate(old, new map[string]float64, threshold float64) report {
	r := report{Threshold: threshold}
	var logSum float64
	for name, oldNs := range old {
		newNs, ok := new[name]
		if !ok {
			r.OnlyOld = append(r.OnlyOld, name)
			continue
		}
		ratio := newNs / oldNs
		r.Ratios = append(r.Ratios, ratioEntry{Name: name, OldNs: oldNs, NewNs: newNs, Ratio: ratio})
		logSum += math.Log(ratio)
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			r.OnlyNew = append(r.OnlyNew, name)
		}
	}
	sort.Slice(r.Ratios, func(i, j int) bool { return r.Ratios[i].Ratio > r.Ratios[j].Ratio })
	sort.Strings(r.OnlyOld)
	sort.Strings(r.OnlyNew)
	r.Compared = len(r.Ratios)
	if r.Compared > 0 {
		r.Geomean = math.Exp(logSum / float64(r.Compared))
	} else {
		r.Geomean = 1.0
	}
	r.Pass = r.Geomean <= threshold
	return r
}

func main() {
	oldPath := flag.String("old", "", "go test -bench output of the baseline (merge-base)")
	newPath := flag.String("new", "", "go test -bench output of the candidate (PR head)")
	threshold := flag.Float64("threshold", 1.15, "max allowed geomean ns/op ratio (new/old)")
	jsonPath := flag.String("json", "", "write the full comparison report to this file")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}

	oldRes, err := parseBench(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	newRes, err := parseBench(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	r := gate(oldRes, newRes, *threshold)
	if r.Compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in common between the two inputs")
		os.Exit(1)
	}

	for _, e := range r.Ratios {
		fmt.Printf("%-60s %14.0f -> %14.0f  %.3fx\n", e.Name, e.OldNs, e.NewNs, e.Ratio)
	}
	for _, name := range r.OnlyOld {
		fmt.Printf("%-60s removed\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Printf("%-60s new\n", name)
	}
	fmt.Printf("geomean %.3fx over %d benchmarks (threshold %.2fx)\n", r.Geomean, r.Compared, r.Threshold)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: write report: %v\n", err)
			os.Exit(1)
		}
	}

	if !r.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: geomean regression %.3fx exceeds %.2fx\n", r.Geomean, r.Threshold)
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}
