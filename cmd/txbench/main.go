// Command txbench regenerates the reproduction experiments of
// EXPERIMENTS.md: F1 (the paper's Figure 1 data and queries Q1–Q3),
// C1–C12, one quantitative experiment per analytical performance claim of
// the paper, plus the infrastructure experiments (W1 durability, W2
// write-path scaling, S1/S2 serving, P1 parallelism, R1 chaos/resilience,
// S3 sharded read scaling).
// It prints one table per experiment.
//
// Usage:
//
//	txbench             # run everything
//	txbench -only C3,C6 # run a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"txmldb/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (default: all)")
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			wanted[id] = true
		}
	}
	include := func(id string) bool { return len(wanted) == 0 || wanted[id] }

	runs := []struct {
		id  string
		run func() (experiments.Table, error)
	}{
		{"F1", experiments.F1},
		{"C1", func() (experiments.Table, error) { return experiments.C1([]int{4, 16, 64}) }},
		{"C2", experiments.C2},
		{"C3", experiments.C3},
		{"C4", experiments.C4},
		{"C5", experiments.C5},
		{"C6", experiments.C6},
		{"C7", func() (experiments.Table, error) { return experiments.C7([]int{8, 32, 128}) }},
		{"C8", experiments.C8},
		{"C9", experiments.C9},
		{"C10", func() (experiments.Table, error) { return experiments.C10([]int{8, 32, 128}) }},
		{"C11", experiments.C11},
		{"C12", func() (experiments.Table, error) { return experiments.C12(10000) }},
		{"W1", experiments.W1},
		{"W2", func() (experiments.Table, error) { return experiments.W2([]int{1, 2, 4, 8}) }},
		{"S1", func() (experiments.Table, error) { return experiments.S1([]int{1, 8, 64}, 200) }},
		{"S2", func() (experiments.Table, error) { return experiments.S2([]int{1, 8, 64}, 200) }},
		{"S3", func() (experiments.Table, error) { return experiments.S3([]int{1, 2, 4, 8}, 16, 50) }},
		{"P1", func() (experiments.Table, error) { return experiments.P1([]int{1, 2, 4, 8}) }},
		{"R1", func() (experiments.Table, error) { return experiments.R1([]int64{42, 7}) }},
	}

	failed := false
	for _, r := range runs {
		if !include(r.id) {
			continue
		}
		tbl, err := r.run()
		if err != nil {
			log.Printf("%s failed: %v", r.id, err)
			failed = true
			continue
		}
		tbl.Print(func(format string, args ...any) { fmt.Printf(format, args...) })
	}
	if failed {
		os.Exit(1)
	}
}
