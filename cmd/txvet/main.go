// Command txvet is the multichecker driver for txmldb's project-specific
// static analyzers. It loads the named packages (default ./...),
// runs the suite, prints findings in the canonical file:line:col form,
// and exits nonzero if any live finding remains. See DESIGN.md §3f for
// the invariants each analyzer guards.
//
// Usage:
//
//	go run ./cmd/txvet [-run a,b] [-summary file] [-v] [packages...]
//
// Suppressions use //txvet:ignore <analyzer> <reason> on the offending
// line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"txmldb/internal/analysis/driver"
	"txmldb/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("txvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	summary := fs.String("summary", "", "append a per-analyzer markdown summary to this file (e.g. $GITHUB_STEP_SUMMARY)")
	verbose := fs.Bool("v", false, "also list suppressed findings with their justifications")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *runList != "" {
		names = strings.Split(*runList, ",")
	}
	analyzers, err := driver.Select(names)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return 2
	}

	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return 2
	}

	for _, f := range res.Findings {
		fmt.Fprintln(stdout, f)
	}
	if *verbose {
		for _, f := range res.Suppressed {
			fmt.Fprintf(stdout, "%s: suppressed (%s) [%s]\n", f.Pos, f.SuppressedBy, f.Analyzer)
		}
	}
	fmt.Fprint(stderr, countsText(res))

	if *summary != "" {
		if err := appendSummary(*summary, res); err != nil {
			fmt.Fprintln(stderr, "txvet: writing summary:", err)
			return 2
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// countsText renders per-analyzer live/suppressed counts for the terminal.
func countsText(res *driver.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "txvet: %d finding(s), %d suppressed\n", len(res.Findings), len(res.Suppressed))
	for _, name := range analyzerNames(res) {
		fmt.Fprintf(&b, "  %-12s %3d live %3d suppressed\n", name, res.Counts[name], res.SuppressedCounts[name])
	}
	return b.String()
}

// appendSummary writes the counts as a markdown table, the format GitHub
// renders in the job summary pane.
func appendSummary(path string, res *driver.Result) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### txvet: %d finding(s), %d suppressed\n\n", len(res.Findings), len(res.Suppressed))
	fmt.Fprintln(f, "| analyzer | live | suppressed |")
	fmt.Fprintln(f, "|---|---|---|")
	for _, name := range analyzerNames(res) {
		fmt.Fprintf(f, "| %s | %d | %d |\n", name, res.Counts[name], res.SuppressedCounts[name])
	}
	fmt.Fprintln(f)
	return nil
}

// analyzerNames returns every analyzer name appearing in the result,
// sorted (includes the reserved "txvet" name if directives were bad).
func analyzerNames(res *driver.Result) []string {
	seen := make(map[string]bool)
	for name := range res.Counts {
		seen[name] = true
	}
	for name := range res.SuppressedCounts {
		seen[name] = true
	}
	var names []string
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
