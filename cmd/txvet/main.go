// Command txvet is the multichecker driver for txmldb's project-specific
// static analyzers. It loads the named packages (default ./...),
// runs the suite, prints findings in the canonical file:line:col form,
// and exits nonzero if any live finding remains. See DESIGN.md §3f for
// the invariants each analyzer guards.
//
// Usage:
//
//	go run ./cmd/txvet [-run a,b] [-summary file] [-json file] [-v] [packages...]
//	go run ./cmd/txvet audit-ignores [packages...]
//
// Suppressions use //txvet:ignore <analyzer> <reason> on the offending
// line or the line above; the reason is mandatory. The audit-ignores
// subcommand lists every directive with its justification and fails if
// any directive is stale — the analyzer it names no longer fires at that
// site, so the suppression (and its reason) is dead weight that would
// silently waive a future regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/driver"
	"txmldb/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "audit-ignores" {
		return auditIgnores(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("txvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	summary := fs.String("summary", "", "append a per-analyzer markdown summary to this file (e.g. $GITHUB_STEP_SUMMARY)")
	jsonPath := fs.String("json", "", "write all findings (live and suppressed) as a JSON array to this file, - for stdout")
	verbose := fs.Bool("v", false, "also list suppressed findings with their justifications")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var names []string
	if *runList != "" {
		names = strings.Split(*runList, ",")
	}
	analyzers, err := driver.Select(names)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return 2
	}

	res, code := loadAndRun(fs.Args(), analyzers, stderr)
	if res == nil {
		return code
	}

	for _, f := range res.Findings {
		fmt.Fprintln(stdout, f)
	}
	if *verbose {
		for _, f := range res.Suppressed {
			fmt.Fprintf(stdout, "%s: suppressed (%s) [%s]\n", f.Pos, f.SuppressedBy, f.Analyzer)
		}
	}
	fmt.Fprint(stderr, countsText(res))

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, stdout, res); err != nil {
			fmt.Fprintln(stderr, "txvet: writing json:", err)
			return 2
		}
	}
	if *summary != "" {
		if err := appendSummary(*summary, res); err != nil {
			fmt.Fprintln(stderr, "txvet: writing summary:", err)
			return 2
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// loadAndRun loads the pattern set and applies the analyzers; on
// failure it reports to stderr and returns a nil result with the exit
// code.
func loadAndRun(patterns []string, analyzers []*analysis.Analyzer, stderr io.Writer) (*driver.Result, int) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return nil, 2
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return nil, 2
	}
	return res, 0
}

// auditIgnores runs the full suite and reports on every //txvet:ignore
// directive: file, line, analyzers, justification, and whether any
// diagnostic actually matched it. Stale directives fail the command.
func auditIgnores(patterns []string, stdout, stderr io.Writer) int {
	analyzers, err := driver.Select(nil) // all: staleness is only meaningful against the full suite
	if err != nil {
		fmt.Fprintln(stderr, "txvet:", err)
		return 2
	}
	res, code := loadAndRun(patterns, analyzers, stderr)
	if res == nil {
		return code
	}

	stale := 0
	for _, d := range res.Directives {
		status := "used "
		if !d.Used {
			status = "STALE"
			stale++
		}
		fmt.Fprintf(stdout, "%s:%d: %s [%s] %s\n",
			relPath(d.Pos.Filename), d.Pos.Line, status, strings.Join(d.Names, ","), d.Reason)
	}
	// Malformed or unknown-name directives surface as "txvet" findings;
	// they are defects in the suppressions themselves, so the audit owns
	// them too.
	bad := 0
	for _, f := range res.Findings {
		if f.Analyzer == "txvet" {
			fmt.Fprintln(stdout, f)
			bad++
		}
	}
	fmt.Fprintf(stderr, "txvet: %d directive(s), %d stale, %d malformed\n", len(res.Directives), stale, bad)
	if stale > 0 || bad > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape; the array is stable
// because driver.Run sorts findings by position and the live findings
// precede the suppressed ones.
type jsonFinding struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

func writeJSON(path string, stdout io.Writer, res *driver.Result) error {
	var out []jsonFinding
	add := func(f driver.Finding, suppressed bool) {
		out = append(out, jsonFinding{
			Analyzer:      f.Analyzer,
			File:          relPath(f.Pos.Filename),
			Line:          f.Pos.Line,
			Col:           f.Pos.Column,
			Message:       f.Message,
			Suppressed:    suppressed,
			Justification: f.SuppressedBy,
		})
	}
	for _, f := range res.Findings {
		add(f, false)
	}
	for _, f := range res.Suppressed {
		add(f, true)
	}
	if out == nil {
		out = []jsonFinding{}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// relPath renders a source path repo-relative when possible, so JSON
// artifacts and audit listings are stable across checkouts.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// countsText renders per-analyzer live/suppressed counts for the terminal.
func countsText(res *driver.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "txvet: %d finding(s), %d suppressed\n", len(res.Findings), len(res.Suppressed))
	for _, name := range analyzerNames(res) {
		fmt.Fprintf(&b, "  %-12s %3d live %3d suppressed", name, res.Counts[name], res.SuppressedCounts[name])
		if s := res.Stats[name]; s != "" {
			fmt.Fprintf(&b, "   %s", s)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "  call graph: %s\n", res.CallGraph)
	return b.String()
}

// appendSummary writes the counts as a markdown table, the format GitHub
// renders in the job summary pane.
func appendSummary(path string, res *driver.Result) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### txvet: %d finding(s), %d suppressed\n\n", len(res.Findings), len(res.Suppressed))
	fmt.Fprintf(f, "call graph: `%s`\n\n", res.CallGraph)
	fmt.Fprintln(f, "| analyzer | live | suppressed | stats |")
	fmt.Fprintln(f, "|---|---|---|---|")
	for _, name := range analyzerNames(res) {
		fmt.Fprintf(f, "| %s | %d | %d | %s |\n", name, res.Counts[name], res.SuppressedCounts[name], res.Stats[name])
	}
	fmt.Fprintln(f)
	return nil
}

// analyzerNames returns every analyzer name appearing in the result,
// sorted (includes the reserved "txvet" name if directives were bad).
func analyzerNames(res *driver.Result) []string {
	seen := make(map[string]bool)
	for name := range res.Counts {
		seen[name] = true
	}
	for name := range res.SuppressedCounts {
		seen[name] = true
	}
	var names []string
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
