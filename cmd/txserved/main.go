// Command txserved serves the temporal XML database over HTTP/JSON: the
// query language on /query, plans on /explain, liveness on /healthz,
// readiness (drain and degraded state) on /readyz and a Prometheus-style
// exposition on /metrics.
//
// The resilience tier (on by default, see -resilience) wraps backend
// reads in a circuit breaker and serves cache-resident reads while the
// backend is down: those answers carry "degraded":true in the envelope,
// writes and cache-miss reads fail fast with 503 + Retry-After, and
// half-open probes recover the tier automatically once the fault heals.
//
// Usage:
//
//	txserved -demo                     # serve the paper's Figure 1 data
//	txserved -datadir DIR              # serve a durable (WAL) database
//	txserved -gen docs=4,versions=8    # serve a generated corpus
//	txserved -shards 4 -datadir DIR    # 4 document-partitioned engines
//	                                   # under DIR/shard-00 … DIR/shard-03
//
//	curl -s 'localhost:8080/query?q=SELECT+R+FROM+doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant+R'
//	curl -s localhost:8080/query -d '{"query":"SELECT SUM(R) FROM doc(\"http://guide.com/restaurants.xml\")[26/01/2001]/restaurant R"}'
//	curl -s localhost:8080/metrics
//
// With -datadir and -checkpoint-every, a background checkpointer
// periodically snapshots the durable tier (bounding reopen replay and
// reclaiming covered log segments) without ever blocking reads; its
// activity is exposed as txserved_checkpoint_* and txserved_wal_segments
// on /metrics.
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight queries
// (bounded by -drain), stops the checkpointer and only then closes the
// durable store, so every acknowledged response corresponds to a
// committed write-ahead log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"txmldb"
	"txmldb/internal/experiments"
	"txmldb/internal/model"
	"txmldb/internal/server"
	"txmldb/internal/tdocgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "load the paper's Figure 1 restaurant history")
	gen := flag.String("gen", "", "load a generated corpus, e.g. docs=4,versions=8,seed=1")
	dataDir := flag.String("datadir", "", "durable mode: keep the database in a write-ahead log under this directory")
	maxInFlight := flag.Int("max-inflight", 8, "concurrently executing queries")
	maxQueue := flag.Int("max-queue", 32, "requests allowed to wait for an execution slot")
	queueWait := flag.Duration("queue-wait", time.Second, "longest a queued request waits before 429")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query execution deadline")
	slowQuery := flag.Duration("slow-query", 500*time.Millisecond, "slow-query log threshold (negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight queries")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "window between flipping /readyz and closing the listener, so load balancers stop routing first")
	resil := flag.Bool("resilience", true, "enable the health state machine, circuit breaker and degraded cache-first serving")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive backend read failures that open the circuit breaker")
	breakerOpen := flag.Duration("breaker-open", 5*time.Second, "how long an open breaker fails fast before probing the backend again")
	quiet := flag.Bool("quiet", false, "disable the per-request access log")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "byte budget of the shared version-reconstruction cache (0 disables)")
	cacheReplay := flag.Int("cache-replay", 128, "max deltas replayed forward from a cached ancestor version")
	workers := flag.Int("workers", 0, "worker-pool size for parallel operators (0 = GOMAXPROCS, 1 = sequential)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "durable mode: background checkpoint interval (0 disables; checkpoints bound reopen replay and reclaim log segments)")
	commitWindow := flag.Duration("commit-window", 0, "durable mode: WAL group-commit window — concurrent commits arriving within it share one fsync (0 disables batching; try 1ms under concurrent writers)")
	shards := flag.Int("shards", 1, "partition documents across this many engine instances; with -datadir the directory becomes a root holding shard-NN/ subdirs")
	shardInflight := flag.Int("shard-inflight", 0, "per-shard admission bound (0 = default)")
	flag.Parse()

	res := txmldb.ResilienceConfig{}
	if *resil {
		res = txmldb.ResilienceConfig{
			Enabled: true,
			Breaker: txmldb.BreakerConfig{
				FailureThreshold: *breakerThreshold,
				OpenFor:          *breakerOpen,
			},
		}
	}
	db, err := openDB(*dataDir, *demo, txmldb.CacheConfig{MaxBytes: *cacheBytes, MaxReplay: *cacheReplay}, *workers, res, *shards, *shardInflight, *commitWindow)
	if err != nil {
		log.Fatal(err)
	}

	if *demo {
		if _, ok := db.LookupDoc(experiments.Figure1URL); !ok {
			if err := experiments.Figure1Load(db); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *gen != "" {
		cfg, err := parseGen(*gen)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := tdocgen.New(cfg).Load(db); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d generated documents", cfg.Docs)
	}

	cfg := server.Config{
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueWait:    *queueWait,
		QueryTimeout: *queryTimeout,
		SlowQuery:    *slowQuery,
		DrainGrace:   *drainGrace,
		ErrorLog:     log.New(os.Stderr, "txserved: ", log.LstdFlags),
	}
	if !*quiet {
		cfg.AccessLog = log.New(os.Stderr, "access: ", log.LstdFlags)
	}
	srv := server.New(db, cfg)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("txserved listening on %s (%d docs, %d shard(s), max-inflight %d, queue %d)",
		l.Addr(), len(db.Docs()), *shards, *maxInFlight, *maxQueue)

	// Shutdown ordering: a signal stops accepting, Run drains in-flight
	// queries, the background checkpointer stops, and only after that the
	// store is closed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var ckptWG sync.WaitGroup
	if *dataDir != "" && *ckptEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			runCheckpointer(ctx, db, *ckptEvery)
		}()
		log.Printf("background checkpointer: every %v", *ckptEvery)
	}
	if err := srv.Run(ctx, l, *drain); err != nil {
		log.Printf("shutdown: %v", err)
	}
	stop()
	ckptWG.Wait()
	if err := db.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	log.Print("txserved: drained and closed cleanly")
}

// runCheckpointer periodically checkpoints the durable store until ctx is
// canceled. Checkpoints never block reads; a run overlapping a manual one
// reports ErrCheckpointBusy and is simply skipped. Errors are logged and
// counted in the txserved_checkpoint_errors_total metric — the WAL alone
// keeps the database durable, a failed checkpoint only costs reopen time.
// On a sharded engine the run fans out to every shard; a joined error can
// name some failing shards while the others' checkpoints stuck.
func runCheckpointer(ctx context.Context, db engine, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			stats, err := db.Checkpoint()
			switch {
			case errors.Is(err, txmldb.ErrCheckpointBusy):
			case err != nil:
				log.Printf("checkpoint: %v", err)
			default:
				log.Printf("checkpoint: published %s (%d bytes, %d extents) in %v, %d segments dropped",
					stats.File, stats.Bytes, stats.Extents, stats.Duration, stats.SegmentsDeleted)
			}
		}
	}
}

// engine is the common surface of *txmldb.DB and *txmldb.ShardedDB that
// txserved drives: serving (server.New takes it as server.Engine via the
// embedded methods), corpus loading, the background checkpointer and the
// final close.
type engine interface {
	QueryContext(ctx context.Context, src string) (*txmldb.Result, error)
	Explain(src string) (string, error)
	Put(url string, root *txmldb.Node, t txmldb.Time) (txmldb.DocID, error)
	Update(id txmldb.DocID, root *txmldb.Node, t txmldb.Time) (txmldb.VersionNo, *txmldb.Script, error)
	LookupDoc(url string) (txmldb.DocID, bool)
	Docs() []txmldb.DocID
	Checkpoint() (txmldb.CheckpointRunStats, error)
	Close() error
}

// openDB opens the database in memory or durably under dataDir, sharded
// when -shards > 1 (dataDir then becomes a root directory holding one
// shard-NN/ subdirectory per engine). The demo pins the clock to the
// paper's "today" (February 10, 2001) so NOW-relative queries match the
// text.
func openDB(dataDir string, demo bool, cache txmldb.CacheConfig, workers int, res txmldb.ResilienceConfig, shards, shardInflight int, commitWindow time.Duration) (engine, error) {
	cfg := txmldb.Config{Cache: cache, Workers: workers, Resilience: res}
	if demo {
		cfg.Clock = func() txmldb.Time { return txmldb.Date(2001, time.February, 10) }
	}
	if dataDir != "" && commitWindow > 0 {
		// Group commit only pays off against a real durability barrier;
		// in-memory engines commit without one, so the window is durable-only.
		// With -shards every engine gets its own batcher via the config.
		cfg.Store.Pages.GroupWindow = commitWindow
	}
	if shards > 1 {
		if dataDir != "" {
			cfg.OpenLogf = log.Printf
		}
		scfg := txmldb.ShardConfig{
			Shards:        shards,
			Engine:        func(int) txmldb.Config { return cfg },
			ShardInflight: shardInflight,
		}
		if dataDir == "" {
			return txmldb.OpenSharded(scfg), nil
		}
		return txmldb.OpenShardedDurable(scfg, dataDir)
	}
	if dataDir == "" {
		return txmldb.Open(cfg), nil
	}
	cfg.OpenLogf = log.Printf
	return txmldb.OpenDurable(cfg, dataDir)
}

// parseGen parses -gen key=value lists (same keys as cmd/txmldb).
func parseGen(spec string) (tdocgen.Config, error) {
	cfg := tdocgen.Config{Seed: 1, Docs: 2, Versions: 5, Start: model.Date(2001, 1, 1)}
	for _, kv := range strings.Split(spec, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("bad -gen entry %q (want key=value)", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return cfg, fmt.Errorf("bad -gen value %q: %w", kv, err)
		}
		switch parts[0] {
		case "docs":
			cfg.Docs = n
		case "versions":
			cfg.Versions = n
		case "elems":
			cfg.InitialElems = n
		case "ops":
			cfg.OpsPerVersion = n
		case "seed":
			cfg.Seed = int64(n)
		default:
			return cfg, fmt.Errorf("unknown -gen key %q", parts[0])
		}
	}
	return cfg, nil
}
