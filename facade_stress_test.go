package txmldb_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"txmldb"
)

// TestFacadeConcurrentReadersDuringWrites drives parallel Query and
// QueryContext calls through the public facade while a writer appends
// versions; run under -race (CI does) this guards the whole
// facade → plan → store read path against the update path.
func TestFacadeConcurrentReadersDuringWrites(t *testing.T) {
	db := txmldb.Open(txmldb.Config{Clock: func() txmldb.Time { return 10_000_000 }})
	mk := func(price int) string {
		return fmt.Sprintf(`<guide><restaurant><name>Napoli</name><price>%d</price></restaurant></guide>`, price)
	}
	id, err := db.PutXML("u", strings.NewReader(mk(1)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(mk(2)), 1001); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 64)

	// Writer: keeps appending versions until the readers are done.
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		for v := 3; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.UpdateXML(id, strings.NewReader(mk(v)), txmldb.Time(1000+v)); err != nil {
				errc <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()

	// Readers: a historical snapshot query (whose answer is immutable once
	// its timestamp has passed) and a current-state count, both of which
	// must always succeed regardless of interleaving.
	queries := []struct {
		src  string
		want func(*txmldb.Result) error
	}{
		{
			// Timestamp 01/01/1970 predates version 1: always empty rows,
			// never an error.
			src: `SELECT R/price FROM doc("u")[01/01/1970]/restaurant R`,
			want: func(r *txmldb.Result) error {
				if len(r.Rows) != 0 {
					return fmt.Errorf("snapshot before creation returned %d rows", len(r.Rows))
				}
				return nil
			},
		},
		{
			// Exactly one restaurant exists in every version.
			src: `SELECT COUNT(R) FROM doc("u")/restaurant R`,
			want: func(r *txmldb.Result) error {
				if n := r.Rows[0][0].(int64); n != 1 {
					return fmt.Errorf("current count = %d, want 1", n)
				}
				return nil
			},
		},
	}
	var readerWg sync.WaitGroup
	for w := 0; w < 4; w++ {
		for _, q := range queries {
			readerWg.Add(1)
			go func(src string, check func(*txmldb.Result) error) {
				defer readerWg.Done()
				for i := 0; i < 50; i++ {
					res, err := db.Query(src)
					if err != nil {
						errc <- err
						return
					}
					if err := check(res); err != nil {
						errc <- err
						return
					}
				}
			}(q.src, q.want)
		}
	}
	// One reader uses QueryContext with a deadline, mixing canceled and
	// successful executions into the same interleavings.
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for i := 0; i < 50; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_, err := db.QueryContext(ctx, `SELECT COUNT(R) FROM doc("u")/restaurant R`)
			cancel()
			if err != nil && !errors.Is(err, context.DeadlineExceeded) {
				errc <- err
				return
			}
		}
	}()

	readerWg.Wait()
	close(stop)
	writerWg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
