// Command audit tours the operational surface of the database on a
// generated corpus: query plans (EXPLAIN), range timespecs, word
// containment, change statistics from the stored deltas, and a dump/load
// round trip — the features an operator reaches for when auditing how a
// document collection evolved.
package main

import (
	"fmt"
	"log"
	"os"

	"txmldb"
)

const day = txmldb.Time(24 * 3600 * 1000)

func main() {
	db := txmldb.Open(txmldb.Config{
		Clock: func() txmldb.Time { return txmldb.Date(2001, 3, 1) },
	})
	gen := txmldb.NewWorkload(txmldb.WorkloadConfig{
		Seed: 4, Docs: 3, Versions: 15, InitialElems: 6, OpsPerVersion: 2,
		Start: txmldb.Date(2001, 1, 1), Step: day,
	})
	ids, err := gen.Load(db)
	if err != nil {
		log.Fatal(err)
	}
	url := gen.URL(0)

	// 1. EXPLAIN: what will this query actually do?
	q := fmt.Sprintf(`SELECT TIME(R), R/price
		FROM doc(%q)[01/01/2001 TO 08/01/2001]/restaurant R
		WHERE R/name = "rest-000-0001" ORDER BY TIME(R)`, url)
	planText, err := db.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== query plan")
	fmt.Print(planText)

	// 2. Run it: the entry's price history during the first week.
	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== price history rows in range: %d (from %d pattern matches, %d reconstructions)\n",
		len(res.Rows), res.Metrics.PatternMatches, res.Metrics.Reconstructions)

	// 3. Word containment across a subtree.
	res, err = db.Query(fmt.Sprintf(
		`SELECT COUNT(R) FROM doc(%q)/restaurant R WHERE CONTAINS(R, "w0000")`, url))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== restaurants currently containing the word w0000: %v\n", res.Rows[0][0])

	// 4. Change statistics straight from the stored completed deltas.
	fmt.Println("\n== change volume per document (from the delta chain)")
	for i, id := range ids {
		info, err := db.Info(id)
		if err != nil {
			log.Fatal(err)
		}
		var ins, del, upd, mov int
		for v := 1; v < info.Versions; v++ {
			script, err := db.Store().ReadDelta(id, txmldb.VersionNo(v))
			if err != nil {
				log.Fatal(err)
			}
			st := script.Stats()
			ins += st.Inserts
			del += st.Deletes
			upd += st.Updates
			mov += st.Moves
		}
		fmt.Printf("  doc %d: %2d versions — %2d inserts, %2d deletes, %2d updates, %2d moves\n",
			i, info.Versions, ins, del, upd, mov)
	}

	// 5. Dump the whole database and reload it into a fresh instance.
	dir, err := os.MkdirTemp("", "txmldb-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := db.Dump(dir); err != nil {
		log.Fatal(err)
	}
	restored := txmldb.Open(txmldb.Config{
		Clock: func() txmldb.Time { return txmldb.Date(2001, 3, 1) },
	})
	if err := restored.Load(dir); err != nil {
		log.Fatal(err)
	}
	a, _ := db.Query(fmt.Sprintf(`SELECT COUNT(R) FROM doc(%q)[08/01/2001]/restaurant R`, url))
	b, _ := restored.Query(fmt.Sprintf(`SELECT COUNT(R) FROM doc(%q)[08/01/2001]/restaurant R`, url))
	fmt.Printf("\n== dump/load round trip: snapshot count %v == %v: %v\n",
		a.Rows[0][0], b.Rows[0][0], a.Rows[0][0] == b.Rows[0][0])
}
