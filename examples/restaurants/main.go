// Command restaurants reproduces the paper end to end on its own running
// example: the guide.com restaurant list of Figure 1 and the example
// queries Q1–Q3 of Section 6.2, followed by a tour of the individual
// temporal operators (Section 6.1).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"txmldb"
)

const guideURL = "http://guide.com/restaurants.xml"

func main() {
	db := txmldb.Open(txmldb.Config{
		// Pin NOW so that relative time expressions are reproducible.
		Clock: func() txmldb.Time { return txmldb.Date(2001, time.February, 10) },
	})
	loadFigure1(db)

	fmt.Println("=== Q1: all restaurants as of 26/01/2001 (TPatternScan + Reconstruct)")
	run(db, `SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)

	fmt.Println("=== Q2: number of restaurants at 26/01/2001 (no reconstruction needed)")
	res := run(db, `SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	fmt.Printf("    reconstructions performed: %d (the paper's Section 6.2 point)\n\n",
		res.Metrics.Reconstructions)

	fmt.Println("=== Q3: price history of Napoli (TPatternScanAll)")
	run(db, `SELECT TIME(R), R/price
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli"`)

	fmt.Println("=== Section 7.4: restaurants that raised prices since 10/01/2001")
	run(db, `SELECT R1/name
		FROM doc("http://guide.com/restaurants.xml")[10/01/2001]/restaurant R1,
		     doc("http://guide.com/restaurants.xml")/restaurant R2
		WHERE R1 == R2 AND R1/price < R2/price`)

	operatorTour(db)
}

func loadFigure1(db *txmldb.DB) {
	steps := []struct {
		at  txmldb.Time
		xml string
	}{
		{txmldb.Date(2001, time.January, 1),
			`<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>`},
		{txmldb.Date(2001, time.January, 15),
			`<guide><restaurant><name>Napoli</name><price>15</price></restaurant>` +
				`<restaurant><name>Akropolis</name><price>13</price></restaurant></guide>`},
		{txmldb.Date(2001, time.January, 31),
			`<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>`},
	}
	id, err := db.PutXML(guideURL, strings.NewReader(steps[0].xml), steps[0].at)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps[1:] {
		if _, _, err := db.UpdateXML(id, strings.NewReader(s.xml), s.at); err != nil {
			log.Fatal(err)
		}
	}
}

func run(db *txmldb.DB, q string) *txmldb.Result {
	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Doc().Pretty())
	fmt.Println()
	return res
}

// operatorTour demonstrates the operator-level API underneath the language.
func operatorTour(db *txmldb.DB) {
	id, _ := db.LookupDoc(guideURL)

	fmt.Println("=== Operator tour")
	// TPatternScan returns TEIDs, the temporal element identifiers.
	pat := &txmldb.Pattern{Name: "restaurant", Rel: txmldb.Child, Project: true}
	teids, err := db.TPatternScan(pat, txmldb.Date(2001, time.January, 26))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPatternScan @26/01: %d TEIDs\n", len(teids))
	for _, teid := range teids {
		node, err := db.Reconstruct(teid)
		if err != nil {
			log.Fatal(err)
		}
		name := node.SelectPath("name")[0].Text()
		cre, _ := db.CreTimeAt(teid)
		del, _ := db.DelTimeAt(teid)
		fmt.Printf("  %-12s TEID=%v  CreTime=%s  DelTime=%s\n", name, teid, cre, del)
	}

	// DocHistory and ElementHistory.
	hist, err := db.DocHistory(id, txmldb.Always)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DocHistory: %d versions (most recent first)\n", len(hist))
	for _, h := range hist {
		fmt.Printf("  v%d @%s: %d restaurants\n", h.Info.Ver, h.Info.Stamp,
			len(h.Root.ChildElements("restaurant")))
	}

	// PreviousTS / NextTS / CurrentTS are pure delta-index lookups.
	napoli := teids[0]
	if prev, err := db.PreviousTS(napoli); err == nil {
		fmt.Printf("PreviousTS(%s) = v%d @%s\n", napoli.T, prev.Ver, prev.Stamp)
	}
	if next, err := db.NextTS(napoli); err == nil {
		fmt.Printf("NextTS(%s)     = v%d @%s\n", napoli.T, next.Ver, next.Stamp)
	}

	// Diff returns the changes between two element versions as XML.
	delta, err := db.Diff(
		txmldb.TEID{E: napoli.E, T: txmldb.Date(2001, time.January, 26)},
		txmldb.TEID{E: napoli.E, T: txmldb.Date(2001, time.February, 1)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Diff of Napoli between 26/01 and 01/02 (an edit script, itself XML):")
	fmt.Println(delta.Pretty())
}
