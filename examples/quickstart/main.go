// Command quickstart shows the smallest useful txmldb program: store a few
// versions of a document, run a snapshot query and a history query, and
// print the result documents.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"txmldb"
)

func main() {
	db := txmldb.Open(txmldb.Config{})

	// Store three versions of a document (the paper's Figure 1).
	id, err := db.PutXML("http://guide.com/restaurants.xml", strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 1))
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>15</price></restaurant>`+
			`<restaurant><name>Akropolis</name><price>13</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 15)); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 31)); err != nil {
		log.Fatal(err)
	}

	// A snapshot query: the restaurant list as of January 26.
	res, err := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Snapshot on 26/01/2001:")
	fmt.Println(res.Doc().Pretty())

	// A history query: every price Napoli ever had, with timestamps.
	res, err = db.Query(`SELECT TIME(R), R/price
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Napoli price history:")
	fmt.Println(res.Doc().Pretty())
}
