// Command newsarchive demonstrates the paper's third notion of time
// (Section 3.1): document time. A news feed grows one item per day; each
// item carries its publication time *inside the document*. Transaction
// time (when the archive stored each version) and document time (what the
// items say) are queried side by side.
package main

import (
	"fmt"
	"log"

	"txmldb"
)

const day = txmldb.Time(24 * 3600 * 1000)

func main() {
	db := txmldb.Open(txmldb.Config{
		Clock: func() txmldb.Time { return txmldb.Date(2001, 2, 1) },
		// Index document time (Section 3.1): items carry their publication
		// instant in <published>, XMLNews-Meta style.
		DocTimePaths: []string{"item/published"},
	})

	// Generate a 20-version news feed and archive every version.
	gen := txmldb.NewWorkload(txmldb.WorkloadConfig{
		Seed: 11, Versions: 20, Start: txmldb.Date(2001, 1, 1), Step: day,
	})
	hist := gen.NewsHistory(0)
	const feedURL = "http://news.example.com/feed.xml"
	id, err := db.Put(feedURL, hist[0].Tree, hist[0].At)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range hist[1:] {
		if _, _, err := db.Update(id, v.Tree, v.At); err != nil {
			log.Fatal(err)
		}
	}

	// Transaction-time query: what did the feed contain on January 10?
	res, err := db.Query(fmt.Sprintf(
		`SELECT COUNT(I) FROM doc(%q)[10/01/2001]/item I`, feedURL))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("items in the archived feed as of 10/01/2001: %v\n", res.Rows[0][0])

	// When was each item first archived? (CREATE TIME = transaction time.)
	res, err = db.Query(fmt.Sprintf(`SELECT CREATE TIME(I), I/headline
		FROM doc(%q)/item I ORDER BY CREATE TIME(I) LIMIT 5`, feedURL))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst five items by archive (transaction) time:")
	fmt.Println(res.Doc().Pretty())

	// Document time lives in the content: items published before Jan 5,
	// regardless of when they were archived — served by the document-time
	// index.
	cur, _, err := db.Current(id)
	if err != nil {
		log.Fatal(err)
	}
	entries, err := db.DocTimeRange(txmldb.Interval{
		Start: txmldb.Date(2001, 1, 1), End: txmldb.Date(2001, 1, 5),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("items whose *document* time is before 05/01/2001 (via the doc-time index):")
	for _, e := range entries {
		if item := cur.FindXID(e.EID.X); item != nil {
			fmt.Printf("  published %s: %s\n", e.At, item.SelectPath("headline")[0].Text())
		}
	}

	// Headlines that were corrected after publication: ElementHistory
	// returns the element's state in every document version it existed in
	// (Section 7.3.5); a correction shows up as more than one distinct
	// text across that history.
	fmt.Println("\ncorrected headlines (distinct states in the element history):")
	for _, item := range cur.ChildElements("item") {
		h := item.SelectPath("headline")
		if len(h) == 0 {
			continue
		}
		eh, err := db.ElementHistory(txmldb.EID{Doc: id, X: h[0].XID}, txmldb.Always)
		if err != nil {
			log.Fatal(err)
		}
		distinct := map[string]bool{}
		for _, v := range eh {
			distinct[v.Root.Text()] = true
		}
		if len(distinct) > 1 {
			fmt.Printf("  %q was corrected; originally %q\n",
				h[0].Text(), eh[len(eh)-1].Root.Text())
		}
	}
}
