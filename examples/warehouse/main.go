// Command warehouse simulates the XML data-warehouse scenario of
// Section 3.1 of the paper: a synthetic "web" of evolving restaurant
// guides, a crawler that fetches them on its own schedule, and temporal
// change queries over the crawled copies. It shows the consequences the
// paper describes — version timestamps are retrieval times, fast-changing
// sources lose versions between visits — and then runs change-oriented
// queries against the warehouse.
package main

import (
	"fmt"
	"log"

	"txmldb"
)

const day = txmldb.Time(24 * 3600 * 1000)

func main() {
	// A synthetic web: 6 documents, each changing daily for 30 days.
	sources := txmldb.GenerateSources(txmldb.WorkloadConfig{
		Seed: 42, Docs: 6, Versions: 30, InitialElems: 8, OpsPerVersion: 3,
		Start: txmldb.Date(2001, 1, 1), Step: day,
	})

	for _, interval := range []txmldb.Time{day / 2, 2 * day, 5 * day} {
		db := txmldb.Open(txmldb.Config{
			Clock: func() txmldb.Time { return txmldb.Date(2001, 3, 1) },
		})
		crawler := &txmldb.Crawler{Interval: interval, Jitter: interval / 4, Seed: 7}
		window := txmldb.Interval{Start: txmldb.Date(2001, 1, 1), End: txmldb.Date(2001, 2, 1)}
		stats, err := crawler.Run(db, sources, window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("crawl every %4.1f days: %3d fetches, %3d versions captured, %3d source changes missed, max staleness %5.1f days\n",
			float64(interval)/float64(day), stats.Fetches, stats.NewVersions,
			stats.MissedVersions, float64(stats.MaxStaleness)/float64(day))

		if interval == 2*day {
			changeQueries(db, sources[0].URL)
		}
	}
}

// changeQueries runs warehouse-style temporal queries over the crawl.
func changeQueries(db *txmldb.DB, url string) {
	fmt.Println("\n--- change queries against the 2-day crawl of", url)

	// How many entries did the document have over time?
	res, err := db.Query(fmt.Sprintf(
		`SELECT COUNT(R) FROM doc(%q)[15/01/2001]/restaurant R`, url))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entries in the copy valid on 15/01/2001: %v\n", res.Rows[0][0])

	// Entries added to the copy during January (CreTime predicate).
	res, err = db.Query(fmt.Sprintf(`SELECT R/name
		FROM doc(%q)[30/01/2001]/restaurant R
		WHERE CREATE TIME(R) >= 10/01/2001`, url))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entries first crawled after 10/01/2001: %d\n", len(res.Rows))

	// The full history of one document's size.
	id, _ := db.LookupDoc(url)
	hist, err := db.DocHistory(id, txmldb.Always)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured versions of %s (newest first):\n", url)
	for _, h := range hist {
		fmt.Printf("  v%-2d crawled %s: %2d entries\n", h.Info.Ver, h.Info.Stamp,
			len(h.Root.ChildElements("restaurant")))
	}

	// Diff between the two most recent captured versions, as an edit
	// script (itself an XML document — queries stay closed).
	if len(hist) >= 2 {
		delta, err := db.Diff(hist[1].TEID(id), hist[0].TEID(id))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("edit script between v%d and v%d has %d operations\n\n",
			hist[1].Info.Ver, hist[0].Info.Ver, len(delta.ChildElements("")))
	}
}
