package txmldb_test

import (
	"strings"
	"testing"
	"time"

	"txmldb"
)

// TestPublicAPIQuickstart exercises the library exactly the way the README
// quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	db := txmldb.Open(txmldb.Config{
		Clock: func() txmldb.Time { return txmldb.Date(2001, time.February, 10) },
	})
	id, err := db.PutXML("http://guide.com/restaurants.xml",
		strings.NewReader(`<guide><restaurant><name>Napoli</name><price>15</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>15</price></restaurant>
		        <restaurant><name>Akropolis</name><price>13</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 15)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(
		`<guide><restaurant><name>Napoli</name><price>18</price></restaurant></guide>`),
		txmldb.Date(2001, time.January, 31)); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("snapshot rows = %d", len(res.Rows))
	}
	out := res.Doc().Pretty()
	if !strings.Contains(out, "Akropolis") {
		t.Fatalf("result document missing Akropolis:\n%s", out)
	}

	// Operator-level API.
	pat := &txmldb.Pattern{Name: "restaurant", Rel: txmldb.Child, Project: true}
	teids, err := db.TPatternScan(pat, txmldb.Date(2001, time.January, 26))
	if err != nil {
		t.Fatal(err)
	}
	if len(teids) != 2 {
		t.Fatalf("TPatternScan = %d TEIDs", len(teids))
	}
	node, err := db.Reconstruct(teids[0])
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "restaurant" {
		t.Fatalf("reconstructed %q", node.Name)
	}

	hist, err := db.DocHistory(id, txmldb.Always)
	if err != nil || len(hist) != 3 {
		t.Fatalf("history = %d, %v", len(hist), err)
	}

	// Similarity helpers exposed at the root.
	a, _ := txmldb.ParseXML(`<r><name>Napoli</name></r>`)
	b, _ := txmldb.ParseXML(`<r><name>Napoli</name></r>`)
	if !txmldb.Similar(a, b, 0.9) || txmldb.SimilarityScore(a, b) != 1 {
		t.Fatal("similarity helpers broken")
	}
	if !txmldb.DeepEqual(a, b) || !txmldb.ShallowEqual(a, b) {
		t.Fatal("equality helpers broken")
	}
}

func TestParseQueryExposed(t *testing.T) {
	q, err := txmldb.ParseQuery(`SELECT TIME(R) FROM doc("u")[EVERY]/r R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 || q.From[0].Var != "R" {
		t.Fatalf("parsed query = %+v", q)
	}
	if _, err := txmldb.ParseQuery(`not a query`); err == nil {
		t.Fatal("bad query must fail")
	}
}

func TestIndexAlternativesExposed(t *testing.T) {
	for _, kind := range []txmldb.IndexKind{txmldb.IndexVersions, txmldb.IndexDeltas, txmldb.IndexBoth} {
		db := txmldb.Open(txmldb.Config{Index: kind,
			Clock: func() txmldb.Time { return txmldb.Date(2001, time.February, 10) }})
		if _, err := db.PutXML("d", strings.NewReader(`<a><b>x</b></a>`), txmldb.Date(2001, time.January, 1)); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		res, err := db.Query(`SELECT COUNT(R) FROM doc("d")/b R`)
		if err != nil || res.Rows[0][0].(int64) != 1 {
			t.Fatalf("%v: %v %v", kind, res, err)
		}
	}
}
