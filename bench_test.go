// Benchmarks backing EXPERIMENTS.md: one benchmark (family) per
// reproduction experiment. The paper has no empirical tables — each
// benchmark quantifies one analytical claim (C1–C9) plus F1, the paper's
// own example queries. cmd/txbench prints the same measurements as tables.
package txmldb_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/experiments"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

var day = experiments.Day

func timeAtVersion(v int) model.Time {
	return experiments.Start + model.Time(int64(v-1)*int64(day))
}

// --- F1: the paper's example queries on the Figure 1 data ---

func BenchmarkF1Q1Snapshot(b *testing.B) {
	db, _, err := experiments.Figure1DB(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const q = `SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1Q2Count(b *testing.B) {
	db, _, err := experiments.Figure1DB(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const q = `SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1Q3History(b *testing.B) {
	db, _, err := experiments.Figure1DB(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	const q = `SELECT TIME(R), R/price FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R WHERE R/name="Napoli"`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C1: native vs stratum snapshot scans ---

func BenchmarkC1Snapshot(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 8, Elems: 12, Versions: 16, Ops: 3, Seed: 1}
	at := timeAtVersion(8)
	pat := experiments.RestaurantPattern()

	b.Run("native", func(b *testing.B) {
		db, _, err := experiments.NativeDB(c, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(db.Store().Pages().BytesStored()), "storage_bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.ScanT(pat, at); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stratum", func(b *testing.B) {
		db, _, err := experiments.StratumDB(c, pagestore.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(db.Pages().BytesStored()), "storage_bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.SnapshotScan(pat, at); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C2: aggregate vs retrieval on old snapshots ---

func BenchmarkC2OldSnapshot(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 4, Elems: 15, Versions: 32, Ops: 3, Seed: 2}
	db, _, err := experiments.NativeDB(c, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	url := "http://guide000.example.com/restaurants.xml"
	date := timeAtVersion(2).Std().Format("02/01/2006")
	queries := map[string]string{
		"count":  fmt.Sprintf(`SELECT SUM(R) FROM doc(%q)[%s]/restaurant R`, url, date),
		"select": fmt.Sprintf(`SELECT R FROM doc(%q)[%s]/restaurant R`, url, date),
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			var recon int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				recon = res.Metrics.Reconstructions
			}
			b.ReportMetric(float64(recon), "reconstructions/op")
		})
	}
}

// --- C3: reconstruction vs age and snapshot interval ---

func BenchmarkC3Reconstruct(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 20, Versions: 128, Ops: 2, Seed: 3}
	for _, every := range []int{0, 32, 8} {
		db, ids, err := experiments.NativeDB(c, core.Config{Store: store.Config{SnapshotEvery: every}})
		if err != nil {
			b.Fatal(err)
		}
		for _, target := range []int{127, 64, 1} {
			name := fmt.Sprintf("snap=%d/version=%d", every, target)
			b.Run(name, func(b *testing.B) {
				db.Store().Pages().ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.ReconstructVersion(ids[0], model.VersionNo(target)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := db.Store().Pages().Stats()
				b.ReportMetric(float64(st.ExtentRead)/float64(b.N), "extent_reads/op")
			})
		}
	}
}

// BenchmarkC3CachedReconstruct is the cached ablation of C3: the same
// corpus, reconstructing the version delta-age d behind current, with the
// version cache off, cold (purged before every op) and warm. Warm hits
// skip delta replay entirely, so the warm/off ratio grows with d.
func BenchmarkC3CachedReconstruct(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 20, Versions: 128, Ops: 2, Seed: 3}
	for _, age := range []int{1, 16, 64} {
		target := model.VersionNo(c.Versions - age)
		for _, mode := range []string{"off", "cold", "warm"} {
			cfg := core.Config{}
			if mode != "off" {
				cfg.Cache = vcache.Config{MaxBytes: 64 << 20}
			}
			db, ids, err := experiments.NativeDB(c, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("age=%d/cache=%s", age, mode), func(b *testing.B) {
				if mode == "warm" {
					if _, err := db.ReconstructVersion(ids[0], target); err != nil {
						b.Fatal(err)
					}
				}
				db.Store().Pages().ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "cold" {
						db.PurgeCache()
					}
					if _, err := db.ReconstructVersion(ids[0], target); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				st := db.Store().Pages().Stats()
				b.ReportMetric(float64(st.ExtentRead)/float64(b.N), "extent_reads/op")
			})
		}
	}
}

// --- C4: CreTime strategies ---

func BenchmarkC4CreTime(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 10, Versions: 64, Ops: 2, Seed: 4}
	db, ids, err := experiments.NativeDB(c, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	doc := ids[0]
	var eid model.EID
	for v := 4; v < 16 && eid.X == 0; v++ {
		for _, cand := range db.TimeIndex().CreatedIn(doc, model.Interval{Start: timeAtVersion(v), End: timeAtVersion(v) + 1}) {
			if del, _ := db.TimeIndex().DelTime(cand); del == model.Forever {
				eid = cand
				break
			}
		}
	}
	if eid.X == 0 {
		b.Fatal("no early element found")
	}
	cre, _ := db.CreTime(eid)
	teid := model.TEID{E: eid, T: cre + day/2}

	b.Run("traverse-from-teid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Store().CreTimeTraverse(teid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traverse-from-current", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Store().CreTimeTraverseFromCurrent(eid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.CreTime(eid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C5: index maintenance alternatives ---

func BenchmarkC5IndexLoad(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 4, Elems: 15, Versions: 12, Ops: 3, Seed: 5}
	for _, kind := range []core.IndexKind{core.IndexVersions, core.IndexDeltas, core.IndexBoth} {
		b.Run(kind.String(), func(b *testing.B) {
			var postings int
			for i := 0; i < b.N; i++ {
				db, _, err := experiments.NativeDB(c, core.Config{Index: kind})
				if err != nil {
					b.Fatal(err)
				}
				postings = db.FTI().Stats().Postings
			}
			b.ReportMetric(float64(postings), "postings")
		})
	}
}

func BenchmarkC5SnapshotScan(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 8, Elems: 15, Versions: 24, Ops: 3, Seed: 5}
	pat := experiments.RestaurantPattern()
	at := timeAtVersion(12)
	for _, kind := range []core.IndexKind{core.IndexVersions, core.IndexDeltas, core.IndexBoth} {
		db, _, err := experiments.NativeDB(c, core.Config{Index: kind})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.ScanT(pat, at); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C6: delta placement ---

func BenchmarkC6DocHistory(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 16, Elems: 10, Versions: 32, Ops: 2, Seed: 6}
	for _, placement := range []pagestore.Placement{pagestore.Unclustered, pagestore.Clustered} {
		db, ids, err := experiments.InterleavedNativeDB(c, core.Config{
			Store: store.Config{Pages: pagestore.Config{Placement: placement, NearDistance: 16}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(placement.String(), func(b *testing.B) {
			db.Store().Pages().ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.DocHistory(ids[3], model.Always); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Store().Pages().Stats()
			b.ReportMetric(float64(st.Seeks)/float64(b.N), "seeks/op")
			b.ReportMetric(st.CostMs()/float64(b.N), "sim_disk_ms/op")
		})
	}
}

// --- C7: TPatternScanAll scaling ---

func BenchmarkC7ScanAll(b *testing.B) {
	for _, versions := range []int{8, 32, 128} {
		c := experiments.CorpusConfig{Docs: 4, Elems: 12, Versions: versions, Ops: 3, Seed: 7}
		db, _, err := experiments.NativeDB(c, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		pat := experiments.RestaurantPattern()
		b.Run(fmt.Sprintf("versions=%d/all", versions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.ScanAll(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("versions=%d/snapshot", versions), func(b *testing.B) {
			at := timeAtVersion(versions / 2)
			for i := 0; i < b.N; i++ {
				if _, err := db.ScanT(pat, at); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C8: TS navigation operators ---

func BenchmarkC8TSOperators(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 10, Versions: 256, Ops: 1, Seed: 8}
	db, ids, err := experiments.NativeDB(c, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	info, err := db.Info(ids[0])
	if err != nil {
		b.Fatal(err)
	}
	teid := model.TEID{E: model.EID{Doc: ids[0], X: info.RootXID}, T: timeAtVersion(128)}
	b.Run("previousTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.PreviousTS(teid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nextTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.NextTS(teid); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("currentTS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.CurrentTS(teid.E); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- C9: element vs document history ---

func BenchmarkC9History(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 12, Versions: 64, Ops: 2, Seed: 9}
	db, ids, err := experiments.NativeDB(c, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	cur, _, err := db.Current(ids[0])
	if err != nil {
		b.Fatal(err)
	}
	eid := model.EID{Doc: ids[0], X: cur.ChildElements("restaurant")[0].XID}
	b.Run("document", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.DocHistory(ids[0], model.Always); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("element", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.ElementHistory(eid, model.Always); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- P1: the parallel execution tier (shared worker pool) ---

// BenchmarkC1ParallelScan runs the C1-style scan followed by batch
// materialization of every matched element version — the pipeline the
// worker pool fans out per document — on the 64-document P1 corpus with
// simulated device latency, across worker counts. workers=1 is the
// sequential baseline; the CI gate expects >= 2.5x at 4 workers because
// the device waits are paid outside the pagestore mutex and overlap.
func BenchmarkC1ParallelScan(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			db, err := experiments.ParallelDB(w)
			if err != nil {
				b.Fatal(err)
			}
			pat := experiments.RestaurantPattern()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				teids, err := db.TPatternScanAll(pat)
				if err != nil {
					b.Fatal(err)
				}
				if len(teids) == 0 {
					b.Fatal("scan matched nothing")
				}
				if _, err := db.ReconstructBatch(context.Background(), teids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkS3ShardedScan is the benchmark behind experiment S3: the same
// scan→materialize pipeline as BenchmarkC1ParallelScan, but scaled out
// across document-partitioned shards (per-shard engines sequential, the
// router's scatter-gather pool as wide as the shard count) instead of up
// across one engine's workers.
func BenchmarkS3ShardedScan(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			r, err := experiments.ShardedDB(n)
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pat := experiments.RestaurantPattern()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				teids, err := r.TPatternScanAll(pat)
				if err != nil {
					b.Fatal(err)
				}
				if len(teids) == 0 {
					b.Fatal("scan matched nothing")
				}
				if _, err := r.ReconstructBatch(context.Background(), teids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkP1DocHistory is the chunked-history counterpart: one document
// with a long snapshot-interspersed history, walked whole, per worker
// count.
func BenchmarkP1DocHistory(b *testing.B) {
	c := experiments.CorpusConfig{Docs: 1, Elems: 12, Versions: 64, Ops: 2, Seed: 12}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			db, ids, err := experiments.NativeDB(c, core.Config{
				Workers: w,
				Store: store.Config{
					SnapshotEvery: 8,
					Pages:         experiments.ParallelPages,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.DocHistory(ids[0], model.Always); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkW2MixedThroughput is the benchmark behind experiment W2: a
// mixed workload on a durable engine with a WAL group-commit window —
// eight concurrent writers each commit one version of their own document
// while a reader pins the current epoch and walks a raced document's
// history. One op is one full wave: eight commits amortized into the
// batch window's shared fsyncs plus one snapshot-isolated read.
func BenchmarkW2MixedThroughput(b *testing.B) {
	const writers = 8
	db, err := core.OpenDurable(core.Config{
		Store: store.Config{Pages: pagestore.Config{GroupWindow: experiments.W2Window}},
	}, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tree := func(w, ver int) *xmltree.Node {
		return xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", fmt.Sprintf("W2_%d_%d", w, ver)),
			xmltree.ElemText("price", fmt.Sprint(5+(w*31+ver*7)%40))))
	}
	ids := make([]model.DocID, writers)
	for w := range ids {
		if ids[w], err = db.Put(fmt.Sprintf("w2-bench-%d.xml", w), tree(w, 1), timeAtVersion(1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ver := i + 2
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, _, errs[w] = db.Update(ids[w], tree(w, ver), timeAtVersion(ver))
			}(w)
		}
		ctx := store.WithEpoch(context.Background(), db.Epoch())
		if _, err := db.DocHistoryContext(ctx, ids[i%writers], model.Always); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
