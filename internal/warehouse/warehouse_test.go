package warehouse

import (
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

const day = model.Time(24 * 3600 * 1000)

func sources() []*Source {
	return GenerateSources(tdocgen.Config{
		Seed: 3, Docs: 4, Versions: 10, OpsPerVersion: 2,
		Start: 0, Step: day,
	})
}

func TestSourceAt(t *testing.T) {
	src := sources()[0]
	if src.At(-1) != nil {
		t.Fatal("source should not exist before first version")
	}
	if got := src.At(0); !xmltree.Equal(got, src.Versions[0].Tree) {
		t.Fatal("At(0) should be version 1")
	}
	if got := src.At(day + 1); !xmltree.Equal(got, src.Versions[1].Tree) {
		t.Fatal("At(day+1) should be version 2")
	}
	if got := src.ChangesIn(model.Interval{Start: 0, End: 3 * day}); got != 3 {
		t.Fatalf("ChangesIn = %d, want 3", got)
	}
}

func TestFrequentCrawlCapturesEverything(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return 100 * day }})
	c := &Crawler{Interval: day / 4, Seed: 1}
	window := model.Interval{Start: 0, End: 10 * day}
	stats, err := c.Run(db, sources(), window)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissedVersions != 0 {
		t.Fatalf("crawling 4x faster than changes missed %d versions", stats.MissedVersions)
	}
	if stats.NewVersions != stats.SourceChanges {
		t.Fatalf("captured %d of %d changes", stats.NewVersions, stats.SourceChanges)
	}
	// Staleness bounded by the crawl interval + jitter.
	if stats.MaxStaleness >= day/2 {
		t.Fatalf("staleness %d too large for fast crawl", stats.MaxStaleness)
	}
}

func TestSlowCrawlMissesVersions(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return 100 * day }})
	c := &Crawler{Interval: 3 * day, Seed: 1}
	stats, err := c.Run(db, sources(), model.Interval{Start: 0, End: 10 * day})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissedVersions == 0 {
		t.Fatal("crawling 3x slower than changes should miss versions (Section 3.1)")
	}
	if stats.NewVersions >= stats.SourceChanges {
		t.Fatalf("captured %d >= %d changes", stats.NewVersions, stats.SourceChanges)
	}
}

func TestCrawlTimestampsAreRetrievalTimes(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return 100 * day }})
	c := &Crawler{Interval: day, Jitter: day / 2, Seed: 7}
	srcs := sources()
	if _, err := c.Run(db, srcs, model.Interval{Start: 0, End: 10 * day}); err != nil {
		t.Fatal(err)
	}
	id, ok := db.LookupDoc(srcs[0].URL)
	if !ok {
		t.Fatal("source not stored")
	}
	versions, err := db.Versions(id)
	if err != nil {
		t.Fatal(err)
	}
	// With jitter, stored stamps are retrieval times: they must not all
	// coincide with true change times (multiples of a day).
	offGrid := false
	for _, v := range versions {
		if int64(v.Stamp)%int64(day) != 0 {
			offGrid = true
		}
	}
	if !offGrid {
		t.Fatal("all stored stamps on the change grid; retrieval timestamps expected")
	}
}

func TestCrawlerErrors(t *testing.T) {
	db := core.Open(core.Config{})
	c := &Crawler{Interval: 0}
	if _, err := c.Run(db, nil, model.Interval{Start: 0, End: 1}); err == nil {
		t.Fatal("zero interval must fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Stats {
		db := core.Open(core.Config{Clock: func() model.Time { return 100 * day }})
		c := &Crawler{Interval: day, Jitter: day / 3, Seed: 11}
		st, err := c.Run(db, sources(), model.Interval{Start: 0, End: 8 * day})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if run() != run() {
		t.Fatal("equal seeds must give equal crawl stats")
	}
}
