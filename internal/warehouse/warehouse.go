// Package warehouse simulates the XML data-warehouse setting of
// Section 3.1 of the paper: documents live on the Web and evolve on their
// own schedule; the warehouse only sees the states its crawler happens to
// fetch. Consequences the paper lists — and this simulation reproduces —
// are that version timestamps are retrieval times rather than change
// times, that some source versions are never captured, and that the
// warehouse's view across documents is temporally inconsistent.
package warehouse

import (
	"fmt"
	"math/rand"
	"sort"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

// Source is one simulated web document with its true change history.
type Source struct {
	URL      string
	Versions []tdocgen.Version // ascending by At
}

// At returns the source's content at time t, nil before the first version.
func (s *Source) At(t model.Time) *xmltree.Node {
	i := sort.Search(len(s.Versions), func(i int) bool { return s.Versions[i].At > t }) - 1
	if i < 0 {
		return nil
	}
	return s.Versions[i].Tree
}

// ChangesIn counts true source changes in [from, to).
func (s *Source) ChangesIn(iv model.Interval) int {
	n := 0
	for _, v := range s.Versions {
		if iv.Contains(v.At) {
			n++
		}
	}
	return n
}

// Store is where crawled copies land. *core.DB satisfies it directly.
type Store interface {
	Put(url string, tree *xmltree.Node, t model.Time) (model.DocID, error)
	Update(id model.DocID, tree *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error)
	LookupDoc(url string) (model.DocID, bool)
}

// Crawler visits sources at a fixed interval with jitter and stores
// changed copies with the *retrieval* timestamp.
type Crawler struct {
	// Interval is the nominal time between visits to one source.
	Interval model.Time
	// Jitter is the maximum random delay added to each visit.
	Jitter model.Time
	// Seed drives the jitter.
	Seed int64
}

// Stats describes one crawl run.
type Stats struct {
	// Fetches is the number of source visits.
	Fetches int
	// NewVersions is how many fetches stored a new copy.
	NewVersions int
	// SourceChanges is how many times the sources really changed in the
	// crawled window.
	SourceChanges int
	// MissedVersions = SourceChanges - NewVersions: source states that
	// were overwritten before the crawler saw them (Section 3.1: "we do
	// not necessarily have all the versions of a particular document").
	MissedVersions int
	// MaxStaleness is the largest gap between a source change and the
	// fetch that finally captured it.
	MaxStaleness model.Time
}

// Run crawls the sources over [from, to) and returns the run's statistics.
func (c *Crawler) Run(st Store, sources []*Source, iv model.Interval) (Stats, error) {
	if c.Interval <= 0 {
		return Stats{}, fmt.Errorf("warehouse: crawl interval must be positive")
	}
	r := rand.New(rand.NewSource(c.Seed))
	var stats Stats
	lastHash := make(map[string]uint64)
	lastChange := make(map[string]model.Time)
	for _, src := range sources {
		stats.SourceChanges += src.ChangesIn(iv)
	}
	for _, src := range sources {
		for visit := iv.Start; visit < iv.End; visit += c.Interval {
			at := visit
			if c.Jitter > 0 {
				at += model.Time(r.Int63n(int64(c.Jitter)))
			}
			if at >= iv.End {
				break
			}
			content := src.At(at)
			if content == nil {
				continue // source does not exist yet
			}
			stats.Fetches++
			h := content.Hash()
			if lastHash[src.URL] == h {
				continue // unchanged since last visit
			}
			lastHash[src.URL] = h
			stats.NewVersions++
			// Staleness: how long the captured state had been live.
			for _, v := range src.Versions {
				if v.At <= at {
					lastChange[src.URL] = v.At
				}
			}
			if lag := at - lastChange[src.URL]; lag > stats.MaxStaleness {
				stats.MaxStaleness = lag
			}
			copyTree := content.Clone()
			copyTree.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
			if id, ok := st.LookupDoc(src.URL); ok {
				if _, _, err := st.Update(id, copyTree, at); err != nil {
					return stats, fmt.Errorf("warehouse: update %s: %w", src.URL, err)
				}
			} else {
				if _, err := st.Put(src.URL, copyTree, at); err != nil {
					return stats, fmt.Errorf("warehouse: put %s: %w", src.URL, err)
				}
			}
		}
	}
	stats.MissedVersions = stats.SourceChanges - stats.NewVersions
	if stats.MissedVersions < 0 {
		stats.MissedVersions = 0
	}
	return stats, nil
}

// GenerateSources builds a synthetic web from a tdocgen configuration.
func GenerateSources(cfg tdocgen.Config) []*Source {
	g := tdocgen.New(cfg)
	docs := cfg.Docs
	if docs == 0 {
		docs = 1
	}
	out := make([]*Source, docs)
	for i := 0; i < docs; i++ {
		out[i] = &Source{URL: g.URL(i), Versions: g.History(i)}
	}
	return out
}
