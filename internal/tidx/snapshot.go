package tidx

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"txmldb/internal/btree"
	"txmldb/internal/model"
)

// tidxImage is the serialized form of an Index for checkpoint images: the
// tree flattened into parallel, EID-ordered slices.
type tidxImage struct {
	EIDs  []model.EID
	Times []Times
}

// SnapshotState serializes the index for a checkpoint image.
func (ix *Index) SnapshotState() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	img := tidxImage{
		EIDs:  make([]model.EID, 0, ix.tree.Len()),
		Times: make([]Times, 0, ix.tree.Len()),
	}
	ix.tree.Ascend(func(eid model.EID, t Times) bool {
		img.EIDs = append(img.EIDs, eid)
		img.Times = append(img.Times, t)
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState replaces the index contents with a snapshot taken by
// SnapshotState.
func (ix *Index) RestoreState(data []byte) error {
	var img tidxImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("tidx: restore: %w", err)
	}
	if len(img.EIDs) != len(img.Times) {
		return fmt.Errorf("tidx: restore: %d EIDs vs %d times", len(img.EIDs), len(img.Times))
	}
	tree := btree.New[model.EID, Times](model.EID.Less)
	for i, eid := range img.EIDs {
		tree.Set(eid, img.Times[i])
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.tree = tree
	return nil
}
