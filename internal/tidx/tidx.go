// Package tidx implements the auxiliary create/delete-time index of
// Section 7.3.6 of the paper: "use an additional index that indexes EID and
// create/delete timestamps". It turns CreTime and DelTime from delta-chain
// traversals into ordered-index lookups.
//
// As the paper notes, inserts are not globally append-only (new elements
// appear inside existing documents), but updates arrive batched per
// document version, so the per-insert amortized cost stays low; the index
// is a B+ tree keyed by EID.
package tidx

import (
	"sync"

	"txmldb/internal/btree"
	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// Times are the creation and deletion instants of one element. Deleted is
// Forever while the element exists.
type Times struct {
	Created model.Time
	Deleted model.Time
}

// Interval returns the element's lifetime [Created, Deleted).
func (t Times) Interval() model.Interval {
	return model.Interval{Start: t.Created, End: t.Deleted}
}

// Index maps EIDs to their creation and deletion times. It is safe for
// concurrent use.
type Index struct {
	mu   sync.RWMutex
	tree *btree.Tree[model.EID, Times]
}

// New returns an empty index.
func New() *Index {
	return &Index{tree: btree.New[model.EID, Times](model.EID.Less)}
}

// Len returns the number of indexed elements.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// AddVersion maintains the index after a document version was stored:
// script is nil for the initial version (every node of newRoot is created
// at t), otherwise the completed delta. Inserted subtrees open entries,
// deleted subtrees close them.
func (ix *Index) AddVersion(doc model.DocID, newRoot *xmltree.Node, script *diff.Script, t model.Time) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if script == nil {
		newRoot.Walk(func(n *xmltree.Node) bool {
			ix.tree.Set(model.EID{Doc: doc, X: n.XID}, Times{Created: t, Deleted: model.Forever})
			return true
		})
		return
	}
	for _, op := range script.Ops {
		switch op.Kind {
		case diff.OpInsert:
			op.Node.Walk(func(n *xmltree.Node) bool {
				ix.tree.Set(model.EID{Doc: doc, X: n.XID}, Times{Created: t, Deleted: model.Forever})
				return true
			})
		case diff.OpDelete:
			if op.Node == nil {
				break
			}
			op.Node.Walk(func(n *xmltree.Node) bool {
				eid := model.EID{Doc: doc, X: n.XID}
				if times, ok := ix.tree.Get(eid); ok {
					times.Deleted = t
					ix.tree.Set(eid, times)
				}
				return true
			})
		}
	}
}

// DeleteDoc closes every live element of the document at time t.
func (ix *Index) DeleteDoc(doc model.DocID, t model.Time) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var toClose []model.EID
	from := model.EID{Doc: doc, X: 0}
	to := model.EID{Doc: doc + 1, X: 0}
	ix.tree.AscendRange(from, to, func(eid model.EID, times Times) bool {
		if times.Deleted == model.Forever {
			toClose = append(toClose, eid)
		}
		return true
	})
	for _, eid := range toClose {
		times, _ := ix.tree.Get(eid)
		times.Deleted = t
		ix.tree.Set(eid, times)
	}
}

// Lookup returns the element's lifetime.
func (ix *Index) Lookup(eid model.EID) (Times, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Get(eid)
}

// CreTime returns the element's creation time (the indexed strategy of the
// paper's CreTime operator).
func (ix *Index) CreTime(eid model.EID) (model.Time, bool) {
	t, ok := ix.Lookup(eid)
	return t.Created, ok
}

// DelTime returns the element's deletion time, Forever if it still exists.
func (ix *Index) DelTime(eid model.EID) (model.Time, bool) {
	t, ok := ix.Lookup(eid)
	return t.Deleted, ok
}

// CreatedIn returns the elements of the document created in [from, to),
// supporting predicates like CREATE_TIME(R) >= 11/01/2001.
func (ix *Index) CreatedIn(doc model.DocID, iv model.Interval) []model.EID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []model.EID
	from := model.EID{Doc: doc, X: 0}
	to := model.EID{Doc: doc + 1, X: 0}
	ix.tree.AscendRange(from, to, func(eid model.EID, times Times) bool {
		if iv.Contains(times.Created) {
			out = append(out, eid)
		}
		return true
	})
	return out
}

// AliveAt returns the document's elements whose lifetime contains t.
func (ix *Index) AliveAt(doc model.DocID, t model.Time) []model.EID {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []model.EID
	from := model.EID{Doc: doc, X: 0}
	to := model.EID{Doc: doc + 1, X: 0}
	ix.tree.AscendRange(from, to, func(eid model.EID, times Times) bool {
		if times.Interval().Contains(t) {
			out = append(out, eid)
		}
		return true
	})
	return out
}
