package tidx

import (
	"testing"

	"txmldb/internal/model"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s, ix, id := load(t)
	blob, err := ix.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), ix.Len())
	}
	for _, name := range []string{"Napoli", "Akropolis"} {
		ver := model.VersionNo(1)
		if name == "Akropolis" {
			ver = 2
		}
		eid := restaurantEID(t, s, id, ver, name)
		gc, okc := restored.CreTime(eid)
		wc, wokc := ix.CreTime(eid)
		if gc != wc || okc != wokc {
			t.Errorf("CreTime(%s) = %s,%v want %s,%v", name, gc, okc, wc, wokc)
		}
		gd, okd := restored.DelTime(eid)
		wd, wokd := ix.DelTime(eid)
		if gd != wd || okd != wokd {
			t.Errorf("DelTime(%s) = %s,%v want %s,%v", name, gd, okd, wd, wokd)
		}
	}
	if err := restored.RestoreState([]byte("junk")); err == nil {
		t.Error("garbage restore should fail")
	}
}
