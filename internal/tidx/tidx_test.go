package tidx

import (
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

var (
	jan1  = model.Date(2001, 1, 1)
	jan15 = model.Date(2001, 1, 15)
	jan31 = model.Date(2001, 1, 31)
	feb10 = model.Date(2001, 2, 10)
)

func guide(entries ...[2]string) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for _, e := range entries {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", e[0]),
			xmltree.ElemText("price", e[1])))
	}
	return g
}

// load drives the Figure 1 history through a store and index.
func load(t *testing.T) (*store.Store, *Index, model.DocID) {
	t.Helper()
	s := store.New(store.Config{})
	ix := New()
	id, err := s.Put("guide", guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	for _, step := range []struct {
		t    model.Time
		tree *xmltree.Node
	}{
		{jan15, guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"})},
		{jan31, guide([2]string{"Napoli", "18"})},
	} {
		_, script, err := s.Update(id, step.tree, step.t)
		if err != nil {
			t.Fatal(err)
		}
		cur, _, _ := s.Current(id)
		ix.AddVersion(id, cur, script, step.t)
	}
	return s, ix, id
}

func restaurantEID(t *testing.T, s *store.Store, id model.DocID, ver model.VersionNo, name string) model.EID {
	t.Helper()
	vt, err := s.ReconstructVersion(id, ver)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range vt.Root.ChildElements("restaurant") {
		if r.SelectPath("name")[0].Text() == name {
			return model.EID{Doc: id, X: r.XID}
		}
	}
	t.Fatalf("restaurant %q not in version %d", name, ver)
	return model.EID{}
}

func TestCreAndDelTimes(t *testing.T) {
	s, ix, id := load(t)
	napoli := restaurantEID(t, s, id, 1, "Napoli")
	akro := restaurantEID(t, s, id, 2, "Akropolis")

	if got, ok := ix.CreTime(napoli); !ok || got != jan1 {
		t.Errorf("CreTime(Napoli) = %s, %v", got, ok)
	}
	if got, ok := ix.DelTime(napoli); !ok || got != model.Forever {
		t.Errorf("DelTime(Napoli) = %s, %v", got, ok)
	}
	if got, ok := ix.CreTime(akro); !ok || got != jan15 {
		t.Errorf("CreTime(Akropolis) = %s, %v", got, ok)
	}
	if got, ok := ix.DelTime(akro); !ok || got != jan31 {
		t.Errorf("DelTime(Akropolis) = %s, %v", got, ok)
	}
	if _, ok := ix.CreTime(model.EID{Doc: id, X: 9999}); ok {
		t.Error("unknown EID should not resolve")
	}
}

func TestIndexedMatchesTraversal(t *testing.T) {
	// The index and the delta-traversal strategy must agree — they are two
	// implementations of the same operator (Section 7.3.6).
	s, ix, id := load(t)
	for _, name := range []string{"Napoli", "Akropolis"} {
		ver := model.VersionNo(2)
		eid := restaurantEID(t, s, id, ver, name)
		vt, _ := s.ReconstructVersion(id, ver)
		teid := model.TEID{E: eid, T: vt.Info.Stamp}

		wantCre, err := s.CreTimeTraverse(teid)
		if err != nil {
			t.Fatal(err)
		}
		gotCre, _ := ix.CreTime(eid)
		if gotCre != wantCre {
			t.Errorf("%s: CreTime index %s vs traverse %s", name, gotCre, wantCre)
		}
		wantDel, err := s.DelTimeTraverse(teid)
		if err != nil {
			t.Fatal(err)
		}
		gotDel, _ := ix.DelTime(eid)
		if gotDel != wantDel {
			t.Errorf("%s: DelTime index %s vs traverse %s", name, gotDel, wantDel)
		}
	}
}

func TestDeleteDoc(t *testing.T) {
	s, ix, id := load(t)
	napoli := restaurantEID(t, s, id, 1, "Napoli")
	akro := restaurantEID(t, s, id, 2, "Akropolis")
	ix.DeleteDoc(id, feb10)
	if got, _ := ix.DelTime(napoli); got != feb10 {
		t.Errorf("live element after doc delete: %s", got)
	}
	// Already-deleted elements keep their original delete time.
	if got, _ := ix.DelTime(akro); got != jan31 {
		t.Errorf("Akropolis delete time overwritten: %s", got)
	}
}

func TestCreatedInAndAliveAt(t *testing.T) {
	s, ix, id := load(t)
	akro := restaurantEID(t, s, id, 2, "Akropolis")

	created := ix.CreatedIn(id, model.Interval{Start: jan15, End: jan31})
	found := false
	for _, eid := range created {
		if eid == akro {
			found = true
		}
		if times, _ := ix.Lookup(eid); times.Created != jan15 {
			t.Errorf("CreatedIn returned element created at %s", times.Created)
		}
	}
	if !found {
		t.Error("Akropolis missing from CreatedIn")
	}

	// At jan15 both restaurant subtrees are alive: guide + 2*(restaurant,
	// name, text, price, text) = 11 nodes.
	alive := ix.AliveAt(id, jan15)
	if len(alive) != 11 {
		t.Errorf("AliveAt(jan15) = %d nodes, want 11", len(alive))
	}
	// At feb10 only Napoli's subtree remains: 6 nodes.
	alive = ix.AliveAt(id, feb10)
	if len(alive) != 6 {
		t.Errorf("AliveAt(feb10) = %d nodes, want 6", len(alive))
	}
}

func TestMultiDocumentIsolation(t *testing.T) {
	s := store.New(store.Config{})
	ix := New()
	a, _ := s.Put("a", guide([2]string{"Napoli", "15"}), jan1)
	cur, _, _ := s.Current(a)
	ix.AddVersion(a, cur, nil, jan1)
	b, _ := s.Put("b", guide([2]string{"Akropolis", "13"}), jan15)
	cur, _, _ = s.Current(b)
	ix.AddVersion(b, cur, nil, jan15)

	ix.DeleteDoc(a, jan31)
	// Document b must be untouched.
	for _, eid := range ix.AliveAt(b, feb10) {
		if eid.Doc != b {
			t.Fatalf("foreign element in AliveAt: %v", eid)
		}
	}
	if got := len(ix.AliveAt(b, feb10)); got != 6 {
		t.Errorf("doc b alive nodes = %d, want 6", got)
	}
	if got := len(ix.AliveAt(a, feb10)); got != 0 {
		t.Errorf("doc a alive nodes after delete = %d", got)
	}
	if ix.Len() != 12 {
		t.Errorf("Len = %d, want 12", ix.Len())
	}
}
