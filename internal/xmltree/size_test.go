package xmltree

import "testing"

func TestDeepSize(t *testing.T) {
	leaf := NewText("hello")
	if got, want := leaf.DeepSize(), sizeofNode+5; got != want {
		t.Fatalf("text DeepSize = %d, want %d", got, want)
	}

	el := Elem("a", NewText("xy"))
	el.SetAttr("k", "val")
	want := sizeofNode + 1 + // <a> + name
		sizeofAttr + 1 + 3 + // k="val"
		sizeofPtr + // one child pointer
		sizeofNode + 2 // text node + value
	if got := el.DeepSize(); got != want {
		t.Fatalf("element DeepSize = %d, want %d", got, want)
	}

	// Monotone: growing the tree grows the size.
	before := el.DeepSize()
	el.AppendChild(ElemText("b", "more content"))
	if after := el.DeepSize(); after <= before {
		t.Fatalf("DeepSize not monotone: %d -> %d", before, after)
	}

	// Clones are the same size.
	if el.Clone().DeepSize() != el.DeepSize() {
		t.Fatal("clone size differs")
	}
}
