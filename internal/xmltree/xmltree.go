// Package xmltree provides the tree representation of XML documents used
// throughout the database, together with parsing, serialization, traversal
// and structural hashing.
//
// A document in the database is viewed as a forest of trees (Section 4 of
// the paper). Each node carries the persistent element identifier (XID) and
// the timestamp of the last update of the element or one of its children.
// The XID and timestamp are managed by the diff engine and the version
// store; a freshly parsed tree has XID 0 ("unassigned") everywhere.
package xmltree

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"txmldb/internal/model"
)

// Kind distinguishes element nodes from text nodes.
type Kind uint8

const (
	// Element is an XML element node; Name holds the tag.
	Element Kind = iota
	// Text is a character-data node; Value holds the text.
	Text
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of an XML tree. Element nodes have a Name, Attrs and
// Children; text nodes have a Value. The Parent pointer is maintained by all
// mutating operations in this package.
type Node struct {
	Kind     Kind
	Name     string // element name; empty for text nodes
	Value    string // character data; empty for element nodes
	Attrs    []Attr
	Children []*Node
	Parent   *Node

	// XID is the persistent element identifier (Section 3.2). It is zero
	// until the version store assigns one.
	XID model.XID

	// Stamp is the time of the last update of this element or one of its
	// children (Section 4). The version store maintains it.
	Stamp model.Time
}

// NewElement returns a parentless element node with the given tag name.
func NewElement(name string) *Node { return &Node{Kind: Element, Name: name} }

// NewText returns a parentless text node with the given character data.
func NewText(value string) *Node { return &Node{Kind: Text, Value: value} }

// Elem builds an element with the given children appended, for concise test
// and example construction.
func Elem(name string, children ...*Node) *Node {
	n := NewElement(name)
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// ElemText builds an element containing a single text child, such as
// <name>Napoli</name>.
func ElemText(name, text string) *Node { return Elem(name, NewText(text)) }

// IsElement reports whether the node is an element node.
func (n *Node) IsElement() bool { return n.Kind == Element }

// IsText reports whether the node is a text node.
func (n *Node) IsText() bool { return n.Kind == Text }

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces the named attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// RemoveAttr deletes the named attribute if present and reports whether it
// was there.
func (n *Node) RemoveAttr(name string) bool {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// AppendChild adds c as the last child of n and sets its parent.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChild inserts c at position pos among n's children (0 = first).
// A pos beyond the end appends.
func (n *Node) InsertChild(pos int, c *Node) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(n.Children) {
		pos = len(n.Children)
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[pos+1:], n.Children[pos:])
	n.Children[pos] = c
}

// RemoveChildAt removes and returns the child at position pos.
func (n *Node) RemoveChildAt(pos int) *Node {
	c := n.Children[pos]
	n.Children = append(n.Children[:pos], n.Children[pos+1:]...)
	c.Parent = nil
	return c
}

// ChildIndex returns the position of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, k := range n.Children {
		if k == c {
			return i
		}
	}
	return -1
}

// Detach removes n from its parent, if any, and returns n.
func (n *Node) Detach() *Node {
	if n.Parent != nil {
		if i := n.Parent.ChildIndex(n); i >= 0 {
			n.Parent.RemoveChildAt(i)
		}
	}
	return n
}

// Text returns the concatenation of all text-node descendants of n, in
// document order. For a text node it returns its value.
func (n *Node) Text() string {
	if n.IsText() {
		return n.Value
	}
	var b strings.Builder
	n.Walk(func(d *Node) bool {
		if d.IsText() {
			b.WriteString(d.Value)
		}
		return true
	})
	return b.String()
}

// Walk visits n and every descendant in document order. The visitor returns
// false to prune the subtree below the visited node.
func (n *Node) Walk(visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// FindXID returns the descendant-or-self node carrying the given XID, or nil.
func (n *Node) FindXID(x model.XID) *Node {
	var found *Node
	n.Walk(func(d *Node) bool {
		if found != nil {
			return false
		}
		if d.XID == x {
			found = d
			return false
		}
		return true
	})
	return found
}

// Ancestors returns the chain of ancestors of n from its parent up to the
// root, in that order.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// Root returns the topmost ancestor of n (n itself if parentless).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Depth returns the number of ancestors of n (0 for a root).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Size returns the number of nodes in the subtree rooted at n, including n.
func (n *Node) Size() int {
	total := 0
	n.Walk(func(*Node) bool { total++; return true })
	return total
}

// Elements returns all descendant-or-self element nodes with the given name;
// an empty name matches every element.
func (n *Node) Elements(name string) []*Node {
	var out []*Node
	n.Walk(func(d *Node) bool {
		if d.IsElement() && (name == "" || d.Name == name) {
			out = append(out, d)
		}
		return true
	})
	return out
}

// ChildElements returns the direct element children of n with the given
// name; an empty name matches every element child.
func (n *Node) ChildElements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.IsElement() && (name == "" || c.Name == name) {
			out = append(out, c)
		}
	}
	return out
}

// SelectPath resolves a simple slash-separated child path such as
// "restaurant/name" relative to n and returns all matching elements.
// A step of "*" matches any element.
func (n *Node) SelectPath(path string) []*Node {
	steps := strings.Split(strings.Trim(path, "/"), "/")
	current := []*Node{n}
	for _, step := range steps {
		if step == "" {
			continue
		}
		var next []*Node
		for _, c := range current {
			if step == "*" {
				next = append(next, c.ChildElements("")...)
			} else {
				next = append(next, c.ChildElements(step)...)
			}
		}
		current = next
	}
	return current
}

// Clone returns a deep copy of the subtree rooted at n. The copy keeps
// XIDs and timestamps and has a nil parent.
func (n *Node) Clone() *Node {
	cp := &Node{
		Kind:  n.Kind,
		Name:  n.Name,
		Value: n.Value,
		XID:   n.XID,
		Stamp: n.Stamp,
	}
	if len(n.Attrs) > 0 {
		cp.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, c := range n.Children {
		cp.AppendChild(c.Clone())
	}
	return cp
}

// Equal reports deep structural equality of the two subtrees: kind, name,
// value, attributes (order-insensitive) and the child sequences must all
// match. XIDs and timestamps are not compared; see IdentityEqual for the
// identity comparison.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if !attrsEqual(a.Attrs, b.Attrs) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// IdentityEqual implements the "==" comparison of the paper's Section 7.4:
// two nodes are identity-equal when they carry the same non-zero XID.
func IdentityEqual(a, b *Node) bool {
	return a != nil && b != nil && a.XID != 0 && a.XID == b.XID
}

func attrsEqual(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Hash returns a structural hash of the subtree rooted at n, covering kind,
// name, value, attributes (order-insensitive) and children order. Equal
// subtrees hash equally; it ignores XIDs and timestamps, like Equal.
func (n *Node) Hash() uint64 {
	h := fnv.New64a()
	n.hashInto(h)
	return h.Sum64()
}

func (n *Node) hashInto(h io.Writer) {
	switch n.Kind {
	case Element:
		io.WriteString(h, "\x01")
		io.WriteString(h, n.Name)
		if len(n.Attrs) > 0 {
			attrs := append([]Attr(nil), n.Attrs...)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
			for _, a := range attrs {
				io.WriteString(h, "\x02")
				io.WriteString(h, a.Name)
				io.WriteString(h, "\x03")
				io.WriteString(h, a.Value)
			}
		}
		io.WriteString(h, "\x04")
		for _, c := range n.Children {
			c.hashInto(h)
		}
		io.WriteString(h, "\x05")
	case Text:
		io.WriteString(h, "\x06")
		io.WriteString(h, n.Value)
	}
}

// Validate checks the internal consistency of the subtree: parent pointers,
// node kinds and the element/text field invariants. It returns the first
// violation found, or nil.
func (n *Node) Validate() error {
	var err error
	n.Walk(func(d *Node) bool {
		if err != nil {
			return false
		}
		switch d.Kind {
		case Element:
			if d.Name == "" {
				err = fmt.Errorf("element node with empty name (xid %d)", d.XID)
				return false
			}
			if d.Value != "" {
				err = fmt.Errorf("element node %q carries text value %q", d.Name, d.Value)
				return false
			}
		case Text:
			if d.Name != "" || len(d.Attrs) != 0 || len(d.Children) != 0 {
				err = fmt.Errorf("text node with element fields set (value %q)", d.Value)
				return false
			}
		default:
			err = fmt.Errorf("invalid node kind %d", d.Kind)
			return false
		}
		for _, c := range d.Children {
			if c.Parent != d {
				err = fmt.Errorf("child %q of %q has wrong parent pointer", c.Name, d.Name)
				return false
			}
		}
		return true
	})
	return err
}
