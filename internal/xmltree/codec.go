package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"txmldb/internal/model"
)

// xidAttr is the reserved attribute name used to persist XIDs when a tree is
// serialized for storage. It is stripped again on parse.
const xidAttr = "txmldb:xid"

// stampAttr persists element timestamps in storage serializations.
const stampAttr = "txmldb:stamp"

// textXIDAttr persists the identities of an element's text children, which
// have no attributes of their own: a space-separated list of
// childIndex:xid:stamp triples.
const textXIDAttr = "txmldb:tx"

// Parse reads one XML document from r and returns its root element.
// Character data consisting only of whitespace between elements is dropped;
// other character data becomes text nodes. Comments, processing instructions
// and directives are skipped. Attributes named txmldb:xid / txmldb:stamp are
// interpreted as persisted identity and removed from the visible attributes.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	pendingTX := make(map[*Node]string)
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				name := a.Name.Local
				if a.Name.Space != "" {
					name = a.Name.Space + ":" + a.Name.Local
				}
				switch name {
				case xidAttr:
					if v, err := strconv.ParseUint(a.Value, 10, 64); err == nil {
						n.XID = model.XID(v)
					}
				case stampAttr:
					if v, err := strconv.ParseInt(a.Value, 10, 64); err == nil {
						n.Stamp = model.Time(v)
					}
				case textXIDAttr:
					pendingTX[n] = a.Value
				case "xmlns", "xmlns:txmldb":
					// Namespace declarations introduced by serialization.
				default:
					n.Attrs = append(n.Attrs, Attr{Name: name, Value: a.Value})
				}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			closed := stack[len(stack)-1]
			if tx, ok := pendingTX[closed]; ok {
				applyTextIdentities(closed, tx)
				delete(pendingTX, closed)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if strings.TrimSpace(text) == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: character data outside root element")
			}
			parent := stack[len(stack)-1]
			// Merge adjacent character data (entity boundaries etc.).
			if nc := len(parent.Children); nc > 0 && parent.Children[nc-1].IsText() {
				parent.Children[nc-1].Value += text
			} else {
				parent.AppendChild(NewText(text))
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the data model.
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed element %q", stack[len(stack)-1].Name)
	}
	return root, nil
}

// applyTextIdentities decodes a txmldb:tx attribute ("idx:xid:stamp ...")
// and assigns the identities to the element's text children by position.
func applyTextIdentities(n *Node, tx string) {
	for _, entry := range strings.Fields(tx) {
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			continue
		}
		idx, err1 := strconv.Atoi(parts[0])
		xid, err2 := strconv.ParseUint(parts[1], 10, 64)
		stamp, err3 := strconv.ParseInt(parts[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		if idx >= 0 && idx < len(n.Children) && n.Children[idx].IsText() {
			n.Children[idx].XID = model.XID(xid)
			n.Children[idx].Stamp = model.Time(stamp)
		}
	}
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// MustParse parses s and panics on error; intended for tests and examples.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// SerializeOptions controls Serialize.
type SerializeOptions struct {
	// Indent pretty-prints with two-space indentation when true.
	Indent bool
	// Identity emits txmldb:xid and txmldb:stamp attributes so that the
	// persistent identity survives a round trip through storage.
	Identity bool
}

// Serialize writes the subtree rooted at n as XML to w.
func Serialize(w io.Writer, n *Node, opts SerializeOptions) error {
	enc := xml.NewEncoder(w)
	if opts.Indent {
		enc.Indent("", "  ")
	}
	if err := encodeNode(enc, n, opts); err != nil {
		return fmt.Errorf("xmltree: serialize: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return fmt.Errorf("xmltree: serialize: %w", err)
	}
	return nil
}

func encodeNode(enc *xml.Encoder, n *Node, opts SerializeOptions) error {
	switch n.Kind {
	case Text:
		return enc.EncodeToken(xml.CharData(n.Value))
	case Element:
		start := xml.StartElement{Name: xml.Name{Local: n.Name}}
		for _, a := range n.Attrs {
			start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: a.Name}, Value: a.Value})
		}
		if opts.Identity {
			if n.XID != 0 {
				start.Attr = append(start.Attr, xml.Attr{
					Name: xml.Name{Local: xidAttr}, Value: strconv.FormatUint(uint64(n.XID), 10),
				})
			}
			if n.Stamp != 0 {
				start.Attr = append(start.Attr, xml.Attr{
					Name: xml.Name{Local: stampAttr}, Value: strconv.FormatInt(int64(n.Stamp), 10),
				})
			}
			if tx := textIdentities(n); tx != "" {
				start.Attr = append(start.Attr, xml.Attr{
					Name: xml.Name{Local: textXIDAttr}, Value: tx,
				})
			}
		}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := encodeNode(enc, c, opts); err != nil {
				return err
			}
		}
		return enc.EncodeToken(xml.EndElement{Name: start.Name})
	default:
		return fmt.Errorf("unknown node kind %d", n.Kind)
	}
}

// textIdentities encodes the identities of n's text children as
// "idx:xid:stamp" fields, or "" when none carry an identity.
func textIdentities(n *Node) string {
	var b strings.Builder
	for i, c := range n.Children {
		if !c.IsText() || (c.XID == 0 && c.Stamp == 0) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d:%d", i, uint64(c.XID), int64(c.Stamp))
	}
	return b.String()
}

// String renders the subtree compactly (no indentation, no identity
// attributes), mainly for tests, examples and error messages.
func (n *Node) String() string {
	var b strings.Builder
	if err := Serialize(&b, n, SerializeOptions{}); err != nil {
		return fmt.Sprintf("<!serialize error: %v>", err)
	}
	return b.String()
}

// Pretty renders the subtree with indentation.
func (n *Node) Pretty() string {
	var b strings.Builder
	if err := Serialize(&b, n, SerializeOptions{Indent: true}); err != nil {
		return fmt.Sprintf("<!serialize error: %v>", err)
	}
	return b.String()
}

// Marshal renders the subtree for storage, preserving XIDs and stamps.
func Marshal(n *Node) []byte {
	var b strings.Builder
	if err := Serialize(&b, n, SerializeOptions{Identity: true}); err != nil {
		panic(err) // in-memory serialization of a valid tree cannot fail
	}
	return []byte(b.String())
}

// Unmarshal parses a storage serialization produced by Marshal.
func Unmarshal(data []byte) (*Node, error) {
	return Parse(strings.NewReader(string(data)))
}
