package xmltree

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"txmldb/internal/model"
)

const restaurantXML = `<guide>
  <restaurant><name>Napoli</name><price>15</price></restaurant>
  <restaurant><name>Akropolis</name><price>13</price></restaurant>
</guide>`

func TestParseBasic(t *testing.T) {
	root, err := ParseString(restaurantXML)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "guide" {
		t.Fatalf("root = %q, want guide", root.Name)
	}
	rs := root.ChildElements("restaurant")
	if len(rs) != 2 {
		t.Fatalf("restaurants = %d, want 2", len(rs))
	}
	names := rs[0].SelectPath("name")
	if len(names) != 1 || names[0].Text() != "Napoli" {
		t.Fatalf("first restaurant name = %v", names)
	}
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAttributes(t *testing.T) {
	root := MustParse(`<a x="1" y="two"><b z="3"/></a>`)
	if v, ok := root.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = %q, %v", v, ok)
	}
	if v, ok := root.Attr("y"); !ok || v != "two" {
		t.Errorf("attr y = %q, %v", v, ok)
	}
	b := root.ChildElements("b")[0]
	if v, ok := b.Attr("z"); !ok || v != "3" {
		t.Errorf("attr z = %q, %v", v, ok)
	}
	if _, ok := b.Attr("nope"); ok {
		t.Error("unexpected attribute found")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"<a><b></a>",
		"<a></a><b></b>",
		"just text",
		"<a></a> trailing text beyond root </x>",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestParseMergesCharData(t *testing.T) {
	root := MustParse(`<a>one &amp; two</a>`)
	if len(root.Children) != 1 || root.Children[0].Value != "one & two" {
		t.Fatalf("children = %v", root.Children)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	root := MustParse(restaurantXML)
	again, err := ParseString(root.String())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(root, again) {
		t.Fatalf("round trip mismatch:\n%s\n%s", root, again)
	}
}

func TestMarshalPreservesIdentity(t *testing.T) {
	root := MustParse(restaurantXML)
	var i model.XID
	root.Walk(func(n *Node) bool {
		i++
		n.XID = i
		n.Stamp = model.Time(1000 + int64(i))
		return true
	})
	again, err := Unmarshal(Marshal(root))
	if err != nil {
		t.Fatal(err)
	}
	var mismatch bool
	pairs := [][2]*Node{{root, again}}
	for len(pairs) > 0 {
		a, b := pairs[0][0], pairs[0][1]
		pairs = pairs[1:]
		if a.XID != b.XID || a.Stamp != b.Stamp {
			mismatch = true
			break
		}
		if len(a.Children) != len(b.Children) {
			mismatch = true
			break
		}
		for i := range a.Children {
			pairs = append(pairs, [2]*Node{a.Children[i], b.Children[i]})
		}
	}
	if mismatch {
		t.Fatal("identity not preserved through Marshal/Unmarshal")
	}
	// The identity attributes must not leak into visible attributes.
	if len(again.Attrs) != 0 {
		t.Fatalf("visible attrs after round trip: %v", again.Attrs)
	}
}

func TestInsertRemoveChild(t *testing.T) {
	root := NewElement("r")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	root.AppendChild(a)
	root.AppendChild(c)
	root.InsertChild(1, b)
	got := make([]string, 0, 3)
	for _, ch := range root.Children {
		got = append(got, ch.Name)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("children = %v", got)
	}
	removed := root.RemoveChildAt(1)
	if removed != b || removed.Parent != nil {
		t.Fatal("RemoveChildAt broken")
	}
	if root.ChildIndex(c) != 1 {
		t.Fatalf("ChildIndex(c) = %d", root.ChildIndex(c))
	}
	if b.Detach() != b {
		t.Fatal("Detach of parentless node should return the node")
	}
	a.Detach()
	if len(root.Children) != 1 || root.Children[0] != c {
		t.Fatal("Detach did not remove node from parent")
	}
}

func TestInsertChildClamps(t *testing.T) {
	root := NewElement("r")
	root.InsertChild(5, NewElement("a"))  // beyond end → append
	root.InsertChild(-3, NewElement("b")) // negative → front
	if root.Children[0].Name != "b" || root.Children[1].Name != "a" {
		t.Fatalf("clamping broken: %s", root)
	}
}

func TestAttrOps(t *testing.T) {
	n := NewElement("x")
	n.SetAttr("a", "1")
	n.SetAttr("b", "2")
	n.SetAttr("a", "3")
	if v, _ := n.Attr("a"); v != "3" {
		t.Errorf("SetAttr replace failed: %q", v)
	}
	if len(n.Attrs) != 2 {
		t.Errorf("attrs = %v", n.Attrs)
	}
	if !n.RemoveAttr("a") || n.RemoveAttr("a") {
		t.Error("RemoveAttr semantics broken")
	}
}

func TestTextConcatenation(t *testing.T) {
	root := MustParse(`<p>one <b>two</b> three</p>`)
	if got := root.Text(); got != "one two three" {
		t.Errorf("Text() = %q", got)
	}
}

func TestFindXIDAndAncestors(t *testing.T) {
	root := MustParse(restaurantXML)
	var want *Node
	var i model.XID
	root.Walk(func(n *Node) bool {
		if n.IsElement() {
			i++
			n.XID = i
			if n.Name == "price" && want == nil {
				want = n
			}
		}
		return true
	})
	got := root.FindXID(want.XID)
	if got != want {
		t.Fatal("FindXID returned wrong node")
	}
	anc := got.Ancestors()
	if len(anc) != 2 || anc[0].Name != "restaurant" || anc[1].Name != "guide" {
		t.Fatalf("ancestors = %v", anc)
	}
	if got.Root() != root || got.Depth() != 2 || root.Depth() != 0 {
		t.Error("Root/Depth broken")
	}
	if root.FindXID(999) != nil {
		t.Error("FindXID(999) should be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	root := MustParse(restaurantXML)
	cp := root.Clone()
	if !Equal(root, cp) {
		t.Fatal("clone not equal")
	}
	if cp.Parent != nil {
		t.Fatal("clone should be parentless")
	}
	cp.Children[0].Children[0].Children[0].Value = "CHANGED"
	if Equal(root, cp) {
		t.Fatal("clone shares text storage with original")
	}
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSemantics(t *testing.T) {
	a := MustParse(`<a x="1" y="2"><b/>t</a>`)
	b := MustParse(`<a y="2" x="1"><b/>t</a>`) // attr order ignored
	if !Equal(a, b) {
		t.Error("attribute order should not affect Equal")
	}
	c := MustParse(`<a x="1" y="2">t<b/></a>`) // child order matters
	if Equal(a, c) {
		t.Error("child order should affect Equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) || Equal(nil, a) {
		t.Error("nil handling broken")
	}
}

func TestIdentityEqual(t *testing.T) {
	a, b := NewElement("x"), NewElement("y")
	if IdentityEqual(a, b) {
		t.Error("unassigned XIDs must not be identity-equal")
	}
	a.XID, b.XID = 7, 7
	if !IdentityEqual(a, b) {
		t.Error("same XID should be identity-equal")
	}
	b.XID = 8
	if IdentityEqual(a, b) {
		t.Error("different XIDs must not be identity-equal")
	}
}

func TestHashMatchesEqual(t *testing.T) {
	a := MustParse(restaurantXML)
	b := MustParse(restaurantXML)
	if a.Hash() != b.Hash() {
		t.Error("equal trees must hash equally")
	}
	b.Children[0].Children[1].Children[0].Value = "16"
	if a.Hash() == b.Hash() {
		t.Error("differing trees should hash differently")
	}
}

func TestHashIgnoresXID(t *testing.T) {
	a := MustParse(`<a><b>t</b></a>`)
	b := a.Clone()
	b.XID = 42
	b.Stamp = 100
	if a.Hash() != b.Hash() {
		t.Error("hash must ignore XID and Stamp")
	}
}

// randomTree builds a pseudo-random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "restaurant", "name", "price", "item"}
	n := NewElement(names[r.Intn(len(names))])
	if r.Intn(3) == 0 {
		n.SetAttr("k"+string(rune('a'+r.Intn(3))), "v")
	}
	kids := r.Intn(4)
	if depth <= 0 {
		kids = 0
	}
	for i := 0; i < kids; i++ {
		if r.Intn(3) == 0 {
			n.AppendChild(NewText("text" + string(rune('0'+r.Intn(10)))))
		} else {
			n.AppendChild(randomTree(r, depth-1))
		}
	}
	return n
}

func TestPropertySerializeParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		again, err := ParseString(tree.String())
		if err != nil {
			// Trees with adjacent text children serialize to merged text;
			// normalize by comparing text content instead.
			return false
		}
		return treesEquivalent(tree, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// treesEquivalent compares trees modulo merging of adjacent text nodes,
// which serialization inherently performs.
func treesEquivalent(a, b *Node) bool {
	return normalize(a).Hash() == normalize(b).Hash()
}

// normalize returns a copy with adjacent text children merged and
// whitespace-only text dropped, mirroring what a serialize/parse round trip
// does.
func normalize(n *Node) *Node {
	cp := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value, Attrs: append([]Attr(nil), n.Attrs...)}
	for _, c := range n.Children {
		nc := normalize(c)
		if nc.IsText() {
			if strings.TrimSpace(nc.Value) == "" {
				continue
			}
			if k := len(cp.Children); k > 0 && cp.Children[k-1].IsText() {
				cp.Children[k-1].Value += nc.Value
				continue
			}
		}
		cp.AppendChild(nc)
	}
	return cp
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		return Equal(tree, tree.Clone()) && tree.Clone().Hash() == tree.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	root := MustParse(`<a><b>t</b></a>`)
	if err := root.Validate(); err != nil {
		t.Fatal(err)
	}
	root.Children[0].Children[0].Name = "oops" // text node with a name
	if err := root.Validate(); err == nil {
		t.Error("Validate should reject text node with element name")
	}
	root2 := MustParse(`<a><b/></a>`)
	root2.Children[0].Parent = nil
	if err := root2.Validate(); err == nil {
		t.Error("Validate should reject broken parent pointer")
	}
}

func TestSelectPathWildcard(t *testing.T) {
	root := MustParse(restaurantXML)
	prices := root.SelectPath("*/price")
	if len(prices) != 2 {
		t.Fatalf("wildcard path matched %d nodes", len(prices))
	}
	if got := root.SelectPath("restaurant/name"); len(got) != 2 {
		t.Fatalf("restaurant/name matched %d", len(got))
	}
	if got := root.SelectPath("/restaurant/name/"); len(got) != 2 {
		t.Fatalf("path trimming broken: %d", len(got))
	}
	if got := root.SelectPath("nosuch/name"); len(got) != 0 {
		t.Fatalf("nonexistent path matched %d", len(got))
	}
}

func TestElements(t *testing.T) {
	root := MustParse(restaurantXML)
	if got := len(root.Elements("name")); got != 2 {
		t.Errorf("Elements(name) = %d", got)
	}
	if got := len(root.Elements("")); got != 7 { // guide + 2*(restaurant,name,price)
		t.Errorf("Elements(\"\") = %d", got)
	}
	if got := len(root.ChildElements("")); got != 2 {
		t.Errorf("ChildElements(\"\") = %d", got)
	}
}

func TestSize(t *testing.T) {
	root := MustParse(restaurantXML)
	// 7 elements + 4 text nodes
	if got := root.Size(); got != 11 {
		t.Errorf("Size = %d, want 11", got)
	}
}

func TestKindString(t *testing.T) {
	if Element.String() != "element" || Text.String() != "text" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting broken")
	}
}

func TestEscapingRoundTrip(t *testing.T) {
	// Characters that must survive serialize/parse: markup characters in
	// text, quotes and entities in attribute values, unicode.
	cases := []*Node{
		ElemText("a", `five < six & seven > two`),
		func() *Node {
			n := NewElement("a")
			n.SetAttr("q", `he said "hi" & left`)
			n.SetAttr("lt", `a<b>c`)
			return n
		}(),
		ElemText("a", "smörgåsbord — 寿司"),
		ElemText("a", "tab\tnewline\nkept"),
	}
	for _, orig := range cases {
		again, err := ParseString(orig.String())
		if err != nil {
			t.Errorf("%s: %v", orig, err)
			continue
		}
		if !Equal(orig, again) {
			t.Errorf("escaping round trip:\n  orig:  %s\n  again: %s", orig, again)
		}
	}
}

func TestMarshalEscapingWithIdentity(t *testing.T) {
	orig := ElemText("note", `prices: 15 < 18 & "rising"`)
	orig.XID = 3
	orig.Children[0].XID = 4
	orig.Stamp = 77
	again, err := Unmarshal(Marshal(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(orig, again) || again.XID != 3 || again.Children[0].XID != 4 || again.Stamp != 77 {
		t.Fatalf("identity+escaping round trip broken: %s", again)
	}
}

func TestReservedIdentityAttributesAreStripped(t *testing.T) {
	// User documents cannot smuggle identity through reserved attributes:
	// they are interpreted and removed from the visible attribute list.
	root := MustParse(`<a txmldb:xid="42" txmldb:stamp="7" real="kept"/>`)
	if root.XID != 42 || root.Stamp != 7 {
		t.Fatalf("reserved attrs not interpreted: xid=%d stamp=%d", root.XID, root.Stamp)
	}
	if len(root.Attrs) != 1 || root.Attrs[0].Name != "real" {
		t.Fatalf("visible attrs = %v", root.Attrs)
	}
}

func TestDeeplyNestedDocument(t *testing.T) {
	var b strings.Builder
	const depth = 300
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "<d%d>", i)
	}
	b.WriteString("x")
	for i := depth - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "</d%d>", i)
	}
	root, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if root.Size() != depth+1 {
		t.Fatalf("size = %d", root.Size())
	}
	if got := root.Text(); got != "x" {
		t.Fatalf("text = %q", got)
	}
	// Round trip at depth.
	if _, err := ParseString(root.String()); err != nil {
		t.Fatal(err)
	}
}
