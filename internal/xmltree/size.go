package xmltree

import "unsafe"

// sizeofNode and sizeofAttr are the shallow struct sizes used by DeepSize.
const (
	sizeofNode = int64(unsafe.Sizeof(Node{}))
	sizeofAttr = int64(unsafe.Sizeof(Attr{}))
	sizeofPtr  = int64(unsafe.Sizeof((*Node)(nil)))
)

// DeepSize estimates, in bytes, the heap memory retained by the subtree
// rooted at n: one Node struct per node, the backing arrays of the string
// fields, the attribute slice and the child-pointer slice. It is an
// estimate — allocator overhead and slice over-capacity are not visible —
// but it is deterministic and monotone in tree content, which is what a
// byte-budgeted cache needs to account residency fairly.
func (n *Node) DeepSize() int64 {
	var total int64
	n.Walk(func(d *Node) bool {
		total += sizeofNode + int64(len(d.Name)) + int64(len(d.Value))
		for _, a := range d.Attrs {
			total += sizeofAttr + int64(len(a.Name)) + int64(len(a.Value))
		}
		total += int64(len(d.Children)) * sizeofPtr
		return true
	})
	return total
}
