package doctime

import (
	"testing"

	"txmldb/internal/model"
)

func TestSnapshotRoundTrip(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published"}})
	ix.AddVersion(1, feed("2001-01-01", "2001-01-05", "not a timestamp"))
	blob, err := ix.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{Paths: []string{"item/published"}})
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != ix.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), ix.Len())
	}
	if restored.Skipped() != ix.Skipped() {
		t.Fatalf("restored Skipped = %d, want %d", restored.Skipped(), ix.Skipped())
	}
	want := ix.Range(model.Always)
	got := restored.Range(model.Always)
	if len(got) != len(want) {
		t.Fatalf("Range = %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := restored.RestoreState([]byte("junk")); err == nil {
		t.Error("garbage restore should fail")
	}
}
