package doctime

import (
	"fmt"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

func feed(times ...string) *xmltree.Node {
	f := xmltree.NewElement("feed")
	for i, ts := range times {
		f.AppendChild(xmltree.Elem("item",
			xmltree.ElemText("published", ts),
			xmltree.ElemText("headline", fmt.Sprintf("h%d", i))))
	}
	var x model.XID
	f.Walk(func(n *xmltree.Node) bool { x++; n.XID = x; return true })
	return f
}

func TestRangeQueries(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published"}})
	root := feed("2001-01-01", "2001-01-05", "2001-01-09")
	ix.AddVersion(1, root)
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.Range(model.Interval{Start: model.Date(2001, 1, 2), End: model.Date(2001, 1, 9)})
	if len(got) != 1 || got[0].At != model.Date(2001, 1, 5) {
		t.Fatalf("range = %+v", got)
	}
	// The indexed entity is the item, not the published element.
	item := root.ChildElements("item")[1]
	if got[0].EID.X != item.XID {
		t.Fatalf("entity = %v, want item %d", got[0].EID, item.XID)
	}
	all := ix.Range(model.Always)
	if len(all) != 3 || all[0].At > all[1].At || all[1].At > all[2].At {
		t.Fatalf("full range unordered: %+v", all)
	}
}

func TestIdempotentReindexing(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published"}})
	root := feed("2001-01-01")
	ix.AddVersion(1, root)
	ix.AddVersion(1, root) // same version content re-indexed
	if ix.Len() != 1 {
		t.Fatalf("Len after re-index = %d", ix.Len())
	}
}

func TestLayoutsAndSkipped(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published"}})
	ix.AddVersion(1, feed(
		"2001-01-26 13:30:00",  // model.Time form
		"2001-02-03T10:00:00Z", // RFC 3339
		"04/03/2001",           // dd/mm/yyyy
		"not a timestamp",      // skipped
	))
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3 parsed", ix.Len())
	}
	if ix.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1", ix.Skipped())
	}
}

func TestMultiplePathsAndDocs(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published", "item/expires"}})
	f := xmltree.NewElement("feed")
	f.AppendChild(xmltree.Elem("item",
		xmltree.ElemText("published", "2001-01-01"),
		xmltree.ElemText("expires", "2001-03-01")))
	var x model.XID
	f.Walk(func(n *xmltree.Node) bool { x++; n.XID = x; return true })
	ix.AddVersion(1, f)
	ix.AddVersion(2, feed("2001-02-01"))
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	march := ix.Range(model.Interval{Start: model.Date(2001, 2, 15), End: model.Date(2001, 4, 1)})
	if len(march) != 1 || march[0].EID.Doc != 1 {
		t.Fatalf("expires range = %+v", march)
	}
}

func TestCustomLayouts(t *testing.T) {
	ix := New(Config{Paths: []string{"item/published"}, Layouts: []string{"Jan 2 2006"}})
	ix.AddVersion(1, feed("Feb 3 2001", "2001-01-01"))
	if ix.Len() != 1 || ix.Skipped() != 1 {
		t.Fatalf("custom layouts: len=%d skipped=%d", ix.Len(), ix.Skipped())
	}
}
