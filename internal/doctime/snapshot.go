package doctime

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"txmldb/internal/btree"
)

// doctimeImage is the serialized form of an Index for checkpoint images.
// The configuration is not part of the image: it comes from New at open
// time, exactly as for a freshly built index.
type doctimeImage struct {
	Entries []Entry
	Skipped int
}

// SnapshotState serializes the index for a checkpoint image.
func (ix *Index) SnapshotState() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	img := doctimeImage{
		Entries: make([]Entry, 0, ix.tree.Len()),
		Skipped: ix.skipped,
	}
	ix.tree.Ascend(func(k key, _ struct{}) bool {
		img.Entries = append(img.Entries, Entry{At: k.at, EID: k.eid})
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreState replaces the index contents with a snapshot taken by
// SnapshotState. The paths/layouts configuration passed to New is kept.
func (ix *Index) RestoreState(data []byte) error {
	var img doctimeImage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&img); err != nil {
		return fmt.Errorf("doctime: restore: %w", err)
	}
	tree := btree.New[key, struct{}](keyLess)
	for _, e := range img.Entries {
		tree.Set(key{at: e.At, eid: e.EID}, struct{}{})
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.tree = tree
	ix.skipped = img.Skipped
	return nil
}
