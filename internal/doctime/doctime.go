// Package doctime implements the paper's third notion of time
// (Section 3.1): document time — "many documents include a timestamp in
// the document itself. … The documents can also be indexed and queried
// based on this document time", with XMLNews-Meta-style publication
// metadata as the motivating example.
//
// The index extracts document-time values from configured element paths
// (e.g. item/published) of every stored version, parses them with a list
// of accepted layouts, and supports range queries "elements whose document
// time lies in [from, to)" — independent of the transaction time at which
// the versions entered the database.
package doctime

import (
	"strings"
	"sync"
	"time"

	"txmldb/internal/btree"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// DefaultLayouts are the timestamp formats accepted in document content,
// tried in order. The model.Time String form comes first so that documents
// produced by this system round-trip.
var DefaultLayouts = []string{
	"2006-01-02 15:04:05",
	time.RFC3339,
	"2006-01-02",
	"02/01/2006",
}

// Config parameterizes an Index.
type Config struct {
	// Paths are slash-separated element paths, relative to the document
	// root, whose text holds a document time — e.g. "item/published".
	// The *parent* element of the matched element is the indexed entity
	// (the news item, not its timestamp field).
	Paths []string
	// Layouts are the accepted time formats; DefaultLayouts when empty.
	Layouts []string
}

// Entry is one indexed document-time occurrence.
type Entry struct {
	At  model.Time // the parsed document time
	EID model.EID  // the carrying element's parent (the entity)
}

// Index maps document times to elements. It is safe for concurrent use.
type Index struct {
	mu      sync.RWMutex
	cfg     Config
	tree    *btree.Tree[key, struct{}]
	skipped int
}

type key struct {
	at  model.Time
	eid model.EID
}

func keyLess(a, b key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.eid.Less(b.eid)
}

// New returns an empty document-time index.
func New(cfg Config) *Index {
	if len(cfg.Layouts) == 0 {
		cfg.Layouts = DefaultLayouts
	}
	return &Index{cfg: cfg, tree: btree.New[key, struct{}](keyLess)}
}

// AddVersion indexes the document times found in a stored version. Adding
// the same (time, element) pair twice is idempotent, so re-indexing
// subsequent versions of an unchanged item costs nothing but the lookup.
func (ix *Index) AddVersion(doc model.DocID, root *xmltree.Node) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, path := range ix.cfg.Paths {
		for _, n := range root.SelectPath(path) {
			at, ok := ix.parse(n.Text())
			if !ok {
				ix.skipped++
				continue
			}
			owner := n
			if n.Parent != nil {
				owner = n.Parent
			}
			ix.tree.Set(key{at: at, eid: model.EID{Doc: doc, X: owner.XID}}, struct{}{})
		}
	}
}

func (ix *Index) parse(s string) (model.Time, bool) {
	s = strings.TrimSpace(s)
	for _, layout := range ix.cfg.Layouts {
		if t, err := time.Parse(layout, s); err == nil {
			return model.TimeOf(t), true
		}
	}
	return 0, false
}

// Range returns the entries whose document time lies in [from, to), in
// ascending document-time order.
func (ix *Index) Range(iv model.Interval) []Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Entry
	ix.tree.AscendRange(
		key{at: iv.Start},
		key{at: iv.End},
		func(k key, _ struct{}) bool {
			out = append(out, Entry{At: k.at, EID: k.eid})
			return true
		})
	return out
}

// Len returns the number of indexed (time, element) pairs.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// Skipped reports how many candidate values failed to parse — the paper's
// caveat that "it could be difficult to extract this time from a document
// automatically".
func (ix *Index) Skipped() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.skipped
}
