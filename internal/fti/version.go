package fti

import (
	"sync"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// VersionIndex indexes the contents of document versions — the alternative
// the paper selects (Section 7.2). Every posting carries a validity
// interval: a word occurrence opens a posting at the version that
// introduced it and closes it at the version that removed it.
//
// A posting exists per (document, element, word, source); multiple
// occurrences of the same word under one element share a posting with a
// reference count, so removing one of two occurrences does not end the
// posting's validity.
type VersionIndex struct {
	mu    sync.RWMutex
	words map[string][]Posting
	// open tracks the currently valid posting per document and occurrence
	// key, with its occurrence count and path signature.
	open map[model.DocID]map[occKey]*openEntry
	// liveByWord holds, per word, the indexes of postings that were open
	// when last appended; closed entries are compacted away lazily on
	// lookup. It makes current-state lookups cost O(live) instead of
	// O(history) — one of the "new types of indexes" the paper's
	// Section 8 calls for.
	liveByWord map[string][]int
}

type occKey struct {
	x    model.XID
	src  Source
	word string
}

type openEntry struct {
	idx     int // position in words[key.word]
	count   int
	pathSig uint64
}

// NewVersionIndex returns an empty version-content index.
func NewVersionIndex() *VersionIndex {
	return &VersionIndex{
		words:      make(map[string][]Posting),
		open:       make(map[model.DocID]map[occKey]*openEntry),
		liveByWord: make(map[string][]int),
	}
}

// Name implements Index.
func (ix *VersionIndex) Name() string { return "version-content" }

// occState is the occurrence multiset of one document version.
type occState struct {
	counts map[occKey]int
	paths  map[model.XID][]model.XID
}

func occurrencesOf(root *xmltree.Node) occState {
	st := occState{
		counts: make(map[occKey]int),
		paths:  make(map[model.XID][]model.XID),
	}
	root.Walk(func(n *xmltree.Node) bool {
		if n.IsElement() {
			st.paths[n.XID] = pathOf(n)
		}
		for _, o := range nodeOccurrences(n) {
			st.counts[occKey{x: o.x, src: o.src, word: o.word}]++
		}
		return true
	})
	return st
}

func pathSig(path []model.XID) uint64 {
	var h uint64 = 1469598103934665603
	for _, x := range path {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// AddVersion implements Index by diffing the new version's occurrence
// multiset against the open postings of the document: vanished occurrences
// close their postings, new ones open postings, and elements whose ancestor
// chain changed (moves) close and reopen so the stored path stays valid for
// the posting's span. The completed delta script is not needed here; the
// DeltaIndex alternative consumes it.
func (ix *VersionIndex) AddVersion(doc model.DocID, newRoot *xmltree.Node, _ *diff.Script, t model.Time) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	st := occurrencesOf(newRoot)
	docOpen := ix.open[doc]
	if docOpen == nil {
		docOpen = make(map[occKey]*openEntry)
		ix.open[doc] = docOpen
	}
	// Close postings whose occurrence vanished or whose element moved.
	for key, ent := range docOpen {
		newCount := st.counts[key]
		newSig := pathSig(st.paths[key.x])
		if newCount > 0 && ent.pathSig == newSig {
			ent.count = newCount
			continue
		}
		ix.closeLocked(key.word, ent.idx, t)
		delete(docOpen, key)
	}
	// Open postings for new occurrences (including reopened moves).
	for key, count := range st.counts {
		if _, exists := docOpen[key]; exists {
			continue
		}
		path := st.paths[key.x]
		ix.words[key.word] = append(ix.words[key.word], Posting{
			Doc:  doc,
			X:    key.x,
			Path: path,
			Src:  key.src,
			Span: model.Interval{Start: t, End: model.Forever},
		})
		idx := len(ix.words[key.word]) - 1
		docOpen[key] = &openEntry{
			idx:     idx,
			count:   count,
			pathSig: pathSig(path),
		}
		ix.liveByWord[key.word] = append(ix.liveByWord[key.word], idx)
	}
	return nil
}

// closeLocked ends the posting's validity at t. A posting can end in the
// same instant it started (element reindexed within one version
// transition); such empty-span postings are filtered out by the lookups.
func (ix *VersionIndex) closeLocked(word string, idx int, t model.Time) {
	p := &ix.words[word][idx]
	p.Span.End = t
	// The liveByWord entry is compacted away by the next Lookup.
}

// DeleteDoc implements Index.
func (ix *VersionIndex) DeleteDoc(doc model.DocID, _ *xmltree.Node, t model.Time) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for key, ent := range ix.open[doc] {
		ix.closeLocked(key.word, ent.idx, t)
	}
	delete(ix.open, doc)
	return nil
}

// Lookup implements Index: postings valid in the current database state,
// served from the live list without scanning the word's history. Entries
// closed since the last lookup are compacted away as a side effect, so the
// amortized cost is O(live).
func (ix *VersionIndex) Lookup(word string) []Posting {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	live := ix.liveByWord[word]
	out := make([]Posting, 0, len(live))
	compacted := live[:0]
	for _, idx := range live {
		p := ix.words[word][idx]
		if p.Span.End != model.Forever {
			continue
		}
		compacted = append(compacted, idx)
		out = append(out, p)
	}
	if len(compacted) != len(live) {
		ix.liveByWord[word] = compacted
	}
	return out
}

// LookupT implements Index: postings valid at time t.
func (ix *VersionIndex) LookupT(word string, t model.Time) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for _, p := range ix.words[word] {
		if p.Span.Contains(t) {
			out = append(out, p)
		}
	}
	return out
}

// LookupH implements Index: all postings over the whole history. Postings
// with an empty span (opened and closed by the same version transition)
// are skipped.
func (ix *VersionIndex) LookupH(word string) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for _, p := range ix.words[word] {
		if !p.Span.Empty() {
			out = append(out, p)
		}
	}
	return out
}

// Stats implements Index.
func (ix *VersionIndex) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var st Stats
	st.Words = len(ix.words)
	for w, ps := range ix.words {
		st.Postings += len(ps)
		for _, p := range ps {
			if p.Span.End == model.Forever {
				st.Open++
			}
			st.Bytes += postingBytes(w, len(p.Path))
		}
	}
	return st
}
