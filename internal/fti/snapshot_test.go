package fti

import (
	"testing"

	"txmldb/internal/model"
)

// snapshotter is implemented by all three index flavours.
type snapshotter interface {
	Index
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

func TestSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		build func() snapshotter
	}{
		{func() snapshotter { return NewVersionIndex() }},
		{func() snapshotter { return NewDeltaIndex() }},
		{func() snapshotter { return NewBothIndex() }},
	}
	for _, c := range cases {
		orig := c.build()
		t.Run(orig.Name(), func(t *testing.T) {
			loadFigure1(t, orig)
			blob, err := orig.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}
			restored := c.build()
			if err := restored.RestoreState(blob); err != nil {
				t.Fatal(err)
			}
			// Restored index answers every lookup like the original.
			for _, word := range []string{"Napoli", "Akropolis", "15", "18", "nothere"} {
				for _, at := range []model.Time{jan1, jan15, jan26, jan31, feb10} {
					if got, want := len(restored.LookupT(word, at)), len(orig.LookupT(word, at)); got != want {
						t.Errorf("LookupT(%q, %s) = %d postings, want %d", word, at, got, want)
					}
				}
				if got, want := len(restored.Lookup(word)), len(orig.Lookup(word)); got != want {
					t.Errorf("Lookup(%q) = %d postings, want %d", word, got, want)
				}
				if got, want := len(restored.LookupH(word)), len(orig.LookupH(word)); got != want {
					t.Errorf("LookupH(%q) = %d postings, want %d", word, got, want)
				}
			}
		})
	}
}

func TestSnapshotRestoredIndexAcceptsUpdates(t *testing.T) {
	// A restored index must carry enough state (open occurrences, live
	// counts) to keep indexing new versions correctly.
	orig := NewBothIndex()
	s, id := loadFigure1(t, orig)
	blob, err := orig.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewBothIndex()
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	// Apply the same fourth version to both and compare.
	next := guideXML([2]string{"Milano", "22"})
	_, script, err := s.Update(id, next, feb10)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := s.Current(id)
	for _, ix := range []Index{orig, restored} {
		if err := ix.AddVersion(id, cur, script, feb10); err != nil {
			t.Fatal(err)
		}
	}
	for _, word := range []string{"Napoli", "Milano", "18", "22"} {
		for _, at := range []model.Time{jan26, feb10} {
			if got, want := len(restored.LookupT(word, at)), len(orig.LookupT(word, at)); got != want {
				t.Errorf("LookupT(%q, %s) = %d postings, want %d", word, at, got, want)
			}
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	for _, ix := range []snapshotter{NewVersionIndex(), NewDeltaIndex(), NewBothIndex()} {
		if err := ix.RestoreState([]byte("not gob")); err == nil {
			t.Errorf("%s: garbage restore should fail", ix.Name())
		}
	}
}
