package fti

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"txmldb/internal/model"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

var (
	jan1  = model.Date(2001, 1, 1)
	jan15 = model.Date(2001, 1, 15)
	jan26 = model.Date(2001, 1, 26)
	jan31 = model.Date(2001, 1, 31)
	feb10 = model.Date(2001, 2, 10)
)

func guideXML(entries ...[2]string) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for _, e := range entries {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", e[0]),
			xmltree.ElemText("price", e[1])))
	}
	return g
}

// loadFigure1 drives the Figure 1 history through a store and the given
// index, returning the store and doc id.
func loadFigure1(t testing.TB, ix Index) (*store.Store, model.DocID) {
	t.Helper()
	s := store.New(store.Config{})
	steps := []struct {
		t    model.Time
		tree *xmltree.Node
	}{
		{jan1, guideXML([2]string{"Napoli", "15"})},
		{jan15, guideXML([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"})},
		{jan31, guideXML([2]string{"Napoli", "18"})},
	}
	id, err := s.Put("guide", steps[0].tree, steps[0].t)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := s.Current(id)
	if err := ix.AddVersion(id, cur, nil, steps[0].t); err != nil {
		t.Fatal(err)
	}
	for _, st := range steps[1:] {
		_, script, err := s.Update(id, st.tree, st.t)
		if err != nil {
			t.Fatal(err)
		}
		cur, _, _ := s.Current(id)
		if err := ix.AddVersion(id, cur, script, st.t); err != nil {
			t.Fatal(err)
		}
	}
	return s, id
}

func indexes() []Index {
	return []Index{NewVersionIndex(), NewDeltaIndex(), NewBothIndex()}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Napoli", []string{"Napoli"}},
		{"hello, world", []string{"hello", "world"}},
		{"a-b_c", []string{"a", "b", "c"}},
		{"  ", nil},
		{"15.50", []string{"15", "50"}},
		{"côte d'or", []string{"côte", "d", "or"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestLookupTAcrossHistory(t *testing.T) {
	for _, ix := range indexes() {
		t.Run(ix.Name(), func(t *testing.T) {
			_, _ = loadFigure1(t, ix)
			// Akropolis exists only in [jan15, jan31).
			if got := ix.LookupT("Akropolis", jan1); len(got) != 0 {
				t.Errorf("Akropolis at jan1: %d postings", len(got))
			}
			if got := ix.LookupT("Akropolis", jan26); len(got) != 1 {
				t.Errorf("Akropolis at jan26: %d postings", len(got))
			}
			if got := ix.LookupT("Akropolis", jan31); len(got) != 0 {
				t.Errorf("Akropolis at jan31: %d postings", len(got))
			}
			// Price text: 15 until jan31, 18 after.
			if got := ix.LookupT("15", jan26); len(got) != 1 {
				t.Errorf("15 at jan26: %d postings", len(got))
			}
			if got := ix.LookupT("15", jan31); len(got) != 0 {
				t.Errorf("15 at jan31: %d postings", len(got))
			}
			if got := ix.LookupT("18", jan31); len(got) != 1 {
				t.Errorf("18 at jan31: %d postings", len(got))
			}
			// Napoli spans the whole history.
			for _, at := range []model.Time{jan1, jan26, feb10} {
				if got := ix.LookupT("Napoli", at); len(got) != 1 {
					t.Errorf("Napoli at %s: %d postings", at, len(got))
				}
			}
		})
	}
}

func TestLookupCurrentAndHistory(t *testing.T) {
	for _, ix := range indexes() {
		t.Run(ix.Name(), func(t *testing.T) {
			loadFigure1(t, ix)
			if got := ix.Lookup("Akropolis"); len(got) != 0 {
				t.Errorf("current Akropolis: %d", len(got))
			}
			if got := ix.Lookup("Napoli"); len(got) != 1 {
				t.Errorf("current Napoli: %d", len(got))
			}
			if got := ix.LookupH("Akropolis"); len(got) != 1 {
				t.Errorf("historic Akropolis: %d", len(got))
			}
			// "restaurant" element name: Napoli's for the whole history,
			// Akropolis's for [jan15, jan31).
			if got := ix.LookupH("restaurant"); len(got) != 2 {
				t.Errorf("historic restaurant postings: %d, want 2", len(got))
			}
		})
	}
}

func TestSourceSeparation(t *testing.T) {
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	// The word "price" appears as an element name AND as text content.
	tree := xmltree.Elem("guide",
		xmltree.Elem("restaurant",
			xmltree.ElemText("price", "15"),
			xmltree.ElemText("note", "good price")))
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	if err := ix.AddVersion(id, cur, nil, jan1); err != nil {
		t.Fatal(err)
	}
	got := ix.Lookup("price")
	if len(got) != 2 {
		t.Fatalf("price postings = %d, want 2", len(got))
	}
	bySrc := map[Source]int{}
	for _, p := range got {
		bySrc[p.Src]++
	}
	if bySrc[SrcName] != 1 || bySrc[SrcText] != 1 {
		t.Fatalf("source split = %v", bySrc)
	}
}

func TestPostingPathsSupportStructuralJoins(t *testing.T) {
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	tree := guideXML([2]string{"Napoli", "15"})
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)

	guide := ix.Lookup("guide")[0]
	rest := ix.Lookup("restaurant")[0]
	napoli := ix.Lookup("Napoli")[0] // owned by <name>
	name := ix.Lookup("name")[0]

	if napoli.X != name.X {
		t.Fatal("text word must be owned by its parent element")
	}
	if napoli.ParentXID() != rest.X {
		t.Fatal("name's parent must be restaurant")
	}
	if !napoli.HasAncestor(guide.X) || !napoli.HasAncestor(rest.X) {
		t.Fatal("ancestor chain broken")
	}
	if napoli.HasAncestor(napoli.X) {
		t.Fatal("HasAncestor must be proper")
	}
	if guide.ParentXID() != 0 {
		t.Fatal("root has no parent")
	}
}

func TestAttributeWordsIndexed(t *testing.T) {
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	tree := xmltree.MustParse(`<guide><restaurant cuisine="italian pizza"/></guide>`)
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	for _, w := range []string{"cuisine", "italian", "pizza"} {
		got := ix.Lookup(w)
		if len(got) != 1 || got[0].Src != SrcAttr {
			t.Errorf("attr word %q: %v", w, got)
		}
	}
}

func TestRefcountedOccurrences(t *testing.T) {
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	tree := xmltree.Elem("g", xmltree.ElemText("a", "dup"), xmltree.ElemText("b", "dup"))
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	// Two separate elements → two postings for "dup".
	if got := ix.Lookup("dup"); len(got) != 2 {
		t.Fatalf("dup postings = %d", len(got))
	}
	// Remove one of them: the other posting must stay open.
	_, script, err := s.Update(id, xmltree.Elem("g", xmltree.ElemText("a", "dup")), jan15)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ = s.Current(id)
	ix.AddVersion(id, cur, script, jan15)
	if got := ix.Lookup("dup"); len(got) != 1 {
		t.Fatalf("dup postings after delete = %d", len(got))
	}
}

func TestSameWordTwiceUnderOneElement(t *testing.T) {
	for _, ix := range indexes() {
		t.Run(ix.Name(), func(t *testing.T) {
			s := store.New(store.Config{})
			tree := xmltree.Elem("g", xmltree.ElemText("a", "dup dup"))
			id, _ := s.Put("doc", tree, jan1)
			cur, _, _ := s.Current(id)
			ix.AddVersion(id, cur, nil, jan1)
			if got := ix.Lookup("dup"); len(got) != 1 {
				t.Fatalf("postings = %d, want 1 (deduplicated)", len(got))
			}
			// Drop one occurrence: still there.
			_, script, _ := s.Update(id, xmltree.Elem("g", xmltree.ElemText("a", "dup")), jan15)
			cur, _, _ = s.Current(id)
			ix.AddVersion(id, cur, script, jan15)
			if got := ix.Lookup("dup"); len(got) != 1 {
				t.Fatalf("postings after partial removal = %d, want 1", len(got))
			}
			// Drop the last occurrence: gone.
			_, script, _ = s.Update(id, xmltree.Elem("g", xmltree.ElemText("a", "none")), jan31)
			cur, _, _ = s.Current(id)
			ix.AddVersion(id, cur, script, jan31)
			if got := ix.Lookup("dup"); len(got) != 0 {
				t.Fatalf("postings after full removal = %d, want 0", len(got))
			}
			if got := ix.LookupT("dup", jan15); len(got) != 1 {
				t.Fatalf("historic lookup = %d, want 1", len(got))
			}
		})
	}
}

func TestDeleteDocClosesPostings(t *testing.T) {
	for _, ix := range indexes() {
		t.Run(ix.Name(), func(t *testing.T) {
			s, id := loadFigure1(t, ix)
			cur, _, _ := s.Current(id)
			if err := s.Delete(id, feb10); err != nil {
				t.Fatal(err)
			}
			if err := ix.DeleteDoc(id, cur, feb10); err != nil {
				t.Fatal(err)
			}
			if got := ix.Lookup("Napoli"); len(got) != 0 {
				t.Errorf("Napoli after doc delete: %d", len(got))
			}
			if got := ix.LookupT("Napoli", feb10-1); len(got) != 1 {
				t.Errorf("Napoli just before delete: %d", len(got))
			}
		})
	}
}

func TestMoveReindexesPaths(t *testing.T) {
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	tree := xmltree.MustParse(`<g><a><item><tag>deep</tag></item></a><b/></g>`)
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	aXID := ix.Lookup("a")[0].X
	bXID := ix.Lookup("b")[0].X
	if p := ix.Lookup("deep")[0]; !p.HasAncestor(aXID) {
		t.Fatal("precondition: deep under a")
	}
	_, script, err := s.Update(id, xmltree.MustParse(`<g><a/><b><item><tag>deep</tag></item></b></g>`), jan15)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ = s.Current(id)
	ix.AddVersion(id, cur, script, jan15)
	p := ix.Lookup("deep")
	if len(p) != 1 {
		t.Fatalf("deep postings = %d", len(p))
	}
	if !p[0].HasAncestor(bXID) || p[0].HasAncestor(aXID) {
		t.Fatal("path not reindexed after move")
	}
	// The old posting (path under a) is still found historically.
	if hp := ix.LookupT("deep", jan1); len(hp) != 1 || !hp[0].HasAncestor(aXID) {
		t.Fatal("historic path lost")
	}
}

func TestDeltaIndexEventsAndOpKeywords(t *testing.T) {
	ix := NewDeltaIndex()
	loadFigure1(t, ix)
	evs := ix.Events("Akropolis")
	if len(evs) != 2 || !evs[0].Insert || evs[1].Insert {
		t.Fatalf("Akropolis events = %+v", evs)
	}
	if evs[0].T != jan15 || evs[1].T != jan31 {
		t.Fatalf("event times = %s, %s", evs[0].T, evs[1].T)
	}
	if got := ix.OpEvents("delete"); len(got) != 1 {
		t.Fatalf("delete op events = %d", len(got))
	}
	if got := ix.OpEvents("update"); len(got) != 1 {
		t.Fatalf("update op events = %d", len(got))
	}
	st := ix.Stats()
	if st.OpKeywordPostings == 0 {
		t.Fatal("op keyword postings not counted")
	}
}

func TestStatsShapes(t *testing.T) {
	v, d, b := NewVersionIndex(), NewDeltaIndex(), NewBothIndex()
	loadFigure1(t, v)
	loadFigure1(t, d)
	loadFigure1(t, b)
	vs, ds, bs := v.Stats(), d.Stats(), b.Stats()
	if vs.Postings == 0 || vs.Words == 0 || vs.Bytes == 0 || vs.Open == 0 {
		t.Fatalf("version stats = %+v", vs)
	}
	if vs.OpKeywordPostings != 0 {
		t.Fatal("version index must not have op keyword postings")
	}
	if ds.OpKeywordPostings == 0 {
		t.Fatalf("delta stats = %+v", ds)
	}
	if bs.Postings != vs.Postings+ds.Postings {
		t.Fatalf("both stats = %+v", bs)
	}
	if bs.Bytes <= vs.Bytes || bs.Bytes <= ds.Bytes {
		t.Fatal("both index must be larger than either alternative")
	}
}

func TestSourceString(t *testing.T) {
	if SrcName.String() != "name" || SrcText.String() != "text" || SrcAttr.String() != "attr" {
		t.Error("Source.String broken")
	}
	if Source(9).String() != "Source(9)" {
		t.Error("unknown source formatting")
	}
}

// TestPropertyVersionDeltaAgree drives random histories through both
// alternatives and checks that temporal lookups agree on the
// (doc, element, source, validity) level. Histories avoid cross-parent
// moves, where the delta alternative intentionally keeps stale paths.
func TestPropertyVersionDeltaAgree(t *testing.T) {
	type key struct {
		doc  model.DocID
		x    model.XID
		src  Source
		span model.Interval
	}
	canon := func(ps []Posting) []key {
		out := make([]key, 0, len(ps))
		for _, p := range ps {
			out = append(out, key{p.Doc, p.X, p.Src, p.Span})
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.doc != b.doc {
				return a.doc < b.doc
			}
			if a.x != b.x {
				return a.x < b.x
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.span.Start < b.span.Start
		})
		return out
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := store.New(store.Config{})
		v, d := NewVersionIndex(), NewDeltaIndex()
		words := []string{"alpha", "beta", "gamma", "15", "Napoli"}

		tree := xmltree.NewElement("guide")
		for i := 0; i < 2+r.Intn(3); i++ {
			tree.AppendChild(xmltree.Elem("restaurant",
				xmltree.ElemText("name", words[r.Intn(len(words))]),
				xmltree.ElemText("price", fmt.Sprint(10+r.Intn(5)))))
		}
		id, err := s.Put("doc", tree, 1000)
		if err != nil {
			return false
		}
		cur, _, _ := s.Current(id)
		v.AddVersion(id, cur, nil, 1000)
		d.AddVersion(id, cur, nil, 1000)

		for ver := 2; ver <= 2+r.Intn(6); ver++ {
			next := cur.Clone()
			next.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
			switch r.Intn(3) {
			case 0:
				next.InsertChild(r.Intn(len(next.Children)+1), xmltree.Elem("restaurant",
					xmltree.ElemText("name", words[r.Intn(len(words))])))
			case 1:
				if len(next.Children) > 1 {
					next.RemoveChildAt(r.Intn(len(next.Children)))
				}
			case 2:
				texts := next.SelectPath("restaurant/name")
				if len(texts) > 0 {
					texts[r.Intn(len(texts))].Children[0].Value = words[r.Intn(len(words))]
				}
			}
			at := model.Time(1000 + int64(ver))
			_, script, err := s.Update(id, next, at)
			if err != nil {
				return false
			}
			cur, _, _ = s.Current(id)
			v.AddVersion(id, cur, script, at)
			d.AddVersion(id, cur, script, at)
		}
		for _, w := range append(words, "restaurant", "name", "guide") {
			for _, at := range []model.Time{999, 1000, 1003, 1010, model.Forever - 1} {
				a := canon(v.LookupT(w, at))
				b := canon(d.LookupT(w, at))
				if len(a) != len(b) {
					t.Logf("seed %d: %q@%d: version=%d delta=%d", seed, w, at, len(a), len(b))
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						t.Logf("seed %d: %q@%d: %+v vs %+v", seed, w, at, a[i], b[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentLookupsWithMaintenance exercises the index's locking: four
// readers issue all three lookup flavours while a writer feeds versions.
func TestConcurrentLookupsWithMaintenance(t *testing.T) {
	for _, ix := range indexes() {
		t.Run(ix.Name(), func(t *testing.T) {
			s := store.New(store.Config{})
			id, err := s.Put("doc", guideXML([2]string{"Napoli", "0"}), 1000)
			if err != nil {
				t.Fatal(err)
			}
			cur, _, _ := s.Current(id)
			if err := ix.AddVersion(id, cur, nil, 1000); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			done := make(chan struct{}, 4)
			for r := 0; r < 4; r++ {
				go func() {
					defer func() { done <- struct{}{} }()
					for {
						select {
						case <-stop:
							return
						default:
						}
						ix.Lookup("Napoli")
						ix.LookupT("restaurant", 1005)
						ix.LookupH("name")
						ix.Stats()
					}
				}()
			}
			for i := 1; i <= 50; i++ {
				tree := guideXML([2]string{"Napoli", fmt.Sprint(i)})
				_, script, err := s.Update(id, tree, model.Time(1000+i))
				if err != nil {
					t.Fatal(err)
				}
				cur, _, _ := s.Current(id)
				if err := ix.AddVersion(id, cur, script, model.Time(1000+i)); err != nil {
					t.Fatal(err)
				}
			}
			close(stop)
			for r := 0; r < 4; r++ {
				<-done
			}
			if got := len(ix.Lookup("Napoli")); got != 1 {
				t.Fatalf("final state: %d Napoli postings", got)
			}
		})
	}
}

func BenchmarkVersionIndexLookupCurrent(b *testing.B) {
	// The benchmark word must churn: the price alternates between two
	// values, so each value accumulates ~100 closed postings over the
	// history while at most one is live at a time.
	ix := NewVersionIndex()
	s := store.New(store.Config{})
	id, _ := s.Put("doc", guideXML([2]string{"Napoli", "11"}), 1000)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, 1000)
	prices := []string{"11", "22"}
	for i := 1; i <= 200; i++ {
		tree := guideXML([2]string{"Napoli", prices[i%2]})
		_, script, err := s.Update(id, tree, model.Time(1000+i))
		if err != nil {
			b.Fatal(err)
		}
		cur, _, _ := s.Current(id)
		ix.AddVersion(id, cur, script, model.Time(1000+i))
	}
	if h := len(ix.LookupH("11")); h < 50 {
		b.Fatalf("benchmark word does not churn: %d historic postings", h)
	}
	b.Run("live-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Lookup("11")
		}
	})
	b.Run("history-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.LookupT("11", 1200)
		}
	})
}
