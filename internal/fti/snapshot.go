package fti

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"txmldb/internal/model"
)

// Checkpoint images. Each index flavour can serialize its full in-memory
// state into an opaque blob and restore it, so a checkpointed store reopens
// without reconstructing and re-indexing every historical version. The
// images are gob-encoded mirror structs: the live maps hold unexported keys
// and pointer values, so they are flattened into exported, value-typed
// shapes first.

// versionOpenImage mirrors one (occKey, openEntry) pair of a document.
type versionOpenImage struct {
	X       model.XID
	Src     Source
	Word    string
	Idx     int
	Count   int
	PathSig uint64
}

// versionIndexImage is the serialized form of a VersionIndex.
type versionIndexImage struct {
	Words map[string][]Posting
	Open  map[model.DocID][]versionOpenImage
	Live  map[string][]int
}

// SnapshotState serializes the index for a checkpoint image.
func (ix *VersionIndex) SnapshotState() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	img := versionIndexImage{
		Words: ix.words,
		Open:  make(map[model.DocID][]versionOpenImage, len(ix.open)),
		Live:  ix.liveByWord,
	}
	for doc, docOpen := range ix.open {
		entries := make([]versionOpenImage, 0, len(docOpen))
		for key, ent := range docOpen {
			entries = append(entries, versionOpenImage{
				X: key.x, Src: key.src, Word: key.word,
				Idx: ent.idx, Count: ent.count, PathSig: ent.pathSig,
			})
		}
		img.Open[doc] = entries
	}
	return gobEncode(img)
}

// RestoreState replaces the index contents with a snapshot taken by
// SnapshotState.
func (ix *VersionIndex) RestoreState(data []byte) error {
	var img versionIndexImage
	if err := gobDecode(data, &img); err != nil {
		return fmt.Errorf("fti: restore version index: %w", err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.words = img.Words
	if ix.words == nil {
		ix.words = make(map[string][]Posting)
	}
	ix.liveByWord = img.Live
	if ix.liveByWord == nil {
		ix.liveByWord = make(map[string][]int)
	}
	ix.open = make(map[model.DocID]map[occKey]*openEntry, len(img.Open))
	for doc, entries := range img.Open {
		docOpen := make(map[occKey]*openEntry, len(entries))
		for _, e := range entries {
			docOpen[occKey{x: e.X, src: e.Src, word: e.Word}] = &openEntry{
				idx: e.Idx, count: e.Count, pathSig: e.PathSig,
			}
		}
		ix.open[doc] = docOpen
	}
	return nil
}

// deltaLiveImage mirrors one (occKey, liveEntry) pair of a document.
type deltaLiveImage struct {
	X     model.XID
	Src   Source
	Word  string
	Count int
	Path  []model.XID
}

// deltaIndexImage is the serialized form of a DeltaIndex.
type deltaIndexImage struct {
	Words map[string][]Event
	Live  map[model.DocID][]deltaLiveImage
	Ops   map[string][]OpEvent
}

// SnapshotState serializes the index for a checkpoint image.
func (ix *DeltaIndex) SnapshotState() ([]byte, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	img := deltaIndexImage{
		Words: ix.words,
		Live:  make(map[model.DocID][]deltaLiveImage, len(ix.live)),
		Ops:   ix.opEvents,
	}
	for doc, docLive := range ix.live {
		entries := make([]deltaLiveImage, 0, len(docLive))
		for key, ent := range docLive {
			entries = append(entries, deltaLiveImage{
				X: key.x, Src: key.src, Word: key.word,
				Count: ent.count, Path: ent.path,
			})
		}
		img.Live[doc] = entries
	}
	return gobEncode(img)
}

// RestoreState replaces the index contents with a snapshot taken by
// SnapshotState.
func (ix *DeltaIndex) RestoreState(data []byte) error {
	var img deltaIndexImage
	if err := gobDecode(data, &img); err != nil {
		return fmt.Errorf("fti: restore delta index: %w", err)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.words = img.Words
	if ix.words == nil {
		ix.words = make(map[string][]Event)
	}
	ix.opEvents = img.Ops
	if ix.opEvents == nil {
		ix.opEvents = make(map[string][]OpEvent)
	}
	ix.live = make(map[model.DocID]map[occKey]*liveEntry, len(img.Live))
	for doc, entries := range img.Live {
		docLive := make(map[occKey]*liveEntry, len(entries))
		for _, e := range entries {
			docLive[occKey{x: e.X, src: e.Src, word: e.Word}] = &liveEntry{
				count: e.Count, path: e.Path,
			}
		}
		ix.live[doc] = docLive
	}
	return nil
}

// bothIndexImage is the serialized form of a BothIndex: the two sides'
// images, nested.
type bothIndexImage struct {
	Version []byte
	Delta   []byte
}

// SnapshotState serializes both sides for a checkpoint image.
func (ix *BothIndex) SnapshotState() ([]byte, error) {
	v, err := ix.Version.SnapshotState()
	if err != nil {
		return nil, err
	}
	d, err := ix.Delta.SnapshotState()
	if err != nil {
		return nil, err
	}
	return gobEncode(bothIndexImage{Version: v, Delta: d})
}

// RestoreState replaces both sides with a snapshot taken by SnapshotState.
func (ix *BothIndex) RestoreState(data []byte) error {
	var img bothIndexImage
	if err := gobDecode(data, &img); err != nil {
		return fmt.Errorf("fti: restore both index: %w", err)
	}
	if err := ix.Version.RestoreState(img.Version); err != nil {
		return err
	}
	return ix.Delta.RestoreState(img.Delta)
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
