// Package fti implements the temporal full-text index of Section 7.2 of the
// paper: an inverted-list index over all words in the documents, including
// element names, whose postings carry the information needed to determine
// hierarchical relationships (the ancestor XID chain) and temporal validity.
//
// The paper discusses three alternatives for indexing versioned content:
//
//  1. index the contents of the versions   → VersionIndex
//  2. index the contents of the delta documents → DeltaIndex
//  3. index both → BothIndex
//
// and chooses the first; all three are implemented here behind the Index
// interface so that experiment C5 can compare them quantitatively.
package fti

import (
	"fmt"
	"strings"
	"unicode"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// Source distinguishes where in the document a word occurred. PatternScan
// needs it: a pattern step "price" must match elements *named* price, not
// elements containing the text "price".
type Source uint8

const (
	// SrcName is an element name occurrence.
	SrcName Source = iota
	// SrcText is a word inside a text node; the posting's element is the
	// text node's parent.
	SrcText
	// SrcAttr is a word inside an attribute name or value.
	SrcAttr
)

func (s Source) String() string {
	switch s {
	case SrcName:
		return "name"
	case SrcText:
		return "text"
	case SrcAttr:
		return "attr"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Posting records that a document element contained a word during a
// transaction-time interval. Path is the element's XID chain from the
// element itself up to the document root; structural joins use it to decide
// isParentOf / isAscendantOf relationships without touching the document.
type Posting struct {
	Doc  model.DocID
	X    model.XID
	Path []model.XID
	Src  Source
	Span model.Interval
}

// TEID returns the temporal identifier of the posting's element at time t.
func (p Posting) TEID(t model.Time) model.TEID {
	return model.TEID{E: model.EID{Doc: p.Doc, X: p.X}, T: t}
}

// ParentXID returns the XID of the element's parent, or 0 for a root.
func (p Posting) ParentXID() model.XID {
	if len(p.Path) < 2 {
		return 0
	}
	return p.Path[1]
}

// HasAncestor reports whether the element with XID a is a proper ancestor
// of the posting's element.
func (p Posting) HasAncestor(a model.XID) bool {
	for _, x := range p.Path[1:] {
		if x == a {
			return true
		}
	}
	return false
}

// Stats describes the size and composition of an index.
type Stats struct {
	// Words is the number of distinct indexed words.
	Words int
	// Postings is the total number of postings or events, including
	// operation-keyword postings for delta indexing.
	Postings int
	// Open is the number of currently valid postings (version indexing).
	Open int
	// OpKeywordPostings counts postings whose word is a delta operation
	// keyword ("insert", "delete", ...), the blow-up the paper warns about.
	OpKeywordPostings int
	// Bytes is a rough estimate of the index's memory footprint.
	Bytes int64
}

// Index is the temporal full-text index interface: the three FTI operations
// of Section 7.2 plus incremental maintenance driven by the version store.
type Index interface {
	// Name identifies the indexing alternative for reports.
	Name() string
	// AddVersion maintains the index after a document version was stored:
	// script is nil for the initial version, otherwise the completed delta
	// that produced newRoot. newRoot is the stored (annotated) version.
	AddVersion(doc model.DocID, newRoot *xmltree.Node, script *diff.Script, t model.Time) error
	// DeleteDoc closes the document's postings at time t; lastRoot is its
	// final version.
	DeleteDoc(doc model.DocID, lastRoot *xmltree.Node, t model.Time) error
	// Lookup returns postings of word in currently valid versions
	// (FTI_lookup in the paper).
	Lookup(word string) []Posting
	// LookupT returns postings of word valid at time t (FTI_lookup_T).
	LookupT(word string, t model.Time) []Posting
	// LookupH returns all postings of word over the whole history
	// (FTI_lookup_H).
	LookupH(word string) []Posting
	// Stats reports index size.
	Stats() Stats
}

// Tokenize splits text into index words: maximal runs of letters and
// digits. Words are indexed exactly as written (no case folding), matching
// the paper's containment-plus-equality-test query strategy.
func Tokenize(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// occurrence is one word occurrence attributed to an owning element.
type occurrence struct {
	word string
	x    model.XID // owning element
	src  Source
}

// nodeOccurrences returns the word occurrences contributed by a single
// node (not its subtree): the element name and attribute words for
// elements, the text tokens (owned by the parent element) for text nodes.
func nodeOccurrences(n *xmltree.Node) []occurrence {
	var out []occurrence
	switch {
	case n.IsElement():
		out = append(out, occurrence{word: n.Name, x: n.XID, src: SrcName})
		for _, a := range n.Attrs {
			for _, w := range Tokenize(a.Name) {
				out = append(out, occurrence{word: w, x: n.XID, src: SrcAttr})
			}
			for _, w := range Tokenize(a.Value) {
				out = append(out, occurrence{word: w, x: n.XID, src: SrcAttr})
			}
		}
	case n.IsText() && n.Parent != nil:
		for _, w := range Tokenize(n.Value) {
			out = append(out, occurrence{word: w, x: n.Parent.XID, src: SrcText})
		}
	}
	return out
}

// subtreeOccurrences returns the occurrences of the whole subtree. For a
// detached text payload (a deleted lone text node), owner is used as the
// parent element.
func subtreeOccurrences(n *xmltree.Node, owner model.XID) []occurrence {
	var out []occurrence
	if n.IsText() && n.Parent == nil {
		for _, w := range Tokenize(n.Value) {
			out = append(out, occurrence{word: w, x: owner, src: SrcText})
		}
		return out
	}
	n.Walk(func(d *xmltree.Node) bool {
		out = append(out, nodeOccurrences(d)...)
		return true
	})
	return out
}

// pathOf returns the XID chain of the element, self first, root last.
func pathOf(n *xmltree.Node) []model.XID {
	var out []model.XID
	for p := n; p != nil; p = p.Parent {
		out = append(out, p.XID)
	}
	return out
}

func postingBytes(word string, pathLen int) int64 {
	// word share + struct + path slice, a deliberate back-of-envelope
	// estimate used only for the size comparison in experiment C5.
	return int64(len(word)) + 40 + int64(8*pathLen)
}
