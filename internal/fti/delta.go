package fti

import (
	"sort"
	"sync"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// DeltaIndex indexes the contents of the delta documents — the second
// alternative of Section 7.2: "indexing the operations, e.g., update, move
// and delete information directly in the text index".
//
// Content words are stored as insert/delete event streams per element; a
// temporal lookup replays the events. In addition, every operation
// contributes postings for its operation keyword ("insert", "delete",
// "update", "move", "rename"), which is what lets queries such as
// delete/restaurant/name/Napoli be answered directly — and what the paper
// predicts "would result in extremely many instances of the delta
// keywords": experiment C5 measures exactly that.
//
// Known limitation, shared with the paper's sketch: a pure move does not
// change word containment, so it produces only an operation-keyword
// posting; the paths stored with older insert events are not rewritten.
type DeltaIndex struct {
	mu    sync.RWMutex
	words map[string][]Event
	// live tracks occurrence counts so that removing one of two equal
	// words under an element does not emit a spurious delete event.
	live map[model.DocID]map[occKey]*liveEntry
	// opEvents are the operation-keyword postings, kept per keyword.
	opEvents map[string][]OpEvent
}

type liveEntry struct {
	count int
	path  []model.XID
}

// Event is one content change recorded by the delta index.
type Event struct {
	Doc    model.DocID
	X      model.XID
	Path   []model.XID
	Src    Source
	T      model.Time
	Insert bool // true = word appeared, false = word disappeared
}

// OpEvent is one operation-keyword posting: operation kind plus the target
// element and version timestamp, supporting change-oriented queries.
type OpEvent struct {
	Doc model.DocID
	X   model.XID
	T   model.Time
}

// NewDeltaIndex returns an empty delta-content index.
func NewDeltaIndex() *DeltaIndex {
	return &DeltaIndex{
		words:    make(map[string][]Event),
		live:     make(map[model.DocID]map[occKey]*liveEntry),
		opEvents: make(map[string][]OpEvent),
	}
}

// Name implements Index.
func (ix *DeltaIndex) Name() string { return "delta-content" }

// AddVersion implements Index.
func (ix *DeltaIndex) AddVersion(doc model.DocID, newRoot *xmltree.Node, script *diff.Script, t model.Time) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	docLive := ix.live[doc]
	if docLive == nil {
		docLive = make(map[occKey]*liveEntry)
		ix.live[doc] = docLive
	}
	if script == nil {
		// Initial version: everything is an insertion.
		ix.insertSubtree(doc, docLive, newRoot, t)
		ix.opEvents["insert"] = append(ix.opEvents["insert"], OpEvent{Doc: doc, X: newRoot.XID, T: t})
		return nil
	}
	idx := make(map[model.XID]*xmltree.Node)
	newRoot.Walk(func(n *xmltree.Node) bool {
		idx[n.XID] = n
		return true
	})
	for _, op := range script.Ops {
		ix.opEvents[op.Kind.String()] = append(ix.opEvents[op.Kind.String()],
			OpEvent{Doc: doc, X: opTarget(op), T: t})
		switch op.Kind {
		case diff.OpInsert:
			// Index from the stored tree so paths reflect the new version.
			if n := idx[op.Node.XID]; n != nil {
				ix.insertSubtree(doc, docLive, n, t)
			}
		case diff.OpDelete:
			for _, o := range subtreeOccurrences(op.Node, op.OldParent) {
				ix.removeOcc(doc, docLive, occKey{x: o.x, src: o.src, word: o.word}, t)
			}
		case diff.OpUpdateText:
			n := idx[op.XID]
			if n == nil || n.Parent == nil {
				continue
			}
			owner := n.Parent
			for _, w := range Tokenize(op.OldValue) {
				ix.removeOcc(doc, docLive, occKey{x: owner.XID, src: SrcText, word: w}, t)
			}
			for _, w := range Tokenize(op.NewValue) {
				ix.addOcc(doc, docLive, occKey{x: owner.XID, src: SrcText, word: w}, pathOf(owner), t)
			}
		case diff.OpUpdateAttrs:
			n := idx[op.XID]
			if n == nil {
				continue
			}
			for _, a := range op.OldAttrs {
				for _, w := range append(Tokenize(a.Name), Tokenize(a.Value)...) {
					ix.removeOcc(doc, docLive, occKey{x: op.XID, src: SrcAttr, word: w}, t)
				}
			}
			for _, a := range op.NewAttrs {
				for _, w := range append(Tokenize(a.Name), Tokenize(a.Value)...) {
					ix.addOcc(doc, docLive, occKey{x: op.XID, src: SrcAttr, word: w}, pathOf(n), t)
				}
			}
		case diff.OpRename:
			n := idx[op.XID]
			if n == nil {
				continue
			}
			ix.removeOcc(doc, docLive, occKey{x: op.XID, src: SrcName, word: op.OldValue}, t)
			ix.addOcc(doc, docLive, occKey{x: op.XID, src: SrcName, word: op.NewValue}, pathOf(n), t)
		case diff.OpMove:
			// Containment unchanged; only the keyword posting above.
		}
	}
	return nil
}

func opTarget(op diff.Op) model.XID {
	if op.Kind == diff.OpInsert {
		return op.Node.XID
	}
	return op.XID
}

func (ix *DeltaIndex) insertSubtree(doc model.DocID, docLive map[occKey]*liveEntry, n *xmltree.Node, t model.Time) {
	n.Walk(func(d *xmltree.Node) bool {
		for _, o := range nodeOccurrences(d) {
			owner := d
			if d.IsText() {
				owner = d.Parent
			}
			ix.addOcc(doc, docLive, occKey{x: o.x, src: o.src, word: o.word}, pathOf(owner), t)
		}
		return true
	})
}

func (ix *DeltaIndex) addOcc(doc model.DocID, docLive map[occKey]*liveEntry, key occKey, path []model.XID, t model.Time) {
	ent := docLive[key]
	if ent != nil {
		ent.count++
		return
	}
	docLive[key] = &liveEntry{count: 1, path: path}
	ix.words[key.word] = append(ix.words[key.word], Event{
		Doc: doc, X: key.x, Path: path, Src: key.src, T: t, Insert: true,
	})
}

func (ix *DeltaIndex) removeOcc(doc model.DocID, docLive map[occKey]*liveEntry, key occKey, t model.Time) {
	ent := docLive[key]
	if ent == nil {
		return // occurrence unknown; tolerate partial information
	}
	ent.count--
	if ent.count > 0 {
		return
	}
	delete(docLive, key)
	ix.words[key.word] = append(ix.words[key.word], Event{
		Doc: doc, X: key.x, Path: ent.path, Src: key.src, T: t, Insert: false,
	})
}

// DeleteDoc implements Index.
func (ix *DeltaIndex) DeleteDoc(doc model.DocID, _ *xmltree.Node, t model.Time) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	docLive := ix.live[doc]
	keys := make([]occKey, 0, len(docLive))
	for key := range docLive {
		keys = append(keys, key)
	}
	// Deterministic event order for reproducible benchmarks.
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.x != b.x {
			return a.x < b.x
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.word < b.word
	})
	for _, key := range keys {
		ent := docLive[key]
		ix.words[key.word] = append(ix.words[key.word], Event{
			Doc: doc, X: key.x, Path: ent.path, Src: key.src, T: t, Insert: false,
		})
	}
	delete(ix.live, doc)
	ix.opEvents["deletedoc"] = append(ix.opEvents["deletedoc"], OpEvent{Doc: doc, T: t})
	return nil
}

// replay converts the word's event stream into validity-interval postings.
func (ix *DeltaIndex) replay(word string) []Posting {
	events := ix.words[word]
	type pending struct {
		idx int
	}
	open := make(map[struct {
		doc model.DocID
		x   model.XID
		src Source
	}]pending)
	var out []Posting
	for _, ev := range events {
		key := struct {
			doc model.DocID
			x   model.XID
			src Source
		}{ev.Doc, ev.X, ev.Src}
		if ev.Insert {
			if _, dup := open[key]; dup {
				continue
			}
			out = append(out, Posting{
				Doc: ev.Doc, X: ev.X, Path: ev.Path, Src: ev.Src,
				Span: model.Interval{Start: ev.T, End: model.Forever},
			})
			open[key] = pending{idx: len(out) - 1}
		} else if p, ok := open[key]; ok {
			out[p.idx].Span.End = ev.T
			delete(open, key)
		}
	}
	return out
}

// Lookup implements Index. Replaying the whole event stream on every lookup
// is the cost profile the paper predicts for delta-content indexing: "it is
// less efficient for other access patterns, e.g., query on snapshot
// contents".
func (ix *DeltaIndex) Lookup(word string) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for _, p := range ix.replay(word) {
		if p.Span.End == model.Forever {
			out = append(out, p)
		}
	}
	return out
}

// LookupT implements Index.
func (ix *DeltaIndex) LookupT(word string, t model.Time) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for _, p := range ix.replay(word) {
		if p.Span.Contains(t) {
			out = append(out, p)
		}
	}
	return out
}

// LookupH implements Index.
func (ix *DeltaIndex) LookupH(word string) []Posting {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for _, p := range ix.replay(word) {
		if !p.Span.Empty() {
			out = append(out, p)
		}
	}
	return out
}

// Events exposes the raw change events of a word, the access path for
// change-oriented queries ("when did Napoli disappear?").
func (ix *DeltaIndex) Events(word string) []Event {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]Event(nil), ix.words[word]...)
}

// OpEvents returns the postings of an operation keyword, e.g. "delete".
func (ix *DeltaIndex) OpEvents(kind string) []OpEvent {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]OpEvent(nil), ix.opEvents[kind]...)
}

// Stats implements Index.
func (ix *DeltaIndex) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var st Stats
	st.Words = len(ix.words)
	for w, evs := range ix.words {
		st.Postings += len(evs)
		for _, ev := range evs {
			st.Bytes += postingBytes(w, len(ev.Path))
		}
	}
	for kw, evs := range ix.opEvents {
		st.Postings += len(evs)
		st.OpKeywordPostings += len(evs)
		st.Bytes += int64(len(evs)) * postingBytes(kw, 0)
	}
	for _, docLive := range ix.live {
		st.Open += len(docLive)
	}
	return st
}

// BothIndex maintains a VersionIndex and a DeltaIndex side by side — the
// paper's third alternative: "efficient for both snapshot and change based
// queries, but will result in larger indexes and higher update costs".
// Lookups are served by the version index; change events by the delta
// index.
type BothIndex struct {
	Version *VersionIndex
	Delta   *DeltaIndex
}

// NewBothIndex returns the combined index.
func NewBothIndex() *BothIndex {
	return &BothIndex{Version: NewVersionIndex(), Delta: NewDeltaIndex()}
}

// Name implements Index.
func (ix *BothIndex) Name() string { return "both" }

// AddVersion implements Index.
func (ix *BothIndex) AddVersion(doc model.DocID, newRoot *xmltree.Node, script *diff.Script, t model.Time) error {
	if err := ix.Version.AddVersion(doc, newRoot, script, t); err != nil {
		return err
	}
	return ix.Delta.AddVersion(doc, newRoot, script, t)
}

// DeleteDoc implements Index.
func (ix *BothIndex) DeleteDoc(doc model.DocID, lastRoot *xmltree.Node, t model.Time) error {
	if err := ix.Version.DeleteDoc(doc, lastRoot, t); err != nil {
		return err
	}
	return ix.Delta.DeleteDoc(doc, lastRoot, t)
}

// Lookup implements Index.
func (ix *BothIndex) Lookup(word string) []Posting { return ix.Version.Lookup(word) }

// LookupT implements Index.
func (ix *BothIndex) LookupT(word string, t model.Time) []Posting { return ix.Version.LookupT(word, t) }

// LookupH implements Index.
func (ix *BothIndex) LookupH(word string) []Posting { return ix.Version.LookupH(word) }

// Events exposes the delta side's change events.
func (ix *BothIndex) Events(word string) []Event { return ix.Delta.Events(word) }

// Stats implements Index.
func (ix *BothIndex) Stats() Stats {
	v, d := ix.Version.Stats(), ix.Delta.Stats()
	return Stats{
		Words:             max(v.Words, d.Words),
		Postings:          v.Postings + d.Postings,
		Open:              v.Open,
		OpKeywordPostings: d.OpKeywordPostings,
		Bytes:             v.Bytes + d.Bytes,
	}
}
