package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// W2 measures write-path scaling: sustained commit throughput under
// concurrent writers with WAL group commit, against the synchronous
// fsync-per-commit baseline. Without a commit window the durability
// barrier serializes every writer — adding writers moves the queue, not
// the throughput. With a window, commits arriving together share one
// fsync, so throughput scales with the writer count at a fixed barrier
// rate. Epoch-pinned readers run inside every workload and their
// observations are re-checked against the quiesced store: a reader
// pinned at epoch E must see byte-identical history before and after the
// writers it raced have finished.

// W2Window is the group-commit window the batched W2 rows run with.
const W2Window = time.Millisecond

// W2CommitsPerWriter is each writer's update count per W2 row.
const W2CommitsPerWriter = 50

// w2Run is one measured workload configuration.
type w2Run struct {
	writers int
	window  time.Duration
	commits int64
	elapsed time.Duration
	stats   pagestore.GroupStats
	batched bool
	pinned  int // pinned-reader observations verified against the oracle
}

func (r w2Run) rate() float64 { return float64(r.commits) / r.elapsed.Seconds() }

// w2URL and w2Tree give writer w a private document with deterministic
// per-version content, so oracle checks can compare bytes.
func w2URL(w int) string { return fmt.Sprintf("w2-writer-%d.xml", w) }

func w2Tree(w, ver int) *xmltree.Node {
	return xmltree.Elem("guide", xmltree.Elem("restaurant",
		xmltree.ElemText("name", fmt.Sprintf("W2_%d_%d", w, ver)),
		xmltree.ElemText("price", fmt.Sprint(5+(w*31+ver*7)%40))))
}

// w2History renders a pinned history observation for byte comparison.
func w2History(db *core.DB, ctx context.Context, id model.DocID) (string, error) {
	hist, err := db.DocHistoryContext(ctx, id, model.Always)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, vt := range hist {
		fmt.Fprintf(&b, "%d [%v,%v) %s\n", vt.Info.Ver, vt.Info.Stamp, vt.Info.End, vt.Root.String())
	}
	return b.String(), nil
}

// w2Workload runs one configuration: `writers` concurrent updaters, each
// committing W2CommitsPerWriter versions of its own document, with two
// epoch-pinned readers racing them. It returns the measured run after
// verifying every pinned observation against the quiesced store and a
// clean Fsck.
func w2Workload(writers int, window time.Duration) (w2Run, error) {
	run := w2Run{writers: writers, window: window, batched: window > 0}
	dir, err := os.MkdirTemp("", "txmldb-w2-")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)
	db, err := core.OpenDurable(core.Config{
		Store: store.Config{Pages: pagestore.Config{GroupWindow: window}},
		Clock: func() model.Time { return timeAt(W2CommitsPerWriter + 2) },
	}, dir)
	if err != nil {
		return run, err
	}
	defer db.Close()

	ids := make([]model.DocID, writers)
	for w := range ids {
		if ids[w], err = db.Put(w2URL(w), w2Tree(w, 1), timeAt(1)); err != nil {
			return run, err
		}
	}

	// Pinned readers race the writers and record (pin, doc, rendered
	// history); the oracle check replays each observation after quiesce.
	type observation struct {
		pin      uint64
		doc      model.DocID
		rendered string
	}
	var (
		obsMu sync.Mutex
		obs   []observation
		stop  = make(chan struct{})
		rdWG  sync.WaitGroup
		rdErr atomic.Value
	)
	for r := 0; r < 2; r++ {
		rdWG.Add(1)
		go func(r int) {
			defer rdWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pin := db.Epoch()
				ctx := store.WithEpoch(context.Background(), pin)
				id := ids[(r+i)%len(ids)]
				s, err := w2History(db, ctx, id)
				if err != nil {
					rdErr.Store(fmt.Errorf("pinned reader %d at epoch %d: %w", r, pin, err))
					return
				}
				obsMu.Lock()
				obs = append(obs, observation{pin, id, s})
				obsMu.Unlock()
			}
		}(r)
	}

	var wrWG sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wrWG.Add(1)
		go func(w int) {
			defer wrWG.Done()
			for v := 2; v <= W2CommitsPerWriter+1; v++ {
				if _, _, err := db.Update(ids[w], w2Tree(w, v), timeAt(v)); err != nil {
					errs[w] = fmt.Errorf("writer %d version %d: %w", w, v, err)
					return
				}
			}
		}(w)
	}
	wrWG.Wait()
	run.elapsed = time.Since(start)
	close(stop)
	rdWG.Wait()
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	if err, ok := rdErr.Load().(error); ok {
		return run, err
	}
	run.commits = int64(writers) * W2CommitsPerWriter

	// Oracle: with the writers quiesced, every pinned observation must
	// reproduce byte-identically at its recorded epoch.
	for _, o := range obs {
		ctx := store.WithEpoch(context.Background(), o.pin)
		s, err := w2History(db, ctx, o.doc)
		if err != nil {
			return run, fmt.Errorf("oracle replay at epoch %d: %w", o.pin, err)
		}
		if s != o.rendered {
			return run, fmt.Errorf("snapshot isolation violated: pinned read at epoch %d diverged from the quiesced oracle:\nraced   %q\nquiesced %q", o.pin, o.rendered, s)
		}
	}
	run.pinned = len(obs)
	if rep := db.Fsck(); !rep.Clean() {
		return run, fmt.Errorf("fsck after workload:\n%s", rep)
	}
	run.stats, _ = db.CommitBatchStats()
	return run, nil
}

// W2 runs the write-path scaling experiment: the synchronous single-writer
// baseline, then the batched configuration at each writer count.
func W2(writerCounts []int) (Table, error) {
	t := Table{
		ID:    "W2",
		Title: "write-path scale: WAL group commit under concurrent writers",
		Claim: "a commit window amortizes the WAL fsync across concurrent writers, so sustained commit throughput scales with writer count instead of being bound by the barrier rate, while epoch-pinned readers stay byte-identical to a quiesced oracle",
		Columns: []string{"writers", "window", "commits", "sec", "commits_per_sec",
			"speedup_vs_1w", "fsyncs", "amortization", "max_batch", "pinned_reads"},
	}
	row := func(r w2Run, base float64) {
		window, speedup := "sync", "-"
		fsyncs, amort, maxBatch := "-", "-", "-"
		if r.batched {
			window = r.window.String()
			if base > 0 {
				speedup = fmt.Sprintf("%.2fx", r.rate()/base)
			}
			fsyncs = itoa(r.stats.Batches)
			amort = fmt.Sprintf("%.2f", float64(r.stats.Commits)/float64(r.stats.Batches))
			maxBatch = itoa(r.stats.MaxBatch)
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(r.writers)), window, itoa(r.commits),
			fmt.Sprintf("%.3f", r.elapsed.Seconds()),
			fmt.Sprintf("%.0f", r.rate()), speedup, fsyncs, amort, maxBatch,
			itoa(int64(r.pinned)),
		})
	}

	sync1, err := w2Workload(1, 0)
	if err != nil {
		return t, err
	}
	row(sync1, 0)

	var base, top float64
	var topWriters int
	for i, w := range writerCounts {
		r, err := w2Workload(w, W2Window)
		if err != nil {
			return t, err
		}
		if i == 0 {
			base = r.rate()
		}
		if r.rate() > 0 {
			top = r.rate() / base
			topWriters = w
		}
		row(r, base)
	}
	t.Verdict = fmt.Sprintf("batched throughput scales %.1fx from 1 to %d writers at one fsync per batch window; every pinned read matched the quiesced oracle", top, topWriters)
	return t, nil
}
