package experiments

import (
	"fmt"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/pattern"
	"txmldb/internal/store"
	"txmldb/internal/tdocgen"
)

// InterleavedNativeDB loads the corpus round-robin across documents —
// version v of every document before version v+1 of any — which is how a
// warehouse actually ingests crawled updates, and what scatters one
// document's deltas over the disk.
func InterleavedNativeDB(c CorpusConfig, cfg core.Config) (*core.DB, []model.DocID, error) {
	cfg.Clock = c.clockAfter()
	db := core.Open(cfg)
	g := c.generator()
	hists := make([][]tdocgen.Version, c.Docs)
	for i := range hists {
		hists[i] = g.History(i)
	}
	ids := make([]model.DocID, c.Docs)
	for i := 0; i < c.Docs; i++ {
		id, err := db.Put(g.URL(i), hists[i][0].Tree, hists[i][0].At)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = id
	}
	for v := 1; v < c.Versions; v++ {
		for i := 0; i < c.Docs; i++ {
			if _, _, err := db.Update(ids[i], hists[i][v].Tree, hists[i][v].At); err != nil {
				return nil, nil, err
			}
		}
	}
	return db, ids, nil
}

// C1 compares the native engine against the stratum baseline (Section 1 of
// the paper) on storage size, index size and snapshot-query cost, as the
// number of versions grows.
func C1(versionCounts []int) (Table, error) {
	t := Table{
		ID:    "C1",
		Title: "native temporal engine vs stratum baseline",
		Claim: "storing complete versions costs too much space and temporal query processing through a middleware is costly (§1)",
		Columns: []string{"versions", "native_KB", "stratum_KB", "space_ratio",
			"native_postings", "stratum_postings", "snapshot_native_ms", "snapshot_stratum_ms"},
	}
	base := CorpusConfig{Docs: 8, Elems: 12, Ops: 3, Seed: 1}
	var lastRatio float64
	for _, vc := range versionCounts {
		c := base
		c.Versions = vc
		ndb, _, err := NativeDB(c, core.Config{})
		if err != nil {
			return t, err
		}
		sdb, _, err := StratumDB(c, pagestore.Config{})
		if err != nil {
			return t, err
		}
		at := timeAt(vc / 2)
		pat := RestaurantPattern()

		const reps = 50
		t0 := time.Now()
		var nms []pattern.Match
		for i := 0; i < reps; i++ {
			if nms, err = ndb.ScanT(pat, at); err != nil {
				return t, err
			}
		}
		nativeMs := msPerRep(t0, reps)
		t0 = time.Now()
		var sms []pattern.Match
		for i := 0; i < reps; i++ {
			if sms, err = sdb.SnapshotScan(pat, at); err != nil {
				return t, err
			}
		}
		stratumMs := msPerRep(t0, reps)
		if len(nms) != len(sms) {
			return t, fmt.Errorf("C1: engines disagree: %d vs %d matches", len(nms), len(sms))
		}
		nb := ndb.Store().Pages().BytesStored()
		sb := sdb.Pages().BytesStored()
		lastRatio = float64(sb) / float64(nb)
		t.Rows = append(t.Rows, []string{
			itoa(vc),
			fmt.Sprintf("%.1f", float64(nb)/1024),
			fmt.Sprintf("%.1f", float64(sb)/1024),
			fmt.Sprintf("%.2fx", lastRatio),
			itoa(ndb.FTI().Stats().Postings),
			itoa(sdb.IndexStats().Postings),
			nativeMs, stratumMs,
		})
	}
	t.Verdict = fmt.Sprintf("stratum stores %.1fx the bytes at the longest history; ratio grows with versions as the paper predicts", lastRatio)
	return t, nil
}

// C2 validates Section 6.2's observation on Q2: aggregate queries need no
// reconstruction, so delta-only storage of old versions costs them nothing.
func C2() (Table, error) {
	t := Table{
		ID:      "C2",
		Title:   "aggregate (Q2) vs element retrieval (Q1) on old snapshots",
		Claim:   "reconstruction of the documents is not needed for counts; delta storage does not hurt such queries (§6.2)",
		Columns: []string{"query", "snapshot_age_versions", "reconstructions", "delta_reads", "ms"},
	}
	c := CorpusConfig{Docs: 4, Elems: 15, Versions: 32, Ops: 3, Seed: 2}
	db, ids, err := NativeDB(c, core.Config{})
	if err != nil {
		return t, err
	}
	url := tdocgen.New(tdocgen.Config{Docs: c.Docs}).URL(0)
	_ = ids
	for _, age := range []int{1, 16, 31} {
		at := timeAt(c.Versions - age)
		dateLit := at.Std().Format("02/01/2006")
		for _, q := range []struct {
			name, src string
		}{
			{"Q2 SUM(R)", fmt.Sprintf(`SELECT SUM(R) FROM doc(%q)[%s]/restaurant R`, url, dateLit)},
			{"Q1 SELECT R", fmt.Sprintf(`SELECT R FROM doc(%q)[%s]/restaurant R`, url, dateLit)},
		} {
			db.Store().Pages().ResetStats()
			t0 := time.Now()
			res, err := db.Query(q.src)
			if err != nil {
				return t, fmt.Errorf("C2 %s: %w", q.name, err)
			}
			ms := msSince(t0)
			st := db.Store().Pages().Stats()
			t.Rows = append(t.Rows, []string{
				q.name, itoa(age), itoa(res.Metrics.Reconstructions),
				itoa(st.ExtentRead), ms,
			})
		}
	}
	t.Verdict = "SUM runs with zero reconstructions and zero delta reads at every age; SELECT pays reconstruction growing with age"
	return t, nil
}

// C3 measures Reconstruct cost against version age and shows how
// interspersed snapshots bound it (Section 7.3.3).
func C3() (Table, error) {
	t := Table{
		ID:      "C3",
		Title:   "Reconstruct cost vs version age, with and without snapshots",
		Claim:   "with many deltas reconstruction can be very expensive, but intermediate snapshots cut the chain (§7.3.3)",
		Columns: []string{"snapshot_every", "target_version", "deltas_applied", "extent_reads", "ms"},
	}
	const versions = 128
	c := CorpusConfig{Docs: 1, Elems: 20, Versions: versions, Ops: 2, Seed: 3}
	for _, every := range []int{0, 32, 8} {
		db, ids, err := NativeDB(c, core.Config{Store: store.Config{SnapshotEvery: every}})
		if err != nil {
			return t, err
		}
		for _, target := range []int{127, 96, 64, 16, 1} {
			db.Store().Pages().ResetStats()
			t0 := time.Now()
			if _, err := db.ReconstructVersion(ids[0], model.VersionNo(target)); err != nil {
				return t, err
			}
			ms := msSince(t0)
			st := db.Store().Pages().Stats()
			label := itoa(every)
			if every == 0 {
				label = "none"
			}
			t.Rows = append(t.Rows, []string{
				label, itoa(target), itoa(st.ExtentRead - 1), itoa(st.ExtentRead), ms,
			})
		}
	}
	t.Verdict = "delta reads grow linearly with age without snapshots and are capped near the snapshot interval otherwise"
	return t, nil
}

// C4 compares the paper's CreTime strategies (Section 7.3.6): backward
// traversal from the TEID's version, traversal from the current version
// (EID only), and the auxiliary index.
func C4() (Table, error) {
	t := Table{
		ID:      "C4",
		Title:   "CreTime strategies: traversal from TEID vs from current vs index",
		Claim:   "availability of the timestamp shortens traversal; an additional index avoids delta reads entirely (§7.3.6)",
		Columns: []string{"strategy", "element_created_at_version", "delta_reads", "ms", "result_ok"},
	}
	const versions = 64
	c := CorpusConfig{Docs: 1, Elems: 10, Versions: versions, Ops: 2, Seed: 4}
	db, ids, err := NativeDB(c, core.Config{})
	if err != nil {
		return t, err
	}
	doc := ids[0]
	// Find an element created early in the history via the time index.
	var eid model.EID
	var createdVer int
	for v := 4; v < 16 && eid.X == 0; v++ {
		created := db.TimeIndex().CreatedIn(doc, model.Interval{Start: timeAt(v), End: timeAt(v) + 1})
		for _, cand := range created {
			if del, _ := db.TimeIndex().DelTime(cand); del == model.Forever {
				eid = cand
				createdVer = v
				break
			}
		}
	}
	if eid.X == 0 {
		return t, fmt.Errorf("C4: no early-created surviving element found")
	}
	wantCre := timeAt(createdVer)
	teid := model.TEID{E: eid, T: wantCre + Day/2}

	run := func(name string, f func() (model.Time, error)) error {
		db.Store().Pages().ResetStats()
		t0 := time.Now()
		got, err := f()
		if err != nil {
			return err
		}
		ms := msSince(t0)
		st := db.Store().Pages().Stats()
		t.Rows = append(t.Rows, []string{
			name, itoa(createdVer), itoa(st.ExtentRead), ms, itoa(got == wantCre),
		})
		return nil
	}
	if err := run("traverse from TEID", func() (model.Time, error) {
		return db.Store().CreTimeTraverse(teid)
	}); err != nil {
		return t, err
	}
	if err := run("traverse from current", func() (model.Time, error) {
		return db.Store().CreTimeTraverseFromCurrent(eid)
	}); err != nil {
		return t, err
	}
	if err := run("auxiliary index", func() (model.Time, error) {
		return db.CreTime(eid)
	}); err != nil {
		return t, err
	}
	t.Verdict = "TEID traversal reads only the deltas back to the creating version; EID-only traversal scans the whole chain; the index reads none"
	return t, nil
}

// C5 compares the three FTI maintenance alternatives of Section 7.2.
func C5() (Table, error) {
	t := Table{
		ID:      "C5",
		Title:   "FTI alternatives: version contents vs delta contents vs both",
		Claim:   "delta indexing explodes operation-keyword postings and is less efficient for snapshot queries; both is largest (§7.2)",
		Columns: []string{"alternative", "load_ms", "postings", "op_kw_postings", "index_KB", "snapshot_scan_ms", "history_scan_ms"},
	}
	c := CorpusConfig{Docs: 8, Elems: 15, Versions: 24, Ops: 3, Seed: 5}
	for _, kind := range []core.IndexKind{core.IndexVersions, core.IndexDeltas, core.IndexBoth} {
		t0 := time.Now()
		db, _, err := NativeDB(c, core.Config{Index: kind})
		if err != nil {
			return t, err
		}
		loadMs := msSince(t0)
		st := db.FTI().Stats()
		pat := RestaurantPattern()

		const reps = 20
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.ScanT(pat, timeAt(c.Versions/2)); err != nil {
				return t, err
			}
		}
		snapMs := msPerRep(t0, reps)
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := db.ScanAll(pat); err != nil {
				return t, err
			}
		}
		histMs := msPerRep(t0, reps)
		t.Rows = append(t.Rows, []string{
			kind.String(), loadMs, itoa(st.Postings), itoa(st.OpKeywordPostings),
			fmt.Sprintf("%.1f", float64(st.Bytes)/1024), snapMs, histMs,
		})
	}
	t.Verdict = "delta indexing adds one op-keyword posting per operation and pays event replay on every snapshot lookup; 'both' is the largest and costliest to maintain"
	return t, nil
}

// C6 measures the disk-seek effect of delta clustering (Section 7.2,
// additional notes): reading one document's delta chain after interleaved
// warehouse ingestion.
func C6() (Table, error) {
	t := Table{
		ID:      "C6",
		Title:   "DocHistory disk seeks: unclustered vs clustered delta placement",
		Claim:   "deltas stored unclustered make each delta read a disk seek in the worst case (§7.2)",
		Columns: []string{"placement", "extent_reads", "seeks", "sim_cost_ms"},
	}
	c := CorpusConfig{Docs: 16, Elems: 10, Versions: 32, Ops: 2, Seed: 6}
	for _, placement := range []pagestore.Placement{pagestore.Unclustered, pagestore.Clustered} {
		db, ids, err := InterleavedNativeDB(c, core.Config{
			// NearDistance models cheap short strokes inside an arena: the
			// history is read backwards, so strict forward contiguity would
			// charge both placements alike.
			Store: store.Config{Pages: pagestore.Config{Placement: placement, NearDistance: 16}},
		})
		if err != nil {
			return t, err
		}
		db.Store().Pages().ResetStats()
		if _, err := db.DocHistory(ids[3], model.Always); err != nil {
			return t, err
		}
		st := db.Store().Pages().Stats()
		t.Rows = append(t.Rows, []string{
			placement.String(), itoa(st.ExtentRead), itoa(st.Seeks),
			fmt.Sprintf("%.1f", st.CostMs()),
		})
	}
	t.Verdict = "unclustered placement seeks on essentially every delta read; clustering collapses the seek count"
	return t, nil
}

// C7 shows that TPatternScanAll is a temporal multiway join whose cost
// scales with the full-history posting volume (Section 7.3.2), while the
// snapshot scan's input stays bounded.
func C7(versionCounts []int) (Table, error) {
	t := Table{
		ID:      "C7",
		Title:   "TPatternScanAll vs TPatternScan as history grows",
		Claim:   "TPatternScanAll joins all postings for the whole history — a temporal multiway join over ever-growing inputs (§7.3.2)",
		Columns: []string{"versions", "history_matches", "scanall_ms", "snapshot_matches", "snapshot_ms"},
	}
	base := CorpusConfig{Docs: 4, Elems: 12, Ops: 3, Seed: 7}
	for _, vc := range versionCounts {
		c := base
		c.Versions = vc
		db, _, err := NativeDB(c, core.Config{})
		if err != nil {
			return t, err
		}
		pat := RestaurantPattern()
		const reps = 10
		t0 := time.Now()
		var all []pattern.Match
		for i := 0; i < reps; i++ {
			if all, err = db.ScanAll(pat); err != nil {
				return t, err
			}
		}
		allMs := msPerRep(t0, reps)
		t0 = time.Now()
		var snap []pattern.Match
		for i := 0; i < reps; i++ {
			if snap, err = db.ScanT(pat, timeAt(vc/2)); err != nil {
				return t, err
			}
		}
		snapMs := msPerRep(t0, reps)
		t.Rows = append(t.Rows, []string{
			itoa(vc), itoa(len(all)), allMs, itoa(len(snap)), snapMs,
		})
	}
	t.Verdict = "ScanAll match count and time grow with history length while the snapshot scan stays flat"
	return t, nil
}

// C8 verifies that PreviousTS/NextTS/CurrentTS are pure delta-index
// lookups with no delta reads (Section 7.3.7).
func C8() (Table, error) {
	t := Table{
		ID:      "C8",
		Title:   "PreviousTS/NextTS/CurrentTS are delta-index lookups",
		Claim:   "these operators are evaluated by a lookup in the delta index; no version data is read (§7.3.7)",
		Columns: []string{"operator", "history_versions", "extent_reads", "ns_per_op"},
	}
	c := CorpusConfig{Docs: 1, Elems: 10, Versions: 256, Ops: 1, Seed: 8}
	db, ids, err := NativeDB(c, core.Config{})
	if err != nil {
		return t, err
	}
	doc := ids[0]
	info, err := db.Info(doc)
	if err != nil {
		return t, err
	}
	teid := model.TEID{E: model.EID{Doc: doc, X: info.RootXID}, T: timeAt(128)}
	const reps = 1000
	ops := []struct {
		name string
		f    func() error
	}{
		{"PreviousTS", func() error { _, err := db.PreviousTS(teid); return err }},
		{"NextTS", func() error { _, err := db.NextTS(teid); return err }},
		{"CurrentTS", func() error { _, err := db.CurrentTS(teid.E); return err }},
	}
	for _, op := range ops {
		db.Store().Pages().ResetStats()
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if err := op.f(); err != nil {
				return t, err
			}
		}
		perOp := time.Since(t0).Nanoseconds() / reps
		st := db.Store().Pages().Stats()
		t.Rows = append(t.Rows, []string{op.name, itoa(256), itoa(st.ExtentRead), itoa(perOp)})
	}
	t.Verdict = "all three operators touch zero extents regardless of history length"
	return t, nil
}

// C9 confirms Section 7.3.5: ElementHistory cannot be cheaper in I/O than
// DocHistory — the whole deltas are read either way.
func C9() (Table, error) {
	t := Table{
		ID:      "C9",
		Title:   "ElementHistory vs DocHistory I/O",
		Claim:   "even if only the desired subtrees were reconstructed, the whole deltas would have to be read anyway (§7.3.5)",
		Columns: []string{"operator", "versions_returned", "extent_reads", "ms"},
	}
	c := CorpusConfig{Docs: 1, Elems: 12, Versions: 64, Ops: 2, Seed: 9}
	db, ids, err := NativeDB(c, core.Config{})
	if err != nil {
		return t, err
	}
	doc := ids[0]
	cur, _, err := db.Current(doc)
	if err != nil {
		return t, err
	}
	rests := cur.ChildElements("restaurant")
	if len(rests) == 0 {
		return t, fmt.Errorf("C9: empty document")
	}
	eid := model.EID{Doc: doc, X: rests[0].XID}

	db.Store().Pages().ResetStats()
	t0 := time.Now()
	dh, err := db.DocHistory(doc, model.Always)
	if err != nil {
		return t, err
	}
	docMs := msSince(t0)
	docIO := db.Store().Pages().Stats().ExtentRead

	db.Store().Pages().ResetStats()
	t0 = time.Now()
	eh, err := db.ElementHistory(eid, model.Always)
	if err != nil {
		return t, err
	}
	elemMs := msSince(t0)
	elemIO := db.Store().Pages().Stats().ExtentRead

	t.Rows = append(t.Rows, []string{"DocHistory", itoa(len(dh)), itoa(docIO), docMs})
	t.Rows = append(t.Rows, []string{"ElementHistory", itoa(len(eh)), itoa(elemIO), elemMs})
	t.Verdict = "ElementHistory reads exactly as many extents as DocHistory: subtree filtering saves no I/O"
	return t, nil
}

// C10 is an ablation of this implementation's Section 8 extension: serving
// current-state lookups (FTI_lookup) from the live posting set instead of
// scanning the word's full history list. The workload is update-only, so
// the current state stays the same size while the history — and with it
// the posting lists of churning content words — keeps growing. Both paths
// return the same postings.
func C10(versionCounts []int) (Table, error) {
	t := Table{
		ID:      "C10",
		Title:   "FTI_lookup: live posting set vs history scan (extension)",
		Claim:   "future work: new index types should reduce lookup cost (§8); a live set makes current lookups O(live), not O(history)",
		Columns: []string{"versions", "history_postings", "live_postings", "live_us_per_lookup", "scan_us_per_lookup"},
	}
	const word = "w0000" // the most frequent Zipf word: heavy churn
	for _, vc := range versionCounts {
		db := core.Open(core.Config{Clock: func() model.Time { return timeAt(vc + 2) }})
		g := tdocgen.New(tdocgen.Config{
			Seed: 10, Docs: 8, InitialElems: 12, Versions: vc, OpsPerVersion: 3,
			UpdateWeight: 1, // update-only: constant current size, growing history
			Start:        Start, Step: Day,
		})
		if _, err := g.Load(db); err != nil {
			return t, err
		}
		ix := db.FTI()
		historyLen := len(ix.LookupH(word))
		now := db.Now()

		const reps = 200
		t0 := time.Now()
		var live []fti.Posting
		for i := 0; i < reps; i++ {
			live = ix.Lookup(word)
		}
		liveUs := float64(time.Since(t0).Microseconds()) / reps
		t0 = time.Now()
		var scanned []fti.Posting
		for i := 0; i < reps; i++ {
			scanned = ix.LookupT(word, now)
		}
		scanUs := float64(time.Since(t0).Microseconds()) / reps
		if len(live) != len(scanned) {
			return t, fmt.Errorf("C10: live (%d) and scanned (%d) postings disagree", len(live), len(scanned))
		}
		t.Rows = append(t.Rows, []string{
			itoa(vc), itoa(historyLen), itoa(len(live)),
			fmt.Sprintf("%.1f", liveUs), fmt.Sprintf("%.1f", scanUs),
		})
	}
	t.Verdict = "live postings stay flat while the history list grows; the live-set lookup's cost tracks the former, the scan's the latter"
	return t, nil
}

// All runs every claim experiment in order.
func All() ([]Table, error) {
	var out []Table
	runs := []func() (Table, error){
		func() (Table, error) { return C1([]int{4, 16, 64}) },
		C2, C3, C4, C5, C6,
		func() (Table, error) { return C7([]int{8, 32, 128}) },
		C8, C9,
		func() (Table, error) { return C10([]int{8, 32, 128}) },
		C11,
	}
	for _, run := range runs {
		tbl, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
