package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/server"
	"txmldb/internal/shard"
	"txmldb/internal/store"
)

// ShardedDB loads the parallel corpus into an n-shard router over the same
// latency-modelled device as P1, one device per shard. Each shard engine
// runs sequentially (Workers: 1) and the router's scatter-gather pool is
// exactly n wide, so measured scaling is attributable to the sharding
// fan-out alone — not to intra-shard parallelism.
func ShardedDB(shards int) (*shard.Router, error) {
	c := ParallelCorpus
	r := shard.Open(shard.Config{
		Shards:  shards,
		Workers: shards,
		Engine: func(int) core.Config {
			return core.Config{
				Workers: 1,
				Clock:   c.clockAfter(),
				Store:   store.Config{Pages: ParallelPages},
			}
		},
	})
	if _, err := c.generator().Load(r); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// S3 measures read scaling across 1, 2, 4 and 8 document-partitioned
// shards on two workloads:
//
//   - scan: the multi-document scan→materialize pipeline of P1
//     (TPatternScanAll over the 64-document corpus, then ReconstructBatch
//     of every matched element version) — the workload sharding targets,
//     since each shard's simulated device seeks independently and the
//     router overlaps them. An untimed pass at every shard count doubles
//     as the determinism check: output must be byte-identical to one shard.
//   - served: the S1 serving workload over the same sharded engine — an
//     in-process txserved with concurrent HTTP clients issuing single-
//     document snapshot queries spread across the corpus.
//
// The served numbers are reported honestly: in one process a single
// engine already overlaps independent client reads (device waits release
// the pagestore lock), so served qps is roughly flat with shard count —
// in-process sharding buys WAL/checkpoint isolation and partitioned
// admission, not single-box serving throughput. The scan pipeline is
// where the fan-out pays.
func S3(shardCounts []int, clients, perClient int) (Table, error) {
	t := Table{
		ID:    "S3",
		Title: "sharded read scaling: multi-document scan and served queries vs. shard count",
		Claim: "DocID-partitioned engines scatter-gather multi-document scans with near-linear speedup and byte-identical results at every shard count",
		Columns: []string{"shards", "scan_ms_per_op", "scan_speedup", "identical",
			"served_qps", "served_p99_ms"},
	}
	const reps = 5
	var baseMs float64
	var baseline string
	for _, n := range shardCounts {
		r, err := ShardedDB(n)
		if err != nil {
			return t, err
		}
		pat := RestaurantPattern()
		run := func() (string, error) {
			teids, err := r.TPatternScanAll(pat)
			if err != nil {
				return "", err
			}
			trees, err := r.ReconstructBatch(context.Background(), teids)
			if err != nil {
				return "", err
			}
			var sig string
			for i, node := range trees {
				sig += teids[i].String() + "=" + node.String() + "\n"
			}
			return sig, nil
		}
		sig, err := run()
		if err != nil {
			r.Close()
			return t, err
		}
		identical := true
		if baseline == "" {
			baseline = sig
		} else if sig != baseline {
			identical = false
		}
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := run(); err != nil {
				r.Close()
				return t, err
			}
		}
		scanMs := float64(time.Since(t0).Microseconds()) / 1000.0 / reps
		if baseMs == 0 {
			baseMs = scanMs
		}

		qps, p99, err := serveSharded(r, clients, perClient)
		if err != nil {
			r.Close()
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(n),
			fmt.Sprintf("%.2f", scanMs),
			fmt.Sprintf("%.2fx", baseMs/scanMs),
			fmt.Sprint(identical),
			fmt.Sprintf("%.0f", qps),
			ms(p99),
		})
		r.Close()
		if !identical {
			return t, fmt.Errorf("S3: shards=%d scan output diverges from shards=%d", n, shardCounts[0])
		}
	}
	t.Verdict = "the scan pipeline speeds up with shard count while every shard count produces byte-identical output; served single-document qps stays flat in-process, as expected"
	return t, nil
}

// serveSharded drives the S1-style HTTP workload against a sharded engine:
// clients workers, each issuing perClient snapshot queries round-robin
// across the corpus documents.
func serveSharded(r *shard.Router, clients, perClient int) (qps float64, p99 time.Duration, err error) {
	srv := server.New(r, server.Config{
		MaxInFlight: 64,
		MaxQueue:    1024,
		QueueWait:   10 * time.Second,
		SlowQuery:   -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := ParallelCorpus.generator()
	at := Start.Std().Format("02/01/2006")
	targets := make([]string, ParallelCorpus.Docs)
	for i := range targets {
		q := fmt.Sprintf(`SELECT R FROM doc(%q)[%s]/restaurant R`, g.URL(i), at)
		targets[i] = ts.URL + "/query?q=" + url.QueryEscape(q)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	lat := make([][]time.Duration, clients)
	var bad int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				resp, err := client.Get(targets[(w*perClient+i)%len(targets)])
				if err != nil {
					mu.Lock()
					bad++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					bad++
					mu.Unlock()
					continue
				}
				ds = append(ds, time.Since(t0))
			}
			lat[w] = ds
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, ds := range lat {
		all = append(all, ds...)
	}
	if bad > 0 {
		return 0, 0, fmt.Errorf("served workload: %d non-200 responses", bad)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return float64(len(all)) / elapsed.Seconds(), quantileDur(all, 0.99), nil
}
