package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/server"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
)

// C11 is the version-cache ablation of C3: reconstructing the version
// delta-age d behind current with the shared cache off, cold (purged
// before every reconstruction, pricing one miss + install) and warm. The
// buffer-pool columns separate the two caching tiers: the page-level pool
// only absorbs repeat extent reads, so cold reconstructions still replay
// every delta; the version cache absorbs the replay itself.
func C11() (Table, error) {
	t := Table{
		ID:      "C11",
		Title:   "Reconstruct cost with the version cache off / cold / warm",
		Claim:   "a shared version cache removes delta replay for hot versions entirely, and bounds it to the ancestor distance otherwise; buffer-pool hits alone cannot",
		Columns: []string{"delta_age", "cache", "ms_per_op", "extent_reads_per_op", "pool_hits", "pool_misses", "vcache_hits", "vcache_ancestor_hits"},
	}
	const versions, reps = 128, 16
	c := CorpusConfig{Docs: 1, Elems: 20, Versions: versions, Ops: 2, Seed: 3}
	for _, age := range []int{1, 16, 64} {
		target := model.VersionNo(versions - age)
		for _, mode := range []string{"off", "cold", "warm"} {
			cfg := core.Config{Store: store.Config{Pages: pagestore.Config{BufferPages: 64}}}
			if mode != "off" {
				cfg.Cache = vcache.Config{MaxBytes: 64 << 20}
			}
			db, ids, err := NativeDB(c, cfg)
			if err != nil {
				return t, err
			}
			if mode == "warm" {
				if _, err := db.ReconstructVersion(ids[0], target); err != nil {
					return t, err
				}
			}
			db.Store().Pages().ResetStats()
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if mode == "cold" {
					db.PurgeCache()
				}
				if _, err := db.ReconstructVersion(ids[0], target); err != nil {
					return t, err
				}
			}
			elapsed := time.Since(t0)
			ios := db.IOStats()
			var hits, anc int64
			if st, ok := db.CacheStats(); ok {
				hits, anc = st.Hits, st.AncestorHits
			}
			t.Rows = append(t.Rows, []string{
				itoa(age), mode,
				fmt.Sprintf("%.3f", float64(elapsed)/float64(time.Millisecond)/reps),
				fmt.Sprintf("%.1f", float64(ios.ExtentRead)/reps),
				itoa(ios.CacheHits), itoa(ios.CacheMisses),
				itoa(hits), itoa(anc),
			})
		}
	}
	t.Verdict = "warm hits cost microseconds at every age while uncached cost grows linearly with delta age; the buffer pool cuts page I/O on repeat replays but still pays the per-delta parse+apply"
	return t, nil
}

// S2 is the serving-layer counterpart of C11: an in-process txserved over
// a single hot document with a long history, all clients issuing the same
// historical snapshot query (the worst case C3 prices: every request
// reconstructs an old version). Measured with the version cache off and
// on — identical engine, identical wire cost, so the difference is the
// reconstruction tier alone.
func S2(clients []int, perClient int) (Table, error) {
	t := Table{
		ID:      "S2",
		Title:   "hot-document serving throughput, version cache off vs on",
		Claim:   "a shared version cache turns repeated historical reconstructions of a hot document into exact hits, multiplying served throughput",
		Columns: []string{"cache", "clients", "requests", "qps", "p50_ms", "p99_ms", "vcache_hit_rate", "non200"},
	}
	const versions = 64
	c := CorpusConfig{Docs: 1, Elems: 20, Versions: versions, Ops: 2, Seed: 3}
	q := fmt.Sprintf(`SELECT R FROM doc(%q)[%s]/restaurant R`,
		"http://guide000.example.com/restaurants.xml",
		timeAt(8).Std().Format("02/01/2006"))

	for _, mode := range []string{"off", "on"} {
		cfg := core.Config{}
		if mode == "on" {
			cfg.Cache = vcache.Config{MaxBytes: 64 << 20}
		}
		db, _, err := NativeDB(c, cfg)
		if err != nil {
			return t, err
		}
		srv := server.New(db, server.Config{
			MaxInFlight: 64,
			MaxQueue:    1024,
			QueueWait:   10 * time.Second,
			SlowQuery:   -1,
		})
		ts := httptest.NewServer(srv.Handler())
		target := ts.URL + "/query?q=" + url.QueryEscape(q)
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}

		for _, cl := range clients {
			lat := make([][]time.Duration, cl)
			var bad int64
			var mu sync.Mutex
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < cl; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ds := make([]time.Duration, 0, perClient)
					for i := 0; i < perClient; i++ {
						t0 := time.Now()
						resp, err := client.Get(target)
						if err != nil {
							mu.Lock()
							bad++
							mu.Unlock()
							continue
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							mu.Lock()
							bad++
							mu.Unlock()
							continue
						}
						ds = append(ds, time.Since(t0))
					}
					lat[w] = ds
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			var all []time.Duration
			for _, ds := range lat {
				all = append(all, ds...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			hitRate := "n/a"
			if st, ok := db.CacheStats(); ok && st.Lookups > 0 {
				hitRate = fmt.Sprintf("%.2f", float64(st.Hits)/float64(st.Lookups))
			}
			t.Rows = append(t.Rows, []string{
				mode,
				fmt.Sprint(cl),
				fmt.Sprint(cl * perClient),
				fmt.Sprintf("%.0f", float64(len(all))/elapsed.Seconds()),
				ms(quantileDur(all, 0.50)),
				ms(quantileDur(all, 0.99)),
				hitRate,
				fmt.Sprint(bad),
			})
		}
		ts.Close()
	}
	t.Verdict = "with the cache on, every request after the first is an exact hit and the historical query serves at near-current-version cost; off, each request pays the full delta replay"
	return t, nil
}
