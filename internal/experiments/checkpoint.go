package experiments

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/store"
)

// C12 measures what the checkpoint & compaction subsystem buys on an aged
// store: the cold-open cost of replaying the entire write-ahead log from
// the epoch versus a bounded-replay open from the latest checkpoint
// image, and the disk space returned by retention pruning plus log
// compaction. The corpus is loaded durably with auto-checkpointing
// disabled so the first open is a genuine full replay; the store is then
// checkpointed and vacuumed (keep-last with interspersed snapshots, the
// paper's §7.1 granule) and reopened cold.
func C12(commits int) (Table, error) {
	t := Table{
		ID:    "C12",
		Title: "checkpointed cold open & space reuse (aged durable store)",
		Claim: "a checkpoint bounds reopen replay to the WAL suffix — open cost tracks the distance to the last image, not store age — and compaction plus retention return covered log segments and pruned versions to disk",
		Columns: []string{"commits", "full_open_ms", "full_replay_kb", "ckpt_open_ms",
			"ckpt_replay_commits", "speedup", "disk_kb_aged", "disk_kb_compacted"},
	}
	// Age across many documents with a bounded history each: the WAL's
	// per-commit metadata delta carries the touched document's whole
	// version list, so deep single-document histories grow the log
	// quadratically; a wide corpus keeps aging linear in commits.
	c := CorpusConfig{Docs: commits / 40, Elems: 12, Versions: 40, Ops: 2, Seed: 12}

	dir, err := os.MkdirTemp("", "txmldb-c12-")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)

	// Age the store: every version is a separate durable commit.
	cfg := core.Config{Clock: c.clockAfter()}
	db, err := core.OpenDurable(cfg, dir)
	if err != nil {
		return t, err
	}
	if _, err := c.generator().Load(db); err != nil {
		db.Close()
		return t, err
	}
	if err := db.Close(); err != nil {
		return t, err
	}
	agedKB, err := dirKB(dir)
	if err != nil {
		return t, err
	}

	// Cold open #1: no image exists, so the open replays the whole log.
	t0 := time.Now()
	db, err = core.OpenDurable(cfg, dir)
	if err != nil {
		return t, err
	}
	fullOpen := time.Since(t0)
	fullRep := db.OpenReport()
	if fullRep.UsedCheckpoint {
		db.Close()
		return t, fmt.Errorf("C12: first open used a checkpoint before one was published")
	}

	// Publish a checkpoint (compaction drops the covered segments), then
	// vacuum old versions at a snapshot granule so their extents are gone
	// from the next image too.
	if _, err := db.Checkpoint(); err != nil {
		db.Close()
		return t, err
	}
	if _, _, err := db.Vacuum(store.Retention{Policy: store.KeepLast, KeepLast: 16, Granule: 8}); err != nil {
		db.Close()
		return t, err
	}
	if rep := db.Fsck(); !rep.Clean() {
		db.Close()
		return t, fmt.Errorf("C12: fsck after vacuum:\n%s", rep)
	}
	if err := db.Close(); err != nil {
		return t, err
	}
	compactKB, err := dirKB(dir)
	if err != nil {
		return t, err
	}

	// Cold open #2: bounded replay from the image.
	t0 = time.Now()
	db, err = core.OpenDurable(cfg, dir)
	if err != nil {
		return t, err
	}
	ckptOpen := time.Since(t0)
	ckptRep := db.OpenReport()
	if rep := db.Fsck(); !rep.Clean() {
		db.Close()
		return t, fmt.Errorf("C12: fsck after checkpointed open:\n%s", rep)
	}
	if err := db.Close(); err != nil {
		return t, err
	}
	if !ckptRep.UsedCheckpoint {
		return t, fmt.Errorf("C12: reopen ignored the published checkpoint: %s", ckptRep)
	}

	speedup := float64(fullOpen) / float64(ckptOpen)
	t.Rows = append(t.Rows, []string{
		itoa(fullRep.ReplayedCommits),
		fmt.Sprintf("%.2f", float64(fullOpen.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(fullRep.ReplayedBytes)/1024),
		fmt.Sprintf("%.2f", float64(ckptOpen.Microseconds())/1000),
		itoa(ckptRep.ReplayedCommits),
		fmt.Sprintf("%.1fx", speedup),
		itoa(agedKB), itoa(compactKB),
	})
	t.Verdict = "checkpointed open replays only the post-image suffix; compaction + keep-last retention shrink the directory while Fsck stays clean"
	return t, nil
}

// dirKB sums the sizes of the regular files under dir, in KiB.
func dirKB(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || !d.Type().IsRegular() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total / 1024, err
}
