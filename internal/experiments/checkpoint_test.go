package experiments

import "testing"

// TestC12ShapeHolds runs the open-cost/space-reuse experiment at a small
// scale and checks its claims hold directionally: the checkpointed open
// replays far fewer commits than the full-replay open, is faster, and
// compaction plus retention shrink the directory. The headline ≥10x
// speedup needs the aged 10k-commit corpus and is asserted only in
// EXPERIMENTS.md's txbench run, not here.
func TestC12ShapeHolds(t *testing.T) {
	const commits = 400
	tbl, err := C12(commits)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("C12 rows = %d", len(tbl.Rows))
	}
	row := tbl.Rows[0]
	if got := cell(t, row, 0); got != commits {
		t.Errorf("full open replayed %v commits, corpus has %d", got, commits)
	}
	if ckptReplay := cell(t, row, 4); ckptReplay >= commits/10 {
		t.Errorf("checkpointed open replayed %v commits — replay is not bounded", ckptReplay)
	}
	if full, ckpt := cell(t, row, 1), cell(t, row, 3); ckpt >= full {
		t.Errorf("checkpointed open (%vms) not faster than full replay (%vms)", ckpt, full)
	}
	if aged, compacted := cell(t, row, 6), cell(t, row, 7); compacted >= aged {
		t.Errorf("compaction did not shrink the directory: %vKB -> %vKB", aged, compacted)
	}
}
