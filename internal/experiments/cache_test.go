package experiments

import (
	"strconv"
	"testing"
)

// TestC11ShapeHolds: warm reconstructions must beat uncached ones, and by
// a growing margin as delta age grows; warm rows must show exact hits.
func TestC11ShapeHolds(t *testing.T) {
	tbl, err := C11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 ages x 3 modes)", len(tbl.Rows))
	}
	perAge := map[string]map[string]float64{} // age -> mode -> ms_per_op
	for _, row := range tbl.Rows {
		age, mode := row[0], row[1]
		if perAge[age] == nil {
			perAge[age] = map[string]float64{}
		}
		perAge[age][mode] = cell(t, row, 2)
		if mode == "warm" {
			if hits := cell(t, row, 6); hits == 0 {
				t.Errorf("age=%s warm: no vcache hits", age)
			}
			if reads := cell(t, row, 3); reads != 0 {
				t.Errorf("age=%s warm: %v extent reads per op, want 0", age, reads)
			}
		}
	}
	for age, modes := range perAge {
		if !(modes["warm"] < modes["off"]) {
			t.Errorf("age=%s: warm (%v ms) not faster than off (%v ms)", age, modes["warm"], modes["off"])
		}
	}
	// The acceptance bar: >= 5x at delta age 64. The measured margin is
	// orders of magnitude; 5x keeps the test robust on loaded machines.
	if off, warm := perAge["64"]["off"], perAge["64"]["warm"]; warm*5 > off {
		t.Errorf("age=64: warm %v ms vs off %v ms — less than the required 5x", warm, off)
	}
}

// TestS2ShapeHolds runs the hot-document serving comparison small: all
// requests succeed, and the cache-on run records a high exact-hit rate.
func TestS2ShapeHolds(t *testing.T) {
	tbl, err := S2([]int{2}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (off and on)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		qps, err := strconv.ParseFloat(row[3], 64)
		if err != nil || qps <= 0 {
			t.Errorf("cache=%s: qps = %q, want > 0", row[0], row[3])
		}
		if row[7] != "0" {
			t.Errorf("cache=%s: %s non-200 responses", row[0], row[7])
		}
	}
	if tbl.Rows[0][6] != "n/a" {
		t.Errorf("cache-off row reports a vcache hit rate: %q", tbl.Rows[0][6])
	}
	if hit := cell(t, tbl.Rows[1], 6); hit < 0.5 {
		t.Errorf("cache-on hit rate = %v, want >= 0.5", hit)
	}
}
