package experiments

import (
	"fmt"
	"strings"

	"txmldb/internal/core"
	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/plan"
	"txmldb/internal/xmltree"
)

// Figure1URL is the document name of the paper's running example.
const Figure1URL = "http://guide.com/restaurants.xml"

// Figure1DB loads the paper's Figure 1 history: the restaurant list at
// guide.com as retrieved on January 1st (Napoli 15), January 15th
// (Napoli 15, Akropolis 13) and January 31st (Napoli 18).
func Figure1DB(cfg core.Config) (*core.DB, model.DocID, error) {
	if cfg.Clock == nil {
		cfg.Clock = func() model.Time { return model.Date(2001, 2, 10) }
	}
	db := core.Open(cfg)
	if err := Figure1Load(db); err != nil {
		return nil, 0, err
	}
	id, _ := db.LookupDoc(Figure1URL)
	return db, id, nil
}

// Figure1Loader is the write surface Figure1Load needs. *core.DB and the
// sharded router both satisfy it.
type Figure1Loader interface {
	Put(url string, root *xmltree.Node, t model.Time) (model.DocID, error)
	Update(id model.DocID, root *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error)
}

// Figure1Load plays the Figure 1 history into an already-open database
// (in-memory, durable or sharded).
func Figure1Load(db Figure1Loader) error {
	mk := func(entries ...[2]string) *xmltree.Node {
		g := xmltree.NewElement("guide")
		for _, e := range entries {
			g.AppendChild(xmltree.Elem("restaurant",
				xmltree.ElemText("name", e[0]),
				xmltree.ElemText("price", e[1])))
		}
		return g
	}
	id, err := db.Put(Figure1URL, mk([2]string{"Napoli", "15"}), model.Date(2001, 1, 1))
	if err != nil {
		return err
	}
	if _, _, err := db.Update(id, mk([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), model.Date(2001, 1, 15)); err != nil {
		return err
	}
	if _, _, err := db.Update(id, mk([2]string{"Napoli", "18"}), model.Date(2001, 1, 31)); err != nil {
		return err
	}
	return nil
}

// F1 reproduces Figure 1 and the example queries Q1–Q3 of Section 6.2 and
// checks every output against the paper's stated result.
func F1() (Table, error) {
	t := Table{
		ID:      "F1",
		Title:   "Figure 1 data and queries Q1–Q3 (Section 6.2)",
		Claim:   "the operator pipeline produces exactly the results the paper describes for its running example",
		Columns: []string{"query", "operators", "expected", "got", "ok"},
	}
	db, _, err := Figure1DB(core.Config{})
	if err != nil {
		return t, err
	}

	check := func(name, operators, querySrc, expected string, verify func(*plan.Result) (string, bool)) error {
		res, err := db.Query(querySrc)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		got, ok := verify(res)
		t.Rows = append(t.Rows, []string{name, operators, expected, got, itoa(ok)})
		return nil
	}

	if err := check("Q1 list restaurants @26/01",
		"TPatternScan, Reconstruct",
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`,
		"Napoli(15), Akropolis(13)",
		func(res *plan.Result) (string, bool) {
			var parts []string
			for _, row := range res.Rows {
				for _, el := range row[0].([]plan.Elem) {
					parts = append(parts, fmt.Sprintf("%s(%s)",
						el.Node.SelectPath("name")[0].Text(),
						el.Node.SelectPath("price")[0].Text()))
				}
			}
			got := strings.Join(parts, ", ")
			ok := len(res.Rows) == 2 &&
				strings.Contains(got, "Napoli(15)") && strings.Contains(got, "Akropolis(13)")
			return got, ok
		}); err != nil {
		return t, err
	}

	if err := check("Q2 count restaurants @26/01",
		"TPatternScan, Sum (no Reconstruct)",
		`SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`,
		"2, zero reconstructions",
		func(res *plan.Result) (string, bool) {
			got := fmt.Sprintf("%v, %d reconstructions", res.Rows[0][0], res.Metrics.Reconstructions)
			return got, res.Rows[0][0].(int64) == 2 && res.Metrics.Reconstructions == 0
		}); err != nil {
		return t, err
	}

	if err := check("Q3 Napoli price history",
		"TPatternScanAll",
		`SELECT TIME(R), R/price FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R WHERE R/name="Napoli"`,
		"15@01/01, 18@31/01",
		func(res *plan.Result) (string, bool) {
			var parts []string
			hist := map[model.Time]string{}
			for _, row := range res.Rows {
				at := row[0].(model.Time)
				price := row[1].([]plan.Elem)[0].Node.Text()
				hist[at] = price
				parts = append(parts, fmt.Sprintf("%s@%s", price, at.Std().Format("02/01")))
			}
			ok := len(res.Rows) == 2 &&
				hist[model.Date(2001, 1, 1)] == "15" && hist[model.Date(2001, 1, 31)] == "18"
			return strings.Join(parts, ", "), ok
		}); err != nil {
		return t, err
	}
	t.Verdict = "all three example queries reproduce the paper's stated results"
	return t, nil
}
