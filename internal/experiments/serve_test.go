package experiments

import (
	"strconv"
	"testing"
)

// TestS1ShapeHolds runs the serving experiment small: every request must
// succeed and throughput must be non-zero at each concurrency level.
func TestS1ShapeHolds(t *testing.T) {
	tbl, err := S1([]int{1, 4}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		qps, err := strconv.ParseFloat(row[2], 64)
		if err != nil || qps <= 0 {
			t.Errorf("clients=%s: qps = %q, want > 0", row[0], row[2])
		}
		if row[5] != "0" {
			t.Errorf("clients=%s: %s non-200 responses", row[0], row[5])
		}
	}
}
