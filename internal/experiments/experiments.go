// Package experiments implements the reproduction experiments indexed in
// DESIGN.md and reported in EXPERIMENTS.md. The paper contains no
// empirical tables — its evaluation is analytical — so each experiment
// here turns one analytical claim (C1–C9) into a measurement, plus F1,
// the exact reproduction of Figure 1 and queries Q1–Q3.
//
// The same setup code backs the root-level testing.B benchmarks and the
// cmd/txbench table printer, so the numbers in EXPERIMENTS.md are
// regenerable with either tool.
package experiments

import (
	"fmt"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/pattern"
	"txmldb/internal/stratum"
	"txmldb/internal/tdocgen"
)

// Day is the generator's version step.
const Day = model.Time(24 * 3600 * 1000)

// Start is the corpus epoch.
var Start = model.Date(2001, 1, 1)

// CorpusConfig describes a generated corpus.
type CorpusConfig struct {
	Docs     int
	Elems    int
	Versions int
	Ops      int
	Seed     int64
}

func (c CorpusConfig) generator() *tdocgen.Generator {
	return tdocgen.New(tdocgen.Config{
		Seed: c.Seed, Docs: c.Docs, InitialElems: c.Elems,
		Versions: c.Versions, OpsPerVersion: c.Ops,
		Start: Start, Step: Day,
	})
}

// clockAfter returns a clock pinned after the corpus's last version.
func (c CorpusConfig) clockAfter() func() model.Time {
	end := Start + model.Time(int64(c.Versions+1)*int64(Day))
	return func() model.Time { return end }
}

// timeAt returns the corpus time of version v (1-based).
func timeAt(v int) model.Time { return Start + model.Time(int64(v-1)*int64(Day)) }

// NativeDB loads the corpus into a native temporal database.
func NativeDB(c CorpusConfig, cfg core.Config) (*core.DB, []model.DocID, error) {
	cfg.Clock = c.clockAfter()
	db := core.Open(cfg)
	ids, err := c.generator().Load(db)
	return db, ids, err
}

// StratumDB loads the corpus into the stratum baseline.
func StratumDB(c CorpusConfig, pages pagestore.Config) (*stratum.DB, []model.DocID, error) {
	db := stratum.New(pages)
	g := c.generator()
	ids := make([]model.DocID, c.Docs)
	for i := 0; i < c.Docs; i++ {
		hist := g.History(i)
		id, err := db.Put(g.URL(i), hist[0].Tree, hist[0].At)
		if err != nil {
			return nil, nil, err
		}
		ids[i] = id
		for _, v := range hist[1:] {
			if err := db.Update(id, v.Tree, v.At); err != nil {
				return nil, nil, err
			}
		}
	}
	return db, ids, nil
}

// RestaurantPattern is the pattern of the paper's Q1/Q2 over the corpus.
func RestaurantPattern() *pattern.PNode {
	r := &pattern.PNode{Name: "restaurant", Rel: pattern.Child, Project: true}
	return &pattern.PNode{Name: "guide", Rel: pattern.Child, Children: []*pattern.PNode{r}}
}

// Table is one experiment's printable result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's analytical claim being validated
	Columns []string
	Rows    [][]string
	Verdict string // one-line comparison of measured shape vs claim
}

// Print renders the table to the writer-ish function (fmt.Printf shape).
func (t Table) Print(printf func(format string, args ...any)) {
	printf("\n%s — %s\n", t.ID, t.Title)
	printf("claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			printf("  %-*s", widths[i], cell)
		}
		printf("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Verdict != "" {
		printf("verdict: %s\n", t.Verdict)
	}
}

func msSince(t0 time.Time) string {
	return fmt.Sprintf("%.2f", float64(time.Since(t0).Microseconds())/1000.0)
}

// msPerRep averages the elapsed time over reps repetitions.
func msPerRep(t0 time.Time, reps int) string {
	return fmt.Sprintf("%.2f", float64(time.Since(t0).Microseconds())/1000.0/float64(reps))
}

func itoa(v any) string { return fmt.Sprint(v) }
