package experiments

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/server"
)

// S1 measures the served query path end to end: an in-process txserved
// instance over the Figure 1 data, driven by 1, 8 and 64 concurrent HTTP
// clients each issuing Q1 (snapshot + reconstruction, the paper's
// canonical query). Reported per concurrency level: aggregate queries/sec
// and the client-observed p50/p99 latency. This is the serving-layer
// counterpart of the operator-level C experiments — it prices the wire,
// admission control and JSON streaming on top of the engine.
func S1(clients []int, perClient int) (Table, error) {
	t := Table{
		ID:      "S1",
		Title:   "served queries/sec and latency vs. client concurrency",
		Claim:   "the query server sustains concurrent clients with bounded latency; throughput scales until the engine saturates",
		Columns: []string{"clients", "requests", "qps", "p50_ms", "p99_ms", "non200"},
	}
	db, _, err := Figure1DB(core.Config{})
	if err != nil {
		return t, err
	}
	srv := server.New(db, server.Config{
		MaxInFlight: 64,
		MaxQueue:    1024,
		QueueWait:   10 * time.Second,
		SlowQuery:   -1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	target := ts.URL + "/query?q=" + url.QueryEscape(
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}

	for _, c := range clients {
		lat := make([][]time.Duration, c)
		var bad int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ds := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					resp, err := client.Get(target)
					if err != nil {
						mu.Lock()
						bad++
						mu.Unlock()
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						mu.Lock()
						bad++
						mu.Unlock()
						continue
					}
					ds = append(ds, time.Since(t0))
				}
				lat[w] = ds
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var all []time.Duration
		for _, ds := range lat {
			all = append(all, ds...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		qps := float64(len(all)) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c),
			fmt.Sprint(c * perClient),
			fmt.Sprintf("%.0f", qps),
			ms(quantileDur(all, 0.50)),
			ms(quantileDur(all, 0.99)),
			fmt.Sprint(bad),
		})
	}
	t.Verdict = "the served path adds wire+JSON overhead but keeps p99 bounded as concurrency grows; admission control admits everything below the in-flight limit"
	return t, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// quantileDur returns the q-th order statistic of sorted durations.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
