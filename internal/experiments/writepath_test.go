package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestW2ShapeHolds runs the write-path scaling experiment at a reduced
// writer ladder and checks the claim's shape: the batched configuration's
// commit throughput grows with writers (amortization > 1 at the top
// rung), and every pinned read matched the quiesced oracle (a violation
// is an error, so W2 returning at all asserts isolation).
func TestW2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: timing-sensitive workload")
	}
	tbl, err := W2([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 rows (sync baseline + 2 batched), got %d", len(tbl.Rows))
	}
	rate := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad commits_per_sec %q: %v", row[4], err)
		}
		return v
	}
	one, four := tbl.Rows[1], tbl.Rows[2]
	if r1, r4 := rate(one), rate(four); r4 <= r1 {
		t.Errorf("batched throughput did not scale: 1 writer %.0f/s, 4 writers %.0f/s", r1, r4)
	}
	amort, err := strconv.ParseFloat(four[7], 64)
	if err != nil || amort <= 1.0 {
		t.Errorf("4 writers amortized %s commits per fsync, want > 1 (err %v)", four[7], err)
	}
	if !strings.Contains(tbl.Verdict, "oracle") {
		t.Errorf("verdict does not state the oracle result: %q", tbl.Verdict)
	}
}
