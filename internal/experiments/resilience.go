package experiments

import (
	"fmt"
	"os"
	"strings"

	"txmldb/internal/chaos"
)

// R1 runs the seeded chaos campaigns and the crash-and-reopen torture
// loop (internal/chaos) and tabulates their invariant counters. Unlike
// C1–C11 this experiment measures correctness under fault, not speed:
// every succeeding query must be byte-identical to a fault-free oracle,
// every failing one must carry a typed error, the resilience tier must
// degrade and recover on its own, and a log truncated at a random crash
// point must reopen to exactly the last whole commit.
func R1(seeds []int64) (Table, error) {
	t := Table{
		ID:    "R1",
		Title: "chaos campaign and crash torture (resilience tier)",
		Claim: "under injected backend faults no query returns a wrong answer — each one is oracle-identical or fails typed — the tier degrades and heals automatically, and crash-truncated logs reopen to the last whole commit",
		Columns: []string{"scenario", "seed", "queries", "ok", "identical",
			"typed_fails", "degraded_serves", "breaker_opens", "states", "result"},
	}
	var failures []string
	row := func(scenario string, rep *chaos.Report) {
		result := "pass"
		if !rep.Passed() {
			result = fmt.Sprintf("FAIL(%d)", len(rep.Violations))
			failures = append(failures, fmt.Sprintf("%s seed=%d:\n  %s",
				scenario, rep.Seed, strings.Join(rep.Violations, "\n  ")))
		}
		states := strings.Join(rep.StatesSeen, "→")
		if states == "" {
			states = "-"
		}
		t.Rows = append(t.Rows, []string{
			scenario, itoa(rep.Seed), itoa(rep.Queries), itoa(rep.Succeeded),
			itoa(rep.Matched), itoa(rep.TypedFailures), itoa(rep.DegradedServes),
			itoa(rep.BreakerOpens), states, result,
		})
	}
	for _, seed := range seeds {
		row("campaign", chaos.Run(chaos.Config{Seed: seed}, nil))
	}
	dir, err := os.MkdirTemp("", "txmldb-r1-")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)
	row("crash-torture", chaos.CrashAndReopen(dir, seeds[0], 6))
	if len(failures) > 0 {
		return t, fmt.Errorf("R1: invariant violations:\n%s", strings.Join(failures, "\n"))
	}
	t.Verdict = fmt.Sprintf("all invariants held across %d campaign seed(s) and 6 crash rounds: oracle identity on every success, typed errors on every failure, healthy→degraded→healthy visible, reopened logs clean", len(seeds))
	return t, nil
}
