package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	s := strings.TrimSuffix(row[i], "x")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[i], err)
	}
	return f
}

func TestF1AllQueriesReproduce(t *testing.T) {
	tbl, err := F1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("F1 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("%s failed: got %q, expected %q", row[0], row[3], row[2])
		}
	}
}

func TestC1ShapeHolds(t *testing.T) {
	tbl, err := C1([]int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	var prevRatio float64
	for _, row := range tbl.Rows {
		native, strat := cell(t, row, 1), cell(t, row, 2)
		if strat <= native {
			t.Errorf("versions=%s: stratum (%v KB) should exceed native (%v KB)", row[0], strat, native)
		}
		ratio := cell(t, row, 3)
		if ratio < prevRatio {
			t.Errorf("space ratio should grow with versions: %v after %v", ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestC2ShapeHolds(t *testing.T) {
	tbl, err := C2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		recon, reads := cell(t, row, 2), cell(t, row, 3)
		if strings.HasPrefix(row[0], "Q2") {
			if recon != 0 || reads != 0 {
				t.Errorf("Q2 at age %s: %v reconstructions, %v reads (want 0, 0)", row[1], recon, reads)
			}
		} else if recon == 0 {
			t.Errorf("Q1 at age %s performed no reconstruction", row[1])
		}
	}
}

func TestC3ShapeHolds(t *testing.T) {
	tbl, err := C3()
	if err != nil {
		t.Fatal(err)
	}
	// Group rows by snapshot interval; oldest target (version 1) is the
	// last row of each group.
	byInterval := map[string][]float64{}
	order := []string{}
	for _, row := range tbl.Rows {
		if _, seen := byInterval[row[0]]; !seen {
			order = append(order, row[0])
		}
		byInterval[row[0]] = append(byInterval[row[0]], cell(t, row, 2))
	}
	worst := func(k string) float64 {
		vs := byInterval[k]
		max := vs[0]
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
		return max
	}
	if !(worst("none") > worst("32") && worst("32") > worst("8")) {
		t.Errorf("snapshots should bound delta reads: none=%v, 32=%v, 8=%v",
			worst("none"), worst("32"), worst("8"))
	}
	// Without snapshots, reconstructing version 1 applies versions-1 deltas.
	for _, row := range tbl.Rows {
		if row[0] == "none" && row[1] == "1" {
			if got := cell(t, row, 2); got != 127 {
				t.Errorf("oldest reconstruct without snapshots applied %v deltas, want 127", got)
			}
		}
		if row[0] == "8" {
			if got := cell(t, row, 2); got > 8 {
				t.Errorf("snapshot-every-8 applied %v deltas at version %s, want <= 8", got, row[1])
			}
		}
	}
	_ = order
}

func TestC4ShapeHolds(t *testing.T) {
	tbl, err := C4()
	if err != nil {
		t.Fatal(err)
	}
	reads := map[string]float64{}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("strategy %q returned a wrong creation time", row[0])
		}
		reads[row[0]] = cell(t, row, 2)
	}
	if !(reads["auxiliary index"] == 0 &&
		reads["traverse from TEID"] < reads["traverse from current"]) {
		t.Errorf("C4 ordering broken: %v", reads)
	}
}

func TestC5ShapeHolds(t *testing.T) {
	tbl, err := C5()
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string][]string{}
	for _, row := range tbl.Rows {
		stats[row[0]] = row
	}
	if cell(t, stats["versions"], 3) != 0 {
		t.Error("version indexing must have no op-keyword postings")
	}
	if cell(t, stats["deltas"], 3) == 0 {
		t.Error("delta indexing must produce op-keyword postings")
	}
	if cell(t, stats["both"], 4) <= cell(t, stats["versions"], 4) ||
		cell(t, stats["both"], 4) <= cell(t, stats["deltas"], 4) {
		t.Error("the combined index must be the largest")
	}
}

func TestC6ShapeHolds(t *testing.T) {
	tbl, err := C6()
	if err != nil {
		t.Fatal(err)
	}
	seeks := map[string]float64{}
	reads := map[string]float64{}
	for _, row := range tbl.Rows {
		reads[row[0]] = cell(t, row, 1)
		seeks[row[0]] = cell(t, row, 2)
	}
	if reads["unclustered"] != reads["clustered"] {
		t.Errorf("both placements must read the same extents: %v", reads)
	}
	if seeks["clustered"] >= seeks["unclustered"] {
		t.Errorf("clustering should cut seeks: %v", seeks)
	}
	// The paper's worst case: each unclustered delta read is a seek.
	if seeks["unclustered"] < reads["unclustered"]-1 {
		t.Errorf("unclustered seeks (%v) should approach reads (%v)",
			seeks["unclustered"], reads["unclustered"])
	}
}

func TestC7ShapeHolds(t *testing.T) {
	tbl, err := C7([]int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	var prevAll float64
	for i, row := range tbl.Rows {
		all := cell(t, row, 1)
		snap := cell(t, row, 3)
		if i > 0 && all <= prevAll {
			t.Errorf("history match count should grow: %v after %v", all, prevAll)
		}
		prevAll = all
		if all < snap {
			t.Errorf("history matches (%v) below snapshot matches (%v)", all, snap)
		}
	}
}

func TestC8ShapeHolds(t *testing.T) {
	tbl, err := C8()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if cell(t, row, 2) != 0 {
			t.Errorf("%s read %s extents, want 0", row[0], row[2])
		}
	}
}

func TestC9ShapeHolds(t *testing.T) {
	tbl, err := C9()
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tbl.Rows[0], 2) != cell(t, tbl.Rows[1], 2) {
		t.Errorf("ElementHistory and DocHistory I/O differ: %v vs %v",
			tbl.Rows[0][2], tbl.Rows[1][2])
	}
}

func TestTablePrint(t *testing.T) {
	tbl := Table{
		ID: "X", Title: "t", Claim: "c", Verdict: "v",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "22"}},
	}
	var b strings.Builder
	tbl.Print(func(format string, args ...any) {
		b.WriteString(strings.TrimRight(strings.ReplaceAll(format, "%s", "%v"), ""))
		_ = args
	})
	// Smoke test only: Print must not panic and must emit something.
	if b.Len() == 0 {
		t.Fatal("Print produced nothing")
	}
}

func TestC10LiveSetAgreesWithHistoryScan(t *testing.T) {
	tbl, err := C10([]int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Matches must grow (or stay equal) with more versions and be nonzero.
	if cell(t, tbl.Rows[0], 1) == 0 {
		t.Fatal("no matches")
	}
}
