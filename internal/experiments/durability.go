package experiments

import (
	"fmt"
	"os"

	"txmldb/internal/core"
)

// W1 measures the cost of durability: the write-ahead log's write
// amplification — bytes appended and fsynced to the log versus the extent
// payload bytes the version store actually produced. The overhead is the
// record framing (21 bytes per record), the commit markers and, dominating,
// the per-commit JSON snapshot of the delta index; amplification therefore
// falls as documents grow and rises with commit frequency.
func W1() (Table, error) {
	t := Table{
		ID:      "W1",
		Title:   "WAL write amplification (durable storage tier)",
		Claim:   "durability via an append-only checksummed log costs a bounded constant factor over raw extent payload, shrinking as documents grow",
		Columns: []string{"docs", "versions", "elems", "payload_kb", "wal_kb", "amplification", "commits", "syncs"},
	}
	for _, c := range []CorpusConfig{
		{Docs: 2, Elems: 5, Versions: 8, Ops: 2, Seed: 5},
		{Docs: 4, Elems: 15, Versions: 16, Ops: 3, Seed: 5},
		{Docs: 4, Elems: 40, Versions: 16, Ops: 3, Seed: 5},
	} {
		dir, err := os.MkdirTemp("", "txmldb-w1-")
		if err != nil {
			return t, err
		}
		db, err2 := core.OpenDurable(core.Config{Clock: c.clockAfter()}, dir)
		if err2 != nil {
			os.RemoveAll(dir)
			return t, err2
		}
		if _, err2 := c.generator().Load(db); err2 != nil {
			db.Close()
			os.RemoveAll(dir)
			return t, err2
		}
		stats, ok := db.WALStats()
		if !ok {
			db.Close()
			os.RemoveAll(dir)
			return t, fmt.Errorf("W1: durable database reports no WAL stats")
		}
		if rep := db.Fsck(); !rep.Clean() {
			db.Close()
			os.RemoveAll(dir)
			return t, fmt.Errorf("W1: fsck after load:\n%s", rep)
		}
		db.Close()
		os.RemoveAll(dir)
		t.Rows = append(t.Rows, []string{
			itoa(int64(c.Docs)), itoa(int64(c.Versions)), itoa(int64(c.Elems)),
			fmt.Sprintf("%.1f", float64(stats.PayloadBytes)/1024),
			fmt.Sprintf("%.1f", float64(stats.BytesAppended)/1024),
			fmt.Sprintf("%.2f", stats.WriteAmplification()),
			itoa(stats.Commits), itoa(stats.Syncs),
		})
	}
	t.Verdict = "amplification stays a small constant factor and decreases with document size; one fsync per commit"
	return t, nil
}
