package experiments

import (
	"context"
	"fmt"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
)

// ParallelCorpus is the corpus P1 and BenchmarkC1ParallelScan share: wide
// enough (64 documents) that the per-document fan-out has real work to
// overlap.
var ParallelCorpus = CorpusConfig{Docs: 64, Elems: 8, Versions: 3, Ops: 1, Seed: 11}

// ParallelPages is the simulated-device latency model of P1: it turns the
// cost model of IOStats.CostMs (seeks dominate) into wall-clock time paid
// outside the pagestore mutex, so concurrent readers overlap their waits.
// No buffer pool — every read pays the device.
var ParallelPages = pagestore.Config{
	SeekLatency: 300 * time.Microsecond,
	PageLatency: 10 * time.Microsecond,
}

// ParallelDB loads the parallel corpus with the given worker count over
// the latency-modelled device.
func ParallelDB(workers int) (*core.DB, error) {
	db, _, err := NativeDB(ParallelCorpus, core.Config{
		Workers: workers,
		Store:   store.Config{Pages: ParallelPages},
	})
	return db, err
}

// P1 measures the parallel execution tier: the scan→materialize pipeline
// (TPatternScanAll followed by ReconstructBatch over every matched
// element version) at increasing worker counts on the 64-document corpus
// with simulated device latency. The pipeline's device waits are
// independent per document, so the pool overlaps them; the pattern join
// itself is compute and does not scale on one core, which is why speedup
// flattens below the worker count.
func P1(workers []int) (Table, error) {
	t := Table{
		ID:    "P1",
		Title: "parallel scan+materialize scaling with worker count",
		Claim: "multi-document operators are dominated by independent per-document I/O, so a bounded worker pool overlaps the device waits; results are identical at every worker count",
		Columns: []string{"workers", "ms_per_op", "speedup_vs_w1", "pool_speedup_proxy",
			"tasks", "queue_wait_ms"},
	}
	const reps = 5
	var baseMs float64
	var baseline string
	for _, w := range workers {
		db, err := ParallelDB(w)
		if err != nil {
			return t, err
		}
		pat := RestaurantPattern()
		run := func() (string, error) {
			teids, err := db.TPatternScanAll(pat)
			if err != nil {
				return "", err
			}
			trees, err := db.ReconstructBatch(context.Background(), teids)
			if err != nil {
				return "", err
			}
			var sig string
			for i, n := range trees {
				sig += teids[i].String() + "=" + n.String() + "\n"
			}
			return sig, nil
		}
		// One untimed pass doubles as the determinism check: every worker
		// count must produce byte-identical output.
		sig, err := run()
		if err != nil {
			return t, err
		}
		if baseline == "" {
			baseline = sig
		} else if sig != baseline {
			return t, fmt.Errorf("P1: workers=%d output diverges from workers=%d", w, workers[0])
		}
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := run(); err != nil {
				return t, err
			}
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000.0 / reps
		if baseMs == 0 {
			baseMs = ms
		}
		st := db.PoolStats()
		var proxy float64
		if sc, ok := st.Scopes["reconstruct"]; ok {
			proxy = sc.Speedup()
		}
		t.Rows = append(t.Rows, []string{
			itoa(w),
			fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("%.2fx", baseMs/ms),
			fmt.Sprintf("%.2fx", proxy),
			itoa(st.Submitted),
			fmt.Sprintf("%.1f", float64(st.QueueWait.Microseconds())/1000.0),
		})
	}
	t.Verdict = "wall time drops near-linearly while the device waits dominate and flattens once the single core's compute share is the bottleneck; outputs are byte-identical at every width"
	return t, nil
}
