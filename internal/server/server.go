// Package server is the HTTP/JSON query service over the temporal XML
// database: the wire face of the paper's operators. It goes through the
// same public facade entry points external users call (txmldb.DB's
// QueryContext/Explain), threads per-request deadlines into plan
// execution, applies two-level admission control (bounded in-flight
// executions plus a bounded wait queue — overflow is rejected with 429
// and Retry-After), recovers per-request panics, streams large results,
// and feeds an internal/metrics registry exposed on /metrics.
//
// Endpoints:
//
//	POST /query    {"query": "...", "timeout_ms": 0}  (or GET ?q=...)
//	GET  /explain  ?q=...                             (or POST, same body)
//	GET  /healthz  liveness + uptime + doc count (always 200 while up)
//	GET  /readyz   readiness: 503 while draining or while the engine's
//	               resilience tier reports degraded/failing
//	GET  /metrics  Prometheus-style text exposition
//
// Shutdown ordering is: flip /readyz to 503 (so load balancers stop
// routing here), wait the drain grace, stop accepting, drain in-flight
// requests, then (in the caller, cmd/txserved) close the durable store —
// so a committed response always means a committed write-ahead log.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"txmldb"
	"txmldb/internal/metrics"
)

// Engine is the query surface the server serves; *txmldb.DB implements
// it. Tests substitute stub engines to exercise overload and timeout
// paths deterministically.
type Engine interface {
	QueryContext(ctx context.Context, src string) (*txmldb.Result, error)
	Explain(src string) (string, error)
}

// docLister is optionally implemented by engines (txmldb.DB is one) to
// enrich /healthz with a document count.
type docLister interface {
	Docs() []txmldb.DocID
}

// ioStatser is optionally implemented by engines (txmldb.DB is one) to
// expose the storage tier's buffer-pool counters on /metrics.
type ioStatser interface {
	IOStats() txmldb.IOStats
}

// cacheStatser is optionally implemented by engines (txmldb.DB is one) to
// expose the version-reconstruction cache counters on /metrics.
type cacheStatser interface {
	CacheStats() (txmldb.CacheStats, bool)
}

// poolStatser is optionally implemented by engines (txmldb.DB is one) to
// expose the shared worker pool's counters on /metrics. Per-request
// concurrency composes with admission control: the gate bounds in-flight
// queries, the pool bounds the total worker goroutines those queries fan
// out to.
type poolStatser interface {
	PoolStats() txmldb.PoolStats
}

// checkpointStatser is optionally implemented by engines (txmldb.DB is
// one) to expose the checkpoint & compaction subsystem's counters on
// /metrics. CheckpointStats returns false on non-durable engines, which
// keeps the metric family out of the exposition entirely.
type checkpointStatser interface {
	CheckpointStats() (txmldb.CheckpointStats, bool)
	WALSegments() int64
}

// groupStatser is optionally implemented by engines (txmldb.DB and
// txmldb.ShardedDB are two) to expose the WAL group-commit batcher's
// counters on /metrics. CommitBatchStats returns false when commit
// batching is not configured (PageConfig.GroupWindow <= 0), which keeps
// the metric family out of the exposition entirely.
type groupStatser interface {
	CommitBatchStats() (txmldb.GroupStats, bool)
}

// healthReporter is optionally implemented by engines (txmldb.DB is one)
// carrying a resilience tier: /readyz and the txserved_health_* /
// txserved_breaker_* metrics are derived from its snapshots, and 503
// responses take their Retry-After from RetryAfter.
type healthReporter interface {
	Health() (txmldb.HealthSnapshot, bool)
	RetryAfter() time.Duration
}

// shardStatser is optionally implemented by sharded engines
// (txmldb.ShardedDB is one): the txserved_shard_* per-shard metric family
// is derived from its snapshots, and /readyz reports shard-aware
// readiness — one failing shard degrades the ensemble (single-document
// traffic for the other shards still succeeds), it does not take
// readiness down; only every shard failing does.
type shardStatser interface {
	Shards() int
	ShardStats() []txmldb.ShardStats
	ShardHealth() []txmldb.ShardHealth
}

// Config parameterizes a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default 32).
	MaxQueue int
	// QueueWait bounds how long a queued request waits before being
	// rejected with 429 (default 1s).
	QueueWait time.Duration
	// QueryTimeout is the per-query execution deadline (default 30s). A
	// request's timeout_ms may shorten it but never extend it.
	QueryTimeout time.Duration
	// SlowQuery is the slow-query log threshold (default 500ms; negative
	// disables the log).
	SlowQuery time.Duration
	// DrainGrace is how long /readyz reports 503 before a shutting-down
	// server stops accepting connections, giving load balancers a window
	// to route traffic away while queries still succeed (default 0: flip
	// readiness and stop accepting immediately).
	DrainGrace time.Duration
	// AccessLog receives one structured line per request; nil disables.
	AccessLog *log.Logger
	// ErrorLog receives panics and internal errors; nil uses log.Default().
	ErrorLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 32
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.SlowQuery == 0 {
		c.SlowQuery = 500 * time.Millisecond
	}
	if c.ErrorLog == nil {
		c.ErrorLog = log.Default()
	}
	return c
}

// Server is the HTTP query service.
type Server struct {
	engine Engine
	cfg    Config
	gate   *gate
	mux    *http.ServeMux
	reg    *metrics.Registry
	start  time.Time

	// draining flips /readyz to 503 before the listener stops accepting,
	// so load balancers drain traffic while in-flight (and grace-window)
	// queries still complete.
	draining atomic.Bool

	mRequests    *metrics.Counter
	mQueries     *metrics.Counter
	mRows        *metrics.Counter
	mParseErrs   *metrics.Counter
	mTimeouts    *metrics.Counter
	mCanceled    *metrics.Counter
	mRejected    *metrics.Counter
	mInternal    *metrics.Counter
	mUnavailable *metrics.Counter
	mPanics      *metrics.Counter
	mSlow        *metrics.Counter
	mInFlight    *metrics.Gauge
	mQueued      *metrics.Gauge
	mLatency     *metrics.Histogram
}

// New builds a Server over an engine.
func New(engine Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		engine: engine,
		cfg:    cfg,
		gate:   newGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		reg:    reg,
		start:  time.Now(),

		mRequests:    reg.Counter("txserved_http_requests_total", "HTTP requests received"),
		mQueries:     reg.Counter("txserved_queries_total", "queries executed successfully"),
		mRows:        reg.Counter("txserved_result_rows_total", "result rows returned"),
		mParseErrs:   reg.Counter("txserved_errors_parse_total", "requests rejected with a query syntax error"),
		mTimeouts:    reg.Counter("txserved_errors_timeout_total", "queries aborted by deadline expiry"),
		mCanceled:    reg.Counter("txserved_errors_canceled_total", "queries aborted because the client disconnected (499)"),
		mRejected:    reg.Counter("txserved_rejected_total", "requests rejected by admission control (429)"),
		mInternal:    reg.Counter("txserved_errors_internal_total", "queries failed with an internal error"),
		mUnavailable: reg.Counter("txserved_errors_unavailable_total", "queries rejected with 503 by the resilience tier (breaker open or degraded mode)"),
		mPanics:      reg.Counter("txserved_panics_total", "request handlers recovered from a panic"),
		mSlow:        reg.Counter("txserved_slow_queries_total", "queries slower than the slow-query threshold"),
		mInFlight:    reg.Gauge("txserved_inflight_queries", "queries executing now"),
		mQueued:      reg.Gauge("txserved_queued_requests", "requests waiting for an execution slot"),
		mLatency:     reg.Histogram("txserved_query_latency_ms", "query latency in milliseconds", nil),
	}
	s.registerEngineMetrics()
	s.registerShardMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Registry exposes the server's metrics registry (benchmarks read it).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// registerEngineMetrics pulls engine-owned counters — the storage tier's
// buffer pool and the shared version-reconstruction cache — into the
// /metrics exposition, when the engine exposes them.
func (s *Server) registerEngineMetrics() {
	if es, ok := s.engine.(ioStatser); ok {
		s.reg.CounterFunc("txserved_pagestore_cache_hits_total",
			"extent reads served by the buffer pool",
			func() int64 { return es.IOStats().CacheHits })
		s.reg.CounterFunc("txserved_pagestore_cache_misses_total",
			"extent reads that fell through the buffer pool to the backend",
			func() int64 { return es.IOStats().CacheMisses })
		s.reg.CounterFunc("txserved_pagestore_cache_evictions_total",
			"extents evicted from the buffer pool by its page budget",
			func() int64 { return es.IOStats().CacheEvictions })
		s.reg.CounterFunc("txserved_pagestore_extent_reads_total",
			"extent reads that touched the simulated disk",
			func() int64 { return es.IOStats().ExtentRead })
	}
	if ps, ok := s.engine.(poolStatser); ok {
		pool := func(f func(txmldb.PoolStats) int64) func() int64 {
			return func() int64 { return f(ps.PoolStats()) }
		}
		s.reg.GaugeFunc("txserved_pool_workers",
			"worker-pool concurrency bound",
			pool(func(st txmldb.PoolStats) int64 { return int64(st.Workers) }))
		s.reg.CounterFunc("txserved_pool_tasks_submitted_total",
			"tasks handed to the worker pool",
			pool(func(st txmldb.PoolStats) int64 { return st.Submitted }))
		s.reg.CounterFunc("txserved_pool_tasks_completed_total",
			"worker-pool tasks that ran to completion",
			pool(func(st txmldb.PoolStats) int64 { return st.Completed }))
		s.reg.CounterFunc("txserved_pool_tasks_cancelled_total",
			"worker-pool tasks abandoned by cancellation or an earlier error",
			pool(func(st txmldb.PoolStats) int64 { return st.Cancelled }))
		s.reg.CounterFunc("txserved_pool_tasks_panicked_total",
			"worker-pool tasks that panicked (captured and returned as errors)",
			pool(func(st txmldb.PoolStats) int64 { return st.Panicked }))
		s.reg.GaugeFunc("txserved_pool_active_tasks",
			"worker-pool tasks executing now (pool depth)",
			pool(func(st txmldb.PoolStats) int64 { return st.Active }))
		s.reg.GaugeFunc("txserved_pool_queued_tasks",
			"tasks waiting for a worker slot now",
			pool(func(st txmldb.PoolStats) int64 { return st.Queued }))
		s.reg.CounterFunc("txserved_pool_queue_wait_ms_total",
			"total time tasks spent waiting for a worker slot",
			pool(func(st txmldb.PoolStats) int64 { return st.QueueWait.Milliseconds() }))
		// Per-operator speedup proxy (task-time / wall-time), scaled by
		// 1000 because the registry is integer-valued.
		for _, scope := range []string{"scan", "history", "diff", "reconstruct", "plan"} {
			scope := scope
			//txvet:ignore metricname per-scope gauge family: prefix is literal and the suffixes are the compile-time scope constants above
			s.reg.GaugeFunc("txserved_pool_speedup_milli_"+scope,
				"per-operator parallel speedup proxy x1000 (task time / wall time) for scope "+scope,
				func() int64 {
					sc, ok := ps.PoolStats().Scopes[scope]
					if !ok {
						return 0
					}
					return int64(sc.Speedup() * 1000)
				})
		}
	}
	if ck, ok := s.engine.(checkpointStatser); ok {
		if _, durable := ck.CheckpointStats(); durable {
			cks := func(f func(txmldb.CheckpointStats) int64) func() int64 {
				return func() int64 { st, _ := ck.CheckpointStats(); return f(st) }
			}
			s.reg.CounterFunc("txserved_checkpoint_total",
				"checkpoints published",
				cks(func(st txmldb.CheckpointStats) int64 { return int64(st.Runs) }))
			s.reg.CounterFunc("txserved_checkpoint_errors_total",
				"checkpoint attempts that failed",
				cks(func(st txmldb.CheckpointStats) int64 { return int64(st.Errors) }))
			s.reg.GaugeFunc("txserved_checkpoint_last_bytes",
				"size of the last published checkpoint image",
				cks(func(st txmldb.CheckpointStats) int64 { return st.LastBytes }))
			s.reg.GaugeFunc("txserved_checkpoint_last_ms",
				"wall time of the last checkpoint run in milliseconds",
				cks(func(st txmldb.CheckpointStats) int64 { return st.LastDuration.Milliseconds() }))
			s.reg.CounterFunc("txserved_checkpoint_segments_deleted_total",
				"write-ahead-log segments reclaimed by checkpoint compaction",
				cks(func(st txmldb.CheckpointStats) int64 { return int64(st.SegmentsDeleted) }))
			s.reg.GaugeFunc("txserved_wal_segments",
				"write-ahead-log segments currently on disk",
				func() int64 { return ck.WALSegments() })
		}
	}
	if gs, ok := s.engine.(groupStatser); ok {
		if _, batching := gs.CommitBatchStats(); batching {
			gcs := func(f func(txmldb.GroupStats) int64) func() int64 {
				return func() int64 { st, _ := gs.CommitBatchStats(); return f(st) }
			}
			s.reg.CounterFunc("txserved_commit_batch_commits_total",
				"commits that went through the WAL group-commit batcher",
				gcs(func(st txmldb.GroupStats) int64 { return st.Commits }))
			s.reg.CounterFunc("txserved_commit_batch_batches_total",
				"batches flushed, i.e. fsyncs actually issued",
				gcs(func(st txmldb.GroupStats) int64 { return st.Batches }))
			s.reg.CounterFunc("txserved_commit_batch_failures_total",
				"commits that failed with their batch's shared fsync error",
				gcs(func(st txmldb.GroupStats) int64 { return st.Failures }))
			s.reg.GaugeFunc("txserved_commit_batch_max_batch",
				"largest number of commits amortized into a single fsync",
				gcs(func(st txmldb.GroupStats) int64 { return st.MaxBatch }))
		}
	}
	if hr, ok := s.engine.(healthReporter); ok {
		if _, enabled := hr.Health(); enabled {
			hsnap := func(f func(txmldb.HealthSnapshot) int64) func() int64 {
				return func() int64 { snap, _ := hr.Health(); return f(snap) }
			}
			s.reg.GaugeFunc("txserved_health_state",
				"overall engine health (0 healthy, 1 degraded, 2 failing)",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return int64(h.State) }))
			s.reg.GaugeFunc("txserved_health_state_backend",
				"backend I/O path health (0 healthy, 1 degraded, 2 failing)",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return int64(h.Backend.State) }))
			s.reg.GaugeFunc("txserved_health_state_data",
				"data integrity health (0 healthy, 1 degraded/corrupt, 2 failing)",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return int64(h.Data.State) }))
			s.reg.GaugeFunc("txserved_breaker_state",
				"backend-read circuit breaker position (0 closed, 1 half-open, 2 open)",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return int64(h.Breaker.State) }))
			s.reg.CounterFunc("txserved_breaker_opens_total",
				"times the circuit breaker tripped open",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return h.Breaker.Opens }))
			s.reg.CounterFunc("txserved_breaker_fast_fails_total",
				"backend reads rejected fast while the breaker was open",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return h.Breaker.FastFails }))
			s.reg.CounterFunc("txserved_breaker_probes_total",
				"half-open probe reads admitted by the breaker",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return h.Breaker.Probes }))
			s.reg.CounterFunc("txserved_degraded_reads_total",
				"reads served from cache or the current snapshot while degraded",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return h.DegradedServes }))
			s.reg.CounterFunc("txserved_degraded_rejected_total",
				"writes and cache-miss reads rejected while degraded",
				hsnap(func(h txmldb.HealthSnapshot) int64 { return h.DegradedRejects }))
		}
	}
	cs, ok := s.engine.(cacheStatser)
	if !ok {
		return
	}
	if _, enabled := cs.CacheStats(); !enabled {
		return
	}
	vc := func(f func(txmldb.CacheStats) int64) func() int64 {
		return func() int64 { st, _ := cs.CacheStats(); return f(st) }
	}
	s.reg.CounterFunc("txserved_vcache_lookups_total",
		"version-cache lookups", vc(func(st txmldb.CacheStats) int64 { return st.Lookups }))
	s.reg.CounterFunc("txserved_vcache_hits_total",
		"version-cache exact hits", vc(func(st txmldb.CacheStats) int64 { return st.Hits }))
	s.reg.CounterFunc("txserved_vcache_misses_total",
		"version-cache misses", vc(func(st txmldb.CacheStats) int64 { return st.Misses }))
	s.reg.CounterFunc("txserved_vcache_ancestor_hits_total",
		"version-cache misses served by forward replay from a cached ancestor",
		vc(func(st txmldb.CacheStats) int64 { return st.AncestorHits }))
	s.reg.CounterFunc("txserved_vcache_collapsed_flights_total",
		"version-cache misses collapsed into another goroutine's reconstruction",
		vc(func(st txmldb.CacheStats) int64 { return st.CollapsedFlights }))
	s.reg.CounterFunc("txserved_vcache_evictions_total",
		"version-cache entries evicted by the byte budget",
		vc(func(st txmldb.CacheStats) int64 { return st.Evictions }))
	s.reg.CounterFunc("txserved_vcache_invalidations_total",
		"version-cache entries dropped by document writes",
		vc(func(st txmldb.CacheStats) int64 { return st.Invalidations }))
	s.reg.GaugeFunc("txserved_vcache_resident_bytes",
		"deep size of all cached version trees",
		vc(func(st txmldb.CacheStats) int64 { return st.ResidentBytes }))
	s.reg.GaugeFunc("txserved_vcache_entries",
		"cached version trees resident now",
		vc(func(st txmldb.CacheStats) int64 { return st.Entries }))
}

// registerShardMetrics publishes the txserved_shard_* family for sharded
// engines: one labeled series per shard (shard="NN"), sampled from the
// router's per-shard counters. A single-engine deployment exposes none of
// these — the family's presence is itself the sharding signal.
func (s *Server) registerShardMetrics() {
	ss, ok := s.engine.(shardStatser)
	if !ok {
		return
	}
	n := ss.Shards()
	s.reg.Gauge("txserved_shards", "engine shards behind this server").Set(int64(n))
	stat := func(i int, f func(txmldb.ShardStats) int64) func() int64 {
		return func() int64 { return f(ss.ShardStats()[i]) }
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%02d", i)
		s.reg.LabeledCounterFunc("txserved_shard_ops_total",
			"operations admitted through the shard's gate", "shard", label,
			stat(i, func(st txmldb.ShardStats) int64 { return st.Ops }))
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%02d", i)
		s.reg.LabeledGaugeFunc("txserved_shard_active_ops",
			"operations executing inside the shard's engine now", "shard", label,
			stat(i, func(st txmldb.ShardStats) int64 { return st.Active }))
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%02d", i)
		s.reg.LabeledGaugeFunc("txserved_shard_queue_depth",
			"operations waiting for the shard's admission gate now", "shard", label,
			stat(i, func(st txmldb.ShardStats) int64 { return st.Queued }))
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%02d", i)
		s.reg.LabeledGaugeFunc("txserved_shard_docs",
			"documents homed on the shard", "shard", label,
			stat(i, func(st txmldb.ShardStats) int64 { return int64(st.Docs) }))
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("%02d", i)
		s.reg.LabeledGaugeFunc("txserved_shard_health_state",
			"shard health (0 healthy, 1 degraded, 2 failing)", "shard", label,
			stat(i, func(st txmldb.ShardStats) int64 { return int64(st.Health) }))
	}
	// Checkpoint/WAL series only when the shards are durable.
	if st := ss.ShardStats(); n > 0 && st[0].Durable {
		for i := 0; i < n; i++ {
			label := fmt.Sprintf("%02d", i)
			s.reg.LabeledCounterFunc("txserved_shard_checkpoint_total",
				"checkpoints published by the shard", "shard", label,
				stat(i, func(st txmldb.ShardStats) int64 { return int64(st.CheckpointRuns) }))
		}
		for i := 0; i < n; i++ {
			label := fmt.Sprintf("%02d", i)
			s.reg.LabeledGaugeFunc("txserved_shard_wal_segments",
				"write-ahead-log segments the shard has on disk", "shard", label,
				stat(i, func(st txmldb.ShardStats) int64 { return st.WALSegments }))
		}
	}
}

// Handler returns the full middleware stack: panic recovery, request
// counting and access logging around the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mRequests.Inc()
		lw := &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		started := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				s.cfg.ErrorLog.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if !lw.wrote {
					writeError(lw, http.StatusInternalServerError, errorBody{Kind: "internal", Message: "internal server error"})
				}
			}
			if s.cfg.AccessLog != nil {
				s.cfg.AccessLog.Printf("method=%s path=%s status=%d dur_ms=%.3f bytes=%d remote=%s",
					r.Method, r.URL.Path, lw.status, float64(time.Since(started))/float64(time.Millisecond),
					lw.bytes, r.RemoteAddr)
			}
		}()
		s.mux.ServeHTTP(lw, r)
	})
}

// Run serves on l until ctx is canceled, then gracefully shuts down in
// readiness-first order: /readyz flips to 503 while the listener still
// accepts (for Config.DrainGrace, so load balancers route traffic away
// without failing in-flight or just-arrived requests), then the listener
// closes and in-flight requests drain (up to drainTimeout). It returns
// the serve error, or nil after a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.Handler(), ErrorLog: s.cfg.ErrorLog}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Readiness goes down BEFORE the listener: a request admitted during
	// the grace window still succeeds, but health checks steer new traffic
	// elsewhere. Closing the listener first would hard-fail the requests a
	// balancer sends before its next /readyz poll.
	s.draining.Store(true)
	if s.cfg.DrainGrace > 0 {
		grace := time.NewTimer(s.cfg.DrainGrace)
		select {
		case err := <-errc:
			grace.Stop()
			return err
		case <-grace.C:
		}
	}
	//txvet:ignore ctxflow deliberate fresh root: the serve ctx is already done when the drain deadline starts
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return hs.Shutdown(dctx)
}

// Draining reports whether the server has begun shutting down (readiness
// is already failing; the listener may still be accepting for the grace
// window).
func (s *Server) Draining() bool { return s.draining.Load() }

// loggingWriter captures status and byte count for the access log, and
// whether anything was written (panic recovery can only send an error
// response on an untouched connection).
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *loggingWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *loggingWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *loggingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// --- request / response shapes ---

// queryRequest is the POST /query body.
type queryRequest struct {
	Query string `json:"query"`
	// TimeoutMs shortens the server's query deadline for this request;
	// it can never extend it.
	TimeoutMs int64 `json:"timeout_ms"`
}

// errorBody is the typed error envelope: {"error": {...}}.
type errorBody struct {
	Kind    string `json:"kind"` // parse | timeout | overload | bad_request | unavailable | canceled | internal
	Message string `json:"message"`
	// Position of a parse error in the query text (1-based; present only
	// for kind "parse").
	Line   int `json:"line,omitempty"`
	Col    int `json:"col,omitempty"`
	Offset int `json:"offset,omitempty"`
}

func writeError(w http.ResponseWriter, status int, body errorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]errorBody{"error": body})
}

// readQueryRequest accepts GET ?q=...&timeout_ms=... or a POST JSON body.
func readQueryRequest(r *http.Request) (queryRequest, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query().Get("q")
		if q == "" {
			return queryRequest{}, errors.New("missing q parameter")
		}
		var tmo int64
		if t := r.URL.Query().Get("timeout_ms"); t != "" {
			var err error
			if tmo, err = strconv.ParseInt(t, 10, 64); err != nil {
				return queryRequest{}, fmt.Errorf("bad timeout_ms: %v", err)
			}
		}
		return queryRequest{Query: q, TimeoutMs: tmo}, nil
	}
	var req queryRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad request body: %v", err)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("empty query")
	}
	return req, nil
}

// --- handlers ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errorBody{Kind: "bad_request", Message: "use GET or POST"})
		return
	}
	req, err := readQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Kind: "bad_request", Message: err.Error()})
		return
	}

	// Admission: reserve an execution slot or reject with Retry-After.
	s.mQueued.Set(s.gate.queueDepth())
	if err := s.gate.acquire(r.Context()); err != nil {
		if errors.Is(err, errOverload) {
			s.mRejected.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.QueueWait+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, errorBody{Kind: "overload", Message: "server overloaded, retry later"})
			return
		}
		// Client went away while queued.
		s.mCanceled.Inc()
		writeError(w, statusClientClosedRequest, errorBody{Kind: "canceled", Message: "client closed request"})
		return
	}
	defer s.gate.release()
	s.mInFlight.Inc()
	defer s.mInFlight.Dec()

	timeout := s.cfg.QueryTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	started := time.Now()
	res, err := s.engine.QueryContext(ctx, req.Query)
	elapsed := time.Since(started)
	s.mLatency.ObserveDuration(elapsed)
	if s.cfg.SlowQuery > 0 && elapsed > s.cfg.SlowQuery {
		s.mSlow.Inc()
		s.cfg.ErrorLog.Printf("slow query: dur_ms=%.1f query=%q", float64(elapsed)/float64(time.Millisecond), req.Query)
	}
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	s.mQueries.Inc()
	s.mRows.Add(int64(len(res.Rows)))
	streamResult(w, res, elapsed)
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the server produced a response.
const statusClientClosedRequest = 499

// writeQueryError maps an execution error to a typed response.
func (s *Server) writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	var pe *txmldb.ParseError
	switch {
	case errors.As(err, &pe):
		s.mParseErrs.Inc()
		writeError(w, http.StatusBadRequest, errorBody{
			Kind: "parse", Message: pe.Msg, Line: pe.Line, Col: pe.Col, Offset: pe.Offset,
		})
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, errorBody{Kind: "timeout", Message: "query exceeded its deadline"})
	case errors.Is(err, context.Canceled):
		s.mCanceled.Inc()
		writeError(w, statusClientClosedRequest, errorBody{Kind: "canceled", Message: "client closed request"})
	case errors.Is(err, txmldb.ErrCircuitOpen), errors.Is(err, txmldb.ErrDegraded):
		// The resilience tier rejected the operation: breaker open on a
		// cache-miss read, or a write while degraded. 503 + Retry-After
		// (the breaker's remaining open window) tells well-behaved clients
		// when the half-open probes could have recovered the engine.
		s.mUnavailable.Inc()
		retry := time.Second
		if hr, ok := s.engine.(healthReporter); ok {
			retry = hr.RetryAfter()
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeError(w, http.StatusServiceUnavailable, errorBody{Kind: "unavailable", Message: err.Error()})
	default:
		s.mInternal.Inc()
		s.cfg.ErrorLog.Printf("query failed: %v (%s %s)", err, r.Method, r.URL.Path)
		writeError(w, http.StatusInternalServerError, errorBody{Kind: "internal", Message: err.Error()})
	}
}

// streamResult writes the result as one JSON object, row by row with
// periodic flushes so large answers stream instead of buffering whole in
// memory a second time.
func streamResult(w http.ResponseWriter, res *txmldb.Result, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	cols, _ := json.Marshal(res.Columns)
	fmt.Fprintf(w, `{"columns":%s,"rows":[`, cols)
	for i, row := range res.Rows {
		if i > 0 {
			io.WriteString(w, ",")
		}
		enc, err := json.Marshal(jsonRow(row))
		if err != nil {
			enc = []byte(`null`)
		}
		w.Write(enc)
		if flusher != nil && i%64 == 63 {
			flusher.Flush()
		}
	}
	degraded := ""
	if res.Degraded {
		// Flag answers served while the resilience tier was degraded: the
		// rows are correct (cache / current-snapshot served), but clients
		// monitoring freshness or coverage should know the engine's state.
		degraded = `"degraded":true,`
	}
	fmt.Fprintf(w, `],%s"row_count":%d,"metrics":{"pattern_matches":%d,"reconstructions":%d,"rows_examined":%d},"elapsed_ms":%.3f}`,
		degraded, len(res.Rows), res.Metrics.PatternMatches, res.Metrics.Reconstructions, res.Metrics.RowsExamined,
		float64(elapsed)/float64(time.Millisecond))
	io.WriteString(w, "\n")
}

// jsonRow converts one result row into JSON-encodable values: element
// lists become lists of XML strings, timestamps render in the language's
// own format, scalars pass through.
func jsonRow(row []any) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch x := v.(type) {
		case []txmldb.Elem:
			xs := make([]string, len(x))
			for j, el := range x {
				xs[j] = el.Node.String()
			}
			out[i] = xs
		case txmldb.Time:
			out[i] = x.String()
		default:
			out[i] = v
		}
	}
	return out
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := readQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorBody{Kind: "bad_request", Message: err.Error()})
		return
	}
	plan, err := s.engine.Explain(req.Query)
	if err != nil {
		s.writeQueryError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"plan": plan})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":   "ok",
		"uptime_s": int64(time.Since(s.start) / time.Second),
	}
	if dl, ok := s.engine.(docLister); ok {
		resp["docs"] = len(dl.Docs())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleReadyz is readiness, distinct from /healthz liveness: it answers
// 503 while the server is draining or while the engine's resilience tier
// reports degraded/failing, so load balancers stop routing here while the
// process itself stays alive (and /healthz keeps returning 200). The body
// always carries the full picture — overall state, per-component states,
// breaker position — so an operator curling it sees why.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	ready := !draining
	resp := map[string]any{"draining": draining}
	ss, sharded := s.engine.(shardStatser)
	if hr, ok := s.engine.(healthReporter); ok {
		if snap, enabled := hr.Health(); enabled {
			if snap.State != txmldb.StateHealthy {
				ready = false
			}
			if sharded && snap.State == txmldb.StateDegraded && !draining {
				// Shard-aware readiness: the aggregate is Degraded whenever
				// any single shard is sick, but the other shards keep serving
				// their documents — staying ready avoids a one-shard outage
				// draining the whole fleet. Only every shard failing (the
				// aggregate Failing) takes readiness down.
				ready = true
			}
			resp["state"] = snap.State.String()
			resp["components"] = map[string]string{
				"backend": snap.Backend.State.String(),
				"data":    snap.Data.State.String(),
			}
			resp["breaker"] = snap.Breaker.State.String()
			resp["degraded_reads"] = snap.DegradedServes
			resp["degraded_rejects"] = snap.DegradedRejects
		}
	}
	if sharded {
		shards := make([]map[string]any, 0, ss.Shards())
		for _, sh := range ss.ShardHealth() {
			entry := map[string]any{"shard": sh.Shard}
			if sh.Enabled {
				entry["state"] = sh.State.String()
				entry["breaker"] = sh.Breaker.String()
			} else {
				entry["state"] = "untracked"
			}
			shards = append(shards, entry)
		}
		resp["shards"] = shards
	}
	resp["ready"] = ready
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		if hr, ok := s.engine.(healthReporter); ok {
			w.Header().Set("Retry-After", strconv.Itoa(int((hr.RetryAfter()+time.Second-1)/time.Second)))
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}
