package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errOverload is returned by gate.acquire when the server is saturated:
// every execution slot is busy and the wait queue is full (or the waiter
// timed out). The handler turns it into 429 + Retry-After.
var errOverload = errors.New("server: overloaded")

// gate is two-level admission control for query execution. Up to
// maxInFlight queries execute concurrently; up to maxQueue more requests
// may wait (each at most wait) for a slot to free; everything beyond that
// is rejected immediately. Bounding both levels keeps the server's memory
// and latency under overload proportional to the configuration, not to
// the offered load — the queue can never grow without bound and a queued
// request can never wait forever.
type gate struct {
	tokens chan struct{} // capacity = maxInFlight; a send acquires a slot
	queued atomic.Int64
	max    int64 // maxQueue
	wait   time.Duration
}

func newGate(maxInFlight, maxQueue int, wait time.Duration) *gate {
	return &gate{
		tokens: make(chan struct{}, maxInFlight),
		max:    int64(maxQueue),
		wait:   wait,
	}
}

// acquire reserves an execution slot, waiting in the bounded queue if
// necessary. It returns errOverload when rejected, or the context's error
// when the caller gave up first. On nil error the caller must release().
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.tokens <- struct{}{}:
		return nil
	default:
	}
	// Saturated: try to join the wait queue.
	if g.queued.Add(1) > g.max {
		g.queued.Add(-1)
		return errOverload
	}
	defer g.queued.Add(-1)
	t := time.NewTimer(g.wait)
	defer t.Stop()
	select {
	case g.tokens <- struct{}{}:
		return nil
	case <-t.C:
		return errOverload
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release frees a slot acquired with acquire.
func (g *gate) release() { <-g.tokens }

// inFlight returns the number of executing queries.
func (g *gate) inFlight() int { return len(g.tokens) }

// queueDepth returns the number of waiting requests.
func (g *gate) queueDepth() int64 { return g.queued.Load() }
