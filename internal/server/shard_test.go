package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"txmldb"
	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/shard"
	"txmldb/internal/xmltree"
)

// shardedDB builds a 3-shard in-memory router holding a few documents.
func shardedDB(tb testing.TB) *shard.Router {
	tb.Helper()
	r := shard.Open(shard.Config{
		Shards: 3,
		Engine: func(int) core.Config {
			return core.Config{Clock: func() model.Time { return model.Date(2001, 2, 10) }}
		},
	})
	tb.Cleanup(func() { r.Close() })
	for i := 0; i < 9; i++ {
		g := xmltree.NewElement("guide")
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", fmt.Sprintf("place-%d", i)),
			xmltree.ElemText("price", "10")))
		url := fmt.Sprintf("http://doc%d.example.com/x.xml", i)
		if _, err := r.Put(url, g, model.Date(2001, 1, 1)); err != nil {
			tb.Fatal(err)
		}
	}
	return r
}

// TestShardMetricsExposition: serving a sharded engine exposes the
// txserved_shard_* family with one shard="NN" series per shard, and the
// plain engine exposes none of it.
func TestShardMetricsExposition(t *testing.T) {
	s := New(shardedDB(t), Config{SlowQuery: -1, ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive some traffic so ops counters move.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(fmt.Sprintf(
			`SELECT R FROM doc("http://doc%d.example.com/x.xml")[01/01/2001]/restaurant R`, i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"txserved_shards 3",
		`txserved_shard_docs{shard="00"}`,
		`txserved_shard_docs{shard="01"}`,
		`txserved_shard_docs{shard="02"}`,
		`txserved_shard_ops_total{shard="00"}`,
		`txserved_shard_active_ops{shard="01"}`,
		`txserved_shard_queue_depth{shard="02"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// One header per family, not per series.
	if got := strings.Count(out, "# TYPE txserved_shard_docs gauge"); got != 1 {
		t.Errorf("txserved_shard_docs TYPE header appears %d times, want 1", got)
	}
	// In-memory shards: no checkpoint/WAL series.
	if strings.Contains(out, "txserved_shard_checkpoint_total") {
		t.Error("non-durable shards exposed checkpoint series")
	}
	// Doc counts across the series must sum to the corpus.
	sum := 0
	for _, st := range shardStatsOf(t, s) {
		sum += st.Docs
	}
	if sum != 9 {
		t.Errorf("shard doc counts sum to %d, want 9", sum)
	}

	// A plain single engine exposes none of the family.
	_, ts2 := figure1Server(t, Config{SlowQuery: -1, ErrorLog: discardLogger()})
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(body2), "txserved_shard") {
		t.Error("unsharded engine exposed txserved_shard_* series")
	}
}

func shardStatsOf(t *testing.T, s *Server) []txmldb.ShardStats {
	t.Helper()
	ss, ok := s.engine.(shardStatser)
	if !ok {
		t.Fatal("sharded engine does not satisfy shardStatser")
	}
	return ss.ShardStats()
}

// readyStub is a controllable engine for the shard-aware readiness rules.
type readyStub struct {
	state txmldb.HealthState
}

func (e *readyStub) QueryContext(ctx context.Context, src string) (*txmldb.Result, error) {
	return &txmldb.Result{}, nil
}
func (e *readyStub) Explain(src string) (string, error) { return "", nil }
func (e *readyStub) Health() (txmldb.HealthSnapshot, bool) {
	return txmldb.HealthSnapshot{State: e.state}, true
}
func (e *readyStub) RetryAfter() time.Duration { return time.Second }

// shardedStub adds the shardStatser surface.
type shardedStub struct{ readyStub }

func (e *shardedStub) Shards() int { return 2 }
func (e *shardedStub) ShardStats() []txmldb.ShardStats {
	return []txmldb.ShardStats{{Shard: 0}, {Shard: 1}}
}
func (e *shardedStub) ShardHealth() []txmldb.ShardHealth {
	return []txmldb.ShardHealth{
		{Shard: 0, Enabled: true, State: txmldb.StateHealthy},
		{Shard: 1, Enabled: true, State: e.state},
	}
}

// TestReadyzShardAware: a Degraded aggregate keeps a sharded engine ready
// (one sick shard must not drain the whole instance) while the same state
// takes an unsharded engine out of rotation; aggregate Failing takes both
// down. The sharded body lists per-shard states either way.
func TestReadyzShardAware(t *testing.T) {
	cases := []struct {
		name   string
		engine Engine
		status int
		ready  bool
		shards bool
	}{
		{"unsharded degraded", &readyStub{state: txmldb.StateDegraded}, http.StatusServiceUnavailable, false, false},
		{"sharded degraded", &shardedStub{readyStub{state: txmldb.StateDegraded}}, http.StatusOK, true, true},
		{"sharded failing", &shardedStub{readyStub{state: txmldb.StateFailing}}, http.StatusServiceUnavailable, false, true},
		{"sharded healthy", &shardedStub{readyStub{state: txmldb.StateHealthy}}, http.StatusOK, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.engine, Config{SlowQuery: -1, ErrorLog: discardLogger()})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			resp, err := http.Get(ts.URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			var body struct {
				Ready  bool `json:"ready"`
				Shards []struct {
					Shard int    `json:"shard"`
					State string `json:"state"`
				} `json:"shards"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Ready != tc.ready {
				t.Fatalf("ready=%v, want %v", body.Ready, tc.ready)
			}
			if tc.shards && len(body.Shards) != 2 {
				t.Fatalf("shards list %v, want 2 entries", body.Shards)
			}
			if !tc.shards && body.Shards != nil {
				t.Fatalf("unsharded readyz carries a shards list: %v", body.Shards)
			}
		})
	}
}
