package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAcquireRelease(t *testing.T) {
	g := newGate(2, 1, 50*time.Millisecond)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if g.inFlight() != 2 {
		t.Errorf("inFlight = %d, want 2", g.inFlight())
	}
	// Third acquire waits and times out: the queue drained nothing.
	start := time.Now()
	if err := g.acquire(ctx); !errors.Is(err, errOverload) {
		t.Fatalf("3rd acquire = %v, want overload", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("queued acquire returned before the wait deadline")
	}
	g.release()
	if err := g.acquire(ctx); err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
}

func TestGateQueueOverflowRejectsImmediately(t *testing.T) {
	g := newGate(1, 1, time.Second)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// One waiter occupies the queue.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	for g.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The next acquire must fail without waiting.
	start := time.Now()
	if err := g.acquire(ctx); !errors.Is(err, errOverload) {
		t.Fatalf("overflow acquire = %v, want overload", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("overflow rejection was not immediate")
	}
	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire = %v, want success after release", err)
	}
}

func TestGateHonorsContextWhileQueued(t *testing.T) {
	g := newGate(1, 4, time.Minute)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.acquire(ctx) }()
	for g.queueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter = %v, want context.Canceled", err)
	}
	if g.queueDepth() != 0 {
		t.Errorf("queueDepth = %d after cancel, want 0", g.queueDepth())
	}
}

// TestGateStress hammers the gate from many goroutines; under -race this
// checks the token/queue accounting.
func TestGateStress(t *testing.T) {
	g := newGate(4, 8, 100*time.Millisecond)
	var wg sync.WaitGroup
	var admitted, rejected sync.Map
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := g.acquire(context.Background()); err != nil {
				rejected.Store(i, true)
				return
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			g.release()
		}(i)
	}
	wg.Wait()
	if g.inFlight() != 0 || g.queueDepth() != 0 {
		t.Errorf("gate not drained: inFlight=%d queued=%d", g.inFlight(), g.queueDepth())
	}
	n := 0
	admitted.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("no request was ever admitted")
	}
}
