package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"txmldb"
	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// figure1DB loads the paper's Figure 1 restaurant history. (Local copy of
// experiments.Figure1DB: the experiments package imports this one for the
// S1 serving benchmark, so in-package tests cannot import it back.)
func figure1DB(tb testing.TB) *core.DB {
	tb.Helper()
	db := core.Open(core.Config{Clock: func() model.Time { return model.Date(2001, 2, 10) }})
	mk := func(entries ...[2]string) *xmltree.Node {
		g := xmltree.NewElement("guide")
		for _, e := range entries {
			g.AppendChild(xmltree.Elem("restaurant",
				xmltree.ElemText("name", e[0]),
				xmltree.ElemText("price", e[1])))
		}
		return g
	}
	id, err := db.Put("http://guide.com/restaurants.xml", mk([2]string{"Napoli", "15"}), model.Date(2001, 1, 1))
	if err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Update(id, mk([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), model.Date(2001, 1, 15)); err != nil {
		tb.Fatal(err)
	}
	if _, _, err := db.Update(id, mk([2]string{"Napoli", "18"}), model.Date(2001, 1, 31)); err != nil {
		tb.Fatal(err)
	}
	return db
}

// figure1Server serves the paper's Figure 1 restaurant history.
func figure1Server(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(figure1DB(t), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// queryResponse mirrors the streamed /query JSON envelope.
type queryResponse struct {
	Columns  []string          `json:"columns"`
	Rows     []json.RawMessage `json:"rows"`
	RowCount int               `json:"row_count"`
	Metrics  struct {
		PatternMatches  int `json:"pattern_matches"`
		Reconstructions int `json:"reconstructions"`
		RowsExamined    int `json:"rows_examined"`
	} `json:"metrics"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Offset  int    `json:"offset"`
	} `json:"error"`
}

func getQuery(t *testing.T, ts *httptest.Server, q string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeFigure1Queries runs the paper's Q1–Q3 over HTTP and checks the
// answers against the text (the acceptance scenario).
func TestServeFigure1Queries(t *testing.T) {
	_, ts := figure1Server(t, Config{})

	// Q1: snapshot at 26/01/2001 — Napoli(15) and Akropolis(13).
	resp, body := getQuery(t, ts,
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Q1 status = %d, body %s", resp.StatusCode, body)
	}
	var q1 queryResponse
	if err := json.Unmarshal(body, &q1); err != nil {
		t.Fatalf("Q1 response is not valid JSON: %v\n%s", err, body)
	}
	if q1.RowCount != 2 || len(q1.Rows) != 2 {
		t.Fatalf("Q1 rows = %d (%d streamed), want 2", q1.RowCount, len(q1.Rows))
	}
	all := string(body)
	for _, want := range []string{"Napoli", "15", "Akropolis", "13"} {
		if !strings.Contains(all, want) {
			t.Errorf("Q1 response missing %q", want)
		}
	}

	// Q2: the aggregate counts 2 restaurants with zero reconstructions.
	resp, body = getQuery(t, ts,
		`SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Q2 status = %d, body %s", resp.StatusCode, body)
	}
	var q2 queryResponse
	if err := json.Unmarshal(body, &q2); err != nil {
		t.Fatal(err)
	}
	if q2.RowCount != 1 || string(q2.Rows[0]) != "[2]" {
		t.Errorf("Q2 rows = %v (count %d), want [[2]]", q2.Rows, q2.RowCount)
	}
	if q2.Metrics.Reconstructions != 0 {
		t.Errorf("Q2 reconstructions = %d, want 0 (the paper's Section 6.2 point)", q2.Metrics.Reconstructions)
	}

	// Q3: Napoli's price history — 15 on Jan 1, 18 on Jan 31.
	resp, body = getQuery(t, ts,
		`SELECT TIME(R), R/price FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R WHERE R/name="Napoli"`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Q3 status = %d, body %s", resp.StatusCode, body)
	}
	var q3 queryResponse
	if err := json.Unmarshal(body, &q3); err != nil {
		t.Fatal(err)
	}
	if q3.RowCount != 2 {
		t.Fatalf("Q3 rows = %d, want 2; body %s", q3.RowCount, body)
	}
	hist := map[string]string{}
	for _, raw := range q3.Rows {
		var row []any
		if err := json.Unmarshal(raw, &row); err != nil {
			t.Fatal(err)
		}
		at := row[0].(string)
		price := row[1].([]any)[0].(string)
		hist[at] = price
	}
	if !strings.Contains(hist["2001-01-01 00:00:00"], "15") || !strings.Contains(hist["2001-01-31 00:00:00"], "18") {
		t.Errorf("Q3 history = %v, want 15@Jan1 and 18@Jan31", hist)
	}
}

// TestParseErrorResponse checks malformed queries come back as 400 with
// kind "parse" and the error position.
func TestParseErrorResponse(t *testing.T) {
	_, ts := figure1Server(t, Config{})
	for _, src := range []string{
		`SELECT R WHERE x`,
		`SELECT R FROM doc("u`,
		`SELECT R FROM doc("u")/r R WHERE R ? 1`,
	} {
		resp, body := getQuery(t, ts, src)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status = %d, want 400; body %s", src, resp.StatusCode, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("%q: bad error body %s", src, body)
		}
		if er.Error.Kind != "parse" {
			t.Errorf("%q: kind = %q, want parse", src, er.Error.Kind)
		}
		if er.Error.Line < 1 || er.Error.Col < 1 {
			t.Errorf("%q: missing position in %+v", src, er.Error)
		}
	}

	// Non-query junk is a bad_request, not a parse error.
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":""}`))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "bad_request") {
		t.Errorf("empty query: status %d body %s, want 400 bad_request", resp.StatusCode, body)
	}
}

// blockingEngine parks every query until release is closed, and reports
// entry on entered.
type blockingEngine struct {
	entered chan struct{}
	release chan struct{}
}

func (e *blockingEngine) QueryContext(ctx context.Context, src string) (*txmldb.Result, error) {
	select {
	case e.entered <- struct{}{}:
	default:
	}
	select {
	case <-e.release:
		return &txmldb.Result{Columns: []string{"x"}, Rows: [][]any{{int64(1)}}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *blockingEngine) Explain(src string) (string, error) { return "stub", nil }

// TestOverload429 saturates a 1-slot, 1-queue server and checks the third
// request is rejected immediately with 429 + Retry-After.
func TestOverload429(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}, 16), release: make(chan struct{})}
	s := New(eng, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Second, ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	results := make(chan int, 2)
	do := func() {
		resp, err := http.Get(ts.URL + "/query?q=x")
		if err != nil {
			results <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp.StatusCode
	}
	// First request takes the only slot.
	go do()
	<-eng.entered
	// Second request joins the queue; wait until the server sees it.
	go do()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.queueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third request finds slot busy and queue full: immediate 429.
	resp, err := http.Get(ts.URL + "/query?q=x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if !strings.Contains(string(body), "overload") {
		t.Errorf("429 body = %s, want kind overload", body)
	}

	// Releasing lets both admitted requests finish.
	close(eng.release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("admitted request %d finished with %d, want 200", i, code)
		}
	}
	if got := s.mRejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// TestQueryTimeout checks a query that exceeds its deadline mid-execution
// comes back 504 and leaves the server healthy.
func TestQueryTimeout(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(eng, Config{QueryTimeout: 20 * time.Second, SlowQuery: -1, ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?q=x&timeout_ms=30")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Kind != "timeout" {
		t.Errorf("body = %s, want kind timeout", body)
	}
	if got := s.mTimeouts.Value(); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}

	// The slot was released: a fresh query is admitted and completes.
	close(eng.release)
	resp2, err := http.Get(ts.URL + "/query?q=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-timeout query status = %d, want 200", resp2.StatusCode)
	}
}

// TestRealQueryTimeoutMidExecution drives the real engine with an
// already-expired deadline: plan execution must notice and abort.
func TestRealQueryTimeoutMidExecution(t *testing.T) {
	db := figure1DB(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := db.QueryContext(ctx,
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

type panicEngine struct{}

func (panicEngine) QueryContext(ctx context.Context, src string) (*txmldb.Result, error) {
	panic("boom")
}
func (panicEngine) Explain(src string) (string, error) { return "", nil }

// TestPanicRecovery checks a handler panic becomes a 500, is counted, and
// does not kill the server.
func TestPanicRecovery(t *testing.T) {
	s := New(panicEngine{}, Config{ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query?q=x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500; body %s", resp.StatusCode, body)
	}
	if got := s.mPanics.Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	// Server still serves.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d, want 200", resp2.StatusCode)
	}
}

// TestMetricsAndHealth drives traffic then checks /metrics exposes
// non-zero counters and a populated latency histogram, and /healthz
// reports the document count.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := figure1Server(t, Config{})
	for i := 0; i < 5; i++ {
		resp, body := getQuery(t, ts,
			`SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed: %s", i, body)
		}
	}
	getQuery(t, ts, `SELECT nonsense`) // one parse error

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	// Every execution (the 5 successes and the parse failure) lands in the
	// latency histogram; only successes count as queries.
	for _, want := range []string{
		"txserved_queries_total 5",
		"txserved_errors_parse_total 1",
		"txserved_query_latency_ms_count 6",
		"txserved_http_requests_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `txserved_query_latency_ms_bucket{le="+Inf"} 6`) {
		t.Errorf("/metrics latency histogram not populated:\n%s", out)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	var health map[string]any
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v, want ok", health["status"])
	}
	if docs, ok := health["docs"].(float64); !ok || docs != 1 {
		t.Errorf("healthz docs = %v, want 1", health["docs"])
	}
}

// TestExplainEndpoint checks /explain returns the operator plan.
func TestExplainEndpoint(t *testing.T) {
	_, ts := figure1Server(t, Config{})
	resp, err := http.Get(ts.URL + "/explain?q=" + url.QueryEscape(
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "TPatternScan") {
		t.Errorf("explain = %d %s, want 200 with TPatternScan", resp.StatusCode, body)
	}
}

// TestGracefulShutdownDrains starts a real listener, parks a query
// in-flight, triggers shutdown, and checks the in-flight request still
// completes with 200 before Run returns.
func TestGracefulShutdownDrains(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(eng, Config{ErrorLog: discardLogger()})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ctx, l, 10*time.Second) }()

	base := "http://" + l.Addr().String()
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/query?q=x")
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-eng.entered

	// Shutdown begins while the query is executing.
	cancel()
	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(eng.release)
	if code := <-reqDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200", code)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Errorf("Run = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestConcurrentQueriesAgainstWriter floods the server with reads while a
// writer appends versions; run under -race this exercises the full
// HTTP → facade → plan → store path concurrently.
func TestConcurrentQueriesAgainstWriter(t *testing.T) {
	db := txmldb.Open(txmldb.Config{Clock: func() txmldb.Time { return 1_000_000 }})
	mkXML := func(price int) string {
		return fmt.Sprintf(`<guide><restaurant><name>Napoli</name><price>%d</price></restaurant></guide>`, price)
	}
	id, err := db.PutXML("u", strings.NewReader(mkXML(1)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{MaxInFlight: 16, ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 2; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.UpdateXML(id, strings.NewReader(mkXML(v)), txmldb.Time(1000+v)); err != nil {
				writerErr = err
				return
			}
		}
	}()

	var readerWg sync.WaitGroup
	errs := make(chan string, 64)
	for r := 0; r < 8; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape(
					`SELECT COUNT(R) FROM doc("u")/restaurant R`))
				if err != nil {
					errs <- err.Error()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	readerWg.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// TestClientDisconnect499 checks that a client hanging up mid-execution is
// mapped to the 499-style close (kind "canceled"), counted, and recorded
// with status 499 in the access log — not reported as a timeout or an
// internal error.
func TestClientDisconnect499(t *testing.T) {
	eng := &blockingEngine{entered: make(chan struct{}, 1), release: make(chan struct{})}
	var logMu sync.Mutex
	var logBuf strings.Builder
	s := New(eng, Config{
		SlowQuery: -1,
		ErrorLog:  discardLogger(),
		AccessLog: log.New(&lockedWriter{mu: &logMu, w: &logBuf}, "", 0),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/query?q=x", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	<-eng.entered
	cancel()
	if err := <-done; err == nil {
		t.Fatal("request succeeded despite client cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.mCanceled.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled counter never incremented: disconnect not classified")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.mTimeouts.Value(); got != 0 {
		t.Errorf("timeout counter = %d, want 0 (disconnect is not a timeout)", got)
	}
	if got := s.mInternal.Value(); got != 0 {
		t.Errorf("internal counter = %d, want 0 (disconnect is not an internal error)", got)
	}
	waitLog := time.Now().Add(5 * time.Second)
	for {
		logMu.Lock()
		line := logBuf.String()
		logMu.Unlock()
		if strings.Contains(line, "status=499") {
			break
		}
		if time.Now().After(waitLog) {
			t.Fatalf("access log lacks status=499: %q", line)
		}
		time.Sleep(time.Millisecond)
	}

	// The execution slot was released: a fresh query completes normally.
	close(eng.release)
	resp, err := http.Get(ts.URL + "/query?q=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-disconnect query status = %d, want 200", resp.StatusCode)
	}
}

// lockedWriter serializes log writes so the test can read the buffer while
// the handler goroutine is still logging.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
