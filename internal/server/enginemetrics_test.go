package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

// TestEngineMetricsExposed drives historical queries against a
// cache-enabled engine and checks /metrics exposes the buffer-pool and
// version-cache counters with live values.
func TestEngineMetricsExposed(t *testing.T) {
	db := core.Open(core.Config{
		Clock: func() model.Time { return model.Date(2001, 2, 10) },
		Cache: vcache.Config{MaxBytes: 8 << 20},
	})
	id, err := db.Put("http://guide.com/restaurants.xml",
		xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", "15"))),
		model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, price := range []string{"16", "17", "18"} {
		tree := xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", price)))
		if _, _, err := db.Update(id, tree, model.Date(2001, 1, 10+i)); err != nil {
			t.Fatal(err)
		}
	}

	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// A historical snapshot query reconstructs an old version — twice, so
	// the second run hits the version cache.
	q := ts.URL + "/query?q=" + strings.ReplaceAll(
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[05/01/2001]/restaurant R`, " ", "+")
	for i := 0; i < 2; i++ {
		resp, err := http.Get(q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)

	for _, want := range []string{
		"txserved_pagestore_cache_hits_total",
		"txserved_pagestore_cache_misses_total",
		"txserved_pagestore_cache_evictions_total",
		"txserved_pagestore_extent_reads_total",
		"txserved_vcache_lookups_total",
		"txserved_vcache_hits_total",
		"txserved_vcache_misses_total",
		"txserved_vcache_ancestor_hits_total",
		"txserved_vcache_collapsed_flights_total",
		"txserved_vcache_evictions_total",
		"txserved_vcache_invalidations_total",
		"txserved_vcache_resident_bytes",
		"txserved_vcache_entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Both queries reconstructed version 1; the cache must show activity
	// and at least one exact hit.
	st, ok := db.CacheStats()
	if !ok {
		t.Fatal("cache not enabled")
	}
	if st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("queries bypassed the cache: %+v", st)
	}
	if strings.Contains(out, "txserved_vcache_lookups_total 0") {
		t.Error("/metrics reports zero vcache lookups after cached queries")
	}
}

// TestEngineMetricsAbsentWithoutCache: a cache-less engine must expose the
// buffer-pool counters but no vcache series.
func TestEngineMetricsAbsentWithoutCache(t *testing.T) {
	s := New(figure1DB(t), Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, "txserved_pagestore_cache_hits_total") {
		t.Error("/metrics missing buffer-pool counters")
	}
	if strings.Contains(out, "txserved_vcache_") {
		t.Error("/metrics exposes vcache series for an engine without a cache")
	}
	// In-memory engines have no checkpoint subsystem either.
	if strings.Contains(out, "txserved_checkpoint_") || strings.Contains(out, "txserved_wal_segments") {
		t.Error("/metrics exposes checkpoint series for a non-durable engine")
	}
}

// TestCheckpointMetricsExposed: a durable engine exposes the checkpoint
// and WAL-segment series, and a published checkpoint shows up in them.
func TestCheckpointMetricsExposed(t *testing.T) {
	db, err := core.OpenDurable(core.Config{
		Clock: func() model.Time { return model.Date(2001, 2, 10) },
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Put("http://guide.com/restaurants.xml",
		xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", "15"))),
		model.Date(2001, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"txserved_checkpoint_total 1",
		"txserved_checkpoint_errors_total 0",
		"txserved_checkpoint_last_bytes",
		"txserved_checkpoint_last_ms",
		"txserved_checkpoint_segments_deleted_total",
		"txserved_wal_segments",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, "txserved_wal_segments 0") {
		t.Error("/metrics reports zero WAL segments on a durable engine")
	}
}

// TestGroupCommitMetricsExposed: an engine with a WAL group-commit window
// exposes the txserved_commit_batch_* series with live values, and an
// engine without batching exposes none of them.
func TestGroupCommitMetricsExposed(t *testing.T) {
	db, err := core.OpenDurable(core.Config{
		Store: store.Config{Pages: pagestore.Config{GroupWindow: time.Millisecond}},
		Clock: func() model.Time { return model.Date(2001, 2, 10) },
	}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Put("http://guide.com/restaurants.xml",
		xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", "15"))),
		model.Date(2001, 1, 1)); err != nil {
		t.Fatal(err)
	}

	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"txserved_commit_batch_commits_total",
		"txserved_commit_batch_batches_total",
		"txserved_commit_batch_failures_total 0",
		"txserved_commit_batch_max_batch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(out, "txserved_commit_batch_commits_total 0") {
		t.Error("/metrics reports zero batched commits after a Put")
	}

	// No GroupWindow → the family stays out of the exposition.
	s2 := New(figure1DB(t), Config{})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if strings.Contains(string(body2), "txserved_commit_batch_") {
		t.Error("/metrics exposes commit-batch series for an engine without batching")
	}
}
