package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"txmldb"
	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/resilience"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

// The server-level acceptance test for the resilience tier: with the
// circuit breaker open, cache-resident historical queries still succeed
// (flagged "degraded":true in the envelope) while cache-miss reads fail
// fast with a typed 503 + Retry-After and writes are rejected with
// ErrDegraded; /readyz flips while /healthz stays 200; and after the
// fault heals, half-open probes recover everything automatically.

// testClock is an injectable breaker clock tests advance manually.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newFaultyEngine builds a cache-enabled, resilience-enabled engine over
// an injected backend, with one document whose versions are
// v1@01/01, v2@10/01, v3@20/01 (prices 15/16/17). Retries are disabled so
// one injected fault is one breaker observation.
func newFaultyEngine(t *testing.T, clk *testClock) (*core.DB, *pagestore.Injector, model.DocID) {
	t.Helper()
	inj := pagestore.NewInjector(pagestore.NewMemory(), 1)
	db := core.Open(core.Config{
		Clock: func() model.Time { return model.Date(2001, 2, 10) },
		Store: store.Config{
			Pages:       pagestore.Config{Backend: inj},
			ReadRetries: -1,
		},
		Cache: vcache.Config{MaxBytes: 8 << 20},
		Resilience: resilience.Config{
			Enabled: true,
			Breaker: resilience.BreakerConfig{
				FailureThreshold: 3,
				OpenFor:          time.Minute,
				ProbeSuccesses:   1,
				Clock:            clk.Now,
			},
			Health: resilience.HealthConfig{DegradeAfter: 3, FailAfter: 10, RecoverAfter: 2},
		},
	})
	tree := func(price string) *xmltree.Node {
		return xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", price)))
	}
	id, err := db.Put("http://guide.com/restaurants.xml", tree("15"), model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, price := range []string{"16", "17"} {
		if _, _, err := db.Update(id, tree(price), model.Date(2001, 1, 10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	return db, inj, id
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func queryURL(ts *httptest.Server, date string) string {
	q := `SELECT R FROM doc("http://guide.com/restaurants.xml")[` + date + `]/restaurant R`
	return ts.URL + "/query?q=" + strings.ReplaceAll(q, " ", "+")
}

func TestBreakerOpenDegradedServing(t *testing.T) {
	clk := &testClock{now: time.Unix(0, 0)}
	db, inj, id := newFaultyEngine(t, clk)
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Warm the cache with version 2 (alive on 15/01); the envelope of a
	// healthy answer carries no degraded flag.
	resp, body := getBody(t, queryURL(ts, "15/01/2001"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: %d: %s", resp.StatusCode, body)
	}
	if strings.Contains(body, `"degraded"`) {
		t.Fatalf("healthy answer flagged degraded: %s", body)
	}

	// Fault storm: whole-device outage. Version 1 is not cached, so each
	// query is a backend read failure; after FailureThreshold of them the
	// breaker opens and the next answer is a fast 503.
	inj.SetOutage(true)
	var last *http.Response
	var lastBody string
	for i := 0; i < 10; i++ {
		last, lastBody = getBody(t, queryURL(ts, "05/01/2001"))
		if last.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if last.StatusCode != http.StatusInternalServerError {
			t.Fatalf("storm query %d: unexpected status %d: %s", i, last.StatusCode, lastBody)
		}
	}
	if last.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker never opened: last status %d: %s", last.StatusCode, lastBody)
	}
	if !strings.Contains(lastBody, `"kind":"unavailable"`) {
		t.Fatalf("503 body not typed unavailable: %s", lastBody)
	}
	if ra := last.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 missing Retry-After (got %q)", ra)
	}
	if snap, ok := db.Health(); !ok || snap.Breaker.State != resilience.BreakerOpen {
		t.Fatalf("breaker not open in snapshot: %+v (ok=%v)", snap, ok)
	}

	// The cache-resident version still answers — flagged degraded.
	resp, body = getBody(t, queryURL(ts, "15/01/2001"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached query while degraded: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"degraded":true`) {
		t.Fatalf("degraded answer not flagged: %s", body)
	}
	if !strings.Contains(body, "Napoli") {
		t.Fatalf("degraded answer lost its rows: %s", body)
	}

	// Writes are rejected fast with the typed degraded error.
	wantTree := xmltree.Elem("guide", xmltree.Elem("restaurant",
		xmltree.ElemText("name", "Napoli"), xmltree.ElemText("price", "99")))
	if _, _, err := db.Update(id, wantTree, model.Date(2001, 2, 1)); !errors.Is(err, txmldb.ErrDegraded) {
		t.Fatalf("write while degraded = %v, want ErrDegraded", err)
	}

	// Liveness stays green; readiness flips with the reason in the body.
	resp, _ = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while degraded: %d", resp.StatusCode)
	}
	resp, body = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while degraded: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"state":"degraded"`) || !strings.Contains(body, `"ready":false`) {
		t.Fatalf("/readyz body missing state: %s", body)
	}

	// The transitions are visible on /metrics.
	_, body = getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"txserved_health_state 1",
		"txserved_breaker_state 2",
		"txserved_breaker_opens_total 1",
		"txserved_degraded_reads_total",
		"txserved_errors_unavailable_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Heal the device and let the open window elapse: the next read is a
	// half-open probe, its success closes the breaker, and the following
	// reads step the backend component back to healthy.
	inj.SetOutage(false)
	clk.Advance(2 * time.Minute)
	resp, body = getBody(t, queryURL(ts, "05/01/2001"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after heal: %d: %s", resp.StatusCode, body)
	}
	if snap, _ := db.Health(); snap.State != resilience.Healthy {
		t.Fatalf("tier did not recover: %+v", snap)
	}
	resp, _ = getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d", resp.StatusCode)
	}
	// Writes work again.
	if _, _, err := db.Update(id, wantTree, model.Date(2001, 2, 1)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestDrainFlipsReadinessFirst is the satellite-2 regression test: once
// shutdown begins, /readyz must report 503 while the listener is still
// accepting (the drain grace window), and queries admitted in that window
// must still succeed.
func TestDrainFlipsReadinessFirst(t *testing.T) {
	clk := &testClock{now: time.Unix(0, 0)}
	db, _, _ := newFaultyEngine(t, clk)
	s := New(db, Config{DrainGrace: 300 * time.Millisecond})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, l, 5*time.Second) }()
	base := "http://" + l.Addr().String()

	// Healthy and ready before shutdown.
	resp, body := getBody(t, base+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d: %s", resp.StatusCode, body)
	}

	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// Readiness is already down...
	resp, body = getBody(t, base+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during grace: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"draining":true`) {
		t.Fatalf("/readyz body missing draining: %s", body)
	}
	// ...but the listener still accepts and queries still succeed.
	q := `SELECT R FROM doc("http://guide.com/restaurants.xml")[15/01/2001]/restaurant R`
	resp, body = getBody(t, base+"/query?q="+strings.ReplaceAll(q, " ", "+"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query during grace: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains([]byte(body), []byte("Napoli")) {
		t.Fatalf("query during grace lost rows: %s", body)
	}

	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
