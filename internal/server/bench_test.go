package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// BenchmarkServedQ1 prices one served query end to end: HTTP round trip,
// admission, plan execution and JSON streaming over the Figure 1 data.
func BenchmarkServedQ1(b *testing.B) {
	s := New(figure1DB(b), Config{SlowQuery: -1, ErrorLog: discardLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	target := ts.URL + "/query?q=" + url.QueryEscape(
		`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(target)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
