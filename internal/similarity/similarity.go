// Package similarity implements the equality and similarity semantics of
// Section 7.4 of the paper. Comparing versions of XML elements needs more
// than one notion of equality:
//
//   - "=" with shallow semantics compares an element's name and direct
//     text content;
//   - "=" with deep semantics compares entire subtrees;
//   - "==" compares node identity via persistent element IDs (EIDs);
//   - "~" is a similarity operator in the style of Theobald and Weikum,
//     needed because identity comparison fails for entries that were
//     deleted and re-introduced (fresh EID) and deep equality is "too
//     strict in practice, considering that this is XML data".
//
// The paper concludes that "a combination of shallow equality and a
// similarity operator" is the most interesting solution; Similar is that
// combination's workhorse.
package similarity

import (
	"strings"

	"txmldb/internal/fti"
	"txmldb/internal/xmltree"
)

// ShallowEqual compares element name, attributes and the concatenated
// direct text children of the two elements; child elements are ignored.
func ShallowEqual(a, b *xmltree.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name {
		return false
	}
	if a.IsText() {
		return a.Value == b.Value
	}
	if !attrSetEqual(a.Attrs, b.Attrs) {
		return false
	}
	return directText(a) == directText(b)
}

// DeepEqual is deep structural equality: the subtrees must match completely
// in elements and values.
func DeepEqual(a, b *xmltree.Node) bool { return xmltree.Equal(a, b) }

// IdentityEqual is the "==" comparison: same persistent element ID.
func IdentityEqual(a, b *xmltree.Node) bool { return xmltree.IdentityEqual(a, b) }

func directText(n *xmltree.Node) string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.IsText() {
			b.WriteString(c.Value)
		}
	}
	return b.String()
}

func attrSetEqual(a, b []xmltree.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Score computes a similarity in [0, 1] between two elements as a weighted
// combination of name match, bag-of-words overlap of the subtree text
// (Jaccard), attribute overlap and child element name overlap.
func Score(a, b *xmltree.Node) float64 {
	if a == nil || b == nil {
		return 0
	}
	const (
		wName  = 0.30
		wWords = 0.40
		wAttrs = 0.15
		wKids  = 0.15
	)
	score := 0.0
	if a.Name == b.Name {
		score += wName
	}
	score += wWords * jaccard(wordBag(a), wordBag(b))
	score += wAttrs * jaccard(attrBag(a), attrBag(b))
	score += wKids * jaccard(childNameBag(a), childNameBag(b))
	return score
}

// Similar is the "~" operator: true when the similarity score reaches the
// threshold. A threshold around 0.8 distinguishes "the same restaurant
// whose details changed" from "a different restaurant".
func Similar(a, b *xmltree.Node, threshold float64) bool {
	return Score(a, b) >= threshold
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for w := range a {
		if b[w] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

func wordBag(n *xmltree.Node) map[string]bool {
	out := make(map[string]bool)
	n.Walk(func(d *xmltree.Node) bool {
		if d.IsText() {
			for _, w := range fti.Tokenize(d.Value) {
				out[w] = true
			}
		}
		return true
	})
	return out
}

func attrBag(n *xmltree.Node) map[string]bool {
	out := make(map[string]bool)
	for _, a := range n.Attrs {
		out[a.Name+"="+a.Value] = true
	}
	return out
}

func childNameBag(n *xmltree.Node) map[string]bool {
	out := make(map[string]bool)
	for _, c := range n.ChildElements("") {
		out[c.Name] = true
	}
	return out
}
