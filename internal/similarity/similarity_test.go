package similarity

import (
	"testing"
	"testing/quick"

	"txmldb/internal/xmltree"
)

func napoli() *xmltree.Node {
	return xmltree.MustParse(`<restaurant><name>Napoli</name><price>15</price></restaurant>`)
}

func TestShallowEqual(t *testing.T) {
	a := xmltree.MustParse(`<name>Napoli</name>`)
	b := xmltree.MustParse(`<name>Napoli</name>`)
	if !ShallowEqual(a, b) {
		t.Error("identical leaf elements must be shallow-equal")
	}
	// Shallow equality ignores child elements.
	c := napoli()
	d := xmltree.MustParse(`<restaurant><name>Akropolis</name><price>99</price></restaurant>`)
	if !ShallowEqual(c, d) {
		t.Error("shallow equality must ignore child subtrees")
	}
	if ShallowEqual(a, xmltree.MustParse(`<name>Akropolis</name>`)) {
		t.Error("different direct text must not be shallow-equal")
	}
	if ShallowEqual(a, xmltree.MustParse(`<title>Napoli</title>`)) {
		t.Error("different names must not be shallow-equal")
	}
	e := xmltree.MustParse(`<r stars="3"/>`)
	f := xmltree.MustParse(`<r stars="4"/>`)
	if ShallowEqual(e, f) {
		t.Error("different attrs must not be shallow-equal")
	}
	if !ShallowEqual(nil, nil) || ShallowEqual(a, nil) {
		t.Error("nil handling broken")
	}
	t1, t2 := xmltree.NewText("x"), xmltree.NewText("x")
	if !ShallowEqual(t1, t2) || ShallowEqual(t1, xmltree.NewText("y")) {
		t.Error("text node shallow equality broken")
	}
}

func TestDeepEqual(t *testing.T) {
	if !DeepEqual(napoli(), napoli()) {
		t.Error("identical subtrees must be deep-equal")
	}
	changed := napoli()
	changed.SelectPath("price")[0].Children[0].Value = "18"
	if DeepEqual(napoli(), changed) {
		t.Error("changed price must break deep equality")
	}
}

func TestIdentityEqual(t *testing.T) {
	a, b := napoli(), napoli()
	if IdentityEqual(a, b) {
		t.Error("no XIDs: not identity-equal")
	}
	a.XID, b.XID = 5, 5
	if !IdentityEqual(a, b) {
		t.Error("same XID must be identity-equal")
	}
}

func TestScoreIdentical(t *testing.T) {
	if got := Score(napoli(), napoli()); got != 1 {
		t.Errorf("identical score = %v, want 1", got)
	}
	if got := Score(napoli(), nil); got != 0 {
		t.Errorf("nil score = %v", got)
	}
}

func TestScoreReintroducedEntry(t *testing.T) {
	// The paper's scenario: an entry accidentally deleted and reintroduced
	// gets a new EID; identity comparison fails but similarity should not.
	original := napoli()
	original.XID = 10
	reintroduced := napoli()
	reintroduced.XID = 99
	if IdentityEqual(original, reintroduced) {
		t.Fatal("EIDs differ")
	}
	if !Similar(original, reintroduced, 0.95) {
		t.Errorf("reintroduced entry score = %v", Score(original, reintroduced))
	}
}

func TestScoreUpdatedEntryStaysSimilar(t *testing.T) {
	updated := napoli()
	updated.SelectPath("price")[0].Children[0].Value = "18"
	score := Score(napoli(), updated)
	if score < 0.7 {
		t.Errorf("price-updated entry score = %v, want >= 0.7", score)
	}
	if score >= 1 {
		t.Errorf("changed entry must score below 1, got %v", score)
	}
}

func TestScoreDifferentRestaurants(t *testing.T) {
	other := xmltree.MustParse(`<restaurant><name>Akropolis</name><price>13</price></restaurant>`)
	score := Score(napoli(), other)
	same := Score(napoli(), napoli())
	if score >= same {
		t.Errorf("different restaurant (%v) must score below identical (%v)", score, same)
	}
	if Similar(napoli(), other, 0.9) {
		t.Error("different restaurants must not be ~-equal at 0.9")
	}
}

func TestScoreAttrsMatter(t *testing.T) {
	a := xmltree.MustParse(`<r cuisine="it"><name>X</name></r>`)
	b := xmltree.MustParse(`<r cuisine="it"><name>X</name></r>`)
	c := xmltree.MustParse(`<r cuisine="gr"><name>X</name></r>`)
	if Score(a, b) <= Score(a, c) {
		t.Error("matching attributes must increase the score")
	}
}

func TestScoreSymmetric(t *testing.T) {
	f := func(n1, n2, t1, t2 uint8) bool {
		names := []string{"a", "b", "c"}
		a := xmltree.ElemText(names[int(n1)%3], string(rune('a'+t1%5)))
		b := xmltree.ElemText(names[int(n2)%3], string(rune('a'+t2%5)))
		return Score(a, b) == Score(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreBounds(t *testing.T) {
	f := func(n1, t1 uint8) bool {
		a := xmltree.ElemText("x", string(rune('a'+t1%5)))
		b := napoli()
		s := Score(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
