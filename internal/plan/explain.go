package plan

import (
	"fmt"
	"strings"

	"txmldb/internal/query"
)

// Explain renders the operator plan a query would execute, without running
// it: which PatternScan variant each FROM item maps to, the pattern tree
// after predicate pushdown (the paper's containment-then-equality-test
// strategy, Section 6.1), the join structure, the residual WHERE filter and
// the output stage. It is the visible face of the planner and the hook for
// the algebraic-rewriting future work the paper sketches in Section 8.
func Explain(q *query.Query) (string, error) {
	var b strings.Builder
	for i, f := range q.From {
		pat, _, err := buildPattern(f, q.Where)
		if err != nil {
			return "", err
		}
		var op string
		switch f.Kind {
		case query.AtCurrent:
			op = "PatternScan (current state)"
		case query.AtTime:
			op = fmt.Sprintf("TPatternScan at %s", f.At)
		case query.AtEvery:
			op = "TPatternScanAll (temporal multiway join over all versions)"
		case query.AtRange:
			op = fmt.Sprintf("TPatternScanAll clipped to [%s TO %s] (DocHistory-style range)", f.At, f.Until)
		}
		fmt.Fprintf(&b, "scan %d: %s of doc(%q)\n", i+1, op, f.URL)
		fmt.Fprintf(&b, "  pattern: %s\n", pat)
		fmt.Fprintf(&b, "  binds:   %s\n", f.Var)
		if f.Kind == query.AtEvery || f.Kind == query.AtRange {
			fmt.Fprintf(&b, "  expand:  one binding per element version in each match span\n")
		}
	}
	if len(q.From) > 1 {
		fmt.Fprintf(&b, "join: nested-loop product of %d binding sets\n", len(q.From))
	}
	if q.Where != nil {
		fmt.Fprintf(&b, "filter: %s\n", q.Where)
		if pushed := pushedPredicates(q); len(pushed) > 0 {
			fmt.Fprintf(&b, "  (pushed into patterns as containment words, re-checked after the scan: %s)\n",
				strings.Join(pushed, "; "))
		}
	}
	if q.IsAggregate() {
		fmt.Fprintf(&b, "aggregate: ")
	} else {
		fmt.Fprintf(&b, "project: ")
	}
	var cols []string
	for i, s := range q.Select {
		cols = append(cols, columnName(s, i))
	}
	fmt.Fprintf(&b, "%s\n", strings.Join(cols, ", "))
	if q.Distinct {
		fmt.Fprintf(&b, "distinct\n")
	}
	if len(q.OrderBy) > 0 {
		var keys []string
		for _, o := range q.OrderBy {
			k := o.Expr.String()
			if o.Desc {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		fmt.Fprintf(&b, "order by: %s\n", strings.Join(keys, ", "))
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "limit: %d\n", q.Limit)
	}
	fmt.Fprintf(&b, "output: <results> document\n")
	return b.String(), nil
}

// pushedPredicates lists the conjuncts eligible for containment pushdown.
func pushedPredicates(q *query.Query) []string {
	var out []string
	vars := map[string]bool{}
	for _, f := range q.From {
		vars[f.Var] = true
	}
	for _, conj := range conjuncts(q.Where) {
		switch e := conj.(type) {
		case query.Binary:
			if e.Op != "=" {
				continue
			}
			pathE, _, ok := pathAndLiteral(e)
			if !ok {
				continue
			}
			if base, ok := pathE.Base.(query.VarRef); ok && vars[base.Name] {
				out = append(out, conj.String())
			}
		case query.Call:
			if callMentionsVar(e, vars) {
				out = append(out, conj.String())
			}
		}
	}
	return out
}

// callMentionsVar reports whether the call references any of the FROM
// variables. Order-independent over the var set, so the surrounding
// conjunct listing stays deterministic.
func callMentionsVar(e query.Call, vars map[string]bool) bool {
	for v := range vars {
		if _, _, ok := containsArgs(e, v); ok {
			return true
		}
	}
	return false
}

// ExplainString parses and explains a query text.
func ExplainString(src string) (string, error) {
	q, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	return Explain(q)
}
