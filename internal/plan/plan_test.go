package plan_test

import (
	"strings"
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/plan"
	"txmldb/internal/xmltree"
)

var (
	jan1  = model.Date(2001, 1, 1)
	jan15 = model.Date(2001, 1, 15)
	jan31 = model.Date(2001, 1, 31)
	feb10 = model.Date(2001, 2, 10)
)

func guide(entries ...[2]string) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for _, e := range entries {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", e[0]),
			xmltree.ElemText("price", e[1])))
	}
	return g
}

func figure1(t testing.TB) *core.DB {
	t.Helper()
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	id, err := db.Put("u", guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), jan15); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "18"}), jan31); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRunStringParseError(t *testing.T) {
	if _, err := plan.RunString(figure1(t), `garbage`); err == nil {
		t.Fatal("parse errors must propagate")
	}
}

func TestEveryCrossJoin(t *testing.T) {
	db := figure1(t)
	// EVERY × EVERY self-join: pairs of Napoli element versions.
	res, err := plan.RunString(db, `SELECT TIME(R1), TIME(R2)
		FROM doc("u")[EVERY]/restaurant R1, doc("u")[EVERY]/restaurant R2
		WHERE R1/name = "Napoli" AND R2/name = "Napoli" AND TIME(R1) < TIME(R2)`)
	if err != nil {
		t.Fatal(err)
	}
	// Napoli has 2 element versions → exactly one ordered pair.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].(model.Time) != jan1 || res.Rows[0][1].(model.Time) != jan31 {
		t.Fatalf("pair = %v", res.Rows[0])
	}
}

func TestSnapshotAndEveryMixedJoin(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT TIME(R2), R2/price
		FROM doc("u")[26/01/2001]/restaurant R1, doc("u")[EVERY]/restaurant R2
		WHERE R1 == R2 AND R1/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	// All element versions of the restaurant that was Napoli on Jan 26.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereTypeError(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")/restaurant R WHERE R/price`); err == nil {
		// A bare node list in WHERE is existential (allowed); but a bare
		// string literal is not a boolean.
		t.Log("bare path predicate treated as existence check")
	}
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")/restaurant R WHERE "notabool"`); err == nil {
		t.Fatal("non-boolean WHERE must fail")
	}
}

func TestUnknownFunction(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT NOSUCH(R) FROM doc("u")/restaurant R`); err == nil {
		t.Fatal("unknown function must fail")
	}
}

func TestPreviousRequiresVariable(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT PREVIOUS(R/name) FROM doc("u")/restaurant R`); err == nil {
		t.Fatal("PREVIOUS over a path must fail")
	}
}

func TestMixedAggregateAndPlainFails(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT COUNT(R), R FROM doc("u")/restaurant R`); err == nil {
		t.Fatal("mixing aggregates with plain columns must fail")
	}
}

func TestArithmeticErrors(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")[NOW - "x"]/restaurant R`); err == nil {
		t.Fatal("time minus string must fail")
	}
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")["x" + 14 DAYS]/restaurant R`); err == nil {
		t.Fatal("string timespec must fail")
	}
}

func TestPathOverScalarFails(t *testing.T) {
	db := figure1(t)
	if _, err := plan.RunString(db, `SELECT TIME(R)/x FROM doc("u")[EVERY]/restaurant R`); err == nil {
		t.Fatal("path over a scalar must fail")
	}
}

func TestAggregatesOverValues(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT COUNT(R), MIN(R/price), MAX(R/price), AVG(R/price)
		FROM doc("u")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].(int64) != 2 {
		t.Fatalf("count = %v", row[0])
	}
	if row[1] != "13" || row[2] != "15" {
		t.Fatalf("min/max = %v / %v", row[1], row[2])
	}
	if row[3].(float64) != 14 {
		t.Fatalf("avg = %v", row[3])
	}
}

func TestCountOfMissingPath(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT COUNT(R/nosuch) FROM doc("u")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 0 {
		t.Fatalf("count of empty paths = %v", res.Rows[0][0])
	}
}

func TestSimilarOperatorInWhere(t *testing.T) {
	db := figure1(t)
	// Napoli@15 vs Napoli@18 share name and structure but differ in
	// price: similar at a relaxed threshold but not at the strict default
	// (the operator distinguishes "same entry, updated" from "identical").
	res, err := plan.RunString(db, `SELECT R1/name
		FROM doc("u")[02/01/2001]/restaurant R1, doc("u")/restaurant R2
		WHERE SIMILAR(R1, R2, 0.6)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SIMILAR 0.6 rows = %v", res.Rows)
	}
	strict, err := plan.RunString(db, `SELECT R1/name
		FROM doc("u")[02/01/2001]/restaurant R1, doc("u")/restaurant R2
		WHERE SIMILAR(R1, R2, 0.99)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Rows) != 0 {
		t.Fatalf("SIMILAR 0.99 rows = %v", strict.Rows)
	}
}

func TestResultDocNilValues(t *testing.T) {
	db := figure1(t)
	// PREVIOUS of the first version is empty: rendered as an empty value.
	res, err := plan.RunString(db, `SELECT PREVIOUS(R)
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if elems := res.Rows[0][0].([]plan.Elem); len(elems) != 0 {
		t.Fatalf("PREVIOUS of first version = %v", elems)
	}
	doc := res.Doc()
	if len(doc.ChildElements("result")) != 1 {
		t.Fatalf("doc = %s", doc)
	}
}

func TestExplainShapes(t *testing.T) {
	out, err := plan.ExplainString(`SELECT TIME(R), R/price
		FROM doc("u")[EVERY]/restaurant R
		WHERE R/name = "Napoli" AND R/price < 20
		ORDER BY TIME(R) DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"TPatternScanAll",
		"/restaurant",
		"[~Napoli]", // pushed containment word
		"pushed into patterns",
		"order by: TIME(R) DESC",
		"limit: 3",
		"one binding per element version",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("explain output missing %q:\n%s", frag, out)
		}
	}
	out2, err := plan.ExplainString(`SELECT SUM(R) FROM doc("u")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"TPatternScan at", "aggregate: SUM(R)"} {
		if !strings.Contains(out2, frag) {
			t.Errorf("aggregate explain missing %q:\n%s", frag, out2)
		}
	}
	out3, err := plan.ExplainString(`SELECT R1 FROM doc("a")/x R1, doc("b")/y R2`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "join: nested-loop product of 2") {
		t.Errorf("join explain missing:\n%s", out3)
	}
	if _, err := plan.ExplainString(`not a query`); err == nil {
		t.Fatal("explain must propagate parse errors")
	}
}

func TestOrPredicateNotPushedDown(t *testing.T) {
	db := figure1(t)
	// name="Napoli" under OR must not restrict the scan: Akropolis rows
	// with price 13 must survive.
	res, err := plan.RunString(db, `SELECT R/name
		FROM doc("u")[26/01/2001]/restaurant R
		WHERE R/name = "Napoli" OR R/price = "13"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("OR rows = %d, want 2 (pushdown must skip OR branches)", len(res.Rows))
	}
	// And the explain must not list it as pushed.
	out, _ := plan.ExplainString(`SELECT R FROM doc("u")/r R WHERE R/name = "x" OR R/y = "z"`)
	if strings.Contains(out, "pushed into patterns") {
		t.Errorf("OR predicate wrongly reported as pushed:\n%s", out)
	}
}

func TestNotPredicate(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT R/name
		FROM doc("u")[26/01/2001]/restaurant R
		WHERE NOT R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Akropolis" {
		t.Fatalf("NOT rows = %v", res.Rows)
	}
}

func TestDescendantPathInWhere(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	tree := xmltree.MustParse(`<g><r><info><chef>Mario</chef></info></r><r><info><chef>Luigi</chef></info></r></g>`)
	if _, err := db.Put("u", tree, jan1); err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunString(db, `SELECT R FROM doc("u")/r R WHERE R//chef = "Mario"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("descendant predicate rows = %d", len(res.Rows))
	}
}

func TestMetricsRowsExamined(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT R FROM doc("u")[26/01/2001]/restaurant R WHERE R/price = "15"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RowsExamined < len(res.Rows) || res.Metrics.PatternMatches == 0 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
}

func TestContainsPredicate(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	tree := xmltree.MustParse(`<g>
		<r><name>Napoli</name><info><chef>Mario</chef></info></r>
		<r><name>Akropolis</name><info><chef>Elena</chef></info></r></g>`)
	if _, err := db.Put("u", tree, jan1); err != nil {
		t.Fatal(err)
	}
	// Deep containment on the variable itself.
	res, err := plan.RunString(db, `SELECT R/name FROM doc("u")/r R WHERE CONTAINS(R, "Mario")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Napoli" {
		t.Fatalf("CONTAINS rows = %v", res.Rows)
	}
	// Containment below a path.
	res2, err := plan.RunString(db, `SELECT R/name FROM doc("u")/r R WHERE CONTAINS(R/info, "Elena")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 || res2.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Akropolis" {
		t.Fatalf("CONTAINS path rows = %v", res2.Rows)
	}
	// Element names count as words (FTI semantics).
	res3, err := plan.RunString(db, `SELECT COUNT(R) FROM doc("u")/r R WHERE CONTAINS(R, "chef")`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rows[0][0].(int64) != 2 {
		t.Fatalf("CONTAINS name-word count = %v", res3.Rows[0][0])
	}
	// No match.
	res4, err := plan.RunString(db, `SELECT R FROM doc("u")/r R WHERE CONTAINS(R, "nope")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res4.Rows) != 0 {
		t.Fatalf("CONTAINS miss rows = %v", res4.Rows)
	}
	// Pushdown shows in the plan.
	out, err := plan.ExplainString(`SELECT R FROM doc("u")/r R WHERE CONTAINS(R, "Mario")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[~~Mario]") || !strings.Contains(out, "pushed into patterns") {
		t.Errorf("CONTAINS not pushed:\n%s", out)
	}
	// Errors.
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")/r R WHERE CONTAINS(R, 5)`); err == nil {
		t.Fatal("CONTAINS with non-string word must fail")
	}
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")/r R WHERE CONTAINS("str", "w")`); err == nil {
		t.Fatal("CONTAINS over a non-element must fail")
	}
}

func TestContainsUnderOrNotPushed(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	tree := xmltree.MustParse(`<g><r><name>A</name></r><r><name>B</name></r></g>`)
	if _, err := db.Put("u", tree, jan1); err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunString(db, `SELECT R FROM doc("u")/r R
		WHERE CONTAINS(R, "A") OR CONTAINS(R, "B")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("OR CONTAINS rows = %d, want 2", len(res.Rows))
	}
}
