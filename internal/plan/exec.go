package plan

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/pattern"
	"txmldb/internal/query"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// binding is one candidate row entry: a pattern match pinned to a specific
// document version (one element version of the FROM variable).
type binding struct {
	doc     model.DocID
	match   pattern.Match
	varNode *pattern.PNode    // pattern node the FROM variable binds to
	docVer  store.VersionInfo // document version of this row
}

// eid returns the bound element's identifier.
func (b *binding) eid() model.EID {
	return model.EID{Doc: b.doc, X: b.match.Bindings[b.varNode].X}
}

// env is a row: FROM variable → binding.
type env map[string]*binding

type treeKey struct {
	doc model.DocID
	ver model.VersionNo
}

type executor struct {
	ctx       context.Context
	engine    Engine
	treeCache map[treeKey]*store.VersionTree
	metrics   Metrics
	steps     int // work units since the last context poll
}

// ctxStride is how many cheap work units (candidate rows, pattern matches,
// version expansions) run between context polls. Expensive units — version
// reconstructions — poll unconditionally in tree().
const ctxStride = 256

// checkCtx observes cancellation every ctxStride calls.
func (ex *executor) checkCtx() error {
	ex.steps++
	if ex.steps%ctxStride != 0 {
		return nil
	}
	return ex.ctx.Err()
}

// tree reconstructs (with caching) one document version.
func (ex *executor) tree(doc model.DocID, ver model.VersionNo) (*store.VersionTree, error) {
	key := treeKey{doc, ver}
	if t, ok := ex.treeCache[key]; ok {
		return t, nil
	}
	if err := ex.ctx.Err(); err != nil {
		return nil, err
	}
	var vt store.VersionTree
	var err error
	if cr, ok := ex.engine.(ContextReconstructor); ok {
		vt, err = cr.ReconstructVersionContext(ex.ctx, doc, ver)
	} else {
		vt, err = ex.engine.ReconstructVersion(doc, ver)
	}
	if err != nil {
		return nil, err
	}
	ex.metrics.Reconstructions++
	ex.treeCache[key] = &vt
	return &vt, nil
}

// versions lists a document's versions, through the engine's context-aware
// listing when it has one (epoch-pinned queries see a clamped list).
func (ex *executor) versions(doc model.DocID) ([]store.VersionInfo, error) {
	if vl, ok := ex.engine.(ContextVersionLister); ok {
		return vl.VersionsContext(ex.ctx, doc)
	}
	// Engines without VersionsContext (the sharded Router: no cross-shard
	// pin) can only serve the live list; this helper is the single fallback.
	//txvet:ignore epochpin fallback for engines that cannot pin an epoch; pinned engines take the VersionsContext branch above
	return ex.engine.Versions(doc)
}

// node resolves the element bound by b in its document version.
func (ex *executor) node(b *binding) (*xmltree.Node, error) {
	vt, err := ex.tree(b.doc, b.docVer.Ver)
	if err != nil {
		return nil, err
	}
	n := vt.Root.FindXID(b.match.Bindings[b.varNode].X)
	if n == nil {
		return nil, fmt.Errorf("plan: element %s not found in version %d", b.eid(), b.docVer.Ver)
	}
	return n, nil
}

func (ex *executor) run(q *query.Query) (*Result, error) {
	// Bind every FROM item.
	bindingSets := make([][]*binding, len(q.From))
	for i, f := range q.From {
		bs, err := ex.bindFromItem(q, f)
		if err != nil {
			return nil, err
		}
		bindingSets[i] = bs
	}
	// Join (cartesian product across FROM items), filter with WHERE.
	var rows []env
	var build func(i int, acc env) error
	build = func(i int, acc env) error {
		if i == len(q.From) {
			ex.metrics.RowsExamined++
			if err := ex.checkCtx(); err != nil {
				return err
			}
			if q.Where != nil {
				v, err := ex.eval(q.Where, acc)
				if err != nil {
					return err
				}
				keep, err := truthy(v)
				if err != nil {
					return fmt.Errorf("plan: WHERE: %w", err)
				}
				if !keep {
					return nil
				}
			}
			row := make(env, len(acc))
			for k, v := range acc {
				row[k] = v
			}
			rows = append(rows, row)
			return nil
		}
		for _, b := range bindingSets[i] {
			acc[q.From[i].Var] = b
			if err := build(i+1, acc); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(0, make(env, len(q.From))); err != nil {
		return nil, err
	}

	res := &Result{}
	for i, item := range q.Select {
		res.Columns = append(res.Columns, columnName(item, i))
	}
	if q.IsAggregate() {
		out, err := ex.aggregate(q, rows)
		if err != nil {
			return nil, err
		}
		res.Rows = out
	} else {
		for _, row := range rows {
			vals := make([]any, len(q.Select))
			for i, item := range q.Select {
				v, err := ex.eval(item.Expr, row)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			res.Rows = append(res.Rows, vals)
		}
	}
	if q.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	if len(q.OrderBy) > 0 {
		if err := ex.orderRows(q, rows, res); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	res.Metrics = ex.metrics
	if dr, ok := ex.engine.(DegradedReporter); ok && dr.DegradedMode() {
		// The engine served this query while degraded: the rows that made
		// it here are correct, but the caller should know coverage was
		// cache-first.
		res.Degraded = true
	}
	return res, nil
}

// bindFromItem runs the pattern scan for one FROM item and expands the
// matches into element-version bindings.
func (ex *executor) bindFromItem(q *query.Query, f query.FromItem) ([]*binding, error) {
	doc, ok := ex.engine.LookupDoc(f.URL)
	if !ok {
		return nil, nil // unknown document: empty binding set
	}
	pat, varNode, err := buildPattern(f, q.Where)
	if err != nil {
		return nil, err
	}
	var matches []pattern.Match
	var snapAt model.Time
	clip := model.Always
	switch f.Kind {
	case query.AtCurrent:
		matches, err = ex.scanCurrent(pat)
		snapAt = ex.engine.Now()
	case query.AtTime:
		at, err2 := ex.evalTime(f.At)
		if err2 != nil {
			return nil, err2
		}
		snapAt = at
		matches, err = ex.scanT(pat, at)
	case query.AtEvery:
		matches, err = ex.scanAll(pat)
	case query.AtRange:
		// [t1 TO t2]: the versions valid in the interval — the language
		// face of the DocHistory/ElementHistory operators. A ScanAll whose
		// match spans are clipped to the interval before expansion.
		from, err2 := ex.evalTime(f.At)
		if err2 != nil {
			return nil, err2
		}
		until, err2 := ex.evalTime(f.Until)
		if err2 != nil {
			return nil, err2
		}
		if until <= from {
			return nil, fmt.Errorf("plan: empty time range [%s TO %s]", from, until)
		}
		clip = model.Interval{Start: from, End: until}
		matches, err = ex.scanAll(pat)
	}
	if err != nil {
		return nil, err
	}
	versions, err := ex.versions(doc)
	if err != nil {
		return nil, err
	}
	var out []*binding
	if f.Kind == query.AtEvery || f.Kind == query.AtRange {
		// Clip all match spans first so the needed document versions are
		// known up front, prefetch them in one batch (parallel when the
		// engine has workers), then run the expansion over warm trees.
		var clipped []pattern.Match
		for _, m := range matches {
			if m.Doc != doc {
				continue
			}
			ex.metrics.PatternMatches++
			if err := ex.checkCtx(); err != nil {
				return nil, err
			}
			span, ok := m.Span.Intersect(clip)
			if !ok {
				continue
			}
			m.Span = span
			clipped = append(clipped, m)
		}
		if err := ex.prefetchEvery(doc, clipped, versions); err != nil {
			return nil, err
		}
		for _, m := range clipped {
			bs, err := ex.expandEvery(doc, m, varNode, versions)
			if err != nil {
				return nil, err
			}
			out = append(out, bs...)
		}
		return out, nil
	}
	for _, m := range matches {
		if m.Doc != doc {
			continue
		}
		ex.metrics.PatternMatches++
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		vi, found := versionAt(versions, snapAt)
		if !found {
			continue
		}
		out = append(out, &binding{doc: doc, match: m, varNode: varNode, docVer: vi})
	}
	return out, nil
}

// prefetchEvery batch-materializes the document versions the expansion of
// the clipped matches will reconstruct, through the engine's optional
// Prefetcher. Each prefetched key is exactly one reconstruction the
// sequential pass would have performed (a distinct tree-cache miss), so
// the Reconstructions metric is credited identically.
func (ex *executor) prefetchEvery(doc model.DocID, matches []pattern.Match, versions []store.VersionInfo) error {
	pf, ok := ex.engine.(Prefetcher)
	if !ok {
		return nil
	}
	seen := make(map[treeKey]bool)
	var keys []VersionKey
	for _, m := range matches {
		for _, vi := range versions {
			if !vi.Interval().Overlaps(m.Span) {
				continue
			}
			k := treeKey{doc, vi.Ver}
			if seen[k] || ex.treeCache[k] != nil {
				continue
			}
			seen[k] = true
			keys = append(keys, VersionKey{Doc: doc, Ver: vi.Ver})
		}
	}
	if len(keys) < 2 {
		return nil
	}
	ran, err := pf.PrefetchVersions(ex.ctx, keys, func(k VersionKey, vt store.VersionTree) {
		t := vt
		ex.treeCache[treeKey{k.Doc, k.Ver}] = &t
	})
	if ran {
		// Count even on error: the sink installed the trees that did
		// materialize before the failure aborted the batch.
		ex.metrics.Reconstructions += len(keys)
	}
	return err
}

// expandEvery turns one TPatternScanAll match into one binding per element
// version inside the match's span: the document versions overlapping the
// span, deduplicated to the versions where the bound element actually
// changed (the element's stamp equals the version's stamp), always keeping
// the first version of the span.
func (ex *executor) expandEvery(doc model.DocID, m pattern.Match, varNode *pattern.PNode, versions []store.VersionInfo) ([]*binding, error) {
	var out []*binding
	first := true
	for _, vi := range versions {
		if !vi.Interval().Overlaps(m.Span) {
			continue
		}
		b := &binding{doc: doc, match: m, varNode: varNode, docVer: vi}
		n, err := ex.node(b)
		if err != nil {
			return nil, err
		}
		if first || n.Stamp == vi.Stamp {
			out = append(out, b)
		}
		first = false
	}
	return out, nil
}

func versionAt(versions []store.VersionInfo, t model.Time) (store.VersionInfo, bool) {
	i := sort.Search(len(versions), func(i int) bool { return versions[i].Stamp > t }) - 1
	if i < 0 {
		return store.VersionInfo{}, false
	}
	if !versions[i].Interval().Contains(t) {
		return store.VersionInfo{}, false
	}
	return versions[i], true
}

// buildPattern translates a FROM path into a pattern tree, pushing eligible
// WHERE predicates down as containment words (Section 6.1: containment
// access followed by equality testing).
func buildPattern(f query.FromItem, where query.Expr) (*pattern.PNode, *pattern.PNode, error) {
	if len(f.Steps) == 0 {
		return nil, nil, fmt.Errorf("plan: FROM item %q has no path", f.Var)
	}
	var root, cur *pattern.PNode
	for _, s := range f.Steps {
		rel := pattern.Child
		if s.Desc {
			rel = pattern.Descendant
		}
		n := &pattern.PNode{Name: s.Name, Rel: rel}
		if root == nil {
			root = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	cur.Project = true
	varNode := cur

	// Predicate pushdown: conjunctive equality predicates of the form
	// Var/path = "literal" and CONTAINS(Var/path, "word") extend the
	// pattern below the variable's node.
	for _, conj := range conjuncts(where) {
		var steps []query.PathStep
		var words []pattern.ValuePred
		switch e := conj.(type) {
		case query.Binary:
			if e.Op != "=" {
				continue
			}
			pathE, lit, ok := pathAndLiteral(e)
			if !ok {
				continue
			}
			base, ok := pathE.Base.(query.VarRef)
			if !ok || base.Name != f.Var {
				continue
			}
			steps = pathE.Steps
			for _, w := range tokenizeLiteral(lit) {
				words = append(words, pattern.ValuePred{Word: w})
			}
		case query.Call:
			target, word, ok := containsArgs(e, f.Var)
			if !ok {
				continue
			}
			steps = target
			words = append(words, pattern.ValuePred{Word: word, Deep: true})
		default:
			continue
		}
		attach := varNode
		for _, s := range steps {
			rel := pattern.Child
			if s.Desc {
				rel = pattern.Descendant
			}
			child := &pattern.PNode{Name: s.Name, Rel: rel}
			attach.Children = append(attach.Children, child)
			attach = child
		}
		attach.Values = append(attach.Values, words...)
	}
	return root, varNode, nil
}

// containsArgs recognizes CONTAINS(Var/path, "word") rooted at the given
// variable, returning the path steps and the single containment word.
// Multi-token literals are not pushed (a deep AND across tokens cannot be
// expressed as independent deep predicates without changing semantics).
func containsArgs(c query.Call, varName string) ([]query.PathStep, string, bool) {
	if !strings.EqualFold(c.Name, "CONTAINS") || len(c.Args) != 2 {
		return nil, "", false
	}
	lit, ok := c.Args[1].(query.Literal)
	if !ok {
		return nil, "", false
	}
	word, ok := lit.Val.(string)
	if !ok {
		return nil, "", false
	}
	if tokens := tokenizeLiteral(word); len(tokens) != 1 || tokens[0] != word {
		return nil, "", false
	}
	switch base := c.Args[0].(type) {
	case query.VarRef:
		if base.Name == varName {
			return nil, word, true
		}
	case query.Path:
		if v, ok := base.Base.(query.VarRef); ok && v.Name == varName {
			return base.Steps, word, true
		}
	}
	return nil, "", false
}

// conjuncts flattens the AND-reachable conjuncts of the WHERE expression.
func conjuncts(e query.Expr) []query.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(query.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []query.Expr{e}
}

func pathAndLiteral(b query.Binary) (query.Path, string, bool) {
	if p, ok := b.L.(query.Path); ok {
		if l, ok := b.R.(query.Literal); ok {
			if s, ok := l.Val.(string); ok {
				return p, s, true
			}
		}
	}
	if p, ok := b.R.(query.Path); ok {
		if l, ok := b.L.(query.Literal); ok {
			if s, ok := l.Val.(string); ok {
				return p, s, true
			}
		}
	}
	return query.Path{}, "", false
}

// tokenizeLiteral splits a pushed-down literal into index words. It MUST
// agree with the FTI's tokenizer: pushing a word the index can never
// contain would silently drop valid results.
func tokenizeLiteral(s string) []string { return fti.Tokenize(s) }

// aggregate evaluates an all-aggregate SELECT list over the rows.
func (ex *executor) aggregate(q *query.Query, rows []env) ([][]any, error) {
	out := make([]any, len(q.Select))
	type state struct {
		count int64
		sum   float64
		min   any
		max   any
		nodes int64
	}
	states := make([]state, len(q.Select))
	calls := make([]query.Call, len(q.Select))
	for i, item := range q.Select {
		c, ok := item.Expr.(query.Call)
		if !ok {
			return nil, fmt.Errorf("plan: mixing aggregates and plain expressions is not supported (column %d)", i+1)
		}
		calls[i] = c
	}
	for _, row := range rows {
		for i, c := range calls {
			name := strings.ToUpper(c.Name)
			if name == "COUNT" && len(c.Args) == 0 {
				states[i].count++
				continue
			}
			if len(c.Args) != 1 {
				return nil, fmt.Errorf("plan: %s takes one argument", name)
			}
			// COUNT(R) / SUM(R) over a bare variable count bindings without
			// touching element content: no reconstruction needed — the
			// paper's Section 6.2 observation about Q2.
			if _, isVar := c.Args[0].(query.VarRef); isVar && (name == "COUNT" || name == "SUM") {
				if name == "SUM" {
					states[i].nodes++
				}
				states[i].count++
				continue
			}
			v, err := ex.eval(c.Args[0], row)
			if err != nil {
				return nil, err
			}
			switch name {
			case "COUNT":
				if nv, ok := v.([]Elem); ok {
					states[i].count += int64(len(nv))
				} else if v != nil {
					states[i].count++
				}
			case "SUM", "AVG":
				// Elements reached through a path aggregate their numeric
				// text content; the bare-variable counting form of SUM(R)
				// (the paper's Q2) is handled above.
				if nv, ok := v.([]Elem); ok {
					for _, el := range nv {
						f, err := toFloat(el.Node.Text())
						if err != nil {
							return nil, fmt.Errorf("plan: %s: %w", name, err)
						}
						states[i].sum += f
						states[i].count++
					}
					continue
				}
				f, err := toFloat(v)
				if err != nil {
					return nil, fmt.Errorf("plan: %s: %w", name, err)
				}
				states[i].sum += f
				states[i].count++
			case "MIN", "MAX":
				cmp, err := scalarize(v)
				if err != nil {
					return nil, fmt.Errorf("plan: %s: %w", name, err)
				}
				if states[i].count == 0 {
					states[i].min, states[i].max = cmp, cmp
				} else {
					if less, _ := compareValues(cmp, states[i].min); less < 0 {
						states[i].min = cmp
					}
					if less, _ := compareValues(cmp, states[i].max); less > 0 {
						states[i].max = cmp
					}
				}
				states[i].count++
			default:
				return nil, fmt.Errorf("plan: unknown aggregate %s", name)
			}
		}
	}
	for i, c := range calls {
		switch strings.ToUpper(c.Name) {
		case "COUNT":
			out[i] = states[i].count
		case "SUM":
			if states[i].nodes > 0 {
				out[i] = states[i].nodes
			} else {
				out[i] = states[i].sum
			}
		case "AVG":
			if states[i].count == 0 {
				out[i] = nil
			} else if states[i].nodes > 0 {
				out[i] = float64(states[i].nodes) / float64(states[i].count)
			} else {
				out[i] = states[i].sum / float64(states[i].count)
			}
		case "MIN":
			out[i] = states[i].min
		case "MAX":
			out[i] = states[i].max
		}
	}
	return [][]any{out}, nil
}

func distinctRows(rows [][]any) [][]any {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		key := renderKey(r)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

func renderKey(row []any) string {
	var b strings.Builder
	for _, v := range row {
		switch x := v.(type) {
		case []Elem:
			for _, nv := range x {
				b.WriteString(nv.Node.String())
			}
		default:
			fmt.Fprint(&b, v)
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

// orderRows sorts the result rows by the ORDER BY keys, evaluated against
// the source rows.
func (ex *executor) orderRows(q *query.Query, rows []env, res *Result) error {
	if q.IsAggregate() || len(res.Rows) != len(rows) {
		// Aggregates produce one row; DISTINCT may have dropped rows in
		// which case ordering falls back to the projected values.
		sort.SliceStable(res.Rows, func(i, j int) bool {
			return renderKey(res.Rows[i]) < renderKey(res.Rows[j])
		})
		return nil
	}
	type keyed struct {
		keys []any
		row  []any
	}
	ks := make([]keyed, len(rows))
	for i, row := range rows {
		ks[i].row = res.Rows[i]
		for _, o := range q.OrderBy {
			v, err := ex.eval(o.Expr, row)
			if err != nil {
				return err
			}
			sc, err := scalarize(v)
			if err != nil {
				return fmt.Errorf("plan: ORDER BY: %w", err)
			}
			ks[i].keys = append(ks[i].keys, sc)
		}
	}
	var sortErr error
	sort.SliceStable(ks, func(i, j int) bool {
		for k, o := range q.OrderBy {
			c, err := compareValues(ks[i].keys[k], ks[j].keys[k])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i := range ks {
		res.Rows[i] = ks[i].row
	}
	return nil
}

// scanT dispatches the TPatternScan operator, preferring the engine's
// context-aware variant so cancellation reaches the per-document join.
func (ex *executor) scanT(p *pattern.PNode, t model.Time) ([]pattern.Match, error) {
	if cs, ok := ex.engine.(ContextScanner); ok {
		return cs.ScanTContext(ex.ctx, p, t)
	}
	return ex.engine.ScanT(p, t)
}

// scanAll dispatches TPatternScanAll, preferring the context-aware variant.
func (ex *executor) scanAll(p *pattern.PNode) ([]pattern.Match, error) {
	if cs, ok := ex.engine.(ContextScanner); ok {
		return cs.ScanAllContext(ex.ctx, p)
	}
	return ex.engine.ScanAll(p)
}

// scanCurrent dispatches PatternScan, preferring the context-aware variant.
func (ex *executor) scanCurrent(p *pattern.PNode) ([]pattern.Match, error) {
	if cs, ok := ex.engine.(ContextScanner); ok {
		return cs.ScanCurrentContext(ex.ctx, p)
	}
	return ex.engine.ScanCurrent(p)
}
