package plan_test

import (
	"strings"
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/plan"
	"txmldb/internal/xmltree"
)

func TestOrderByAscDescAndValues(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT R/name, R/price
		FROM doc("u")[26/01/2001]/restaurant R ORDER BY R/price`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first := res.Rows[0][0].([]plan.Elem)[0].Node.Text()
	if first != "Akropolis" { // price 13 before 15
		t.Fatalf("ascending order first = %q", first)
	}
	res2, err := plan.RunString(db, `SELECT R/name
		FROM doc("u")[26/01/2001]/restaurant R ORDER BY R/price DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Rows[0][0].([]plan.Elem)[0].Node.Text(); got != "Napoli" {
		t.Fatalf("descending order first = %q", got)
	}
	// ORDER BY a time key.
	res3, err := plan.RunString(db, `SELECT TIME(R) FROM doc("u")[EVERY]/restaurant R
		WHERE R/name = "Napoli" ORDER BY TIME(R) DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rows[0][0].(model.Time) != jan31 || res3.Rows[1][0].(model.Time) != jan1 {
		t.Fatalf("time order = %v", res3.Rows)
	}
}

func TestOrderByErrorOnNodeKeyConflict(t *testing.T) {
	db := figure1(t)
	// ORDER BY over elements falls back to their text: no error, sorted.
	res, err := plan.RunString(db, `SELECT R/name FROM doc("u")[26/01/2001]/restaurant R ORDER BY R/name`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Akropolis" {
		t.Fatalf("name order = %v", res.Rows)
	}
}

func TestDistinctOverScalars(t *testing.T) {
	db := figure1(t)
	// Two Napoli element versions share the name text: DISTINCT collapses.
	res, err := plan.RunString(db, `SELECT DISTINCT R/name
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
	// Without DISTINCT there are two.
	res2, _ := plan.RunString(db, `SELECT R/name
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Napoli"`)
	if len(res2.Rows) != 2 {
		t.Fatalf("plain rows = %d", len(res2.Rows))
	}
}

func TestDistinctWithOrderByAndLimit(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT DISTINCT R/price
		FROM doc("u")[EVERY]/restaurant R
		WHERE R/name = "Napoli" ORDER BY R/price LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	// DISTINCT dropped nothing here (15 and 18 differ), the fallback
	// ordering applies, and LIMIT keeps one row.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestResultDocRendersAllValueKinds(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT TIME(R), R/price, COUNT(R)
		FROM doc("u")[26/01/2001]/restaurant R`)
	// Mixing aggregate with plain fails: split into two queries instead.
	if err == nil {
		t.Fatal("mixed select should fail")
	}
	res, err = plan.RunString(db, `SELECT TIME(R), R/price, R/name, 3.5, "label"
		FROM doc("u")[26/01/2001]/restaurant R WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Doc()
	s := doc.String()
	for _, frag := range []string{
		`col="TIME(R)"`, "<price>", "<name>", ">3.5<", ">label<",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered doc missing %q:\n%s", frag, s)
		}
	}
}

func TestVersionNavEdges(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	id, err := db.Put("u", guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "18"}), jan15); err != nil {
		t.Fatal(err)
	}

	// NEXT of the last element version is empty.
	res, err := plan.RunString(db, `SELECT NEXT(R)
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Napoli" AND R/price = "18"`)
	if err != nil {
		t.Fatal(err)
	}
	if elems := res.Rows[0][0].([]plan.Elem); len(elems) != 0 {
		t.Fatalf("NEXT of last version = %v", elems)
	}
	// NEXT of a deleted element (Akropolis) is empty.
	res2, err := plan.RunString(db, `SELECT NEXT(R)
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if elems := res2.Rows[0][0].([]plan.Elem); len(elems) != 0 {
		t.Fatalf("NEXT of deleted element = %v", elems)
	}
	// CURRENT of a deleted element is empty; of a live one, non-empty.
	res3, err := plan.RunString(db, `SELECT CURRENT(R)
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if elems := res3.Rows[0][0].([]plan.Elem); len(elems) != 0 {
		t.Fatalf("CURRENT of deleted element = %v", elems)
	}

	// After deleting the whole document, CURRENT is empty for everything.
	if err := db.Delete(id, jan31); err != nil {
		t.Fatal(err)
	}
	res4, err := plan.RunString(db, `SELECT CURRENT(R)
		FROM doc("u")[EVERY]/restaurant R WHERE R/name = "Napoli" AND R/price = "18"`)
	if err != nil {
		t.Fatal(err)
	}
	if elems := res4.Rows[0][0].([]plan.Elem); len(elems) != 0 {
		t.Fatalf("CURRENT after doc delete = %v", elems)
	}
}

func TestLiteralOnLeftOfEquality(t *testing.T) {
	db := figure1(t)
	// pathAndLiteral must recognize "Napoli" = R/name too.
	res, err := plan.RunString(db, `SELECT R FROM doc("u")[26/01/2001]/restaurant R
		WHERE "Napoli" = R/name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("reversed equality rows = %d", len(res.Rows))
	}
}

func TestNumericStringComparison(t *testing.T) {
	db := figure1(t)
	// "13" < 15 numerically (not lexicographically where "13" < "15" too);
	// use 9 to force the numeric path: "13" < 9 is false numerically but
	// true lexicographically ("1" < "9").
	res, err := plan.RunString(db, `SELECT R/name FROM doc("u")[26/01/2001]/restaurant R
		WHERE R/price < 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("numeric comparison fell back to lexicographic: %v", res.Rows)
	}
	res2, err := plan.RunString(db, `SELECT R/name FROM doc("u")[26/01/2001]/restaurant R
		WHERE R/price >= 13 AND R/price <= 15`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 2 {
		t.Fatalf("range rows = %d", len(res2.Rows))
	}
}

func TestPlainNumberArithmeticInSelect(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT 2 + 3, 10 - 4.5 FROM doc("u")[26/01/2001]/restaurant R LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 5 || res.Rows[0][1].(float64) != 5.5 {
		t.Fatalf("arithmetic = %v", res.Rows[0])
	}
}

func TestBooleanInSelect(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT R/price < 14 FROM doc("u")[26/01/2001]/restaurant R
		WHERE R/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != true {
		t.Fatalf("boolean column = %v", res.Rows[0][0])
	}
	if !strings.Contains(res.Doc().String(), ">true<") {
		t.Fatal("boolean not rendered")
	}
}

func TestTimeLiteralComparisons(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunString(db, `SELECT R/name FROM doc("u")[26/01/2001]/restaurant R
		WHERE CREATE TIME(R) != 01/01/2001 AND CREATE TIME(R) <= 20/01/2001`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Akropolis" {
		t.Fatalf("time comparison rows = %v", res.Rows)
	}
}

func TestDiffBetweenDifferentElements(t *testing.T) {
	db := figure1(t)
	// DIFF across two different restaurants: an edit script turning one
	// into the other (the paper: "E1 and E2 can be versions of the same
	// element, but can also represent different documents or subtrees").
	res, err := plan.RunString(db, `SELECT DIFF(R1, R2)
		FROM doc("u")[26/01/2001]/restaurant R1, doc("u")[26/01/2001]/restaurant R2
		WHERE R1/name = "Napoli" AND R2/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	delta := res.Rows[0][0].([]plan.Elem)[0].Node
	if delta.Name != "txdelta" || len(delta.ChildElements("")) == 0 {
		t.Fatalf("delta = %s", delta)
	}
	if !strings.Contains(delta.String(), "Akropolis") {
		t.Fatalf("delta should carry the new values: %s", delta)
	}
}

func TestEmptyEveryExpansion(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	if _, err := db.Put("u", xmltree.MustParse(`<g><r><n>x</n></r></g>`), jan1); err != nil {
		t.Fatal(err)
	}
	// A word that never occurs: zero matches, zero rows, no error.
	res, err := plan.RunString(db, `SELECT R FROM doc("u")[EVERY]/r R WHERE R/n = "nothere"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestRangeTimespec(t *testing.T) {
	db := figure1(t)
	// [01/01/2001 TO 31/01/2001): covers Napoli@15 (v1) and the v2 state,
	// but not the jan31 price change.
	res, err := plan.RunString(db, `SELECT TIME(R), R/price
		FROM doc("u")[01/01/2001 TO 31/01/2001]/restaurant R
		WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("range rows = %v", res.Rows)
	}
	if res.Rows[0][0].(model.Time) != jan1 {
		t.Fatalf("range row time = %v", res.Rows[0][0])
	}
	// Extending past jan31 picks up the price change.
	res2, err := plan.RunString(db, `SELECT TIME(R)
		FROM doc("u")[01/01/2001 TO 10/02/2001]/restaurant R
		WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 2 {
		t.Fatalf("extended range rows = %v", res2.Rows)
	}
	// Akropolis only existed inside [jan15, jan31).
	res3, err := plan.RunString(db, `SELECT COUNT(R)
		FROM doc("u")[16/01/2001 TO 17/01/2001]/restaurant R
		WHERE R/name = "Akropolis"`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Rows[0][0].(int64) != 1 {
		t.Fatalf("akropolis in range = %v", res3.Rows[0][0])
	}
	// Empty and inverted ranges error or return nothing.
	if _, err := plan.RunString(db, `SELECT R FROM doc("u")[31/01/2001 TO 01/01/2001]/restaurant R`); err == nil {
		t.Fatal("inverted range must fail")
	}
	// NOW-relative range endpoints work.
	res4, err := plan.RunString(db, `SELECT COUNT(R)
		FROM doc("u")[NOW - 30 DAYS TO NOW]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Rows[0][0].(int64) == 0 {
		t.Fatal("relative range found nothing")
	}
	// Explain mentions the clipped scan.
	out, err := plan.ExplainString(`SELECT R FROM doc("u")[01/01/2001 TO 31/01/2001]/r R`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "clipped to [01/01/2001 TO 31/01/2001]") {
		t.Errorf("range explain missing:\n%s", out)
	}
}

// TestHyphenatedLiteralPushdown is a regression test: pushed-down literal
// tokens must agree with the FTI's tokenizer, or equality predicates on
// hyphenated values silently drop all rows.
func TestHyphenatedLiteralPushdown(t *testing.T) {
	db := core.Open(core.Config{Clock: func() model.Time { return feb10 }})
	tree := xmltree.MustParse(`<g>
		<r><name>rest-000-0001</name><price>10</price></r>
		<r><name>rest-000-0002</name><price>20</price></r></g>`)
	if _, err := db.Put("u", tree, jan1); err != nil {
		t.Fatal(err)
	}
	res, err := plan.RunString(db, `SELECT R/price FROM doc("u")/r R WHERE R/name = "rest-000-0001"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "10" {
		t.Fatalf("hyphenated equality rows = %v", res.Rows)
	}
	// The pushed pattern must not require the index to contain the raw
	// hyphenated string; it pushes the individual tokens.
	out, _ := plan.ExplainString(`SELECT R FROM doc("u")/r R WHERE R/name = "rest-000-0001"`)
	if strings.Contains(out, "[~rest-000-0001]") {
		t.Errorf("raw hyphenated word pushed:\n%s", out)
	}
	for _, frag := range []string{"[~rest]", "[~000]", "[~0001]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("token %q not pushed:\n%s", frag, out)
		}
	}
	// Token-subset false positives are filtered by the equality re-check:
	// "rest-000" shares tokens with both names but equals neither.
	res2, err := plan.RunString(db, `SELECT R FROM doc("u")/r R WHERE R/name = "rest-000"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 0 {
		t.Fatalf("partial-token literal matched %d rows", len(res2.Rows))
	}
}
