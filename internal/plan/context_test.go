package plan_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"txmldb/internal/plan"
)

// TestRunContextCanceled checks an already-canceled context aborts
// execution before any reconstruction work.
func TestRunContextCanceled(t *testing.T) {
	db := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := plan.RunStringContext(ctx, db, `SELECT R FROM doc("u")[26/01/2001]/restaurant R`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextDeadline checks an expired deadline surfaces as
// DeadlineExceeded from inside execution.
func TestRunContextDeadline(t *testing.T) {
	db := figure1(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	_, err := plan.RunStringContext(ctx, db,
		`SELECT TIME(R), R/price FROM doc("u")[EVERY]/restaurant R WHERE R/name="Napoli"`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextBackgroundUnaffected checks the plain entry points still
// work (Run delegates to RunContext with a background context).
func TestRunContextBackgroundUnaffected(t *testing.T) {
	db := figure1(t)
	res, err := plan.RunStringContext(context.Background(), db,
		`SELECT SUM(R) FROM doc("u")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("SUM = %v, want 2", res.Rows[0][0])
	}
}
