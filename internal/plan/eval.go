package plan

import (
	"fmt"
	"strconv"
	"strings"

	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/query"
	"txmldb/internal/similarity"
	"txmldb/internal/xmltree"
)

// Elem is an element value in a query result, together with the document
// it came from so that the "==" identity comparison can form full EIDs.
type Elem struct {
	Node *xmltree.Node
	Doc  model.DocID
}

// defaultSimilarityThreshold is the cutoff of the bare "~" operator; the
// SIMILAR(a, b, threshold) function makes it explicit.
const defaultSimilarityThreshold = 0.85

// eval computes the value of an expression in a row environment. Values
// are: []Elem (element lists), string, float64, model.Time, bool,
// int64 (durations in ms) or nil.
func (ex *executor) eval(e query.Expr, row env) (any, error) {
	switch x := e.(type) {
	case query.Literal:
		return x.Val, nil
	case query.Duration:
		return x.Ms, nil
	case query.Now:
		return ex.engine.Now(), nil
	case query.VarRef:
		b, ok := row[x.Name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown variable %q", x.Name)
		}
		n, err := ex.node(b)
		if err != nil {
			return nil, err
		}
		return []Elem{{Node: n, Doc: b.doc}}, nil
	case query.Path:
		base, err := ex.eval(x.Base, row)
		if err != nil {
			return nil, err
		}
		nodes, ok := base.([]Elem)
		if !ok {
			return nil, fmt.Errorf("plan: path applied to non-element value %T", base)
		}
		return evalPath(nodes, x.Steps), nil
	case query.Unary:
		v, err := ex.eval(x.E, row)
		if err != nil {
			return nil, err
		}
		b, err := truthy(v)
		if err != nil {
			return nil, fmt.Errorf("plan: NOT: %w", err)
		}
		return !b, nil
	case query.Binary:
		return ex.evalBinary(x, row)
	case query.Call:
		return ex.evalCall(x, row)
	default:
		return nil, fmt.Errorf("plan: unsupported expression %T", e)
	}
}

func evalPath(base []Elem, steps []query.PathStep) []Elem {
	cur := base
	for _, s := range steps {
		var next []Elem
		for _, nv := range cur {
			if s.Desc {
				for _, d := range nv.Node.Elements(s.Name) {
					if d != nv.Node {
						next = append(next, Elem{Node: d, Doc: nv.Doc})
					}
				}
			} else {
				for _, c := range nv.Node.ChildElements(s.Name) {
					next = append(next, Elem{Node: c, Doc: nv.Doc})
				}
			}
		}
		cur = next
	}
	return cur
}

func (ex *executor) evalBinary(b query.Binary, row env) (any, error) {
	switch b.Op {
	case "AND", "OR":
		l, err := ex.eval(b.L, row)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, err
		}
		if b.Op == "AND" && !lb {
			return false, nil
		}
		if b.Op == "OR" && lb {
			return true, nil
		}
		r, err := ex.eval(b.R, row)
		if err != nil {
			return nil, err
		}
		return truthy(r)
	case "+", "-":
		return ex.evalArith(b, row)
	}
	l, err := ex.eval(b.L, row)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, row)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "==":
		return identityCompare(l, r)
	case "~":
		return similarityCompare(l, r, defaultSimilarityThreshold)
	default:
		return existentialCompare(b.Op, l, r)
	}
}

func (ex *executor) evalArith(b query.Binary, row env) (any, error) {
	l, err := ex.eval(b.L, row)
	if err != nil {
		return nil, err
	}
	r, err := ex.eval(b.R, row)
	if err != nil {
		return nil, err
	}
	// Time arithmetic: Time ± Duration (or plain numbers).
	if lt, ok := l.(model.Time); ok {
		ms, ok := r.(int64)
		if !ok {
			return nil, fmt.Errorf("plan: time arithmetic needs a duration (e.g. 14 DAYS), got %T", r)
		}
		if b.Op == "+" {
			return lt + model.Time(ms), nil
		}
		return lt - model.Time(ms), nil
	}
	lf, err := toFloat(l)
	if err != nil {
		return nil, fmt.Errorf("plan: arithmetic: %w", err)
	}
	rf, err := toFloat(r)
	if err != nil {
		return nil, fmt.Errorf("plan: arithmetic: %w", err)
	}
	if b.Op == "+" {
		return lf + rf, nil
	}
	return lf - rf, nil
}

func (ex *executor) evalCall(c query.Call, row env) (any, error) {
	name := strings.ToUpper(c.Name)
	arg := func(i int) (any, error) {
		if i >= len(c.Args) {
			return nil, fmt.Errorf("plan: %s: missing argument %d", name, i+1)
		}
		return ex.eval(c.Args[i], row)
	}
	switch name {
	case "TIME":
		// The timestamp of the element version (Section 5: TIME(R)).
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		nodes, ok := v.([]Elem)
		if !ok || len(nodes) == 0 {
			return nil, nil
		}
		return nodes[0].Node.Stamp, nil
	case "CREATE TIME", "DELETE TIME":
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		nodes, ok := v.([]Elem)
		if !ok || len(nodes) == 0 {
			return nil, nil
		}
		eid := model.EID{Doc: nodes[0].Doc, X: nodes[0].Node.XID}
		if name == "CREATE TIME" {
			return ex.engine.CreTime(eid)
		}
		return ex.engine.DelTime(eid)
	case "PREVIOUS", "NEXT", "CURRENT":
		ref, ok := c.Args[0].(query.VarRef)
		if len(c.Args) != 1 || !ok {
			return nil, fmt.Errorf("plan: %s takes a single FROM variable", name)
		}
		b, bound := row[ref.Name]
		if !bound {
			return nil, fmt.Errorf("plan: unknown variable %q", ref.Name)
		}
		return ex.evalVersionNav(name, b)
	case "DIFF":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		bv, err := arg(1)
		if err != nil {
			return nil, err
		}
		an, aok := a.([]Elem)
		bn, bok := bv.([]Elem)
		if !aok || !bok || len(an) == 0 || len(bn) == 0 {
			return nil, nil
		}
		deltaDoc, err := ex.engine.DiffNodes(an[0].Node, bn[0].Node)
		if err != nil {
			return nil, err
		}
		return []Elem{{Node: deltaDoc, Doc: an[0].Doc}}, nil
	case "CONTAINS":
		// Word containment anywhere in the element's subtree — the
		// paper's "string contain queries" (end of Section 6.1). The
		// planner pushes conjunctive CONTAINS predicates into the pattern
		// as deep containment words; this evaluation re-checks them.
		v, err := arg(0)
		if err != nil {
			return nil, err
		}
		wv, err := arg(1)
		if err != nil {
			return nil, err
		}
		word, ok := wv.(string)
		if !ok {
			return nil, fmt.Errorf("plan: CONTAINS needs a string word, got %T", wv)
		}
		nodes, ok := v.([]Elem)
		if !ok {
			return nil, fmt.Errorf("plan: CONTAINS needs an element, got %T", v)
		}
		for _, el := range nodes {
			if subtreeContainsWord(el.Node, word) {
				return true, nil
			}
		}
		return false, nil
	case "SIMILAR":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		bv, err := arg(1)
		if err != nil {
			return nil, err
		}
		threshold := defaultSimilarityThreshold
		if len(c.Args) > 2 {
			tv, err := arg(2)
			if err != nil {
				return nil, err
			}
			if f, err := toFloat(tv); err == nil {
				threshold = f
			}
		}
		return similarityCompare(a, bv, threshold)
	default:
		return nil, fmt.Errorf("plan: unknown function %s", name)
	}
}

// evalVersionNav implements PREVIOUS / NEXT / CURRENT over element
// versions (Section 6.1, the PreviousTS/NextTS/CurrentTS operators plus
// reconstruction).
func (ex *executor) evalVersionNav(name string, b *binding) (any, error) {
	cur, err := ex.node(b)
	if err != nil {
		return nil, err
	}
	versions, err := ex.versions(b.doc)
	if err != nil {
		return nil, err
	}
	x := b.match.Bindings[b.varNode].X
	switch name {
	case "CURRENT":
		vi := versions[len(versions)-1]
		if vi.End != model.Forever {
			return []Elem(nil), nil // document deleted
		}
		vt, err := ex.tree(b.doc, vi.Ver)
		if err != nil {
			return nil, err
		}
		if n := vt.Root.FindXID(x); n != nil {
			return []Elem{{Node: n, Doc: b.doc}}, nil
		}
		return []Elem(nil), nil
	case "PREVIOUS":
		// The element version before this one began at the element's
		// stamp; the previous element version is its state just before.
		start := cur.Stamp
		for i := len(versions) - 1; i >= 0; i-- {
			if versions[i].Stamp < start {
				vt, err := ex.tree(b.doc, versions[i].Ver)
				if err != nil {
					return nil, err
				}
				if n := vt.Root.FindXID(x); n != nil {
					return []Elem{{Node: n, Doc: b.doc}}, nil
				}
				return []Elem(nil), nil // element did not exist yet
			}
		}
		return []Elem(nil), nil
	case "NEXT":
		start := cur.Stamp
		for _, vi := range versions {
			if vi.Stamp <= start || vi.Stamp < b.docVer.Stamp {
				continue
			}
			vt, err := ex.tree(b.doc, vi.Ver)
			if err != nil {
				return nil, err
			}
			n := vt.Root.FindXID(x)
			if n == nil {
				return []Elem(nil), nil // deleted: no next version
			}
			if n.Stamp != start {
				return []Elem{{Node: n, Doc: b.doc}}, nil
			}
		}
		return []Elem(nil), nil
	}
	return nil, fmt.Errorf("plan: unknown navigation %s", name)
}

// evalTime evaluates a timespec expression to an instant.
func (ex *executor) evalTime(e query.Expr) (model.Time, error) {
	v, err := ex.eval(e, nil)
	if err != nil {
		return 0, err
	}
	t, ok := v.(model.Time)
	if !ok {
		return 0, fmt.Errorf("plan: timespec must evaluate to a time, got %T", v)
	}
	return t, nil
}

// subtreeContainsWord mirrors the FTI's word semantics: element names,
// attribute tokens and text tokens anywhere in the subtree.
func subtreeContainsWord(n *xmltree.Node, word string) bool {
	found := false
	n.Walk(func(d *xmltree.Node) bool {
		if found {
			return false
		}
		switch {
		case d.IsElement():
			if d.Name == word {
				found = true
				return false
			}
			for _, a := range d.Attrs {
				for _, w := range fti.Tokenize(a.Name + " " + a.Value) {
					if w == word {
						found = true
						return false
					}
				}
			}
		case d.IsText():
			for _, w := range fti.Tokenize(d.Value) {
				if w == word {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// --- comparisons and coercion ---

func truthy(v any) (bool, error) {
	switch x := v.(type) {
	case bool:
		return x, nil
	case []Elem:
		return len(x) > 0, nil
	case nil:
		return false, nil
	default:
		return false, fmt.Errorf("expected boolean, got %T", v)
	}
}

// existentialCompare applies a scalar comparison with existential
// semantics over element lists: R/price < 10 holds if any bound price
// satisfies it.
func existentialCompare(op string, l, r any) (bool, error) {
	ls, err := comparables(l)
	if err != nil {
		return false, err
	}
	rs, err := comparables(r)
	if err != nil {
		return false, err
	}
	for _, lv := range ls {
		for _, rv := range rs {
			ok, err := compareScalars(op, lv, rv)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

// comparables flattens a value into scalar comparands; elements compare by
// their text content (shallow value comparison, Section 7.4).
func comparables(v any) ([]any, error) {
	switch x := v.(type) {
	case []Elem:
		out := make([]any, 0, len(x))
		for _, nv := range x {
			out = append(out, nv.Node.Text())
		}
		return out, nil
	case nil:
		return nil, nil
	default:
		return []any{v}, nil
	}
}

func compareScalars(op string, a, b any) (bool, error) {
	c, err := compareValues(a, b)
	if err != nil {
		return false, err
	}
	switch op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("unknown comparison %q", op)
	}
}

// compareValues orders two scalars: numerically when both are numeric,
// otherwise as strings; times compare as times.
func compareValues(a, b any) (int, error) {
	if at, aok := a.(model.Time); aok {
		switch bt := b.(type) {
		case model.Time:
			return cmpInt64(int64(at), int64(bt)), nil
		case int64:
			return cmpInt64(int64(at), bt), nil
		}
	}
	af, aerr := toFloat(a)
	bf, berr := toFloat(b)
	if aerr == nil && berr == nil {
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	as, aok := stringify(a)
	bs, bok := stringify(b)
	if !aok || !bok {
		return 0, fmt.Errorf("cannot compare %T with %T", a, b)
	}
	return strings.Compare(as, bs), nil
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func stringify(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), true
	case model.Time:
		return x.String(), true
	case bool:
		return strconv.FormatBool(x), true
	default:
		return "", false
	}
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	case model.Time:
		return float64(x), nil
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, fmt.Errorf("not numeric: %q", x)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("not numeric: %T", v)
	}
}

// scalarize reduces a value to one scalar (first element's text for node
// lists) for MIN/MAX and ORDER BY.
func scalarize(v any) (any, error) {
	switch x := v.(type) {
	case []Elem:
		if len(x) == 0 {
			return nil, nil
		}
		return x[0].Node.Text(), nil
	default:
		return v, nil
	}
}

// identityCompare is "==": same persistent element identity (EID).
func identityCompare(l, r any) (bool, error) {
	ln, lok := l.([]Elem)
	rn, rok := r.([]Elem)
	if !lok || !rok {
		return false, fmt.Errorf("plan: == compares elements, got %T and %T", l, r)
	}
	for _, a := range ln {
		for _, b := range rn {
			if a.Doc == b.Doc && a.Node.XID != 0 && a.Node.XID == b.Node.XID {
				return true, nil
			}
		}
	}
	return false, nil
}

// similarityCompare is "~": Theobald/Weikum-style similarity above a
// threshold (Section 7.4).
func similarityCompare(l, r any, threshold float64) (bool, error) {
	ln, lok := l.([]Elem)
	rn, rok := r.([]Elem)
	if !lok || !rok {
		return false, fmt.Errorf("plan: ~ compares elements, got %T and %T", l, r)
	}
	for _, a := range ln {
		for _, b := range rn {
			if similarity.Similar(a.Node, b.Node, threshold) {
				return true, nil
			}
		}
	}
	return false, nil
}
