// Package plan plans and executes parsed temporal queries against the
// database engine: FROM items become pattern scans (TPatternScan /
// TPatternScanAll / PatternScan, per their timespec), equality predicates
// are pushed into the patterns as containment words ("the general
// containment operators/access methods are used, followed by equality
// testing", Section 6.1), bindings are expanded into element versions,
// joined, filtered and projected.
//
// Reconstruction is lazy: a row only touches the version store when an
// expression actually needs element content. This is what makes the
// paper's Q2 observation measurable — aggregate/count queries run without
// reconstructing any document (Section 6.2).
package plan

import (
	"context"
	"fmt"
	"strconv"

	"txmldb/internal/model"
	"txmldb/internal/pattern"
	"txmldb/internal/query"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// Engine is what the executor needs from the database; internal/core
// implements it.
type Engine interface {
	// Now returns the current transaction time.
	Now() model.Time
	// LookupDoc resolves a document URL.
	LookupDoc(url string) (model.DocID, bool)
	// ScanT is the TPatternScan operator (snapshot at t).
	ScanT(p *pattern.PNode, t model.Time) ([]pattern.Match, error)
	// ScanAll is the TPatternScanAll operator (all versions).
	ScanAll(p *pattern.PNode) ([]pattern.Match, error)
	// ScanCurrent is the non-temporal PatternScan.
	ScanCurrent(p *pattern.PNode) ([]pattern.Match, error)
	// Versions returns a document's delta index.
	Versions(doc model.DocID) ([]store.VersionInfo, error)
	// ReconstructVersion is the Reconstruct operator.
	ReconstructVersion(doc model.DocID, ver model.VersionNo) (store.VersionTree, error)
	// CreTime returns an element's creation time.
	CreTime(eid model.EID) (model.Time, error)
	// DelTime returns an element's deletion time (Forever while alive).
	DelTime(eid model.EID) (model.Time, error)
	// DiffNodes computes the edit script between two elements, as XML.
	DiffNodes(a, b *xmltree.Node) (*xmltree.Node, error)
}

// VersionKey names one document version for batch prefetch.
type VersionKey struct {
	Doc model.DocID
	Ver model.VersionNo
}

// Prefetcher is an optional Engine extension: a batch — typically parallel
// — materialization of document versions. The executor uses it to warm
// its per-query tree cache before expanding [EVERY] and [t1 TO t2] FROM
// items, overlapping the independent reconstructions while the expansion
// itself stays sequential (results and reconstruction counts are
// identical either way). sink is called once per materialized key, from
// arbitrary goroutines but never concurrently. ran reports whether the
// prefetch actually executed; when false (e.g. a single-worker engine)
// the executor reconstructs on demand.
type Prefetcher interface {
	PrefetchVersions(ctx context.Context, keys []VersionKey, sink func(VersionKey, store.VersionTree)) (ran bool, err error)
}

// ContextReconstructor is an optional Engine extension: a context-aware
// Reconstruct operator. The executor prefers it for row materialization,
// so cancellation (and, when the engine carries a resilience tier, the
// circuit breaker's fast-fail) reaches the version store's retry loop.
type ContextReconstructor interface {
	ReconstructVersionContext(ctx context.Context, doc model.DocID, ver model.VersionNo) (store.VersionTree, error)
}

// ContextVersionLister is an optional Engine extension: a version listing
// that honors the executor's context. Engines with epoch-pinned snapshot
// reads use it so a pinned query's [EVERY] and interval expansions select
// only versions published at or before the pin.
type ContextVersionLister interface {
	VersionsContext(ctx context.Context, doc model.DocID) ([]store.VersionInfo, error)
}

// DegradedReporter is an optional Engine extension: engines carrying a
// resilience tier report whether they are serving in degraded mode so the
// executor can flag results (Result.Degraded, the envelope's
// "degraded":true).
type DegradedReporter interface {
	DegradedMode() bool
}

// ContextScanner is an optional Engine extension: context-aware variants
// of the pattern-scan operators. The executor prefers these, passing the
// query's context, so cancellation and deadline expiry reach the
// per-document join inside a scan instead of waiting for the next
// reconstruction checkpoint. Engines without it fall back to the
// context-free Engine methods.
type ContextScanner interface {
	ScanTContext(ctx context.Context, p *pattern.PNode, t model.Time) ([]pattern.Match, error)
	ScanAllContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error)
	ScanCurrentContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error)
}

// Metrics counts the work a query performed.
type Metrics struct {
	// PatternMatches is the number of raw pattern-scan matches.
	PatternMatches int
	// Reconstructions counts version-store reconstructions (cache misses).
	Reconstructions int
	// RowsExamined counts candidate rows before WHERE filtering.
	RowsExamined int
}

// Result is an executed query.
type Result struct {
	Columns []string
	Rows    [][]any
	Metrics Metrics
	// Degraded reports that the engine answered while its resilience tier
	// was in degraded mode: the rows are correct (served from the version
	// cache or the in-memory current snapshot — committed versions are
	// immutable) but coverage-limited operations may have been rejected.
	Degraded bool
}

// Run executes a parsed query.
func Run(e Engine, q *query.Query) (*Result, error) {
	//txvet:ignore ctxflow context-free convenience wrapper; RunContext is the canonical path
	return RunContext(context.Background(), e, q)
}

// RunContext executes a parsed query under a context. Cancellation and
// deadline expiry are observed at every version reconstruction and, for
// cheap row work, every ctxStride steps; an interrupted query returns the
// context's error (matched with errors.Is against context.Canceled or
// context.DeadlineExceeded).
func RunContext(ctx context.Context, e Engine, q *query.Query) (*Result, error) {
	ex := &executor{
		ctx:       ctx,
		engine:    e,
		treeCache: make(map[treeKey]*store.VersionTree),
	}
	return ex.run(q)
}

// RunString parses and executes a query text.
func RunString(e Engine, src string) (*Result, error) {
	//txvet:ignore ctxflow context-free convenience wrapper; RunStringContext is the canonical path
	return RunStringContext(context.Background(), e, src)
}

// RunStringContext parses and executes a query text under a context.
func RunStringContext(ctx context.Context, e Engine, src string) (*Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, e, q)
}

// Doc renders the result as the paper's default output document:
// <results> with one <result> element per row. Element-valued columns are
// embedded as copies of the elements; scalar columns become <value>
// elements carrying the column label.
func (r *Result) Doc() *xmltree.Node {
	root := xmltree.NewElement("results")
	for _, row := range r.Rows {
		res := xmltree.NewElement("result")
		for i, v := range row {
			renderValue(res, r.Columns[i], v)
		}
		root.AppendChild(res)
	}
	return root
}

func renderValue(parent *xmltree.Node, col string, v any) {
	switch x := v.(type) {
	case nil:
		e := xmltree.NewElement("value")
		e.SetAttr("col", col)
		parent.AppendChild(e)
	case []Elem:
		for _, nv := range x {
			c := nv.Node.Clone()
			c.Walk(func(d *xmltree.Node) bool { d.Stamp = 0; d.XID = 0; return true })
			parent.AppendChild(c)
		}
	case model.Time:
		e := xmltree.ElemText("value", x.String())
		e.SetAttr("col", col)
		parent.AppendChild(e)
	default:
		e := xmltree.ElemText("value", formatScalar(v))
		e.SetAttr("col", col)
		parent.AppendChild(e)
	}
}

func formatScalar(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// columnName derives a result column label.
func columnName(item query.SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	return item.Expr.String()
}
