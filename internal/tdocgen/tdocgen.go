// Package tdocgen generates temporal XML document workloads: evolving
// restaurant-guide documents in the style of the paper's running example
// (Figure 1) and timestamped news feeds for document-time scenarios
// (Section 3.1). Generation is fully deterministic per seed, so benchmarks
// and experiments are reproducible.
package tdocgen

import (
	"fmt"
	"math/rand"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// Config parameterizes a Generator.
type Config struct {
	// Seed drives all randomness; equal seeds give equal corpora.
	Seed int64
	// Docs is the number of documents.
	Docs int
	// InitialElems is the number of restaurants per document's first
	// version. Default 10.
	InitialElems int
	// Versions is the number of versions per document (including the
	// first). Default 5.
	Versions int
	// OpsPerVersion is how many edits each new version applies. Default 2.
	OpsPerVersion int
	// Vocabulary is the number of distinct content words. Default 200.
	Vocabulary int
	// Start is the timestamp of every document's first version.
	Start model.Time
	// Step is the time between consecutive versions of one document.
	// Default: one day.
	Step model.Time
	// UpdateWeight, InsertWeight, DeleteWeight, MoveWeight bias the edit
	// mix; all default to 1 except MoveWeight which defaults to 0 (moves
	// are rare in web documents).
	UpdateWeight, InsertWeight, DeleteWeight, MoveWeight int
}

func (c Config) withDefaults() Config {
	if c.Docs == 0 {
		c.Docs = 1
	}
	if c.InitialElems == 0 {
		c.InitialElems = 10
	}
	if c.Versions == 0 {
		c.Versions = 5
	}
	if c.OpsPerVersion == 0 {
		c.OpsPerVersion = 2
	}
	if c.Vocabulary == 0 {
		c.Vocabulary = 200
	}
	if c.Step == 0 {
		c.Step = 24 * 3600 * 1000
	}
	if c.UpdateWeight == 0 && c.InsertWeight == 0 && c.DeleteWeight == 0 && c.MoveWeight == 0 {
		c.UpdateWeight, c.InsertWeight, c.DeleteWeight = 4, 2, 1
	}
	return c
}

// Version is one generated document state.
type Version struct {
	Tree *xmltree.Node
	At   model.Time
}

// Generator produces deterministic document histories.
type Generator struct {
	cfg   Config
	words []string
}

// New returns a generator for the configuration.
func New(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg}
	// Content words are drawn Zipf-distributed at generation time: common
	// words collide across documents, rare ones discriminate — the
	// distribution text indexes live with.
	g.words = make([]string, cfg.Vocabulary)
	for i := range g.words {
		g.words[i] = fmt.Sprintf("w%04d", i)
	}
	return g
}

// URL returns the i-th document's name.
func (g *Generator) URL(i int) string {
	return fmt.Sprintf("http://guide%03d.example.com/restaurants.xml", i)
}

// rng returns the per-document random stream; histories of different
// documents are independent and stable under config changes elsewhere.
func (g *Generator) rng(doc int) *rand.Rand {
	return rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(doc)))
}

func (g *Generator) word(r *rand.Rand, zipf *rand.Zipf) string {
	return g.words[int(zipf.Uint64())]
}

// History generates the full version history of document i.
func (g *Generator) History(i int) []Version {
	r := g.rng(i)
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(g.cfg.Vocabulary-1))
	serial := 0

	tree := xmltree.NewElement("guide")
	for k := 0; k < g.cfg.InitialElems; k++ {
		tree.AppendChild(g.restaurant(r, zipf, i, &serial))
	}
	out := []Version{{Tree: tree, At: g.cfg.Start}}
	cur := tree
	for v := 1; v < g.cfg.Versions; v++ {
		next := cur.Clone()
		next.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
		for op := 0; op < g.cfg.OpsPerVersion; op++ {
			g.mutate(r, zipf, next, i, &serial)
		}
		out = append(out, Version{Tree: next, At: g.cfg.Start + model.Time(int64(v)*int64(g.cfg.Step))})
		cur = next
	}
	return out
}

// restaurant builds one entry: a name unique within the corpus, a price,
// a cuisine attribute and a nested info/chef element using common words.
func (g *Generator) restaurant(r *rand.Rand, zipf *rand.Zipf, doc int, serial *int) *xmltree.Node {
	*serial++
	rest := xmltree.Elem("restaurant",
		xmltree.ElemText("name", fmt.Sprintf("rest-%03d-%04d", doc, *serial)),
		xmltree.ElemText("price", fmt.Sprint(5+r.Intn(45))),
		xmltree.Elem("info",
			xmltree.ElemText("chef", g.word(r, zipf)),
			xmltree.ElemText("specialty", g.word(r, zipf)+" "+g.word(r, zipf))))
	rest.SetAttr("cuisine", g.word(r, zipf))
	return rest
}

// mutate applies one weighted random edit to the tree.
func (g *Generator) mutate(r *rand.Rand, zipf *rand.Zipf, tree *xmltree.Node, doc int, serial *int) {
	c := g.cfg
	total := c.UpdateWeight + c.InsertWeight + c.DeleteWeight + c.MoveWeight
	pick := r.Intn(total)
	rests := tree.ChildElements("restaurant")
	switch {
	case pick < c.UpdateWeight:
		if len(rests) == 0 {
			return
		}
		target := rests[r.Intn(len(rests))]
		switch r.Intn(3) {
		case 0: // price change
			if p := target.SelectPath("price"); len(p) > 0 && len(p[0].Children) > 0 {
				p[0].Children[0].Value = fmt.Sprint(5 + r.Intn(45))
			}
		case 1: // chef change
			if ch := target.SelectPath("info/chef"); len(ch) > 0 && len(ch[0].Children) > 0 {
				ch[0].Children[0].Value = g.word(r, zipf)
			}
		case 2: // cuisine attribute change
			target.SetAttr("cuisine", g.word(r, zipf))
		}
	case pick < c.UpdateWeight+c.InsertWeight:
		tree.InsertChild(r.Intn(len(tree.Children)+1), g.restaurant(r, zipf, doc, serial))
	case pick < c.UpdateWeight+c.InsertWeight+c.DeleteWeight:
		if len(rests) > 1 {
			rests[r.Intn(len(rests))].Detach()
		}
	default: // move (reorder)
		if len(rests) > 1 {
			sub := rests[r.Intn(len(rests))]
			sub.Detach()
			tree.InsertChild(r.Intn(len(tree.Children)+1), sub)
		}
	}
}

// Loader stores generated histories. *core.DB satisfies it directly.
type Loader interface {
	Put(url string, tree *xmltree.Node, t model.Time) (model.DocID, error)
	Update(id model.DocID, tree *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error)
}

// Load feeds the whole corpus into a loader and returns the document ids.
func (g *Generator) Load(l Loader) ([]model.DocID, error) {
	ids := make([]model.DocID, g.cfg.Docs)
	for i := 0; i < g.cfg.Docs; i++ {
		hist := g.History(i)
		id, err := l.Put(g.URL(i), hist[0].Tree, hist[0].At)
		if err != nil {
			return nil, fmt.Errorf("tdocgen: put doc %d: %w", i, err)
		}
		ids[i] = id
		for _, v := range hist[1:] {
			if _, _, err := l.Update(id, v.Tree, v.At); err != nil {
				return nil, fmt.Errorf("tdocgen: update doc %d at %s: %w", i, v.At, err)
			}
		}
	}
	return ids, nil
}

// NewsHistory generates a news-archive document: items carry a document
// timestamp (publication time) in their content, the paper's
// "document time" scenario (Section 3.1). Each version appends one item
// and occasionally amends an old headline.
func (g *Generator) NewsHistory(i int) []Version {
	r := g.rng(1_000_000 + i)
	zipf := rand.NewZipf(r, 1.3, 1.0, uint64(g.cfg.Vocabulary-1))
	feed := xmltree.NewElement("feed")
	add := func(at model.Time) {
		item := xmltree.Elem("item",
			xmltree.ElemText("published", at.String()),
			xmltree.ElemText("headline", g.word(r, zipf)+" "+g.word(r, zipf)),
			xmltree.ElemText("body", g.word(r, zipf)+" "+g.word(r, zipf)+" "+g.word(r, zipf)))
		feed.AppendChild(item)
	}
	add(g.cfg.Start)
	out := []Version{{Tree: feed.Clone(), At: g.cfg.Start}}
	for v := 1; v < g.cfg.Versions; v++ {
		at := g.cfg.Start + model.Time(int64(v)*int64(g.cfg.Step))
		add(at)
		if r.Intn(3) == 0 && len(feed.Children) > 1 {
			old := feed.Children[r.Intn(len(feed.Children))]
			if h := old.SelectPath("headline"); len(h) > 0 && len(h[0].Children) > 0 {
				h[0].Children[0].Value = "corrected " + g.word(r, zipf)
			}
		}
		out = append(out, Version{Tree: feed.Clone(), At: at})
	}
	for _, v := range out {
		v.Tree.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
	}
	return out
}
