package tdocgen

import (
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Docs: 3, Versions: 4, Start: 1000}
	a := New(cfg)
	b := New(cfg)
	for doc := 0; doc < 3; doc++ {
		ha, hb := a.History(doc), b.History(doc)
		if len(ha) != len(hb) {
			t.Fatalf("doc %d: version counts differ", doc)
		}
		for v := range ha {
			if ha[v].At != hb[v].At || !xmltree.Equal(ha[v].Tree, hb[v].Tree) {
				t.Fatalf("doc %d version %d differs between equal seeds", doc, v)
			}
		}
	}
	// Different seeds must differ somewhere.
	c := New(Config{Seed: 43, Docs: 3, Versions: 4, Start: 1000})
	same := true
	for v, hv := range a.History(0) {
		if !xmltree.Equal(hv.Tree, c.History(0)[v].Tree) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical histories")
	}
}

func TestHistoryShape(t *testing.T) {
	g := New(Config{Seed: 7, Docs: 1, InitialElems: 8, Versions: 6, Start: 1000})
	hist := g.History(0)
	if len(hist) != 6 {
		t.Fatalf("versions = %d", len(hist))
	}
	if hist[0].At != 1000 {
		t.Fatalf("start = %d", hist[0].At)
	}
	for v := 1; v < len(hist); v++ {
		if hist[v].At <= hist[v-1].At {
			t.Fatal("timestamps must increase")
		}
		if xmltree.Equal(hist[v].Tree, hist[v-1].Tree) {
			t.Fatalf("version %d identical to predecessor", v)
		}
		if err := hist[v].Tree.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(hist[0].Tree.ChildElements("restaurant")); got != 8 {
		t.Fatalf("initial restaurants = %d", got)
	}
	// Structure sanity: every restaurant has name and price.
	for _, r := range hist[len(hist)-1].Tree.ChildElements("restaurant") {
		if len(r.SelectPath("name")) != 1 || len(r.SelectPath("price")) != 1 {
			t.Fatalf("malformed restaurant: %s", r)
		}
	}
}

func TestLoadIntoCore(t *testing.T) {
	g := New(Config{Seed: 1, Docs: 4, Versions: 5, Start: 1000})
	db := core.Open(core.Config{Clock: func() model.Time { return 1_000_000 }})
	ids, err := g.Load(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range ids {
		info, err := db.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Versions != 5 {
			t.Fatalf("doc %d versions = %d", i, info.Versions)
		}
		// Every stored version must reconstruct to the generated tree.
		hist := g.History(i)
		for v := 1; v <= 5; v++ {
			vt, err := db.ReconstructVersion(id, model.VersionNo(v))
			if err != nil {
				t.Fatal(err)
			}
			if !xmltree.Equal(vt.Root, hist[v-1].Tree) {
				t.Fatalf("doc %d version %d: stored tree differs from generated", i, v)
			}
		}
	}
}

func TestNewsHistory(t *testing.T) {
	g := New(Config{Seed: 5, Versions: 6, Start: 1000})
	hist := g.NewsHistory(0)
	if len(hist) != 6 {
		t.Fatalf("news versions = %d", len(hist))
	}
	for v, hv := range hist {
		items := hv.Tree.ChildElements("item")
		if len(items) != v+1 {
			t.Fatalf("version %d has %d items, want %d", v, len(items), v+1)
		}
		for _, it := range items {
			if len(it.SelectPath("published")) != 1 {
				t.Fatal("item without document timestamp")
			}
		}
	}
}

func TestEditMixWeights(t *testing.T) {
	// Insert-only workload: restaurant count must grow monotonically.
	g := New(Config{Seed: 9, Versions: 8, InitialElems: 2, OpsPerVersion: 1,
		InsertWeight: 1, UpdateWeight: 0, DeleteWeight: 0, Start: 1000})
	hist := g.History(0)
	prev := 0
	for _, hv := range hist {
		n := len(hv.Tree.ChildElements("restaurant"))
		if n < prev {
			t.Fatal("insert-only workload lost restaurants")
		}
		prev = n
	}
	if prev != 2+7 {
		t.Fatalf("final restaurants = %d, want 9", prev)
	}
}

func TestURLsDistinct(t *testing.T) {
	g := New(Config{Docs: 3})
	if g.URL(0) == g.URL(1) {
		t.Fatal("URLs must be distinct")
	}
}
