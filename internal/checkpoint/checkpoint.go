// Package checkpoint gives the durable tier bounded-replay opens and
// log-structured space reuse.
//
// A checkpoint is a checksummed image of the live pagestore state — the
// full extent table, the version store's metadata, and opaque auxiliary
// blobs (the engine serializes its in-memory indexes into them) — taken as
// of a committed log position (segment, offset). With a published
// checkpoint, opening the store is "load image + replay the WAL suffix
// past its position" instead of replaying history from segment 1, and
// every segment below the image's position is dead and can be deleted.
//
// The durability protocol, in order:
//
//  1. Write the image to ckpt-<seq>-<off>.ckpt (the covered log position is
//     in the name), fsync it. The image is framed record by record, each
//     CRC-checked, with a mandatory trailer — a truncated image is
//     detectable at any byte.
//  2. Publish it: write CHECKPOINT.manifest.tmp carrying the image name,
//     size, and whole-file CRC; fsync; rename over CHECKPOINT.manifest;
//     fsync the directory. Rename is the atomic commit point — the old
//     manifest (and old image) stay valid until it lands.
//  3. Compact: delete checkpoint images beyond the retention count and WAL
//     segments wholly covered by every retained image.
//
// A crash at any point leaves either the old manifest (new image ignored or
// adopted by the scan fallback once complete) or the new one (old files are
// garbage, collected by the next compaction). Open never trusts blindly:
// the manifest's image is re-verified against size and CRC, a failure falls
// back to scanning *.ckpt files newest-first, and if no image validates the
// store falls back to a full replay from segment 1.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"txmldb/internal/pagestore"
)

const (
	// ManifestName is the published checkpoint pointer in the data dir.
	ManifestName = "CHECKPOINT.manifest"

	manifestTmp    = ManifestName + ".tmp"
	manifestFormat = 1

	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"

	// DefaultKeep is how many checkpoint images are retained when the
	// configuration does not say: the published one plus its predecessor,
	// so there is always a fallback while a new image is being written.
	DefaultKeep = 2
)

// imageMagic opens every checkpoint image file.
var imageMagic = []byte("TXCKPT01")

// Image record tags. Layout per record (little-endian):
//
//	offset size field
//	0      1    tag: 'X' extent, 'M' meta, 'A' aux, 'Z' horizon, 'T' trailer
//	1      8    arg (extent start page; record count for 'T'; zero otherwise)
//	9      4    payload length in bytes
//	13     n    payload
//	13+n   4    CRC32 (IEEE) over bytes [0, 13+n)
//
// 'X' payloads are [4-byte page count][extent bytes]. 'A' payloads are
// [2-byte key length][key][blob]. The 'T' trailer must be the last record;
// its arg is the number of extent records and its payload a JSON
// imageTrailer — an image without a whole trailer is invalid.
const (
	tagExtent  byte = 'X'
	tagMeta    byte = 'M'
	tagAux     byte = 'A'
	tagHorizon byte = 'Z'
	tagTrailer byte = 'T'

	recHeaderLen = 13
	recCRCLen    = 4

	// maxRecordPayload bounds one image record so a corrupt length field
	// cannot drive allocation.
	maxRecordPayload = 1 << 30
)

// Config parameterizes the checkpoint subsystem.
type Config struct {
	// SegmentBytes is the WAL segment rotation threshold, passed through
	// to the segmented backend. Zero selects pagestore.DefaultSegmentBytes.
	SegmentBytes int64
	// EveryCommits triggers an automatic checkpoint after that many
	// committed mutations since the last one. Zero disables the trigger.
	EveryCommits int
	// EveryBytes triggers an automatic checkpoint after that many bytes
	// appended to the WAL since the last one. Zero disables the trigger.
	EveryBytes int64
	// Keep is how many checkpoint images to retain; DefaultKeep if <= 0.
	Keep int
}

func (c Config) keep() int {
	if c.Keep <= 0 {
		return DefaultKeep
	}
	return c.Keep
}

// Snapshot is the state captured for one checkpoint: the extent table and
// allocation mark as of Pos, the version store's full metadata, and opaque
// engine blobs (index images and the indexing horizon).
type Snapshot struct {
	Extents map[int64]pagestore.Extent
	Next    int64
	Pos     pagestore.LogPos
	Meta    []byte
	Horizon []byte
	Aux     map[string][]byte
}

// Manifest is the published checkpoint pointer: which image file is
// current and how to verify it before trusting it.
type Manifest struct {
	Format int    `json:"format"`
	File   string `json:"file"`
	Size   int64  `json:"size"`
	CRC    uint32 `json:"crc"`
	Seq    int64  `json:"seq"`
	Off    int64  `json:"off"`
}

// imageTrailer closes an image file; without it the image is torn.
type imageTrailer struct {
	Next int64 `json:"next"`
	Seq  int64 `json:"seq"`
	Off  int64 `json:"off"`
}

// ImageFileName names the image covering the log up to pos.
func ImageFileName(pos pagestore.LogPos) string {
	return fmt.Sprintf("%s%08d-%012d%s", ckptPrefix, pos.Seq, pos.Off, ckptSuffix)
}

// parseImageName inverts ImageFileName.
func parseImageName(name string) (pagestore.LogPos, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return pagestore.LogPos{}, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	parts := strings.SplitN(mid, "-", 2)
	if len(parts) != 2 || len(parts[0]) != 8 || len(parts[1]) != 12 {
		return pagestore.LogPos{}, false
	}
	seq, err1 := strconv.ParseInt(parts[0], 10, 64)
	off, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil || seq < 1 || off < 0 {
		return pagestore.LogPos{}, false
	}
	return pagestore.LogPos{Seq: seq, Off: off}, true
}

// ErrBadImage reports a checkpoint image that fails validation (short,
// torn, checksum mismatch, or structurally invalid). Open treats it as
// "this checkpoint does not exist" and falls back.
var ErrBadImage = errors.New("checkpoint: invalid image")

// crcWriter tracks a whole-file CRC32 alongside the writes.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// writeRecord frames one image record.
func writeRecord(w io.Writer, tag byte, arg int64, payload []byte) error {
	var hdr [recHeaderLen]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(arg))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	var tail [recCRCLen]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(tail[:])
	return err
}

// readRecord decodes the first record in data, returning the tag, arg,
// payload (aliasing data) and bytes consumed.
func readRecord(data []byte) (byte, int64, []byte, int, error) {
	if len(data) < recHeaderLen+recCRCLen {
		return 0, 0, nil, 0, ErrBadImage
	}
	tag := data[0]
	arg := int64(binary.LittleEndian.Uint64(data[1:9]))
	plen := binary.LittleEndian.Uint32(data[9:13])
	if plen > maxRecordPayload {
		return 0, 0, nil, 0, fmt.Errorf("%w: record payload %d", ErrBadImage, plen)
	}
	total := recHeaderLen + int(plen) + recCRCLen
	if len(data) < total {
		return 0, 0, nil, 0, ErrBadImage
	}
	body := data[:recHeaderLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[recHeaderLen+int(plen) : total])
	if crc32.ChecksumIEEE(body) != want {
		return 0, 0, nil, 0, fmt.Errorf("%w: record checksum mismatch", ErrBadImage)
	}
	return tag, arg, data[recHeaderLen : recHeaderLen+int(plen)], total, nil
}

// Checkpointer writes, publishes and compacts checkpoints for one data
// directory. It holds no locks and no file handles between calls; the
// engine serializes Run invocations.
type Checkpointer struct {
	dir string
	cfg Config
}

// New returns a Checkpointer for the data directory.
func New(dir string, cfg Config) *Checkpointer {
	return &Checkpointer{dir: dir, cfg: cfg}
}

// RunStats reports one checkpoint cycle.
type RunStats struct {
	File               string
	Bytes              int64
	Extents            int
	SegmentsDeleted    int
	CheckpointsDeleted int
	Duration           time.Duration

	crc uint32 // whole-file CRC, carried from writeImage to publish
}

// Run performs a full checkpoint cycle: write the image, publish it, and
// compact dead segments and superseded images. The snapshot must have been
// captured with writers quiesced (the engine's writer gate).
func (c *Checkpointer) Run(w *pagestore.SegmentedWAL, snap Snapshot) (RunStats, error) {
	t0 := time.Now()
	stats, err := c.writeImage(snap)
	if err != nil {
		return stats, err
	}
	if err := c.publish(Manifest{
		Format: manifestFormat,
		File:   stats.File,
		Size:   stats.Bytes,
		CRC:    stats.crc,
		Seq:    snap.Pos.Seq,
		Off:    snap.Pos.Off,
	}); err != nil {
		return stats, err
	}
	segs, ckpts, err := c.compact(w)
	stats.SegmentsDeleted = segs
	stats.CheckpointsDeleted = ckpts
	stats.Duration = time.Since(t0)
	return stats, err
}

// writeImage serializes the snapshot to its image file and fsyncs it.
func (c *Checkpointer) writeImage(snap Snapshot) (RunStats, error) {
	var stats RunStats
	name := ImageFileName(snap.Pos)
	path := filepath.Join(c.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return stats, fmt.Errorf("checkpoint: create image: %w", err)
	}
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	werr := func() error {
		if _, err := cw.Write(imageMagic); err != nil {
			return err
		}
		starts := make([]int64, 0, len(snap.Extents))
		for start := range snap.Extents {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		var buf []byte
		for _, start := range starts {
			ext := snap.Extents[start]
			buf = buf[:0]
			var pages [4]byte
			binary.LittleEndian.PutUint32(pages[:], uint32(ext.Pages))
			buf = append(buf, pages[:]...)
			buf = append(buf, ext.Data...)
			if err := writeRecord(cw, tagExtent, start, buf); err != nil {
				return err
			}
		}
		if len(snap.Meta) > 0 {
			if err := writeRecord(cw, tagMeta, 0, snap.Meta); err != nil {
				return err
			}
		}
		if len(snap.Horizon) > 0 {
			if err := writeRecord(cw, tagHorizon, 0, snap.Horizon); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(snap.Aux))
		for k := range snap.Aux {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(k) > 1<<16-1 {
				return fmt.Errorf("checkpoint: aux key %q too long", k)
			}
			buf = buf[:0]
			var klen [2]byte
			binary.LittleEndian.PutUint16(klen[:], uint16(len(k)))
			buf = append(buf, klen[:]...)
			buf = append(buf, k...)
			buf = append(buf, snap.Aux[k]...)
			if err := writeRecord(cw, tagAux, 0, buf); err != nil {
				return err
			}
		}
		trailer, err := json.Marshal(imageTrailer{Next: snap.Next, Seq: snap.Pos.Seq, Off: snap.Pos.Off})
		if err != nil {
			return err
		}
		if err := writeRecord(cw, tagTrailer, int64(len(starts)), trailer); err != nil {
			return err
		}
		return cw.w.(*bufio.Writer).Flush()
	}()
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return stats, fmt.Errorf("checkpoint: write image: %w", werr)
	}
	stats.File = name
	stats.Bytes = cw.n
	stats.Extents = len(snap.Extents)
	stats.crc = cw.crc
	return stats, nil
}

// publish atomically points the manifest at the new image.
func (c *Checkpointer) publish(m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	tmp := filepath.Join(c.dir, manifestTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create manifest: %w", err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write manifest: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, ManifestName)); err != nil {
		return fmt.Errorf("checkpoint: publish manifest: %w", err)
	}
	return syncDirFS(c.dir)
}

// compact deletes checkpoint images beyond the retention count and WAL
// segments wholly covered by every retained image. It runs after publish,
// so a crash mid-compaction only leaves extra files for the next cycle.
func (c *Checkpointer) compact(w *pagestore.SegmentedWAL) (segsDeleted, ckptsDeleted int, err error) {
	images, err := listImages(c.dir)
	if err != nil {
		return 0, 0, err
	}
	if len(images) == 0 {
		return 0, 0, nil
	}
	keep := c.cfg.keep()
	retained := images
	if len(images) > keep {
		retained = images[:keep]
		for _, im := range images[keep:] {
			if rerr := os.Remove(filepath.Join(c.dir, im.name)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return segsDeleted, ckptsDeleted, fmt.Errorf("checkpoint: drop image: %w", rerr)
			}
			ckptsDeleted++
		}
	}
	// Every retained image must be able to replay from its own position, so
	// only segments below the OLDEST retained image are dead.
	minSeq := retained[len(retained)-1].pos.Seq
	segsDeleted, err = w.DropSegmentsBelow(minSeq)
	if err != nil {
		return segsDeleted, ckptsDeleted, err
	}
	// A stale manifest tmp from a crashed publish is garbage.
	os.Remove(filepath.Join(c.dir, manifestTmp))
	return segsDeleted, ckptsDeleted, nil
}

// image is one checkpoint file on disk.
type image struct {
	name string
	pos  pagestore.LogPos
}

// listImages returns the checkpoint images in dir, newest position first.
func listImages(dir string) ([]image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list dir: %w", err)
	}
	var images []image
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if pos, ok := parseImageName(e.Name()); ok {
			images = append(images, image{name: e.Name(), pos: pos})
		}
	}
	sort.Slice(images, func(i, j int) bool {
		if images[i].pos.Seq != images[j].pos.Seq {
			return images[i].pos.Seq > images[j].pos.Seq
		}
		return images[i].pos.Off > images[j].pos.Off
	})
	return images, nil
}

// loadImage reads and fully validates one image file.
func loadImage(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if len(data) < len(imageMagic) || string(data[:len(imageMagic)]) != string(imageMagic) {
		return Snapshot{}, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	snap := Snapshot{Extents: make(map[int64]pagestore.Extent)}
	rest := data[len(imageMagic):]
	sawTrailer := false
	extentRecords := int64(0)
	for len(rest) > 0 {
		tag, arg, payload, n, err := readRecord(rest)
		if err != nil {
			return Snapshot{}, err
		}
		if sawTrailer {
			return Snapshot{}, fmt.Errorf("%w: records after trailer", ErrBadImage)
		}
		switch tag {
		case tagExtent:
			if len(payload) < 4 {
				return Snapshot{}, fmt.Errorf("%w: short extent record", ErrBadImage)
			}
			pages := int32(binary.LittleEndian.Uint32(payload[:4]))
			if pages <= 0 {
				return Snapshot{}, fmt.Errorf("%w: extent with %d pages", ErrBadImage, pages)
			}
			body := append([]byte(nil), payload[4:]...)
			snap.Extents[arg] = pagestore.Extent{
				Data:  body,
				Pages: pages,
				Sum:   pagestore.Checksum(body),
			}
			extentRecords++
		case tagMeta:
			snap.Meta = append([]byte(nil), payload...)
		case tagHorizon:
			snap.Horizon = append([]byte(nil), payload...)
		case tagAux:
			if len(payload) < 2 {
				return Snapshot{}, fmt.Errorf("%w: short aux record", ErrBadImage)
			}
			klen := int(binary.LittleEndian.Uint16(payload[:2]))
			if len(payload) < 2+klen {
				return Snapshot{}, fmt.Errorf("%w: short aux key", ErrBadImage)
			}
			if snap.Aux == nil {
				snap.Aux = make(map[string][]byte)
			}
			snap.Aux[string(payload[2:2+klen])] = append([]byte(nil), payload[2+klen:]...)
		case tagTrailer:
			var tr imageTrailer
			if err := json.Unmarshal(payload, &tr); err != nil {
				return Snapshot{}, fmt.Errorf("%w: trailer: %v", ErrBadImage, err)
			}
			if arg != extentRecords {
				return Snapshot{}, fmt.Errorf("%w: trailer counts %d extents, image has %d",
					ErrBadImage, arg, extentRecords)
			}
			snap.Next = tr.Next
			snap.Pos = pagestore.LogPos{Seq: tr.Seq, Off: tr.Off}
			sawTrailer = true
		default:
			return Snapshot{}, fmt.Errorf("%w: unknown record tag %#x", ErrBadImage, tag)
		}
		rest = rest[n:]
	}
	if !sawTrailer {
		return Snapshot{}, fmt.Errorf("%w: missing trailer", ErrBadImage)
	}
	return snap, nil
}

// readManifest loads and sanity-checks the published manifest, then
// verifies the image it points at by size and whole-file CRC.
func readManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest: %v", ErrBadImage, err)
	}
	if m.Format != manifestFormat || m.File == "" ||
		!strings.HasPrefix(m.File, ckptPrefix) || strings.ContainsAny(m.File, "/\\") {
		return Manifest{}, fmt.Errorf("%w: manifest format", ErrBadImage)
	}
	img, err := os.ReadFile(filepath.Join(dir, m.File))
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: manifest image: %v", ErrBadImage, err)
	}
	if int64(len(img)) != m.Size || crc32.ChecksumIEEE(img) != m.CRC {
		return Manifest{}, fmt.Errorf("%w: manifest image %s fails size/crc check", ErrBadImage, m.File)
	}
	return m, nil
}

// OpenInfo reports how an OpenDir resolved.
type OpenInfo struct {
	// UsedCheckpoint is true when a checkpoint image seeded the state and
	// only the WAL suffix was replayed.
	UsedCheckpoint bool
	// CheckpointFile names the image used, "" on full replay.
	CheckpointFile string
	// Fallback explains why the published checkpoint was not used ("" when
	// it was, or when none existed).
	Fallback string
	// Horizon and Aux are the engine blobs from the image, nil on full
	// replay.
	Horizon []byte
	Aux     map[string][]byte
}

// OpenDir opens the segmented WAL in dir with bounded replay: latest valid
// checkpoint image + WAL suffix, falling back through older images to a
// full replay when images are missing, torn, or fail their CRC.
func OpenDir(dir string, cfg Config) (*pagestore.SegmentedWAL, OpenInfo, error) {
	var info OpenInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	var fallbacks []string
	tried := make(map[string]bool)
	try := func(name string) *pagestore.SegmentedWAL {
		if tried[name] {
			return nil
		}
		tried[name] = true
		snap, err := loadImage(filepath.Join(dir, name))
		if err != nil {
			fallbacks = append(fallbacks, fmt.Sprintf("%s: %v", name, err))
			return nil
		}
		w, err := pagestore.OpenSegmentedWAL(pagestore.SegWALConfig{
			Dir:          dir,
			SegmentBytes: cfg.SegmentBytes,
			Base: &pagestore.BaseState{
				Extents: snap.Extents,
				Meta:    snap.Meta,
				Next:    snap.Next,
				Pos:     snap.Pos,
			},
		})
		if err != nil {
			fallbacks = append(fallbacks, fmt.Sprintf("%s: %v", name, err))
			return nil
		}
		info.UsedCheckpoint = true
		info.CheckpointFile = name
		info.Horizon = snap.Horizon
		info.Aux = snap.Aux
		return w
	}

	// Preferred path: the published manifest, fully verified.
	if m, err := readManifest(dir); err == nil {
		if w := try(m.File); w != nil {
			info.Fallback = strings.Join(fallbacks, "; ")
			return w, info, nil
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		fallbacks = append(fallbacks, fmt.Sprintf("manifest: %v", err))
	}
	// Fallback: scan images newest-first (catches a completed image whose
	// publish crashed, and an older image when the newest is damaged).
	images, err := listImages(dir)
	if err != nil {
		return nil, info, err
	}
	for _, im := range images {
		if w := try(im.name); w != nil {
			info.Fallback = strings.Join(fallbacks, "; ")
			return w, info, nil
		}
	}
	// Last resort: full replay from segment 1.
	w, err := pagestore.OpenSegmentedWAL(pagestore.SegWALConfig{Dir: dir, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		if len(fallbacks) > 0 {
			return nil, info, fmt.Errorf("checkpoint: no usable checkpoint (%s) and full replay failed: %w",
				strings.Join(fallbacks, "; "), err)
		}
		return nil, info, err
	}
	info.Fallback = strings.Join(fallbacks, "; ")
	return w, info, nil
}

// syncDirFS fsyncs a directory entry (rename/create durability).
func syncDirFS(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}
