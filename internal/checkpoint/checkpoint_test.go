package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"txmldb/internal/pagestore"
)

// buildLog creates a segmented log in dir with commits commits (one extent
// each, tiny rotation threshold so segments accumulate) and returns the
// open WAL.
func buildLog(t *testing.T, dir string, commits int) *pagestore.SegmentedWAL {
	t.Helper()
	w, err := pagestore.OpenSegmentedWAL(pagestore.SegWALConfig{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenSegmentedWAL: %v", err)
	}
	for i := 0; i < commits; i++ {
		data := []byte(fmt.Sprintf("extent-%03d-payload-padding-padding", i))
		if err := w.Put(int64(i), pagestore.Extent{Data: data, Pages: 1, Sum: pagestore.Checksum(data)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := w.PutMetaDelta([]byte(fmt.Sprintf(`{"doc":%d}`, i))); err != nil {
			t.Fatalf("PutMetaDelta: %v", err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	return w
}

// capture builds a Snapshot from the live WAL plus engine blobs.
func capture(w *pagestore.SegmentedWAL, horizon string, aux map[string][]byte) Snapshot {
	st := w.StateSnapshot()
	return Snapshot{
		Extents: st.Extents,
		Next:    st.Next,
		Pos:     st.Pos,
		Meta:    []byte(`{"catalog":"full"}`),
		Horizon: []byte(horizon),
		Aux:     aux,
	}
}

// verifyExtents asserts the reopened WAL holds exactly the extents written
// by buildLog for the given commit count.
func verifyExtents(t *testing.T, w *pagestore.SegmentedWAL, commits int) {
	t.Helper()
	count := 0
	w.Range(func(int64, pagestore.Extent) bool { count++; return true })
	if count != commits {
		t.Fatalf("recovered %d extents, want %d", count, commits)
	}
	for i := 0; i < commits; i++ {
		want := fmt.Sprintf("extent-%03d-payload-padding-padding", i)
		ext, err := w.Get(int64(i))
		if err != nil || string(ext.Data) != want {
			t.Fatalf("Get(%d) = %q, %v; want %q", i, ext.Data, err, want)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 6)
	ck := New(dir, Config{})
	aux := map[string][]byte{"fti": []byte("fti-image"), "tidx": bytes.Repeat([]byte("t"), 1000)}
	stats, err := ck.Run(w, capture(w, `{"docs":6}`, aux))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Extents != 6 || stats.Bytes == 0 || stats.File == "" {
		t.Fatalf("RunStats = %+v", stats)
	}
	if stats.SegmentsDeleted == 0 {
		t.Fatalf("compaction deleted no segments, pos=%+v", w.Pos())
	}
	// Three more commits after the checkpoint.
	for i := 6; i < 9; i++ {
		data := []byte(fmt.Sprintf("extent-%03d-payload-padding-padding", i))
		if err := w.Put(int64(i), pagestore.Extent{Data: data, Pages: 1, Sum: pagestore.Checksum(data)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	w.Close()

	r, info, err := OpenDir(dir, Config{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer r.Close()
	if !info.UsedCheckpoint || info.CheckpointFile != stats.File {
		t.Fatalf("OpenInfo = %+v, want checkpoint %s used", info, stats.File)
	}
	if string(info.Horizon) != `{"docs":6}` {
		t.Fatalf("Horizon = %q", info.Horizon)
	}
	if string(info.Aux["fti"]) != "fti-image" || len(info.Aux["tidx"]) != 1000 {
		t.Fatalf("Aux round trip failed: %v", info.Aux)
	}
	verifyExtents(t, r, 9)
	if string(r.Meta()) != `{"catalog":"full"}` {
		t.Fatalf("Meta = %q", r.Meta())
	}
	// Only the post-checkpoint suffix was replayed.
	if st := r.Stats(); st.ReplayedCommits != 3 {
		t.Fatalf("ReplayedCommits = %d, want 3 (suffix only)", st.ReplayedCommits)
	}
}

func TestOpenDirNoCheckpointFullReplay(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 4)
	w.Close()
	r, info, err := OpenDir(dir, Config{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer r.Close()
	if info.UsedCheckpoint || info.Fallback != "" {
		t.Fatalf("OpenInfo = %+v, want plain full replay", info)
	}
	verifyExtents(t, r, 4)
	if st := r.Stats(); st.ReplayedCommits != 4 {
		t.Fatalf("ReplayedCommits = %d, want 4", st.ReplayedCommits)
	}
}

func TestOpenDirFreshDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "new")
	w, info, err := OpenDir(dir, Config{})
	if err != nil {
		t.Fatalf("OpenDir on fresh dir: %v", err)
	}
	defer w.Close()
	if info.UsedCheckpoint {
		t.Fatalf("fresh dir claims a checkpoint: %+v", info)
	}
}

// TestImageTruncationEveryOffset is the crash-during-checkpoint-write
// property: the image truncated at every byte offset must never be
// adopted — every open falls back (older image or full replay) and
// recovers the complete committed state.
func TestImageTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 5)
	ck := New(dir, Config{})
	snap := capture(w, `{"docs":5}`, map[string][]byte{"fti": []byte("img")})
	stats, err := ck.writeImage(snap)
	if err != nil {
		t.Fatalf("writeImage: %v", err)
	}
	w.Close()
	full, err := os.ReadFile(filepath.Join(dir, stats.File))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, have %d", len(segs))
	}
	for cut := 0; cut < len(full); cut++ {
		work := t.TempDir()
		copyDir(t, dir, work)
		if err := os.WriteFile(filepath.Join(work, stats.File), full[:cut], 0o644); err != nil {
			t.Fatalf("truncate image copy: %v", err)
		}
		r, info, err := OpenDir(work, Config{SegmentBytes: 128})
		if err != nil {
			t.Fatalf("cut=%d: OpenDir: %v", cut, err)
		}
		if info.UsedCheckpoint {
			t.Fatalf("cut=%d: torn image %s was adopted", cut, info.CheckpointFile)
		}
		verifyExtents(t, r, 5)
		r.Close()
	}
	// The whole image (cut == len) must be adopted by the scan fallback
	// even though the manifest was never published.
	r, info, err := OpenDir(dir, Config{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenDir on unpublished image: %v", err)
	}
	defer r.Close()
	if !info.UsedCheckpoint || info.CheckpointFile != stats.File {
		t.Fatalf("complete unpublished image not adopted: %+v", info)
	}
	verifyExtents(t, r, 5)
}

// TestManifestTruncationEveryOffset is the crash-during-publish property:
// a torn manifest (or manifest tmp) must never lose data — the open falls
// back to the image scan and recovers everything.
func TestManifestTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 5)
	ck := New(dir, Config{})
	if _, err := ck.Run(w, capture(w, "", nil)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	w.Close()
	manifest, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatalf("ReadFile manifest: %v", err)
	}

	for cut := 0; cut <= len(manifest); cut++ {
		for _, target := range []string{ManifestName, manifestTmp} {
			work := t.TempDir()
			copyDir(t, dir, work)
			if target == manifestTmp {
				// Crash before rename: tmp is torn, manifest absent.
				os.Remove(filepath.Join(work, ManifestName))
			}
			if err := os.WriteFile(filepath.Join(work, target), manifest[:cut], 0o644); err != nil {
				t.Fatalf("write torn %s: %v", target, err)
			}
			r, info, err := OpenDir(work, Config{SegmentBytes: 128})
			if err != nil {
				t.Fatalf("cut=%d target=%s: OpenDir: %v", cut, target, err)
			}
			if !info.UsedCheckpoint {
				t.Fatalf("cut=%d target=%s: valid image not found via scan: %+v", cut, target, info)
			}
			verifyExtents(t, r, 5)
			r.Close()
		}
	}
}

// TestCompactionCrashEveryPrefix is the crash-during-compaction property:
// deleting any prefix of the dead segments (the order the compactor walks
// them) must leave the store fully recoverable via the checkpoint.
func TestCompactionCrashEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 6)
	ck := New(dir, Config{})
	// Write + publish but do NOT compact: the dead segments are still there.
	snap := capture(w, "", nil)
	stats, err := ck.writeImage(snap)
	if err != nil {
		t.Fatalf("writeImage: %v", err)
	}
	if err := ck.publish(Manifest{Format: manifestFormat, File: stats.File, Size: stats.Bytes,
		CRC: stats.crc, Seq: snap.Pos.Seq, Off: snap.Pos.Off}); err != nil {
		t.Fatalf("publish: %v", err)
	}
	w.Close()

	deadMax := snap.Pos.Seq - 1
	if deadMax < 2 {
		t.Fatalf("want at least 2 dead segments, pos=%+v", snap.Pos)
	}
	for k := int64(0); k <= deadMax; k++ {
		work := t.TempDir()
		copyDir(t, dir, work)
		// Crash after deleting the first k dead segments.
		for s := int64(1); s <= k; s++ {
			if err := os.Remove(filepath.Join(work, pagestore.SegmentFileName(s))); err != nil {
				t.Fatalf("remove segment %d: %v", s, err)
			}
		}
		r, info, err := OpenDir(work, Config{SegmentBytes: 128})
		if err != nil {
			t.Fatalf("k=%d: OpenDir: %v", k, err)
		}
		if !info.UsedCheckpoint {
			t.Fatalf("k=%d: checkpoint not used: %+v", k, info)
		}
		verifyExtents(t, r, 6)
		r.Close()
	}
}

// TestFallbackToOlderImage damages the newest image while an older one is
// still retained: the open must adopt the older image and replay the longer
// suffix.
func TestFallbackToOlderImage(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 3)
	ck := New(dir, Config{Keep: 2})
	if _, err := ck.Run(w, capture(w, "old", nil)); err != nil {
		t.Fatalf("Run 1: %v", err)
	}
	// More commits, second checkpoint.
	for i := 3; i < 6; i++ {
		data := []byte(fmt.Sprintf("extent-%03d-payload-padding-padding", i))
		if err := w.Put(int64(i), pagestore.Extent{Data: data, Pages: 1, Sum: pagestore.Checksum(data)}); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	stats2, err := ck.Run(w, capture(w, "new", nil))
	if err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	w.Close()

	// Corrupt the newest image; its manifest CRC check must fail.
	p2 := filepath.Join(dir, stats2.File)
	img, err := os.ReadFile(p2)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(p2, img, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	r, info, err := OpenDir(dir, Config{SegmentBytes: 128})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer r.Close()
	if !info.UsedCheckpoint || info.CheckpointFile == stats2.File {
		t.Fatalf("damaged image adopted or no fallback: %+v", info)
	}
	if string(info.Horizon) != "old" {
		t.Fatalf("fallback image horizon = %q, want the older image's", info.Horizon)
	}
	if info.Fallback == "" {
		t.Fatalf("Fallback reason empty after falling back")
	}
	verifyExtents(t, r, 6)
}

func TestCompactRetention(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 4)
	ck := New(dir, Config{Keep: 1})
	if _, err := ck.Run(w, capture(w, "", nil)); err != nil {
		t.Fatalf("Run 1: %v", err)
	}
	data := []byte("extent-xxx-payload-padding-padding!!")
	if err := w.Put(100, pagestore.Extent{Data: data, Pages: 1, Sum: pagestore.Checksum(data)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	stats2, err := ck.Run(w, capture(w, "", nil))
	if err != nil {
		t.Fatalf("Run 2: %v", err)
	}
	if stats2.CheckpointsDeleted != 1 {
		t.Fatalf("CheckpointsDeleted = %d, want the superseded image dropped", stats2.CheckpointsDeleted)
	}
	images, err := listImages(dir)
	if err != nil {
		t.Fatalf("listImages: %v", err)
	}
	if len(images) != 1 || images[0].name != stats2.File {
		t.Fatalf("retained images = %v, want only %s", images, stats2.File)
	}
	w.Close()
}

func TestParseImageName(t *testing.T) {
	pos := pagestore.LogPos{Seq: 12, Off: 34567}
	name := ImageFileName(pos)
	got, ok := parseImageName(name)
	if !ok || got != pos {
		t.Fatalf("parseImageName(%q) = %+v, %v", name, got, ok)
	}
	for _, bad := range []string{"ckpt-1-2.ckpt", "wal-00000001.seg", "ckpt-00000001-000000000000.ckpt.tmp", ManifestName} {
		if _, ok := parseImageName(bad); ok {
			t.Errorf("parseImageName(%q) accepted", bad)
		}
	}
}

// copyDir clones the flat data directory (segments, images, manifest).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatalf("WriteFile(%s): %v", e.Name(), err)
		}
	}
}

func TestLoadImageRejects(t *testing.T) {
	dir := t.TempDir()
	w := buildLog(t, dir, 2)
	ck := New(dir, Config{})
	stats, err := ck.writeImage(capture(w, "", nil))
	if err != nil {
		t.Fatalf("writeImage: %v", err)
	}
	w.Close()
	path := filepath.Join(dir, stats.File)
	good, _ := os.ReadFile(path)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("NOTCKPT0"), good[8:]...)},
		{"flipped byte", flip(good, len(good)/2)},
		{"missing trailer", good[:len(good)-5]},
		{"trailing garbage", append(append([]byte(nil), good...), 0xde, 0xad)},
	}
	for _, tc := range cases {
		p := filepath.Join(dir, "probe.ckpt.bad")
		if err := os.WriteFile(p, tc.data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		if _, err := loadImage(p); !errors.Is(err, ErrBadImage) {
			t.Errorf("%s: loadImage = %v, want ErrBadImage", tc.name, err)
		}
	}
	if _, err := loadImage(path); err != nil {
		t.Fatalf("loadImage on pristine image: %v", err)
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}
