// Package pattern implements pattern trees and the PatternScan family of
// operators (Sections 6 and 7.3.1–7.3.2 of the paper, after the Xyleme
// PatternScan of reference [2]).
//
// A pattern tree describes element names connected by isParentOf /
// isAscendantOf relationships, plus containment predicates ("the element
// directly contains the word Napoli") and projection flags. A scan fetches
// the posting list of every word in the pattern from the temporal
// full-text index and joins them on document identifier, structural
// relationship and — for the temporal variants — validity-interval overlap,
// which makes TPatternScanAll a temporal multiway join.
package pattern

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/parallel"
)

// Rel is the structural relationship between a pattern node and its parent
// pattern node.
type Rel uint8

const (
	// Child requires the element to be a direct child (isParentOf).
	Child Rel = iota
	// Descendant requires the element to be a proper descendant
	// (isAscendantOf), the "//" axis.
	Descendant
)

func (r Rel) String() string {
	switch r {
	case Child:
		return "/"
	case Descendant:
		return "//"
	default:
		return fmt.Sprintf("Rel(%d)", uint8(r))
	}
}

// ValuePred is a containment predicate on a pattern node: the element must
// contain the word, directly (text or attribute of the element itself) or,
// with Deep, anywhere in its subtree.
type ValuePred struct {
	Word string
	Deep bool
}

// PNode is one node of a pattern tree, matching elements with the given
// name. The root node's relationship is interpreted against the document:
// Child matches the document root element or one of its direct children
// (the paper views a document as a forest of trees), Descendant matches at
// any depth.
type PNode struct {
	Name     string
	Rel      Rel
	Values   []ValuePred
	Project  bool
	Children []*PNode
}

// NewPath builds a linear pattern from path steps; the last step is
// projected. Steps use Child unless prefixed in rels.
func NewPath(steps []string, rels []Rel) (*PNode, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("pattern: empty path")
	}
	if len(rels) != len(steps) {
		return nil, fmt.Errorf("pattern: %d steps but %d relationships", len(steps), len(rels))
	}
	root := &PNode{Name: steps[0], Rel: rels[0]}
	cur := root
	for i := 1; i < len(steps); i++ {
		next := &PNode{Name: steps[i], Rel: rels[i]}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	cur.Project = true
	return root, nil
}

// String renders the pattern for diagnostics, e.g. /guide/restaurant[~Napoli]*.
func (p *PNode) String() string {
	var b strings.Builder
	p.render(&b)
	return b.String()
}

func (p *PNode) render(b *strings.Builder) {
	b.WriteString(p.Rel.String())
	b.WriteString(p.Name)
	for _, v := range p.Values {
		if v.Deep {
			fmt.Fprintf(b, "[~~%s]", v.Word)
		} else {
			fmt.Fprintf(b, "[~%s]", v.Word)
		}
	}
	if p.Project {
		b.WriteString("*")
	}
	if len(p.Children) == 1 {
		p.Children[0].render(b)
		return
	}
	for _, c := range p.Children {
		b.WriteString("(")
		c.render(b)
		b.WriteString(")")
	}
}

// Nodes returns the pattern nodes in pre-order.
func (p *PNode) Nodes() []*PNode {
	out := []*PNode{p}
	for _, c := range p.Children {
		out = append(out, c.Nodes()...)
	}
	return out
}

// Validate rejects malformed patterns.
func (p *PNode) Validate() error {
	for _, n := range p.Nodes() {
		if n.Name == "" {
			return fmt.Errorf("pattern: node with empty name")
		}
		for _, v := range n.Values {
			if v.Word == "" {
				return fmt.Errorf("pattern: empty containment word under %q", n.Name)
			}
		}
	}
	return nil
}

// Match is one result of a pattern scan: a consistent assignment of pattern
// nodes to document elements, with the temporal interval over which the
// whole assignment is valid (the intersection of all involved postings).
type Match struct {
	Doc      model.DocID
	Bindings map[*PNode]fti.Posting
	Span     model.Interval
}

// TEID returns the temporal identifier of the element bound to the pattern
// node, stamped with t.
func (m Match) TEID(p *PNode, t model.Time) model.TEID {
	return m.Bindings[p].TEID(t)
}

// Projected returns the pattern nodes flagged for projection, falling back
// to the root if none are flagged.
func (p *PNode) Projected() []*PNode {
	var out []*PNode
	for _, n := range p.Nodes() {
		if n.Project {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []*PNode{p}
	}
	return out
}

// ScanT is the TPatternScan operator: match the pattern against the
// snapshot of all documents valid at time t. Every returned match has a
// span containing t.
func ScanT(ix fti.Index, p *PNode, t model.Time) ([]Match, error) {
	return ScanTPool(context.Background(), ix, p, t, nil)
}

// ScanTPool is ScanT with the per-document join fanned out on the pool
// (nil pool = sequential).
func ScanTPool(ctx context.Context, ix fti.Index, p *PNode, t model.Time, pool *parallel.Pool) ([]Match, error) {
	return scan(ctx, p, func(word string) []fti.Posting { return ix.LookupT(word, t) }, pool)
}

// ScanCurrent is the non-temporal PatternScan: match against the current
// database state.
func ScanCurrent(ix fti.Index, p *PNode) ([]Match, error) {
	return ScanCurrentPool(context.Background(), ix, p, nil)
}

// ScanCurrentPool is ScanCurrent with the per-document join fanned out on
// the pool (nil pool = sequential).
func ScanCurrentPool(ctx context.Context, ix fti.Index, p *PNode, pool *parallel.Pool) ([]Match, error) {
	return scan(ctx, p, func(word string) []fti.Posting { return ix.Lookup(word) }, pool)
}

// ScanAll is the TPatternScanAll operator: match against all versions of
// all documents. It is executed as a temporal multiway join — the
// structural join conditions of PatternScan plus interval overlap
// (Section 7.3.2); each match's span is the overlap interval.
func ScanAll(ix fti.Index, p *PNode) ([]Match, error) {
	return ScanAllPool(context.Background(), ix, p, nil)
}

// ScanAllPool is ScanAll with the per-document join fanned out on the
// pool (nil pool = sequential). The paper's cost argument is per document
// (Section 7.3.2), so documents are independent join subproblems; results
// merge in ascending-DocID order regardless of worker scheduling.
func ScanAllPool(ctx context.Context, ix fti.Index, p *PNode, pool *parallel.Pool) ([]Match, error) {
	return scan(ctx, p, ix.LookupH, pool)
}

// lookupFn fetches the posting list of one word.
type lookupFn func(word string) []fti.Posting

func scan(ctx context.Context, p *PNode, lookup lookupFn, pool *parallel.Pool) ([]Match, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Step 1 of the paper's algorithm: for all words in the pattern,
	// fetch the posting lists.
	names := make(map[string][]fti.Posting)  // element-name candidates per pattern node name
	values := make(map[string][]fti.Posting) // containment-word candidates
	for _, n := range p.Nodes() {
		if _, done := names[n.Name]; !done {
			var elems []fti.Posting
			for _, post := range lookup(n.Name) {
				if post.Src == fti.SrcName {
					elems = append(elems, post)
				}
			}
			names[n.Name] = elems
		}
		for _, v := range n.Values {
			if _, done := values[v.Word]; !done {
				// Keep all sources; containmentOK filters per predicate
				// (shallow predicates only see text/attribute words, deep
				// ones also match element names, like the FTI itself).
				values[v.Word] = lookup(v.Word)
			}
		}
	}
	// Group candidates by document: the join's first attribute. Each
	// per-document list is put into canonical (XID, span, source) order —
	// FTI implementations hand postings back in map order, and the scan
	// promises identical output for every worker count (and every call).
	type docKey = model.DocID
	group := func(ps []fti.Posting) map[docKey][]fti.Posting {
		m := make(map[docKey][]fti.Posting)
		for _, post := range ps {
			m[post.Doc] = append(m[post.Doc], post)
		}
		for _, list := range m {
			sort.Slice(list, func(i, j int) bool {
				a, b := list[i], list[j]
				if a.X != b.X {
					return a.X < b.X
				}
				if a.Span.Start != b.Span.Start {
					return a.Span.Start < b.Span.Start
				}
				if a.Span.End != b.Span.End {
					return a.Span.End < b.Span.End
				}
				return a.Src < b.Src
			})
		}
		return m
	}
	nameByDoc := make(map[string]map[docKey][]fti.Posting)
	for w, ps := range names {
		nameByDoc[w] = group(ps)
	}
	valueByDoc := make(map[string]map[docKey][]fti.Posting)
	for w, ps := range values {
		valueByDoc[w] = group(ps)
	}

	// Step 2: join on document, structural relationship and time. Each
	// document is an independent join subproblem over read-only posting
	// maps, so the per-document loop fans out on the pool; merging in
	// ascending-DocID order keeps the result deterministic for every
	// worker count (including the sequential path).
	docs := make([]model.DocID, 0, len(nameByDoc[p.Name]))
	for doc := range nameByDoc[p.Name] {
		docs = append(docs, doc)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	perDoc, err := parallel.Map(ctx, pool, "scan", len(docs), func(i int) ([]Match, error) {
		doc := docs[i]
		partials := matchNode(p, doc, fti.Posting{}, true, nameByDoc, valueByDoc)
		matches := make([]Match, 0, len(partials))
		for _, pm := range partials {
			m := Match{Doc: doc, Bindings: make(map[*PNode]fti.Posting, len(pm.bound)), Span: pm.span}
			for i, n := range pm.nodes {
				m.Bindings[n] = pm.bound[i]
			}
			matches = append(matches, m)
		}
		return matches, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Match
	for _, ms := range perDoc {
		out = append(out, ms...)
	}
	return out, nil
}

// partial is an intermediate join result.
type partial struct {
	nodes []*PNode
	bound []fti.Posting
	span  model.Interval
}

// matchNode enumerates assignments for pattern node p within one document.
// parent is the posting bound to p's parent pattern node; atRoot marks the
// pattern root, whose relationship is checked against the document root.
func matchNode(p *PNode, doc model.DocID, parent fti.Posting, atRoot bool,
	nameByDoc, valueByDoc map[string]map[model.DocID][]fti.Posting) []partial {

	var results []partial
	for _, cand := range nameByDoc[p.Name][doc] {
		if !structuralOK(p, cand, parent, atRoot) {
			continue
		}
		span := cand.Span
		// Containment predicates: intersect with a value posting's span.
		partialsHere := []partial{{nodes: []*PNode{p}, bound: []fti.Posting{cand}, span: span}}
		for _, v := range p.Values {
			var extended []partial
			for _, vp := range valueByDoc[v.Word][doc] {
				if !containmentOK(v, vp, cand) {
					continue
				}
				for _, ph := range partialsHere {
					if iv, ok := ph.span.Intersect(vp.Span); ok {
						extended = append(extended, partial{nodes: ph.nodes, bound: ph.bound, span: iv})
					}
				}
			}
			partialsHere = dedupSpans(extended)
			if len(partialsHere) == 0 {
				break
			}
		}
		// Child pattern nodes: cartesian combination with span intersection.
		for _, c := range p.Children {
			childParts := matchNode(c, doc, cand, false, nameByDoc, valueByDoc)
			var combined []partial
			for _, ph := range partialsHere {
				for _, cp := range childParts {
					iv, ok := ph.span.Intersect(cp.span)
					if !ok {
						continue
					}
					combined = append(combined, partial{
						nodes: append(append([]*PNode(nil), ph.nodes...), cp.nodes...),
						bound: append(append([]fti.Posting(nil), ph.bound...), cp.bound...),
						span:  iv,
					})
				}
			}
			partialsHere = combined
			if len(partialsHere) == 0 {
				break
			}
		}
		results = append(results, partialsHere...)
	}
	return results
}

func structuralOK(p *PNode, cand, parent fti.Posting, atRoot bool) bool {
	if atRoot {
		switch p.Rel {
		case Child:
			// Document root element or a direct child of it: the forest-of-
			// trees interpretation of the FROM path (Section 4).
			return len(cand.Path) <= 2
		default:
			return true
		}
	}
	switch p.Rel {
	case Child:
		return cand.ParentXID() == parent.X
	case Descendant:
		return cand.HasAncestor(parent.X)
	default:
		return false
	}
}

func containmentOK(v ValuePred, word, elem fti.Posting) bool {
	if v.Deep {
		// Deep containment covers the whole subtree, element names
		// included (the FTI indexes "all words in the documents,
		// including element names").
		return word.X == elem.X || word.HasAncestor(elem.X)
	}
	// Shallow containment means the element's own text or attributes.
	if word.Src == fti.SrcName {
		return false
	}
	return word.X == elem.X
}

// dedupSpans removes duplicate partials produced by multiple value
// occurrences yielding the same bindings and span.
func dedupSpans(ps []partial) []partial {
	if len(ps) < 2 {
		return ps
	}
	seen := make(map[string]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		key := fmt.Sprintf("%v|%v", p.span, p.bound)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}
