package pattern

import (
	"testing"

	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

var (
	jan1  = model.Date(2001, 1, 1)
	jan15 = model.Date(2001, 1, 15)
	jan26 = model.Date(2001, 1, 26)
	jan31 = model.Date(2001, 1, 31)
	feb10 = model.Date(2001, 2, 10)
)

func guide(entries ...[2]string) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for _, e := range entries {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", e[0]),
			xmltree.ElemText("price", e[1])))
	}
	return g
}

// figure1 loads the paper's example history into a store + version index.
func figure1(t testing.TB) (*store.Store, fti.Index, model.DocID) {
	t.Helper()
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	id, err := s.Put("guide", guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	for _, step := range []struct {
		at   model.Time
		tree *xmltree.Node
	}{
		{jan15, guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"})},
		{jan31, guide([2]string{"Napoli", "18"})},
	} {
		_, script, err := s.Update(id, step.tree, step.at)
		if err != nil {
			t.Fatal(err)
		}
		cur, _, _ := s.Current(id)
		ix.AddVersion(id, cur, script, step.at)
	}
	return s, ix, id
}

// restaurantPattern returns /guide/restaurant with the restaurant projected.
func restaurantPattern() *PNode {
	r := &PNode{Name: "restaurant", Rel: Child, Project: true}
	return &PNode{Name: "guide", Rel: Child, Children: []*PNode{r}}
}

func TestNewPath(t *testing.T) {
	p, err := NewPath([]string{"guide", "restaurant", "name"}, []Rel{Child, Child, Child})
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes()
	if len(nodes) != 3 || nodes[2].Name != "name" || !nodes[2].Project {
		t.Fatalf("NewPath structure wrong: %s", p)
	}
	if _, err := NewPath(nil, nil); err == nil {
		t.Fatal("empty path must fail")
	}
	if _, err := NewPath([]string{"a"}, []Rel{Child, Child}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestValidate(t *testing.T) {
	bad := &PNode{Name: ""}
	if err := bad.Validate(); err == nil {
		t.Error("empty name must fail validation")
	}
	bad2 := &PNode{Name: "a", Values: []ValuePred{{Word: ""}}}
	if err := bad2.Validate(); err == nil {
		t.Error("empty value word must fail validation")
	}
	if _, err := ScanCurrent(fti.NewVersionIndex(), bad); err == nil {
		t.Error("scan must reject invalid pattern")
	}
}

func TestScanTSnapshots(t *testing.T) {
	_, ix, _ := figure1(t)
	p := restaurantPattern()
	rNode := p.Children[0]

	counts := map[model.Time]int{jan1: 1, jan26: 2, jan31: 1, feb10: 1}
	for at, want := range counts {
		ms, err := ScanT(ix, p, at)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != want {
			t.Errorf("at %s: %d matches, want %d", at, len(ms), want)
		}
		for _, m := range ms {
			if !m.Span.Contains(at) {
				t.Errorf("match span %v does not contain %s", m.Span, at)
			}
			if m.Bindings[rNode].X == 0 {
				t.Error("restaurant binding missing")
			}
		}
	}
	// Before the document existed.
	if ms, _ := ScanT(ix, p, jan1-1); len(ms) != 0 {
		t.Errorf("pre-creation scan returned %d matches", len(ms))
	}
}

func TestScanWithContainment(t *testing.T) {
	_, ix, _ := figure1(t)
	// /guide/restaurant[name ~ "Napoli"] — the Q3-style filter.
	name := &PNode{Name: "name", Rel: Child, Values: []ValuePred{{Word: "Napoli"}}}
	r := &PNode{Name: "restaurant", Rel: Child, Project: true, Children: []*PNode{name}}
	p := &PNode{Name: "guide", Rel: Child, Children: []*PNode{r}}

	ms, err := ScanT(ix, p, jan26)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("Napoli at jan26: %d matches", len(ms))
	}
	// Akropolis never matches.
	name.Values = []ValuePred{{Word: "Akropolis"}}
	ms, _ = ScanT(ix, p, jan1)
	if len(ms) != 0 {
		t.Fatalf("Akropolis at jan1: %d matches", len(ms))
	}
	ms, _ = ScanT(ix, p, jan26)
	if len(ms) != 1 {
		t.Fatalf("Akropolis at jan26: %d matches", len(ms))
	}
}

func TestScanAllTemporalJoin(t *testing.T) {
	_, ix, _ := figure1(t)
	p := restaurantPattern()
	ms, err := ScanAll(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	// Napoli's restaurant exists over [jan1, ∞) and Akropolis's over
	// [jan15, jan31): two distinct element bindings.
	if len(ms) != 2 {
		t.Fatalf("ScanAll matches = %d, want 2", len(ms))
	}
	spans := map[model.Interval]bool{}
	for _, m := range ms {
		spans[m.Span] = true
	}
	if !spans[model.Interval{Start: jan1, End: model.Forever}] {
		t.Errorf("missing Napoli span, got %v", spans)
	}
	if !spans[model.Interval{Start: jan15, End: jan31}] {
		t.Errorf("missing Akropolis span, got %v", spans)
	}
}

func TestScanAllWithValueChange(t *testing.T) {
	_, ix, _ := figure1(t)
	// Price history of Napoli: restaurant[name~Napoli]/price — the price
	// element is bound once, but the containment predicate on "15" vs "18"
	// splits the temporal join.
	name := &PNode{Name: "name", Rel: Child, Values: []ValuePred{{Word: "Napoli"}}}
	price := &PNode{Name: "price", Rel: Child, Project: true, Values: []ValuePred{{Word: "15"}}}
	r := &PNode{Name: "restaurant", Rel: Child, Children: []*PNode{name, price}}
	p := &PNode{Name: "guide", Rel: Child, Children: []*PNode{r}}

	ms, err := ScanAll(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("price=15 matches = %d, want 1", len(ms))
	}
	want := model.Interval{Start: jan1, End: jan31}
	if ms[0].Span != want {
		t.Errorf("span = %v, want %v", ms[0].Span, want)
	}
	price.Values = []ValuePred{{Word: "18"}}
	ms, _ = ScanAll(ix, p)
	if len(ms) != 1 || ms[0].Span != (model.Interval{Start: jan31, End: model.Forever}) {
		t.Errorf("price=18 matches = %+v", ms)
	}
}

func TestScanCurrent(t *testing.T) {
	s, ix, id := figure1(t)
	p := restaurantPattern()
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("current matches = %d", len(ms))
	}
	// Delete the document: current scan goes empty.
	cur, _, _ := s.Current(id)
	if err := s.Delete(id, feb10); err != nil {
		t.Fatal(err)
	}
	ix.DeleteDoc(id, cur, feb10)
	if ms, _ := ScanCurrent(ix, p); len(ms) != 0 {
		t.Fatalf("current matches after delete = %d", len(ms))
	}
	// Snapshot before deletion still works.
	if ms, _ := ScanT(ix, p, feb10-1); len(ms) != 1 {
		t.Fatal("snapshot before delete lost")
	}
}

func TestDescendantAxis(t *testing.T) {
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	tree := xmltree.MustParse(`<g><area><restaurant><name>Deep</name></restaurant></area></g>`)
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)

	// g//name via descendant axis.
	name := &PNode{Name: "name", Rel: Descendant, Project: true}
	p := &PNode{Name: "g", Rel: Child, Children: []*PNode{name}}
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("descendant matches = %d", len(ms))
	}
	// g/name as direct child must not match.
	name.Rel = Child
	if ms, _ := ScanCurrent(ix, p); len(ms) != 0 {
		t.Fatalf("child axis matched %d, want 0", len(ms))
	}
	// Root pattern with Descendant matches anywhere.
	deepOnly := &PNode{Name: "restaurant", Rel: Descendant, Project: true}
	if ms, _ := ScanCurrent(ix, deepOnly); len(ms) != 1 {
		t.Fatal("descendant root failed")
	}
	// Root pattern with Child does not match a grandchild element.
	childOnly := &PNode{Name: "restaurant", Rel: Child, Project: true}
	if ms, _ := ScanCurrent(ix, childOnly); len(ms) != 0 {
		t.Fatal("child-rooted pattern matched a grandchild")
	}
}

func TestForestRootInterpretation(t *testing.T) {
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	id, _ := s.Put("doc", guide([2]string{"Napoli", "15"}), jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)
	// doc(...)/restaurant — restaurant is a child of the stored root, and
	// the forest interpretation lets the path start there.
	p := &PNode{Name: "restaurant", Rel: Child, Project: true}
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("forest-root matches = %d", len(ms))
	}
	// The document root itself also matches a root-level step.
	g := &PNode{Name: "guide", Rel: Child, Project: true}
	if ms, _ := ScanCurrent(ix, g); len(ms) != 1 {
		t.Fatal("document root step failed")
	}
}

func TestDeepContainment(t *testing.T) {
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	tree := xmltree.MustParse(`<g><r><info><chef>Mario</chef></info></r><r><info/></r></g>`)
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)

	r := &PNode{Name: "r", Rel: Child, Project: true, Values: []ValuePred{{Word: "Mario", Deep: true}}}
	p := &PNode{Name: "g", Rel: Child, Children: []*PNode{r}}
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("deep containment matches = %d, want 1", len(ms))
	}
	// Shallow containment must not see the nested word.
	r.Values = []ValuePred{{Word: "Mario"}}
	if ms, _ := ScanCurrent(ix, p); len(ms) != 0 {
		t.Fatalf("shallow containment matched %d, want 0", len(ms))
	}
}

func TestMultiBranchPattern(t *testing.T) {
	_, ix, _ := figure1(t)
	// restaurant must have BOTH a name and a price child.
	name := &PNode{Name: "name", Rel: Child}
	price := &PNode{Name: "price", Rel: Child}
	r := &PNode{Name: "restaurant", Rel: Child, Project: true, Children: []*PNode{name, price}}
	p := &PNode{Name: "guide", Rel: Child, Children: []*PNode{r}}
	ms, err := ScanT(ix, p, jan26)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("two-branch matches = %d, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Bindings[name].ParentXID() != m.Bindings[r].X ||
			m.Bindings[price].ParentXID() != m.Bindings[r].X {
			t.Fatal("branch bindings not under the same restaurant")
		}
	}
}

func TestProjectedAndTEID(t *testing.T) {
	_, ix, id := figure1(t)
	p := restaurantPattern()
	proj := p.Projected()
	if len(proj) != 1 || proj[0].Name != "restaurant" {
		t.Fatalf("Projected = %v", proj)
	}
	noFlag := &PNode{Name: "guide", Rel: Child}
	if got := noFlag.Projected(); len(got) != 1 || got[0] != noFlag {
		t.Fatal("Projected must fall back to root")
	}
	ms, _ := ScanT(ix, p, jan26)
	for _, m := range ms {
		teid := m.TEID(proj[0], jan26)
		if teid.E.Doc != id || teid.T != jan26 || teid.E.X == 0 {
			t.Fatalf("TEID = %v", teid)
		}
	}
}

func TestPatternString(t *testing.T) {
	name := &PNode{Name: "name", Rel: Child, Values: []ValuePred{{Word: "Napoli"}}}
	price := &PNode{Name: "price", Rel: Descendant, Project: true, Values: []ValuePred{{Word: "15", Deep: true}}}
	r := &PNode{Name: "restaurant", Rel: Child, Children: []*PNode{name, price}}
	got := r.String()
	want := "/restaurant(/name[~Napoli])(//price[~~15]*)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	single, _ := NewPath([]string{"a", "b"}, []Rel{Child, Descendant})
	if single.String() != "/a//b*" {
		t.Errorf("linear String() = %q", single.String())
	}
}

func TestMultipleDocuments(t *testing.T) {
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	for i, name := range []string{"a", "b", "c"} {
		id, _ := s.Put(name, guide([2]string{"Napoli", "15"}), jan1+model.Time(i))
		cur, _, _ := s.Current(id)
		ix.AddVersion(id, cur, nil, jan1+model.Time(i))
	}
	p := restaurantPattern()
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("matches across docs = %d, want 3", len(ms))
	}
	docs := map[model.DocID]bool{}
	for _, m := range ms {
		docs[m.Doc] = true
	}
	if len(docs) != 3 {
		t.Fatal("matches must come from three distinct documents")
	}
}

func TestRelString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" || Rel(9).String() != "Rel(9)" {
		t.Error("Rel.String broken")
	}
}

func TestDeepContainmentMatchesElementNames(t *testing.T) {
	s := store.New(store.Config{})
	ix := fti.NewVersionIndex()
	tree := xmltree.MustParse(`<g><r><chef>Mario</chef></r><r><waiter>Luigi</waiter></r></g>`)
	id, _ := s.Put("doc", tree, jan1)
	cur, _, _ := s.Current(id)
	ix.AddVersion(id, cur, nil, jan1)

	// Deep containment of the *element name* "chef".
	r := &PNode{Name: "r", Rel: Child, Project: true, Values: []ValuePred{{Word: "chef", Deep: true}}}
	p := &PNode{Name: "g", Rel: Child, Children: []*PNode{r}}
	ms, err := ScanCurrent(ix, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("deep name containment matches = %d, want 1", len(ms))
	}
	// Shallow containment must not see element names.
	r.Values = []ValuePred{{Word: "chef"}}
	if ms, _ := ScanCurrent(ix, p); len(ms) != 0 {
		t.Fatalf("shallow containment matched element name: %d", len(ms))
	}
}
