package core

import (
	"fmt"
	"sync"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// TestConcurrentQueriesWithWriter runs historical queries — whose answers
// are immutable once their snapshot time has passed — in parallel with a
// writer appending versions.
func TestConcurrentQueriesWithWriter(t *testing.T) {
	db := Open(Config{Clock: func() model.Time { return 1_000_000 }})
	mk := func(price int) *xmltree.Node {
		return xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"),
			xmltree.ElemText("price", fmt.Sprint(price))))
	}
	id, err := db.Put("u", mk(1), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, mk(2), 1001); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The restaurant element exists in every version: the
				// count is stable no matter which versions the writer has
				// appended so far.
				res, err := db.Query(`SELECT COUNT(R) FROM doc("u")/restaurant R`)
				if err != nil {
					errs <- err
					return
				}
				if got := res.Rows[0][0].(int64); got != 1 {
					errs <- fmt.Errorf("current count = %d", got)
					return
				}
				// Operator-level historical access.
				vt, err := db.ReconstructVersion(id, 1)
				if err != nil {
					errs <- err
					return
				}
				if got := vt.Root.SelectPath("restaurant/price")[0].Text(); got != "1" {
					errs <- fmt.Errorf("version 1 price = %q", got)
					return
				}
				if _, err := db.ElementHistory(model.EID{Doc: id, X: vt.Root.XID}, model.Interval{Start: 1000, End: 1002}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 3; i <= 40; i++ {
		if _, _, err := db.Update(id, mk(i), model.Time(1000+int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}
