package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// Dump writes the database's complete logical content — every version of
// every document, with persistent identity — into a directory: one XML
// file per document version plus a manifest. The dump is an interchange
// format, not the storage format: Load replays it through the normal
// update path, rebuilding deltas and indexes.
func (db *DB) Dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: dump: %w", err)
	}
	manifest := xmltree.NewElement("txmldump")
	manifest.SetAttr("format", "1")
	for _, id := range db.Docs() {
		info, err := db.Info(id)
		if err != nil {
			return err
		}
		docEl := xmltree.NewElement("document")
		docEl.SetAttr("url", info.Name)
		if !info.Live() {
			docEl.SetAttr("deletedms", strconv.FormatInt(int64(info.Deleted), 10))
		}
		versions, err := db.Versions(id)
		if err != nil {
			return err
		}
		for _, v := range versions {
			vt, err := db.ReconstructVersion(id, v.Ver)
			if err != nil {
				return fmt.Errorf("core: dump: doc %d version %d: %w", id, v.Ver, err)
			}
			file := fmt.Sprintf("doc%04d-v%04d.xml", id, v.Ver)
			if err := os.WriteFile(filepath.Join(dir, file), xmltree.Marshal(vt.Root), 0o644); err != nil {
				return fmt.Errorf("core: dump: %w", err)
			}
			vEl := xmltree.NewElement("version")
			vEl.SetAttr("file", file)
			vEl.SetAttr("stampms", strconv.FormatInt(int64(v.Stamp), 10))
			docEl.AppendChild(vEl)
		}
		manifest.AppendChild(docEl)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.xml"), []byte(manifest.Pretty()+"\n"), 0o644); err != nil {
		return fmt.Errorf("core: dump: %w", err)
	}
	return nil
}

// Load replays a Dump directory into the (typically empty) database:
// documents are re-put and re-updated in global timestamp order, so
// deltas, indexes and validity intervals are rebuilt exactly. Element
// identity is re-derived by the change detector; XIDs in the dump files
// are informational.
func (db *DB) Load(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.xml"))
	if err != nil {
		return fmt.Errorf("core: load: %w", err)
	}
	manifest, err := xmltree.Unmarshal(data)
	if err != nil {
		return fmt.Errorf("core: load: manifest: %w", err)
	}
	if manifest.Name != "txmldump" {
		return fmt.Errorf("core: load: manifest root is <%s>, want <txmldump>", manifest.Name)
	}
	type event struct {
		at      model.Time
		url     string
		file    string // empty for a deletion event
		deleted bool
	}
	var events []event
	for _, docEl := range manifest.ChildElements("document") {
		url, ok := docEl.Attr("url")
		if !ok {
			return fmt.Errorf("core: load: document without url")
		}
		for _, vEl := range docEl.ChildElements("version") {
			file, _ := vEl.Attr("file")
			stampStr, _ := vEl.Attr("stampms")
			stamp, err := strconv.ParseInt(stampStr, 10, 64)
			if err != nil {
				return fmt.Errorf("core: load: bad stampms %q: %w", stampStr, err)
			}
			events = append(events, event{at: model.Time(stamp), url: url, file: file})
		}
		if delStr, ok := docEl.Attr("deletedms"); ok {
			del, err := strconv.ParseInt(delStr, 10, 64)
			if err != nil {
				return fmt.Errorf("core: load: bad deletedms %q: %w", delStr, err)
			}
			events = append(events, event{at: model.Time(del), url: url, deleted: true})
		}
	}
	// Replay in global transaction-time order; deletions after updates at
	// the same instant.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return !events[i].deleted && events[j].deleted
	})
	for _, ev := range events {
		if ev.deleted {
			id, ok := db.LookupDoc(ev.url)
			if !ok {
				return fmt.Errorf("core: load: deletion of unknown document %q", ev.url)
			}
			if err := db.Delete(id, ev.at); err != nil {
				return fmt.Errorf("core: load: delete %q: %w", ev.url, err)
			}
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ev.file))
		if err != nil {
			return fmt.Errorf("core: load: %w", err)
		}
		tree, err := xmltree.Unmarshal(data)
		if err != nil {
			return fmt.Errorf("core: load: %s: %w", ev.file, err)
		}
		// Identity is re-derived on load: strip dumped XIDs and stamps.
		tree.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
		live := false
		id, known := db.LookupDoc(ev.url)
		if known {
			info, err := db.Info(id)
			if err != nil {
				return err
			}
			live = info.Live()
		}
		if live {
			if _, _, err := db.Update(id, tree, ev.at); err != nil {
				return fmt.Errorf("core: load: update %q at %s: %w", ev.url, ev.at, err)
			}
		} else {
			// First version, or a reincarnation after deletion.
			if _, err := db.Put(ev.url, tree, ev.at); err != nil {
				return fmt.Errorf("core: load: put %q: %w", ev.url, err)
			}
		}
	}
	return nil
}
