package core

import (
	"strings"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/pattern"
	"txmldb/internal/plan"
	"txmldb/internal/xmltree"
)

var (
	jan1  = model.Date(2001, 1, 1)
	jan15 = model.Date(2001, 1, 15)
	jan26 = model.Date(2001, 1, 26)
	jan31 = model.Date(2001, 1, 31)
	feb10 = model.Date(2001, 2, 10)
)

const guideURL = "http://guide.com/restaurants.xml"

func guide(entries ...[2]string) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for _, e := range entries {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", e[0]),
			xmltree.ElemText("price", e[1])))
	}
	return g
}

// openFigure1 loads the paper's Figure 1 history: the restaurant list at
// guide.com as retrieved on January 1st (Napoli/15), January 15th
// (Napoli/15 + Akropolis/13) and January 31st (Napoli/18).
func openFigure1(t testing.TB, cfg Config) (*DB, model.DocID) {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = func() model.Time { return feb10 }
	}
	db := Open(cfg)
	id, err := db.Put(guideURL, guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), jan15); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "18"}), jan31); err != nil {
		t.Fatal(err)
	}
	return db, id
}

func restaurantPattern() *pattern.PNode {
	r := &pattern.PNode{Name: "restaurant", Rel: pattern.Child, Project: true}
	return &pattern.PNode{Name: "guide", Rel: pattern.Child, Children: []*pattern.PNode{r}}
}

// TestFigure1Q1 reproduces Q1: list all restaurants as of 26/01/2001
// (operators: TPatternScan followed by Reconstruct).
func TestFigure1Q1(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	teids, err := db.TPatternScan(restaurantPattern(), jan26)
	if err != nil {
		t.Fatal(err)
	}
	if len(teids) != 2 {
		t.Fatalf("TPatternScan at 26/01: %d TEIDs, want 2", len(teids))
	}
	var names []string
	for _, teid := range teids {
		n, err := db.Reconstruct(teid)
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, n.SelectPath("name")[0].Text())
	}
	want := map[string]bool{"Napoli": true, "Akropolis": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected restaurant %q", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing restaurants: %v", want)
	}
}

// TestFigure1Q1Language runs Q1 through the query language.
func TestFigure1Q1Language(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("Q1 rows = %d, want 2", len(res.Rows))
	}
	doc := res.Doc()
	if doc.Name != "results" || len(doc.ChildElements("result")) != 2 {
		t.Fatalf("Q1 result doc = %s", doc)
	}
	s := doc.String()
	for _, frag := range []string{"Napoli", "Akropolis", "15", "13"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Q1 output missing %q: %s", frag, s)
		}
	}
	if strings.Contains(s, "18") {
		t.Errorf("Q1 output leaked the January 31 price: %s", s)
	}
}

// TestFigure1Q2 reproduces Q2: the number of restaurants at 26/01/2001,
// with NO reconstruction (the paper's key observation in Section 6.2).
func TestFigure1Q2(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT SUM(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q2 rows = %d", len(res.Rows))
	}
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("Q2 = %d, want 2", got)
	}
	if res.Metrics.Reconstructions != 0 {
		t.Fatalf("Q2 performed %d reconstructions, want 0 (Section 6.2)", res.Metrics.Reconstructions)
	}
}

// TestFigure1Q3 reproduces Q3: the price history of restaurant Napoli
// (operator: TPatternScanAll).
func TestFigure1Q3(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT TIME(R), R/price FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R WHERE R/name="Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	// Napoli's element versions: created at jan1 (price 15), price change
	// at jan31 (price 18). The jan15 document version did not touch it.
	if len(res.Rows) != 2 {
		t.Fatalf("Q3 rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	got := map[model.Time]string{}
	for _, row := range res.Rows {
		at := row[0].(model.Time)
		prices := row[1].([]plan.Elem)
		if len(prices) != 1 {
			t.Fatalf("Q3 price column = %v", row[1])
		}
		got[at] = prices[0].Node.Text()
	}
	if got[jan1] != "15" || got[jan31] != "18" {
		t.Fatalf("Q3 history = %v, want 15@jan1 and 18@jan31", got)
	}
}
