package core

import (
	"fmt"
	"os"
	"time"

	"txmldb/internal/checkpoint"
	"txmldb/internal/diff"
	"txmldb/internal/doctime"
	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
	"txmldb/internal/tidx"
)

// OpenDurable opens (or creates) a database whose storage tier is a
// segmented write-ahead log under dir, with bounded-replay opens: when a
// published checkpoint image is present and valid, the pagestore state is
// loaded from it and only the WAL suffix behind the checkpoint position is
// replayed; the in-memory indexes are restored from the image's blobs and
// topped up incrementally from the versions committed after the horizon. A
// missing or corrupt checkpoint falls back — older image, then full replay
// from the first segment — and never fails the open. A legacy single-file
// "pages.wal" directory is adopted transparently.
//
// cfg.Store.Pages.Backend is overridden by the segmented WAL backend.
func OpenDurable(cfg Config, dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	replayStart := time.Now()
	seg, info, err := checkpoint.OpenDir(dir, cfg.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	cfg.Store.Pages.Backend = seg
	attachTier(&cfg)
	st, err := store.Open(cfg.Store)
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	db := assemble(cfg, st)
	db.segwal = seg
	db.ckpt = checkpoint.New(dir, cfg.Checkpoint)
	db.ckptCfg = cfg.Checkpoint
	replayDur := time.Since(replayStart)

	// Index recovery: restore the image's index blobs and reindex only the
	// versions beyond the checkpoint horizon; any restore failure rebuilds
	// fresh indexes from the full history instead.
	indexStart := time.Now()
	var horizon map[model.DocID]horizonDoc
	restored := false
	if info.UsedCheckpoint && len(info.Aux) > 0 {
		if h, err := parseHorizon(info.Horizon); err == nil {
			if err := db.restoreIndexes(info.Aux); err == nil {
				horizon, restored = h, true
			} else {
				db.resetIndexes(cfg)
				info.Fallback = joinFallback(info.Fallback, fmt.Sprintf("index restore: %v", err))
			}
		} else {
			info.Fallback = joinFallback(info.Fallback, err.Error())
		}
	}
	docs, versions, err := db.reindexFrom(horizon)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("core: open durable: rebuild indexes: %w", err)
	}
	indexDur := time.Since(indexStart)

	ws := seg.Stats()
	db.openRep = OpenReport{
		UsedCheckpoint:  info.UsedCheckpoint,
		CheckpointFile:  info.CheckpointFile,
		Fallback:        info.Fallback,
		SegmentsScanned: ws.SegmentsScanned,
		ReplayedCommits: ws.ReplayedCommits,
		ReplayedExtents: ws.ReplayedExtents,
		ReplayedBytes:   ws.RecoveredBytes,
		TruncatedBytes:  ws.TruncatedOnOpen,
		IndexesRestored: restored,
		IndexedDocs:     docs,
		IndexedVersions: versions,
		ReplayDuration:  replayDur,
		IndexDuration:   indexDur,
	}
	if cfg.OpenLogf != nil {
		cfg.OpenLogf("%s", db.openRep.String())
	}
	return db, nil
}

func joinFallback(a, b string) string {
	if a == "" {
		return b
	}
	return a + "; " + b
}

// restoreIndexes loads the index blobs of a checkpoint image into the
// freshly assembled (empty) indexes. A blob missing for a configured index
// is an error — the horizon would lie about its coverage.
func (db *DB) restoreIndexes(aux map[string][]byte) error {
	snap, ok := db.fti.(indexSnapshotter)
	if !ok {
		return fmt.Errorf("full-text index %s cannot restore snapshots", db.fti.Name())
	}
	blob, ok := aux[auxFTI]
	if !ok {
		return fmt.Errorf("image has no %q blob", auxFTI)
	}
	if err := snap.RestoreState(blob); err != nil {
		return err
	}
	if db.times != nil {
		blob, ok := aux[auxTidx]
		if !ok {
			return fmt.Errorf("image has no %q blob", auxTidx)
		}
		if err := db.times.RestoreState(blob); err != nil {
			return err
		}
	}
	if db.docTimes != nil {
		blob, ok := aux[auxDocTime]
		if !ok {
			return fmt.Errorf("image has no %q blob", auxDocTime)
		}
		if err := db.docTimes.RestoreState(blob); err != nil {
			return err
		}
	}
	return nil
}

// resetIndexes replaces possibly part-restored indexes with fresh empty
// ones, so a failed restore can fall back to a full reindex.
func (db *DB) resetIndexes(cfg Config) {
	switch cfg.Index {
	case IndexDeltas:
		db.fti = fti.NewDeltaIndex()
	case IndexBoth:
		db.fti = fti.NewBothIndex()
	default:
		db.fti = fti.NewVersionIndex()
	}
	if db.times != nil {
		db.times = tidx.New()
	}
	if db.docTimes != nil {
		db.docTimes = doctime.New(doctime.Config{Paths: cfg.DocTimePaths})
	}
}

// WALStats returns the write-ahead-log counters, or false when the
// database does not run on a WAL backend.
func (db *DB) WALStats() (pagestore.WALStats, bool) {
	switch w := db.store.Pages().Backend().(type) {
	case *pagestore.SegmentedWAL:
		return w.Stats(), true
	case *pagestore.WAL:
		return w.Stats(), true
	}
	return pagestore.WALStats{}, false
}

// Fsck verifies every extent referenced by the delta indexes and reports
// structured corruption findings (see store.FsckReport). The verdict is
// fed into the resilience tier: corruption degrades the data component
// (sticky — only a later clean Fsck clears it), a clean walk heals it.
func (db *DB) Fsck() store.FsckReport {
	rep := db.store.Fsck()
	db.res.RecordFsck(rep.Clean())
	return rep
}

// Close releases the storage backend (fsynced WAL file handles). The
// database is unusable afterwards.
func (db *DB) Close() error { return db.store.Close() }

// reindex rebuilds the in-memory indexes from the whole version store.
func (db *DB) reindex() error {
	_, _, err := db.reindexFrom(nil)
	return err
}

// reindexFrom feeds the version store through the index maintenance path,
// starting per document at the horizon (nil: everything — the full rebuild
// after recovery without a usable checkpoint). Versions made unreachable by
// storage corruption or pruned by retention are skipped — queries over them
// fail with the storage error, while intact versions stay indexed and
// queryable (graceful degradation; Fsck reports damage). Returns how many
// documents and versions were fed through maintenance.
func (db *DB) reindexFrom(horizon map[model.DocID]horizonDoc) (docs, count int, err error) {
	for _, id := range db.store.Docs() {
		info, err := db.store.Info(id)
		if err != nil {
			return docs, count, err
		}
		versions, err := db.store.Versions(id)
		if err != nil {
			return docs, count, err
		}
		from, deletionIndexed := 0, false
		if h, ok := horizon[id]; ok {
			from, deletionIndexed = h.Versions, h.Deleted
		}
		indexed := 0
		for i := from; i < len(versions); i++ {
			v := versions[i]
			vt, err := db.store.ReconstructVersion(id, v.Ver)
			if err != nil {
				continue // unreachable or pruned version: skip, Fsck reports damage
			}
			var script *diff.Script
			if i > 0 {
				// The delta leading into this version; absence (corrupt
				// chain) falls back to whole-version indexing, which the
				// version FTI handles and the delta FTI tolerates as nil.
				if s, err := db.store.ReadDelta(id, versions[i-1].Ver); err == nil {
					script = s
				}
			}
			if err := db.fti.AddVersion(id, vt.Root, script, v.Stamp); err != nil {
				return docs, count, fmt.Errorf("doc %d version %d: %w", id, v.Ver, err)
			}
			if db.times != nil {
				db.times.AddVersion(id, vt.Root, script, v.Stamp)
			}
			if db.docTimes != nil {
				db.docTimes.AddVersion(id, vt.Root)
			}
			indexed++
		}
		if !info.Live() && info.Deleted != model.Forever && !deletionIndexed {
			last, err := db.store.ReconstructVersion(id, versions[len(versions)-1].Ver)
			if err == nil {
				if err := db.fti.DeleteDoc(id, last.Root, info.Deleted); err != nil {
					return docs, count, fmt.Errorf("doc %d delete: %w", id, err)
				}
			}
			if db.times != nil {
				db.times.DeleteDoc(id, info.Deleted)
			}
			indexed++
		}
		if indexed > 0 {
			docs++
			count += indexed
		}
	}
	return docs, count, nil
}
