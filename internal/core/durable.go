package core

import (
	"fmt"
	"os"
	"path/filepath"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
)

// walFile is the name of the write-ahead log inside a data directory.
const walFile = "pages.wal"

// OpenDurable opens (or creates) a database whose storage tier is a
// write-ahead log under dir. All committed versions survive a process
// crash: reopening replays the log, truncates any torn tail, restores the
// version store from its last committed metadata snapshot and rebuilds the
// in-memory indexes (full-text, create/delete-time, document-time) from
// the recovered delta chains.
//
// cfg.Store.Pages.Backend is overridden by the WAL backend.
func OpenDurable(cfg Config, dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	wal, err := pagestore.OpenWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	cfg.Store.Pages.Backend = wal
	attachTier(&cfg)
	st, err := store.Open(cfg.Store)
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("core: open durable: %w", err)
	}
	db := assemble(cfg, st)
	if err := db.reindex(); err != nil {
		st.Close()
		return nil, fmt.Errorf("core: open durable: rebuild indexes: %w", err)
	}
	return db, nil
}

// WALStats returns the write-ahead-log counters, or false when the
// database does not run on a WAL backend.
func (db *DB) WALStats() (pagestore.WALStats, bool) {
	if w, ok := db.store.Pages().Backend().(*pagestore.WAL); ok {
		return w.Stats(), true
	}
	return pagestore.WALStats{}, false
}

// Fsck verifies every extent referenced by the delta indexes and reports
// structured corruption findings (see store.FsckReport). The verdict is
// fed into the resilience tier: corruption degrades the data component
// (sticky — only a later clean Fsck clears it), a clean walk heals it.
func (db *DB) Fsck() store.FsckReport {
	rep := db.store.Fsck()
	db.res.RecordFsck(rep.Clean())
	return rep
}

// Close releases the storage backend (fsynced WAL file handles). The
// database is unusable afterwards.
func (db *DB) Close() error { return db.store.Close() }

// reindex rebuilds the in-memory indexes from the version store after
// recovery, replaying every document's history through the same
// maintenance path live updates use. Versions made unreachable by storage
// corruption are skipped — queries over them fail with the storage error,
// while intact versions stay indexed and queryable (graceful degradation;
// Fsck reports the damage).
func (db *DB) reindex() error {
	for _, id := range db.store.Docs() {
		info, err := db.store.Info(id)
		if err != nil {
			return err
		}
		versions, err := db.store.Versions(id)
		if err != nil {
			return err
		}
		for i, v := range versions {
			vt, err := db.store.ReconstructVersion(id, v.Ver)
			if err != nil {
				continue // unreachable version: skip, Fsck reports it
			}
			var script *diff.Script
			if i > 0 {
				// The delta leading into this version; absence (corrupt
				// chain) falls back to whole-version indexing, which the
				// version FTI handles and the delta FTI tolerates as nil.
				if s, err := db.store.ReadDelta(id, versions[i-1].Ver); err == nil {
					script = s
				}
			}
			if err := db.fti.AddVersion(id, vt.Root, script, v.Stamp); err != nil {
				return fmt.Errorf("doc %d version %d: %w", id, v.Ver, err)
			}
			if db.times != nil {
				db.times.AddVersion(id, vt.Root, script, v.Stamp)
			}
			if db.docTimes != nil {
				db.docTimes.AddVersion(id, vt.Root)
			}
		}
		if !info.Live() && info.Deleted != model.Forever {
			last, err := db.store.ReconstructVersion(id, versions[len(versions)-1].Ver)
			if err == nil {
				if err := db.fti.DeleteDoc(id, last.Root, info.Deleted); err != nil {
					return fmt.Errorf("doc %d delete: %w", id, err)
				}
			}
			if db.times != nil {
				db.times.DeleteDoc(id, info.Deleted)
			}
		}
	}
	return nil
}
