package core

import (
	"os"
	"path/filepath"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

func TestDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := Open(Config{Clock: func() model.Time { return feb10 }})
	g := tdocgen.New(tdocgen.Config{Seed: 21, Docs: 3, Versions: 6, Start: jan1})
	ids, err := g.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one document so the dump covers deletions too.
	if err := src.Delete(ids[2], feb10-1); err != nil {
		t.Fatal(err)
	}
	if err := src.Dump(dir); err != nil {
		t.Fatal(err)
	}

	dst := Open(Config{Clock: func() model.Time { return feb10 }})
	if err := dst.Load(dir); err != nil {
		t.Fatal(err)
	}

	for _, id := range ids {
		srcInfo, err := src.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		dstID, ok := dst.LookupDoc(srcInfo.Name)
		if !ok {
			t.Fatalf("document %q missing after load", srcInfo.Name)
		}
		dstInfo, err := dst.Info(dstID)
		if err != nil {
			t.Fatal(err)
		}
		if dstInfo.Versions != srcInfo.Versions || dstInfo.Deleted != srcInfo.Deleted ||
			dstInfo.Created != srcInfo.Created {
			t.Fatalf("metadata mismatch for %q: %+v vs %+v", srcInfo.Name, dstInfo, srcInfo)
		}
		// Every reconstructed version must be structurally identical, with
		// identical stamps.
		for v := 1; v <= srcInfo.Versions; v++ {
			a, err := src.ReconstructVersion(id, model.VersionNo(v))
			if err != nil {
				t.Fatal(err)
			}
			b, err := dst.ReconstructVersion(dstID, model.VersionNo(v))
			if err != nil {
				t.Fatal(err)
			}
			if !xmltree.Equal(a.Root, b.Root) {
				t.Fatalf("doc %q version %d differs after reload", srcInfo.Name, v)
			}
			if a.Info.Stamp != b.Info.Stamp || a.Info.End != b.Info.End {
				t.Fatalf("doc %q version %d validity differs: %+v vs %+v",
					srcInfo.Name, v, a.Info, b.Info)
			}
		}
	}

	// The reloaded database answers temporal queries identically.
	q := `SELECT COUNT(R) FROM doc("http://guide000.example.com/restaurants.xml")[03/01/2001]/restaurant R`
	ra, err := src.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dst.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Rows[0][0] != rb.Rows[0][0] {
		t.Fatalf("query differs after reload: %v vs %v", ra.Rows[0][0], rb.Rows[0][0])
	}
}

func TestDumpLoadReincarnation(t *testing.T) {
	dir := t.TempDir()
	src := Open(Config{Clock: func() model.Time { return feb10 }})
	id1, err := src.Put("doc", xmltree.MustParse(`<a><b>one</b></a>`), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Delete(id1, jan15); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Put("doc", xmltree.MustParse(`<a><b>two</b></a>`), jan31); err != nil {
		t.Fatal(err)
	}
	if err := src.Dump(dir); err != nil {
		t.Fatal(err)
	}
	dst := Open(Config{Clock: func() model.Time { return feb10 }})
	if err := dst.Load(dir); err != nil {
		t.Fatal(err)
	}
	if got := len(dst.Docs()); got != 2 {
		t.Fatalf("reincarnation: %d documents after load, want 2", got)
	}
	// The first incarnation's history is intact.
	vt, err := dst.ReconstructAtName(t, "doc", jan1)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Text() != "one" {
		t.Fatalf("first incarnation = %q", vt.Text())
	}
	cur, ok := dst.LookupDoc("doc")
	if !ok {
		t.Fatal("current incarnation missing")
	}
	tree, _, err := dst.Current(cur)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Text() != "two" {
		t.Fatalf("current incarnation = %q", tree.Text())
	}
}

// ReconstructAtName finds the incarnation of name valid at the instant and
// reconstructs it; a test helper.
func (db *DB) ReconstructAtName(t *testing.T, name string, at model.Time) (*xmltree.Node, error) {
	t.Helper()
	for _, id := range db.Docs() {
		info, err := db.Info(id)
		if err != nil {
			return nil, err
		}
		if info.Name != name {
			continue
		}
		if vt, err := db.store.ReconstructAt(id, at); err == nil {
			return vt.Root, nil
		}
	}
	return nil, os.ErrNotExist
}

func TestLoadErrors(t *testing.T) {
	db := Open(Config{})
	if err := db.Load(t.TempDir()); err == nil {
		t.Fatal("missing manifest must fail")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.xml"), []byte(`<wrong/>`), 0o644)
	if err := db.Load(dir); err == nil {
		t.Fatal("wrong manifest root must fail")
	}
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "manifest.xml"),
		[]byte(`<txmldump><document url="u"><version file="missing.xml" stampms="1"/></document></txmldump>`), 0o644)
	if err := db.Load(dir2); err == nil {
		t.Fatal("missing version file must fail")
	}
}

func TestDumpEmptyDatabase(t *testing.T) {
	dir := t.TempDir()
	db := Open(Config{})
	if err := db.Dump(dir); err != nil {
		t.Fatal(err)
	}
	dst := Open(Config{})
	if err := dst.Load(dir); err != nil {
		t.Fatal(err)
	}
	if len(dst.Docs()) != 0 {
		t.Fatalf("docs after empty round trip = %d", len(dst.Docs()))
	}
}

func TestLoadConflictsWithExistingData(t *testing.T) {
	dir := t.TempDir()
	src := Open(Config{Clock: func() model.Time { return feb10 }})
	if _, err := src.Put("doc", xmltree.MustParse(`<a>x</a>`), jan15); err != nil {
		t.Fatal(err)
	}
	if err := src.Dump(dir); err != nil {
		t.Fatal(err)
	}
	// The destination already holds a *newer* version of the same URL:
	// replaying the older dump version must fail loudly, not corrupt.
	dst := Open(Config{Clock: func() model.Time { return feb10 }})
	if _, err := dst.Put("doc", xmltree.MustParse(`<a>y</a>`), jan31); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(dir); err == nil {
		t.Fatal("loading older versions over newer data must fail")
	}
}
