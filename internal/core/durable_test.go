package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"txmldb/internal/model"
)

// appendGarbage simulates a torn final write: random non-frame bytes after
// the last commit marker of the active log segment.
func appendGarbage(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x17}); err != nil {
		t.Fatal(err)
	}
}

// durableFigure1 plays the Figure 1 history into a WAL-backed database in
// dir and closes it again.
func durableFigure1(t *testing.T, dir string) {
	t.Helper()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	id, err := db.Put(guideURL, guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "15"}, [2]string{"Akropolis", "13"}), jan15); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "18"}), jan31); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestOpenDurableRecoversQueries: after a reopen, the temporal operators
// and the query language see the full recovered history — the in-memory
// indexes (FTI, time index, document times) are rebuilt from storage.
func TestOpenDurableRecoversQueries(t *testing.T) {
	dir := t.TempDir()
	durableFigure1(t, dir)

	db, err := OpenDurable(Config{Clock: func() model.Time { return feb10 }}, dir)
	if err != nil {
		t.Fatalf("OpenDurable (reopen): %v", err)
	}
	defer db.Close()

	id, ok := db.LookupDoc(guideURL)
	if !ok {
		t.Fatalf("document lost across reopen")
	}
	vs, err := db.Versions(id)
	if err != nil || len(vs) != 3 {
		t.Fatalf("Versions = %v, %v; want 3 versions", vs, err)
	}

	// Q1 against the recovered snapshot index: restaurants as of Jan 26.
	res, err := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("Q1 over recovered index: %d rows, want 2 (Napoli and Akropolis)", len(res.Rows))
	}

	// The pattern scan over all of time sees every version.
	teids, err := db.TPatternScanAll(restaurantPattern())
	if err != nil {
		t.Fatalf("TPatternScanAll: %v", err)
	}
	if len(teids) == 0 {
		t.Fatalf("recovered FTI is empty")
	}

	// CreTime/DelTime run off the rebuilt time index: Akropolis was created
	// on Jan 15 and removed on Jan 31.
	var akropolis model.EID
	for _, teid := range teids {
		n, err := db.Reconstruct(teid)
		if err != nil {
			t.Fatalf("Reconstruct(%v): %v", teid, err)
		}
		if name := n.ChildElements("name"); len(name) == 1 && name[0].Text() == "Akropolis" {
			akropolis = teid.E
		}
	}
	if akropolis == (model.EID{}) {
		t.Fatalf("Akropolis not found in recovered history")
	}
	if ct, err := db.CreTime(akropolis); err != nil || ct != jan15 {
		t.Fatalf("CreTime(Akropolis) = %v, %v; want jan15", ct, err)
	}
	if dt, err := db.DelTime(akropolis); err != nil || dt != jan31 {
		t.Fatalf("DelTime(Akropolis) = %v, %v; want jan31", dt, err)
	}

	// Recovery must leave storage verifiably intact.
	if rep := db.Fsck(); !rep.Clean() {
		t.Fatalf("fsck after recovery:\n%s", rep)
	}
	st, ok := db.WALStats()
	if !ok {
		t.Fatalf("WALStats: not running on a WAL?")
	}
	if st.RecoveredBytes == 0 || st.TruncatedOnOpen != 0 {
		t.Fatalf("reopen stats = %+v, want clean full recovery", st)
	}
}

// TestOpenDurableRecoversDeletedDocs: deletion state and DocHistory survive
// a reopen, and deleted documents stay out of current-state queries.
func TestOpenDurableRecoversDeletedDocs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Put(guideURL, guide([2]string{"Napoli", "15"}), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(id, jan31); err != nil {
		t.Fatal(err)
	}
	db.Close()

	r, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	info, err := r.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Live() || info.Deleted != jan31 {
		t.Fatalf("recovered info = %+v, want deleted at jan31", info)
	}
	hist, err := r.DocHistory(id, model.Always)
	if err != nil || len(hist) != 1 {
		t.Fatalf("DocHistory = %v, %v; want the single pre-deletion version", hist, err)
	}
	// Current-state pattern scan must not resurrect the deleted doc.
	matches, err := r.ScanCurrent(restaurantPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("deleted document visible in current scan: %v", matches)
	}
}

// TestWALStatsOnlyOnDurable: a volatile database reports no WAL.
func TestWALStatsOnlyOnDurable(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	if _, ok := db.WALStats(); ok {
		t.Fatalf("in-memory database claims WAL stats")
	}
	if rep := db.Fsck(); !rep.Clean() {
		t.Fatalf("fsck of healthy in-memory db:\n%s", rep)
	}
}

// TestOpenDurableSurvivesTornTail: garbage appended past the last commit
// (a torn final write) is discarded on open; committed queries still work.
func TestOpenDurableSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	durableFigure1(t, dir)
	appendGarbage(t, dir)

	db, err := OpenDurable(Config{Clock: func() model.Time { return feb10 }}, dir)
	if err != nil {
		t.Fatalf("OpenDurable over torn tail: %v", err)
	}
	defer db.Close()
	st, ok := db.WALStats()
	if !ok || st.TruncatedOnOpen == 0 {
		t.Fatalf("stats = %+v, want truncated garbage counted", st)
	}
	id, ok := db.LookupDoc(guideURL)
	if !ok {
		t.Fatalf("document lost")
	}
	for v := model.VersionNo(1); v <= 3; v++ {
		if _, err := db.ReconstructVersion(id, v); err != nil {
			t.Fatalf("v%d after torn-tail recovery: %v", v, err)
		}
	}
	if rep := db.Fsck(); !rep.Clean() {
		t.Fatalf("fsck after torn-tail recovery:\n%s", rep)
	}
}
