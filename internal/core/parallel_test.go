package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"txmldb/internal/model"
	"txmldb/internal/pattern"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// guideTree builds a deterministic guide document: doc seed d, version v.
func guideTree(d, v int) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for r := 0; r < 3; r++ {
		g.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", fmt.Sprintf("place-%d-%d", d, r)),
			xmltree.ElemText("price", fmt.Sprint(10+v+r))))
	}
	return g
}

// parallelCorpusDB loads the same small multi-doc, multi-version corpus
// into a fresh DB with the given worker count.
func parallelCorpusDB(t *testing.T, workers int) (*DB, []model.DocID) {
	t.Helper()
	db := Open(Config{
		Workers: workers,
		Store:   store.Config{SnapshotEvery: 4},
		Clock:   func() model.Time { return 1_000_000 },
	})
	const docs, versions = 6, 9
	ids := make([]model.DocID, docs)
	for d := 0; d < docs; d++ {
		id, err := db.Put(fmt.Sprintf("http://doc%d.example.com/x.xml", d), guideTree(d, 1), model.Time(1000+d))
		if err != nil {
			t.Fatal(err)
		}
		ids[d] = id
		for v := 2; v <= versions; v++ {
			if _, _, err := db.Update(id, guideTree(d, v), model.Time(1000+d+v*100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db, ids
}

func guidePattern() *pattern.PNode {
	r := &pattern.PNode{Name: "restaurant", Rel: pattern.Child, Project: true}
	return &pattern.PNode{Name: "guide", Rel: pattern.Child, Children: []*pattern.PNode{r}}
}

// renderHistory flattens a history result for byte-comparison.
func renderHistory(vts []store.VersionTree) string {
	var b strings.Builder
	for _, vt := range vts {
		fmt.Fprintf(&b, "v%d [%s,%s) %s\n", vt.Info.Ver, vt.Info.Stamp, vt.Info.End, vt.Root.String())
	}
	return b.String()
}

// TestParallelOperatorsMatchSequential checks every pooled operator
// produces byte-identical output at 1, 2, 4 and 8 workers: the
// Workers=1 sequential path is the reference the parallel fan-outs must
// reproduce exactly.
func TestParallelOperatorsMatchSequential(t *testing.T) {
	type snapshot struct {
		scan, history, elemHist, diff, query string
	}
	var want snapshot
	for _, w := range []int{1, 2, 4, 8} {
		db, ids := parallelCorpusDB(t, w)
		var got snapshot

		teids, err := db.TPatternScanAll(guidePattern())
		if err != nil {
			t.Fatalf("workers=%d: scan: %v", w, err)
		}
		trees, err := db.ReconstructBatch(context.Background(), teids)
		if err != nil {
			t.Fatalf("workers=%d: reconstruct batch: %v", w, err)
		}
		var sb strings.Builder
		for i, n := range trees {
			fmt.Fprintf(&sb, "%s=%s\n", teids[i], n.String())
		}
		got.scan = sb.String()

		for _, id := range ids {
			h, err := db.DocHistory(id, model.Always)
			if err != nil {
				t.Fatalf("workers=%d: history doc %d: %v", w, id, err)
			}
			got.history += renderHistory(h)
		}

		cur, _, err := db.Current(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		eid := model.EID{Doc: ids[0], X: cur.ChildElements("restaurant")[0].XID}
		eh, err := db.ElementHistory(eid, model.Always)
		if err != nil {
			t.Fatalf("workers=%d: element history: %v", w, err)
		}
		got.elemHist = renderHistory(eh)

		versions, err := db.Versions(ids[1])
		if err != nil {
			t.Fatal(err)
		}
		a := model.TEID{E: model.EID{Doc: ids[1], X: 1}, T: versions[0].Stamp}
		bTEID := model.TEID{E: model.EID{Doc: ids[1], X: 1}, T: versions[len(versions)-1].Stamp}
		dn, err := db.Diff(a, bTEID)
		if err != nil {
			t.Fatalf("workers=%d: diff: %v", w, err)
		}
		got.diff = dn.String()

		res, err := db.Query(`SELECT TIME(R), R/price FROM doc("http://doc2.example.com/x.xml")[EVERY]/restaurant R`)
		if err != nil {
			t.Fatalf("workers=%d: query: %v", w, err)
		}
		got.query = fmt.Sprintf("%v/%+v", res.Rows, res.Metrics)

		if w == 1 {
			want = got
			continue
		}
		if got.scan != want.scan {
			t.Errorf("workers=%d: scan+batch output diverges from sequential", w)
		}
		if got.history != want.history {
			t.Errorf("workers=%d: DocHistory output diverges from sequential", w)
		}
		if got.elemHist != want.elemHist {
			t.Errorf("workers=%d: ElementHistory output diverges from sequential", w)
		}
		if got.diff != want.diff {
			t.Errorf("workers=%d: Diff output diverges from sequential", w)
		}
		if got.query != want.query {
			t.Errorf("workers=%d: [EVERY] query output (rows+metrics) diverges from sequential:\n got %s\nwant %s", w, got.query, want.query)
		}
		st := db.PoolStats()
		if st.Submitted == 0 {
			t.Errorf("workers=%d: pool never used", w)
		}
		if st.Submitted != st.Completed+st.Cancelled+st.Panicked {
			t.Errorf("workers=%d: pool imbalance: %+v", w, st)
		}
	}
}

// TestParallelScanStress interleaves parallel TPatternScanAll readers and
// chunked DocHistory walks with Update/Delete writers under -race. Every
// returned TEID must stay reconstructible (versions are append-only), and
// every history result must be a consistent snapshot: contiguous version
// numbers, adjacent validity intervals — no torn version lists. After the
// run the pool's accounting must balance.
func TestParallelScanStress(t *testing.T) {
	db, ids := parallelCorpusDB(t, 4)
	pat := guidePattern()

	stop := make(chan struct{})
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	var wg sync.WaitGroup

	// Writer: keeps appending versions to half the corpus.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stamp := model.Time(500_000)
		for v := 100; ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			id := ids[v%3]
			stamp += 10
			if _, _, err := db.Update(id, guideTree(int(id), v), stamp); err != nil {
				report(fmt.Errorf("update doc %d: %w", id, err))
				return
			}
		}
	}()

	// Writer: delete / re-put cycle on a sacrificial document.
	wg.Add(1)
	go func() {
		defer wg.Done()
		stamp := model.Time(600_000)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stamp += 10
			if err := db.Delete(ids[5], stamp); err != nil {
				report(fmt.Errorf("delete: %w", err))
				return
			}
			stamp += 10
			id, err := db.Put("http://doc5.example.com/x.xml", guideTree(5, i), stamp)
			if err != nil {
				report(fmt.Errorf("re-put: %w", err))
				return
			}
			ids[5] = id
		}
	}()

	// Readers: parallel scans whose results must stay reconstructible.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				teids, err := db.TPatternScanAll(pat)
				if err != nil {
					report(fmt.Errorf("scan: %w", err))
					return
				}
				if _, err := db.ReconstructBatch(context.Background(), teids); err != nil {
					report(fmt.Errorf("reconstruct scanned teids: %w", err))
					return
				}
			}
		}()
	}

	// Readers: chunked history walks checked for torn version lists.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[r] // only stable (never-deleted) documents
				h, err := db.DocHistory(id, model.Always)
				if err != nil {
					report(fmt.Errorf("history doc %d: %w", id, err))
					return
				}
				for i := range h {
					if h[i].Root == nil {
						report(fmt.Errorf("doc %d history entry %d has nil tree", id, i))
						return
					}
					if i == 0 {
						continue
					}
					if h[i-1].Info.Ver != h[i].Info.Ver+1 {
						report(fmt.Errorf("doc %d torn history: v%d followed by v%d", id, h[i-1].Info.Ver, h[i].Info.Ver))
						return
					}
					if h[i].Info.End != h[i-1].Info.Stamp {
						report(fmt.Errorf("doc %d torn intervals: [%s,%s) then [%s,%s)", id,
							h[i].Info.Stamp, h[i].Info.End, h[i-1].Info.Stamp, h[i-1].Info.End))
						return
					}
				}
			}
		}(r)
	}

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := db.PoolStats()
	if st.Submitted != st.Completed+st.Cancelled+st.Panicked {
		t.Errorf("pool imbalance after stress: submitted=%d completed=%d cancelled=%d panicked=%d",
			st.Submitted, st.Completed, st.Cancelled, st.Panicked)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("idle pool reports active=%d queued=%d", st.Active, st.Queued)
	}
}
