package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/store"
)

// dirBytes sums the sizes of all regular files under dir.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// growDoc appends n versions to a document named name, stamped from t0.
func growDoc(t *testing.T, db *DB, name string, n int, t0 model.Time) model.DocID {
	t.Helper()
	id, err := db.Put(name, guide([2]string{"Napoli", "v1"}), t0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 2; v <= n; v++ {
		tree := guide([2]string{"Napoli", fmt.Sprintf("v%d", v)}, [2]string{fmt.Sprintf("extra%d", v), "1"})
		if _, _, err := db.Update(id, tree, t0+model.Time(v-1)); err != nil {
			t.Fatal(err)
		}
	}
	return id
}

func TestCheckpointBoundedReplayOpen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := growDoc(t, db, guideURL, 6, jan1)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Three more commits after the checkpoint: only these replay on reopen.
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "after1"}), jan31); err != nil {
		t.Fatal(err)
	}
	other, err := db.Put("other.xml", guide([2]string{"Milano", "22"}), jan31+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(other, feb10); err != nil {
		t.Fatal(err)
	}
	want := db.FTI().LookupH("Napoli")
	db.Close()

	r, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer r.Close()
	rep := r.OpenReport()
	if !rep.UsedCheckpoint || !rep.IndexesRestored {
		t.Fatalf("open report: %+v, want checkpointed open with restored indexes", rep)
	}
	if rep.ReplayedCommits != 3 {
		t.Fatalf("replayed %d commits, want only the 3 after the checkpoint (report: %s)", rep.ReplayedCommits, rep)
	}
	// Indexes: restored blobs + incremental top-up agree with the writer's.
	if got := r.FTI().LookupH("Napoli"); len(got) != len(want) {
		t.Fatalf("LookupH(Napoli) = %d postings after reopen, want %d", len(got), len(want))
	}
	if got := r.FTI().Lookup("Milano"); len(got) != 0 {
		t.Fatalf("deleted doc visible in current lookup: %v", got)
	}
	// Post-horizon version content is queryable.
	res, err := r.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")[NOW]/restaurant R`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("query after checkpointed open: %v rows, err %v", res, err)
	}
	if fsck := r.Fsck(); !fsck.Clean() {
		t.Fatalf("fsck: %s", fsck)
	}
	// All ten versions, pre- and post-horizon, reconstruct.
	for v := model.VersionNo(1); v <= 7; v++ {
		if _, err := r.ReconstructVersion(id, v); err != nil {
			t.Fatalf("version %d after checkpointed open: %v", v, err)
		}
	}
}

func TestCheckpointAutoTrigger(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	cfg.Checkpoint.EveryCommits = 3
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	growDoc(t, db, guideURL, 7, jan1)
	stats, ok := db.CheckpointStats()
	if !ok {
		t.Fatal("durable db reports no checkpoint stats")
	}
	if stats.Runs < 2 {
		t.Fatalf("7 commits with EveryCommits=3: %d checkpoints, want >= 2", stats.Runs)
	}
	if stats.Errors != 0 {
		t.Fatalf("checkpoint errors: %+v", stats)
	}
	if db.WALSegments() == 0 {
		t.Fatal("no WAL segments reported")
	}
}

func TestVacuumReclaimsDiskSpace(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	cfg.Checkpoint.SegmentBytes = 4096
	cfg.Checkpoint.Keep = 1
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := growDoc(t, db, guideURL, 40, jan1)
	// Checkpoint + compact once so the baseline is the steady state, not an
	// uncompacted log.
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := dirBytes(t, dir)
	rep, cs, err := db.Vacuum(store.Retention{Policy: store.KeepLast, KeepLast: 4, Granule: 2})
	if err != nil {
		t.Fatalf("Vacuum: %v", err)
	}
	if rep.VersionsPruned != 36 {
		t.Fatalf("pruned %d versions, want 36", rep.VersionsPruned)
	}
	if cs.File == "" {
		t.Fatalf("vacuum did not checkpoint: %+v", cs)
	}
	after := dirBytes(t, dir)
	if after >= before {
		t.Fatalf("vacuum did not shrink the directory: %d -> %d bytes", before, after)
	}
	db.Close()

	r, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatalf("reopen after vacuum: %v", err)
	}
	defer r.Close()
	if _, err := r.ReconstructVersion(id, 2); !errors.Is(err, store.ErrPruned) {
		t.Fatalf("pruned version after reopen: %v", err)
	}
	for v := model.VersionNo(37); v <= 40; v++ {
		if _, err := r.ReconstructVersion(id, v); err != nil {
			t.Fatalf("survivor %d after reopen: %v", v, err)
		}
	}
	if fsck := r.Fsck(); !fsck.Clean() {
		t.Fatalf("fsck after vacuum+reopen: %s", fsck)
	}
}

func TestCheckpointRequiresDurable(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	if _, err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on in-memory db: %v", err)
	}
	if _, ok := db.CheckpointStats(); ok {
		t.Fatal("in-memory db claims checkpoint stats")
	}
	// Vacuum still works in memory — it just cannot compact.
	if _, _, err := db.Vacuum(store.Retention{Policy: store.KeepAll}); err != nil {
		t.Fatalf("in-memory vacuum: %v", err)
	}
}

func TestOpenReportFallbackOnCorruptImage(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Clock: func() model.Time { return feb10 }}
	db, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	growDoc(t, db, guideURL, 4, jan1)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Destroy every image: the open must fall back to full replay.
	images, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil || len(images) == 0 {
		t.Fatalf("no checkpoint images: %v", err)
	}
	for _, img := range images {
		if err := os.Truncate(img, 10); err != nil {
			t.Fatal(err)
		}
	}
	var logged string
	cfg.OpenLogf = func(format string, args ...any) { logged = fmt.Sprintf(format, args...) }
	r, err := OpenDurable(cfg, dir)
	if err != nil {
		t.Fatalf("open over corrupt images: %v", err)
	}
	defer r.Close()
	rep := r.OpenReport()
	if rep.UsedCheckpoint || rep.Fallback == "" {
		t.Fatalf("open report: %+v, want full-replay fallback with a reason", rep)
	}
	if logged == "" {
		t.Fatal("OpenLogf not invoked")
	}
	id, _ := r.LookupDoc(guideURL)
	for v := model.VersionNo(1); v <= 4; v++ {
		if _, err := r.ReconstructVersion(id, v); err != nil {
			t.Fatalf("version %d after fallback open: %v", v, err)
		}
	}
}
