package core

import (
	"strings"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/plan"
	"txmldb/internal/xmltree"
)

// napoliEID resolves the Napoli restaurant element.
func napoliEID(t *testing.T, db *DB, id model.DocID) model.EID {
	t.Helper()
	cur, _, err := db.Current(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cur.ChildElements("restaurant") {
		if r.SelectPath("name")[0].Text() == "Napoli" {
			return model.EID{Doc: id, X: r.XID}
		}
	}
	t.Fatal("Napoli not found")
	return model.EID{}
}

func akropolisEID(t *testing.T, db *DB, id model.DocID) model.EID {
	t.Helper()
	vt, err := db.ReconstructVersion(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range vt.Root.ChildElements("restaurant") {
		if r.SelectPath("name")[0].Text() == "Akropolis" {
			return model.EID{Doc: id, X: r.XID}
		}
	}
	t.Fatal("Akropolis not found")
	return model.EID{}
}

func TestOperatorDocHistory(t *testing.T) {
	db, id := openFigure1(t, Config{})
	hist, err := db.DocHistory(id, model.Always)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 || hist[0].Info.Ver != 3 {
		t.Fatalf("history = %d versions, first %d", len(hist), hist[0].Info.Ver)
	}
}

func TestOperatorElementHistory(t *testing.T) {
	db, id := openFigure1(t, Config{})
	hist, err := db.ElementHistory(napoliEID(t, db, id), model.Always)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("element history = %d", len(hist))
	}
	if hist[0].Root.SelectPath("price")[0].Text() != "18" {
		t.Fatal("newest element version should have price 18")
	}
}

func TestOperatorCreDelTime(t *testing.T) {
	for _, disabled := range []bool{false, true} {
		db, id := openFigure1(t, Config{DisableTimeIndex: disabled})
		napoli := napoliEID(t, db, id)
		akro := akropolisEID(t, db, id)
		if got, err := db.CreTime(napoli); err != nil || got != jan1 {
			t.Errorf("disabled=%v: CreTime(Napoli) = %s, %v", disabled, got, err)
		}
		if got, err := db.DelTime(napoli); err != nil || got != model.Forever {
			t.Errorf("disabled=%v: DelTime(Napoli) = %s, %v", disabled, got, err)
		}
		if got, err := db.CreTimeAt(model.TEID{E: akro, T: jan26}); err != nil || got != jan15 {
			t.Errorf("disabled=%v: CreTimeAt(Akropolis) = %s, %v", disabled, got, err)
		}
		if got, err := db.DelTimeAt(model.TEID{E: akro, T: jan26}); err != nil || got != jan31 {
			t.Errorf("disabled=%v: DelTimeAt(Akropolis) = %s, %v", disabled, got, err)
		}
		if !disabled {
			if got, err := db.DelTime(akro); err != nil || got != jan31 {
				t.Errorf("DelTime(Akropolis) via index = %s, %v", got, err)
			}
		}
	}
}

func TestOperatorTSNavigation(t *testing.T) {
	db, id := openFigure1(t, Config{})
	napoli := napoliEID(t, db, id)
	teid := model.TEID{E: napoli, T: jan26}
	prev, err := db.PreviousTS(teid)
	if err != nil || prev.Stamp != jan1 {
		t.Fatalf("PreviousTS = %+v, %v", prev, err)
	}
	next, err := db.NextTS(teid)
	if err != nil || next.Stamp != jan31 {
		t.Fatalf("NextTS = %+v, %v", next, err)
	}
	cur, err := db.CurrentTS(napoli)
	if err != nil || cur.Ver != 3 {
		t.Fatalf("CurrentTS = %+v, %v", cur, err)
	}
}

func TestOperatorReconstructTEID(t *testing.T) {
	db, id := openFigure1(t, Config{})
	napoli := napoliEID(t, db, id)
	n, err := db.Reconstruct(model.TEID{E: napoli, T: jan26})
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "restaurant" || n.SelectPath("price")[0].Text() != "15" {
		t.Fatalf("reconstructed element = %s", n)
	}
	// At a time where the element did not exist.
	akro := akropolisEID(t, db, id)
	if _, err := db.Reconstruct(model.TEID{E: akro, T: jan1}); err == nil {
		t.Fatal("reconstructing Akropolis before creation must fail")
	}
}

func TestOperatorDiff(t *testing.T) {
	db, id := openFigure1(t, Config{})
	napoli := napoliEID(t, db, id)
	deltaDoc, err := db.Diff(
		model.TEID{E: napoli, T: jan26},
		model.TEID{E: napoli, T: feb10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if deltaDoc.Name != "txdelta" {
		t.Fatalf("diff root = %q", deltaDoc.Name)
	}
	s := deltaDoc.String()
	if !strings.Contains(s, "15") || !strings.Contains(s, "18") {
		t.Fatalf("diff should record the price change: %s", s)
	}
}

func TestLanguagePreviousNextCurrent(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT PREVIOUS(R), CURRENT(R)
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli" AND R/price = "18"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	prev := res.Rows[0][0].([]plan.Elem)
	if len(prev) != 1 || prev[0].Node.SelectPath("price")[0].Text() != "15" {
		t.Fatalf("PREVIOUS = %v", prev)
	}
	cur := res.Rows[0][1].([]plan.Elem)
	if len(cur) != 1 || cur[0].Node.SelectPath("price")[0].Text() != "18" {
		t.Fatalf("CURRENT = %v", cur)
	}

	// NEXT of the first Napoli version is the 18-price version.
	res2, err := db.Query(`SELECT NEXT(R)
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli" AND R/price = "15"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("rows = %d", len(res2.Rows))
	}
	next := res2.Rows[0][0].([]plan.Elem)
	if len(next) != 1 || next[0].Node.SelectPath("price")[0].Text() != "18" {
		t.Fatalf("NEXT = %v", next)
	}
}

func TestLanguageDistinctCurrentName(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	// The paper's SELECT DISTINCT CURRENT(R)/name example: current names
	// of elements generated from a temporal scan.
	res, err := db.Query(`SELECT DISTINCT CURRENT(R)/name
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("distinct rows = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestLanguageCreateTimePredicate(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT R/name
		FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R
		WHERE CREATE TIME(R) >= 11/01/2001`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	name := res.Rows[0][0].([]plan.Elem)[0].Node.Text()
	if name != "Akropolis" {
		t.Fatalf("created-after filter returned %q", name)
	}
}

func TestLanguageDeleteTimePredicate(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT R/name
		FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R
		WHERE DELETE TIME(R) < NOW`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Akropolis" {
		t.Fatalf("deleted-before-now rows = %v", res.Rows)
	}
}

func TestLanguageNowArithmetic(t *testing.T) {
	db, _ := openFigure1(t, Config{}) // clock pinned to feb10
	// NOW - 14 DAYS = Jan 27: version 2 (Napoli + Akropolis)... Jan 27 is
	// after jan15 and before jan31 → 2 restaurants.
	res, err := db.Query(`SELECT COUNT(R)
		FROM doc("http://guide.com/restaurants.xml")[NOW - 14 DAYS]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 2 {
		t.Fatalf("count at NOW-14d = %d, want 2", got)
	}
}

func TestLanguagePriceIncreaseJoin(t *testing.T) {
	// The Section 7.4 example: restaurants that increased their prices
	// since 10/01/2001, joining a snapshot with the current state.
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT R1/name
		FROM doc("http://guide.com/restaurants.xml")[10/01/2001]/restaurant R1,
		     doc("http://guide.com/restaurants.xml")/restaurant R2
		WHERE R1/name = R2/name AND R1/price < R2/price`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	if got := res.Rows[0][0].([]plan.Elem)[0].Node.Text(); got != "Napoli" {
		t.Fatalf("price increase result = %q", got)
	}
}

func TestLanguageIdentityJoin(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	// R1 == R2 matches the same persistent element across snapshots.
	res, err := db.Query(`SELECT R1/name
		FROM doc("http://guide.com/restaurants.xml")[10/01/2001]/restaurant R1,
		     doc("http://guide.com/restaurants.xml")/restaurant R2
		WHERE R1 == R2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].([]plan.Elem)[0].Node.Text() != "Napoli" {
		t.Fatalf("identity join rows = %v", res.Rows)
	}
}

func TestLanguageSimilarityJoin(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	// Similarity survives the price change (reintroduction scenario).
	res, err := db.Query(`SELECT R1/name
		FROM doc("http://guide.com/restaurants.xml")[10/01/2001]/restaurant R1,
		     doc("http://guide.com/restaurants.xml")/restaurant R2
		WHERE SIMILAR(R1, R2, 0.6)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("similarity join rows = %v", res.Rows)
	}
}

func TestLanguageDiff(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT DIFF(R1, R2)
		FROM doc("http://guide.com/restaurants.xml")[10/01/2001]/restaurant R1,
		     doc("http://guide.com/restaurants.xml")/restaurant R2
		WHERE R1 == R2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("diff rows = %d", len(res.Rows))
	}
	d := res.Rows[0][0].([]plan.Elem)
	if len(d) != 1 || d[0].Node.Name != "txdelta" {
		t.Fatalf("DIFF value = %v", d)
	}
}

func TestLanguageOrderByAndLimit(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT TIME(R), R/price
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli"
		ORDER BY TIME(R) DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].(model.Time) != jan31 {
		t.Fatalf("latest version = %s", res.Rows[0][0])
	}
}

func TestLanguageUnknownDocumentIsEmpty(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT R FROM doc("http://nope.example/x.xml")/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("unknown doc rows = %d", len(res.Rows))
	}
}

func TestLanguageAfterDocumentDelete(t *testing.T) {
	db, id := openFigure1(t, Config{})
	if err := db.Delete(id, model.Date(2001, 2, 5)); err != nil {
		t.Fatal(err)
	}
	// Current query: empty.
	res, err := db.Query(`SELECT R FROM doc("http://guide.com/restaurants.xml")/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("current rows after delete = %d", len(res.Rows))
	}
	// Snapshot before the deletion still answers.
	res2, err := db.Query(`SELECT COUNT(R) FROM doc("http://guide.com/restaurants.xml")[01/02/2001]/restaurant R`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Rows[0][0].(int64); got != 1 {
		t.Fatalf("snapshot count = %d", got)
	}
}

func TestAllIndexKindsAnswerQ1(t *testing.T) {
	for _, kind := range []IndexKind{IndexVersions, IndexDeltas, IndexBoth} {
		db, _ := openFigure1(t, Config{Index: kind})
		res, err := db.Query(`SELECT COUNT(R) FROM doc("http://guide.com/restaurants.xml")[26/01/2001]/restaurant R`)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := res.Rows[0][0].(int64); got != 2 {
			t.Errorf("%v: count = %d, want 2", kind, got)
		}
	}
}

func TestIndexKindString(t *testing.T) {
	if IndexVersions.String() != "versions" || IndexDeltas.String() != "deltas" ||
		IndexBoth.String() != "both" || IndexKind(9).String() != "IndexKind(9)" {
		t.Error("IndexKind strings broken")
	}
}

func TestPutXMLAndUpdateXML(t *testing.T) {
	db := Open(Config{Clock: func() model.Time { return feb10 }})
	id, err := db.PutXML("doc", strings.NewReader(`<g><r><n>A</n></r></g>`), jan1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(`<g><r><n>B</n></r></g>`), jan15); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PutXML("bad", strings.NewReader(`<broken`), jan1); err == nil {
		t.Fatal("PutXML must reject malformed input")
	}
	if _, _, err := db.UpdateXML(id, strings.NewReader(`<broken`), jan31); err == nil {
		t.Fatal("UpdateXML must reject malformed input")
	}
	vt, err := db.ReconstructVersion(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Root.Text() != "A" {
		t.Fatalf("v1 text = %q", vt.Root.Text())
	}
}

func TestTPatternScanAllTEIDs(t *testing.T) {
	db, id := openFigure1(t, Config{})
	teids, err := db.TPatternScanAll(restaurantPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(teids) != 2 {
		t.Fatalf("TPatternScanAll TEIDs = %d, want 2 (Napoli + Akropolis)", len(teids))
	}
	for _, teid := range teids {
		if teid.E.Doc != id {
			t.Fatalf("TEID doc = %d", teid.E.Doc)
		}
	}
}

func TestPatternScanCurrentTEIDs(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	teids, err := db.PatternScan(restaurantPattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(teids) != 1 {
		t.Fatalf("current TEIDs = %d", len(teids))
	}
	n, err := db.Reconstruct(teids[0])
	if err != nil {
		t.Fatal(err)
	}
	if n.SelectPath("name")[0].Text() != "Napoli" {
		t.Fatal("current restaurant should be Napoli")
	}
}

func TestResultDocRendering(t *testing.T) {
	db, _ := openFigure1(t, Config{})
	res, err := db.Query(`SELECT TIME(R) AS when, R/price
		FROM doc("http://guide.com/restaurants.xml")[EVERY]/restaurant R
		WHERE R/name = "Napoli"`)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Doc()
	if len(doc.ChildElements("result")) != 2 {
		t.Fatalf("result doc = %s", doc)
	}
	s := doc.String()
	if !strings.Contains(s, `col="when"`) {
		t.Errorf("alias column label missing: %s", s)
	}
	if !strings.Contains(s, "<price>") {
		t.Errorf("element column missing: %s", s)
	}
}

func TestDocumentTimeIndex(t *testing.T) {
	db := Open(Config{
		Clock:        func() model.Time { return feb10 },
		DocTimePaths: []string{"item/published"},
	})
	feed := xmltree.MustParse(`<feed>
		<item><published>2001-01-05</published><headline>first</headline></item>
		<item><published>2001-01-20</published><headline>second</headline></item></feed>`)
	id, err := db.Put("feed", feed, jan1)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := db.DocTimeRange(model.Interval{Start: jan1, End: jan15})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	// The entry points at the item element; fetch it from the current tree.
	cur, _, _ := db.Current(id)
	item := cur.FindXID(entries[0].EID.X)
	if item == nil || item.SelectPath("headline")[0].Text() != "first" {
		t.Fatalf("wrong entity: %v", item)
	}
	// Document time is independent of transaction time: the version was
	// stored on jan1 but the second item carries jan20.
	late, _ := db.DocTimeRange(model.Interval{Start: jan15, End: feb10})
	if len(late) != 1 || late[0].At != model.Date(2001, 1, 20) {
		t.Fatalf("late entries = %+v", late)
	}
	// Unconfigured databases report a clear error.
	plain := Open(Config{})
	if _, err := plain.DocTimeRange(model.Always); err == nil {
		t.Fatal("unconfigured doc-time index must error")
	}
}
