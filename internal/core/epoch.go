package core

import (
	"context"

	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/pattern"
	"txmldb/internal/store"
)

// Epoch-pinned queries.
//
// QueryContext pins the store's commit horizon once, at query start, and
// every selection the query makes is clamped to that pin (see
// internal/store/epoch.go). Concurrent writers keep publishing — readers
// never block them and are never blocked by them — yet each query observes
// one consistent snapshot: no version published after its pin, and the
// version that was current at the pin still reading as current.
//
// The full-text and time indexes are maintained live, so a pinned scan may
// surface postings from versions published after the pin; clampMatches
// post-filters them out by each document's pinned horizon. The TS-navigation
// operators (PreviousTS, NextTS, CurrentTS, Versions) remain live-horizon:
// they are index-only lookups whose results carry no content, and clamping
// them buys no isolation a caller of those raw APIs expects.

// Epoch returns the store's current commit horizon. Pass it through
// store.WithEpoch to pin several queries to one snapshot.
func (db *DB) Epoch() uint64 { return db.store.Epoch() }

// pinned returns ctx with an epoch pin, adding the current horizon when the
// caller has not pinned one already.
func (db *DB) pinned(ctx context.Context) context.Context {
	if _, ok := store.EpochOf(ctx); !ok {
		ctx = store.WithEpoch(ctx, db.store.Epoch())
	}
	return ctx
}

// clampMatches post-filters pattern-scan results under the epoch pin
// carried by ctx (a no-op without one). The scan ran against the live
// full-text index, so matches may involve versions published after the pin:
// a match whose span starts past the document's pinned horizon is dropped
// entirely, and a span closed past the horizon is reopened to Forever —
// at the pin, whatever closed it had not happened yet.
func (db *DB) clampMatches(ctx context.Context, ms []pattern.Match) []pattern.Match {
	e, ok := store.EpochOf(ctx)
	if !ok || len(ms) == 0 {
		return ms
	}
	type horizon struct {
		max, del model.Time
		ok       bool
	}
	hs := make(map[model.DocID]horizon)
	out := ms[:0]
	for _, m := range ms {
		h, cached := hs[m.Doc]
		if !cached {
			h.max, h.del, h.ok = db.store.PinnedHorizon(m.Doc, e)
			hs[m.Doc] = h
		}
		if !h.ok || m.Span.Start > h.max {
			// Document or version published after the pin.
			continue
		}
		if m.Span.End > h.max && h.del == model.Forever {
			// Closed by a post-pin version (the deletion, if any, is also
			// post-pin): at the pin this interval was still open.
			m.Span.End = model.Forever
		}
		out = append(out, m)
	}
	return out
}

// CommitBatchStats returns the WAL group-commit counters of the underlying
// page store; ok is false when commit batching is not configured.
func (db *DB) CommitBatchStats() (pagestore.GroupStats, bool) {
	return db.store.Pages().GroupStats()
}
