// Package core composes the temporal XML database: the version store
// (complete current version + completed delta chain, Section 7.1), the
// temporal full-text index (Section 7.2), the auxiliary create/delete-time
// index (Section 7.3.6) and the pattern matcher — and exposes the eleven
// temporal query operators of Section 6.1 plus the query language executor.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"txmldb/internal/checkpoint"
	"txmldb/internal/diff"
	"txmldb/internal/doctime"
	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/parallel"
	"txmldb/internal/pattern"
	"txmldb/internal/plan"
	"txmldb/internal/resilience"
	"txmldb/internal/store"
	"txmldb/internal/tidx"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

// IndexKind selects the FTI maintenance alternative of Section 7.2.
type IndexKind uint8

const (
	// IndexVersions indexes version contents — the paper's choice.
	IndexVersions IndexKind = iota
	// IndexDeltas indexes the delta documents.
	IndexDeltas
	// IndexBoth maintains both indexes.
	IndexBoth
)

func (k IndexKind) String() string {
	switch k {
	case IndexVersions:
		return "versions"
	case IndexDeltas:
		return "deltas"
	case IndexBoth:
		return "both"
	default:
		return fmt.Sprintf("IndexKind(%d)", uint8(k))
	}
}

// Config parameterizes a DB.
type Config struct {
	// Store configures the version store and its simulated disk.
	Store store.Config
	// Index selects the FTI alternative (default: IndexVersions).
	Index IndexKind
	// DisableTimeIndex turns the CreTime/DelTime index off, so those
	// operators fall back to delta-chain traversal (the paper's first
	// strategy); used by the C4 experiment.
	DisableTimeIndex bool
	// Clock supplies the current transaction time for NOW and PatternScan
	// on the current state; defaults to wall-clock time.
	Clock func() model.Time
	// DocTimePaths enables the document-time index (Section 3.1 of the
	// paper): slash-separated element paths whose text holds a timestamp
	// inside the document, e.g. "item/published".
	DocTimePaths []string
	// Cache configures the shared version-reconstruction cache
	// (internal/vcache): a byte-budgeted LRU of materialized versions with
	// singleflight collapse and nearest-cached-ancestor delta replay,
	// shared by every operator that materializes a version. MaxBytes <= 0
	// leaves the cache disabled (the default, so operator-level
	// benchmarks keep measuring the raw reconstruction path).
	Cache vcache.Config
	// Workers bounds the shared worker pool beneath the multi-document
	// operators (TPatternScanAll, DocHistory/ElementHistory, Diff,
	// ReconstructBatch and the query executor's reconstruction prefetch).
	// 0 defaults to GOMAXPROCS; 1 forces the inline sequential path,
	// whose results every parallel run is guaranteed to reproduce
	// byte-for-byte.
	Workers int
	// Resilience configures the health tier (internal/resilience): a
	// circuit breaker around backend reads plus per-component health state
	// machines driving degraded cache-first serving. Enabled=false (the
	// default) leaves it off, preserving raw fault behaviour.
	Resilience resilience.Config
	// Checkpoint configures the checkpoint & compaction subsystem of
	// durable databases (internal/checkpoint): segment size, automatic
	// triggers (EveryCommits / EveryBytes) and image retention. The zero
	// value disables automatic checkpoints; DB.Checkpoint still works.
	Checkpoint checkpoint.Config
	// OpenLogf, when non-nil, receives the one-line recovery summary of
	// OpenDurable (source, replay and reindex cost); the CLIs pass
	// log.Printf. Nil keeps opens silent.
	OpenLogf func(format string, args ...any)
}

// DB is a temporal XML database.
type DB struct {
	store    *store.Store
	fti      fti.Index
	times    *tidx.Index      // nil when disabled
	docTimes *doctime.Index   // nil unless DocTimePaths configured
	vcache   *vcache.Cache    // nil when disabled
	pool     *parallel.Pool   // shared worker pool of the parallel tier
	res      *resilience.Tier // nil when disabled
	clock    func() model.Time

	// wmu is the writer gate of the checkpoint subsystem: Put/Update/Delete
	// hold it shared for the duration of a mutation, checkpoint capture
	// holds it exclusively for the (brief) in-memory snapshot. Reads never
	// touch it.
	wmu sync.RWMutex

	// Durable-tier checkpoint state; all nil/zero on non-durable databases.
	segwal        *pagestore.SegmentedWAL
	ckpt          *checkpoint.Checkpointer
	ckptCfg       checkpoint.Config
	ckptBusy      atomic.Bool
	ckptMu        sync.Mutex // guards ckptStats and ckptBytesMark
	ckptStats     CheckpointStats
	ckptBytesMark int64 // BytesAppended at the last checkpoint (EveryBytes trigger)
	openRep       OpenReport
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	attachTier(&cfg)
	return assemble(cfg, store.New(cfg.Store))
}

// attachTier builds the resilience tier (when enabled) and injects it into
// the store configuration, so the store's read path and the DB's serving
// policy share one breaker and one set of health machines. A tier already
// present in cfg.Store.Resilience is reused.
func attachTier(cfg *Config) *resilience.Tier {
	if cfg.Store.Resilience == nil {
		cfg.Store.Resilience = resilience.New(cfg.Resilience)
	}
	return cfg.Store.Resilience
}

// assemble builds a DB around an existing version store.
func assemble(cfg Config, st *store.Store) *DB {
	db := &DB{
		store: st,
		res:   st.Resilience(),
		clock: cfg.Clock,
	}
	switch cfg.Index {
	case IndexDeltas:
		db.fti = fti.NewDeltaIndex()
	case IndexBoth:
		db.fti = fti.NewBothIndex()
	default:
		db.fti = fti.NewVersionIndex()
	}
	if !cfg.DisableTimeIndex {
		db.times = tidx.New()
	}
	if len(cfg.DocTimePaths) > 0 {
		db.docTimes = doctime.New(doctime.Config{Paths: cfg.DocTimePaths})
	}
	if cfg.Cache.MaxBytes > 0 {
		db.vcache = vcache.New(st, cfg.Cache)
	}
	db.pool = parallel.New(parallel.Config{Workers: cfg.Workers})
	if db.clock == nil {
		db.clock = func() model.Time { return model.TimeOf(time.Now()) }
	}
	return db
}

// Store exposes the version store (benchmarks and tools use it).
func (db *DB) Store() *store.Store { return db.store }

// FTI exposes the full-text index.
func (db *DB) FTI() fti.Index { return db.fti }

// TimeIndex exposes the CreTime/DelTime index, nil when disabled.
func (db *DB) TimeIndex() *tidx.Index { return db.times }

// DocTimeRange returns the elements whose *document* time — a timestamp
// carried in the document content at one of the configured DocTimePaths —
// lies in [from, to). It fails when the index was not configured.
func (db *DB) DocTimeRange(iv model.Interval) ([]doctime.Entry, error) {
	if db.docTimes == nil {
		return nil, fmt.Errorf("core: document-time index not configured (set Config.DocTimePaths)")
	}
	return db.docTimes.Range(iv), nil
}

// Now implements plan.Engine.
func (db *DB) Now() model.Time { return db.clock() }

// Resilience exposes the health tier, nil when disabled.
func (db *DB) Resilience() *resilience.Tier { return db.res }

// Health returns a snapshot of the resilience tier; ok is false when the
// tier is disabled. The serving layer maps it onto /readyz and /metrics.
func (db *DB) Health() (resilience.Snapshot, bool) {
	if db.res == nil {
		return resilience.Snapshot{}, false
	}
	return db.res.Snapshot(), true
}

// DegradedMode implements plan.DegradedReporter: true while the tier is
// serving cache-first with writes rejected.
func (db *DB) DegradedMode() bool { return db.res.Degraded() }

// RetryAfter suggests how long a caller rejected by the resilience tier
// should wait before retrying — the breaker's remaining open window,
// never under a second. The serving layer turns it into a Retry-After
// header.
func (db *DB) RetryAfter() time.Duration { return db.res.RetryAfter() }

// checkWritable rejects writes while the tier is degraded: a mutation
// would have to touch the sick backend (and, for corruption, could graft
// new versions onto a damaged chain), so the DB is read-only until the
// tier recovers. The error wraps resilience.ErrDegraded.
func (db *DB) checkWritable(op string) error {
	if db.res.Degraded() {
		db.res.NoteDegradedReject()
		return fmt.Errorf("core: %s rejected, %s: %w", op, db.res.State(), resilience.ErrDegraded)
	}
	return nil
}

// --- document lifecycle ---

// Put stores the first version of a document at time t.
func (db *DB) Put(url string, root *xmltree.Node, t model.Time) (model.DocID, error) {
	id, err := db.putGated(url, root, t)
	if err == nil {
		db.maybeCheckpoint()
	}
	return id, err
}

// putGated is Put under the shared writer gate: a checkpoint capture sees
// either none or all of the mutation (store + indexes).
func (db *DB) putGated(url string, root *xmltree.Node, t model.Time) (model.DocID, error) {
	db.wmu.RLock()
	defer db.wmu.RUnlock()
	if err := db.checkWritable("put"); err != nil {
		return 0, err
	}
	id, err := db.store.Put(url, root, t)
	if err != nil {
		return 0, err
	}
	cur, _, err := db.store.Current(id)
	if err != nil {
		return 0, err
	}
	if err := db.fti.AddVersion(id, cur, nil, t); err != nil {
		return 0, fmt.Errorf("core: index maintenance: %w", err)
	}
	if db.times != nil {
		db.times.AddVersion(id, cur, nil, t)
	}
	if db.docTimes != nil {
		db.docTimes.AddVersion(id, cur)
	}
	return id, nil
}

// PutXML parses and stores a document.
func (db *DB) PutXML(url string, r io.Reader, t model.Time) (model.DocID, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	return db.Put(url, root, t)
}

// Update stores a new version of the document at time t and maintains all
// indexes from the completed delta. It returns the new version number and
// the delta script.
func (db *DB) Update(id model.DocID, root *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error) {
	ver, script, err := db.updateGated(id, root, t)
	if err == nil {
		db.maybeCheckpoint()
	}
	return ver, script, err
}

// updateGated is Update under the shared writer gate.
func (db *DB) updateGated(id model.DocID, root *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error) {
	db.wmu.RLock()
	defer db.wmu.RUnlock()
	if err := db.checkWritable("update"); err != nil {
		return 0, nil, err
	}
	ver, script, err := db.store.Update(id, root, t)
	if err != nil {
		return 0, nil, err
	}
	if db.vcache != nil {
		// Drop cached versions of the document before Update returns: the
		// formerly-current version's validity interval just closed, and
		// in-flight reconstructions must not install stale metadata.
		db.vcache.InvalidateDoc(id)
	}
	cur, _, err := db.store.Current(id)
	if err != nil {
		return 0, nil, err
	}
	if err := db.fti.AddVersion(id, cur, script, t); err != nil {
		return 0, nil, fmt.Errorf("core: index maintenance: %w", err)
	}
	if db.times != nil {
		db.times.AddVersion(id, cur, script, t)
	}
	if db.docTimes != nil {
		db.docTimes.AddVersion(id, cur)
	}
	return ver, script, nil
}

// UpdateXML parses and stores a new version.
func (db *DB) UpdateXML(id model.DocID, r io.Reader, t model.Time) (model.VersionNo, *diff.Script, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return 0, nil, err
	}
	return db.Update(id, root, t)
}

// Delete removes the document at time t; its history stays queryable.
func (db *DB) Delete(id model.DocID, t model.Time) error {
	err := db.deleteGated(id, t)
	if err == nil {
		db.maybeCheckpoint()
	}
	return err
}

// deleteGated is Delete under the shared writer gate.
func (db *DB) deleteGated(id model.DocID, t model.Time) error {
	db.wmu.RLock()
	defer db.wmu.RUnlock()
	if err := db.checkWritable("delete"); err != nil {
		return err
	}
	cur, _, err := db.store.Current(id)
	if err != nil {
		return err
	}
	if err := db.store.Delete(id, t); err != nil {
		return err
	}
	if db.vcache != nil {
		db.vcache.InvalidateDoc(id)
	}
	if err := db.fti.DeleteDoc(id, cur, t); err != nil {
		return fmt.Errorf("core: index maintenance: %w", err)
	}
	if db.times != nil {
		db.times.DeleteDoc(id, t)
	}
	return nil
}

// LookupDoc implements plan.Engine.
func (db *DB) LookupDoc(url string) (model.DocID, bool) { return db.store.Lookup(url) }

// Info returns document metadata.
func (db *DB) Info(id model.DocID) (store.DocInfo, error) { return db.store.Info(id) }

// Docs lists all documents ever stored.
func (db *DB) Docs() []model.DocID { return db.store.Docs() }

// Current returns the live current version of a document.
func (db *DB) Current(id model.DocID) (*xmltree.Node, store.VersionInfo, error) {
	return db.store.Current(id)
}

// --- the temporal operators of Section 6.1 ---

// TPatternScan matches the pattern against the snapshot valid at time t
// and returns the TEIDs of the projected elements.
func (db *DB) TPatternScan(p *pattern.PNode, t model.Time) ([]model.TEID, error) {
	ms, err := db.ScanT(p, t)
	if err != nil {
		return nil, err
	}
	return teidsOf(ms, p, func(pattern.Match) model.Time { return t }), nil
}

// TPatternScanAll matches the pattern against all versions of all
// documents; each returned TEID is stamped with the start of the temporal
// overlap of its match.
func (db *DB) TPatternScanAll(p *pattern.PNode) ([]model.TEID, error) {
	ms, err := db.ScanAll(p)
	if err != nil {
		return nil, err
	}
	return teidsOf(ms, p, func(m pattern.Match) model.Time { return m.Span.Start }), nil
}

// PatternScan matches against the current database state.
func (db *DB) PatternScan(p *pattern.PNode) ([]model.TEID, error) {
	ms, err := db.ScanCurrent(p)
	if err != nil {
		return nil, err
	}
	now := db.clock()
	return teidsOf(ms, p, func(pattern.Match) model.Time { return now }), nil
}

func teidsOf(ms []pattern.Match, p *pattern.PNode, stamp func(pattern.Match) model.Time) []model.TEID {
	proj := p.Projected()
	seen := make(map[model.TEID]bool)
	var out []model.TEID
	for _, m := range ms {
		for _, pn := range proj {
			teid := m.TEID(pn, stamp(m))
			if !seen[teid] {
				seen[teid] = true
				out = append(out, teid)
			}
		}
	}
	return out
}

// ScanTContext implements plan.ContextScanner: TPatternScan with the
// per-document join on the shared worker pool, under the caller's context.
func (db *DB) ScanTContext(ctx context.Context, p *pattern.PNode, t model.Time) ([]pattern.Match, error) {
	ms, err := pattern.ScanTPool(ctx, db.fti, p, t, db.pool)
	if err != nil {
		return nil, err
	}
	return db.clampMatches(ctx, ms), nil
}

// ScanT implements plan.Engine by delegating to ScanTContext.
func (db *DB) ScanT(p *pattern.PNode, t model.Time) ([]pattern.Match, error) {
	//txvet:ignore ctxflow context-free plan.Engine compatibility shim; executors use ScanTContext
	return db.ScanTContext(context.Background(), p, t)
}

// ScanAllContext implements plan.ContextScanner: TPatternScanAll under the
// caller's context.
func (db *DB) ScanAllContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error) {
	ms, err := pattern.ScanAllPool(ctx, db.fti, p, db.pool)
	if err != nil {
		return nil, err
	}
	return db.clampMatches(ctx, ms), nil
}

// ScanAll implements plan.Engine by delegating to ScanAllContext.
func (db *DB) ScanAll(p *pattern.PNode) ([]pattern.Match, error) {
	//txvet:ignore ctxflow context-free plan.Engine compatibility shim; executors use ScanAllContext
	return db.ScanAllContext(context.Background(), p)
}

// ScanCurrentContext implements plan.ContextScanner: the non-temporal
// PatternScan under the caller's context.
func (db *DB) ScanCurrentContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error) {
	ms, err := pattern.ScanCurrentPool(ctx, db.fti, p, db.pool)
	if err != nil {
		return nil, err
	}
	return db.clampMatches(ctx, ms), nil
}

// ScanCurrent implements plan.Engine by delegating to ScanCurrentContext.
func (db *DB) ScanCurrent(p *pattern.PNode) ([]pattern.Match, error) {
	//txvet:ignore ctxflow context-free plan.Engine compatibility shim; executors use ScanCurrentContext
	return db.ScanCurrentContext(context.Background(), p)
}

// DocHistory returns all versions of the document valid in [from, to),
// most recent first. With more than one worker and bounded chunk heads
// (interspersed snapshots or the version cache) the walk is split into
// contiguous chunks reconstructed concurrently; otherwise — and whenever
// a chunk fails — it runs the sequential backward walk. With the version
// cache enabled the materialized trees are offered to it (oldest first,
// so the most recent version ends up most recently used), converting the
// walk into future cache hits.
func (db *DB) DocHistory(id model.DocID, iv model.Interval) ([]store.VersionTree, error) {
	//txvet:ignore ctxflow context-free operator API shim; DocHistoryContext is the canonical path
	return db.DocHistoryContext(context.Background(), id, iv)
}

// DocHistoryContext is DocHistory under a caller context: cancellation
// aborts the chunked parallel walk between chunk reconstructions.
func (db *DB) DocHistoryContext(ctx context.Context, id model.DocID, iv model.Interval) ([]store.VersionTree, error) {
	if _, pinnedRead := store.EpochOf(ctx); pinnedRead {
		// Pinned walks take the sequential store path: the parallel
		// chunker plans against the live version table, and the clamped
		// infos a pinned walk yields must not enter the cache.
		return db.store.DocHistoryContext(ctx, id, iv)
	}
	out, ok := db.parallelDocHistory(ctx, id, iv)
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		out, err = db.store.DocHistoryContext(ctx, id, iv)
		if err != nil {
			return nil, err
		}
	}
	if db.vcache != nil {
		for i := len(out) - 1; i >= 0; i-- {
			db.vcache.Add(id, out[i])
		}
	}
	return out, nil
}

// ElementHistory returns all versions of the element valid in [from, to),
// most recent first. Like store.ElementHistory it reconstructs the
// document versions and filters the subtree rooted at the element
// (Section 7.3.5), but it goes through the cache-filling DocHistory.
func (db *DB) ElementHistory(eid model.EID, iv model.Interval) ([]store.VersionTree, error) {
	//txvet:ignore ctxflow context-free operator API shim; ElementHistoryContext is the canonical path
	return db.ElementHistoryContext(context.Background(), eid, iv)
}

// ElementHistoryContext is ElementHistory under a caller context.
func (db *DB) ElementHistoryContext(ctx context.Context, eid model.EID, iv model.Interval) ([]store.VersionTree, error) {
	if db.vcache == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return db.store.ElementHistoryContext(ctx, eid, iv)
	}
	docVersions, err := db.DocHistoryContext(ctx, eid.Doc, iv)
	if err != nil {
		return nil, err
	}
	var out []store.VersionTree
	for _, dv := range docVersions {
		if sub := dv.Root.FindXID(eid.X); sub != nil {
			out = append(out, store.VersionTree{Info: dv.Info, Root: sub.Detach()})
		}
	}
	return out, nil
}

// Reconstruct rebuilds the element version identified by the TEID: the
// Reconstruct operator of Section 7.3.3 followed by subtree extraction.
func (db *DB) Reconstruct(teid model.TEID) (*xmltree.Node, error) {
	//txvet:ignore ctxflow context-free operator API shim; ReconstructContext is the canonical path
	return db.ReconstructContext(context.Background(), teid)
}

// ReconstructContext is Reconstruct under a caller context.
func (db *DB) ReconstructContext(ctx context.Context, teid model.TEID) (*xmltree.Node, error) {
	v, err := db.store.VersionAtContext(ctx, teid.E.Doc, teid.T)
	if err != nil {
		return nil, err
	}
	vt, err := db.ReconstructVersionContext(ctx, teid.E.Doc, v.Ver)
	if err != nil {
		return nil, err
	}
	n := vt.Root.FindXID(teid.E.X)
	if n == nil {
		return nil, fmt.Errorf("core: element %s not valid at %s", teid.E, teid.T)
	}
	return n.Detach(), nil
}

// ReconstructVersion implements plan.Engine. With the cache enabled this
// is the shared entry point that gives the plan executor, server, CLI and
// operators exact hits, nearest-ancestor replays and singleflight
// collapse transparently.
func (db *DB) ReconstructVersion(id model.DocID, ver model.VersionNo) (store.VersionTree, error) {
	//txvet:ignore ctxflow context-free plan.Engine compatibility shim; executors use ReconstructVersionContext
	return db.ReconstructVersionContext(context.Background(), id, ver)
}

// ReconstructVersionContext implements plan.ContextReconstructor. Exact
// cache hits never touch the backend, so cache-resident versions are
// served even while the circuit breaker is open; a breaker-rejected
// reconstruction of the *current* version falls back to the in-memory
// current snapshot, which is complete by construction (Section 7.1 keeps
// the current version whole). Anything else propagates the typed failure
// fast.
func (db *DB) ReconstructVersionContext(ctx context.Context, id model.DocID, ver model.VersionNo) (store.VersionTree, error) {
	_, pinnedRead := store.EpochOf(ctx)
	var vt store.VersionTree
	var err error
	if db.vcache != nil {
		fetchCtx := ctx
		if pinnedRead {
			// Fetch through the cache at the live horizon: a committed
			// version's content is immutable, so the bytes are identical,
			// and the cache stays free of pin-clamped validity metadata.
			// The caller's pinned view of the metadata is re-derived below.
			fetchCtx = store.WithEpoch(ctx, 0)
		}
		vt, err = db.vcache.GetContext(fetchCtx, id, ver)
	} else {
		vt, err = db.store.ReconstructVersionContext(ctx, id, ver)
	}
	if err != nil && errors.Is(err, resilience.ErrCircuitOpen) {
		if cur, info, cerr := db.store.Current(id); cerr == nil && info.Ver == ver {
			db.res.NoteDegradedServe()
			vt, err = store.VersionTree{Info: info, Root: cur}, nil
		}
	}
	if err == nil && pinnedRead {
		vt.Info, err = db.store.ClampInfoContext(ctx, id, vt.Info)
		if err != nil {
			return store.VersionTree{}, err
		}
	}
	return vt, err
}

// CacheStats returns the version-cache counters; ok is false when the
// cache is disabled.
func (db *DB) CacheStats() (vcache.Stats, bool) {
	if db.vcache == nil {
		return vcache.Stats{}, false
	}
	return db.vcache.Stats(), true
}

// PurgeCache empties the version cache (cold-cache benchmark runs). It is
// a no-op when the cache is disabled.
func (db *DB) PurgeCache() {
	if db.vcache != nil {
		db.vcache.Purge()
	}
}

// IOStats returns the simulated-disk counters, including the buffer
// pool's hit/miss/eviction counts (the serving layer exposes them on
// /metrics).
func (db *DB) IOStats() pagestore.IOStats { return db.store.Pages().Stats() }

// Versions implements plan.Engine.
func (db *DB) Versions(id model.DocID) ([]store.VersionInfo, error) {
	return db.store.Versions(id)
}

// VersionsContext implements plan.ContextVersionLister: the version list
// clamped to the epoch pin carried by ctx, so [EVERY] and interval
// expansions inside a pinned query never select post-pin versions.
func (db *DB) VersionsContext(ctx context.Context, id model.DocID) ([]store.VersionInfo, error) {
	return db.store.VersionsContext(ctx, id)
}

// CreTime returns the element's creation time, via the auxiliary index
// when enabled, otherwise by backward delta traversal from the current
// version (the paper's two strategies, Section 7.3.6).
func (db *DB) CreTime(eid model.EID) (model.Time, error) {
	if db.times != nil {
		if t, ok := db.times.CreTime(eid); ok {
			return t, nil
		}
		return 0, fmt.Errorf("core: unknown element %s", eid)
	}
	return db.store.CreTimeTraverseFromCurrent(eid)
}

// CreTimeAt is CreTime(TEID): the timestamp makes traversal start at the
// right version instead of the current one.
func (db *DB) CreTimeAt(teid model.TEID) (model.Time, error) {
	if db.times != nil {
		if t, ok := db.times.CreTime(teid.E); ok {
			return t, nil
		}
		return 0, fmt.Errorf("core: unknown element %s", teid.E)
	}
	return db.store.CreTimeTraverse(teid)
}

// DelTime returns the element's deletion time (Forever while it exists).
func (db *DB) DelTime(eid model.EID) (model.Time, error) {
	if db.times != nil {
		if t, ok := db.times.DelTime(eid); ok {
			return t, nil
		}
		return 0, fmt.Errorf("core: unknown element %s", eid)
	}
	info, err := db.store.Info(eid.Doc)
	if err != nil {
		return 0, err
	}
	// Traversal needs a starting version; begin at the first one.
	//txvet:ignore epochpin only versions[0] is read, and a document's first version is immutable once published
	versions, err := db.store.Versions(eid.Doc)
	if err != nil {
		return 0, err
	}
	return db.store.DelTimeTraverse(model.TEID{E: eid, T: creationStart(versions, info)})
}

func creationStart(versions []store.VersionInfo, info store.DocInfo) model.Time {
	if len(versions) > 0 {
		return versions[0].Stamp
	}
	return info.Created
}

// DelTimeAt is DelTime(TEID).
func (db *DB) DelTimeAt(teid model.TEID) (model.Time, error) {
	if db.times != nil {
		if t, ok := db.times.DelTime(teid.E); ok {
			return t, nil
		}
		return 0, fmt.Errorf("core: unknown element %s", teid.E)
	}
	return db.store.DelTimeTraverse(teid)
}

// PreviousTS returns the document version preceding the one valid at the
// TEID's timestamp.
func (db *DB) PreviousTS(teid model.TEID) (store.VersionInfo, error) {
	return db.store.PreviousTS(teid.E.Doc, teid.T)
}

// NextTS returns the document version following the one valid at the
// TEID's timestamp.
func (db *DB) NextTS(teid model.TEID) (store.VersionInfo, error) {
	return db.store.NextTS(teid.E.Doc, teid.T)
}

// CurrentTS returns the current version of the element's document.
func (db *DB) CurrentTS(eid model.EID) (store.VersionInfo, error) {
	return db.store.CurrentTS(eid.Doc)
}

// Diff computes the edit script between two element versions, returned as
// an XML tree (<txdelta>): edit scripts are XML, keeping queries closed
// under the data model (Section 6.1). The two version materializations are
// independent reads, so they run as one pair on the shared worker pool.
func (db *DB) Diff(a, b model.TEID) (*xmltree.Node, error) {
	//txvet:ignore ctxflow context-free operator API shim; DiffContext is the canonical path
	return db.DiffContext(context.Background(), a, b)
}

// DiffContext is Diff under a caller context: cancellation aborts the
// paired reconstruction.
func (db *DB) DiffContext(ctx context.Context, a, b model.TEID) (*xmltree.Node, error) {
	pair := [2]model.TEID{a, b}
	nodes, err := parallel.Map(ctx, db.pool, "diff", 2, func(i int) (*xmltree.Node, error) {
		return db.ReconstructContext(ctx, pair[i])
	})
	if err != nil {
		return nil, err
	}
	return db.DiffNodes(nodes[0], nodes[1])
}

// DiffNodes implements plan.Engine: the edit script between two trees.
func (db *DB) DiffNodes(a, b *xmltree.Node) (*xmltree.Node, error) {
	old := a.Clone()
	var maxX model.XID
	old.Walk(func(n *xmltree.Node) bool {
		if n.XID > maxX {
			maxX = n.XID
		}
		return true
	})
	next := maxX
	alloc := func() model.XID { next++; return next }
	old.Walk(func(n *xmltree.Node) bool {
		if n.XID == 0 {
			n.XID = alloc()
		}
		return true
	})
	new := b.Clone()
	new.Walk(func(n *xmltree.Node) bool { n.XID = 0; return true })
	script, _, err := diff.Diff(old, new, diff.Options{
		Alloc:     alloc,
		FromStamp: a.Stamp,
		Stamp:     b.Stamp,
	})
	if err != nil {
		return nil, err
	}
	return script.ToXML(), nil
}

// Query parses and executes a temporal query.
func (db *DB) Query(src string) (*plan.Result, error) {
	return plan.RunString(db, src)
}

// QueryContext parses and executes a temporal query under a context:
// cancellation and deadline expiry abort execution between reconstructions
// and rows, returning the context's error. The request-scoped entry point
// the query server uses. While the resilience tier is degraded, queries
// that complete from cache-resident versions or the in-memory current
// snapshot succeed flagged Result.Degraded; queries needing the sick
// backend fail fast with an error wrapping resilience.ErrCircuitOpen.
func (db *DB) QueryContext(ctx context.Context, src string) (*plan.Result, error) {
	// Pin the commit horizon once: the whole query observes one consistent
	// snapshot while concurrent writers keep publishing (see epoch.go).
	ctx = db.pinned(ctx)
	res, err := plan.RunStringContext(ctx, db, src)
	if err != nil {
		if errors.Is(err, resilience.ErrCircuitOpen) {
			db.res.NoteDegradedReject()
		}
		return nil, err
	}
	if res.Degraded {
		db.res.NoteDegradedServe()
	}
	return res, nil
}

// Explain returns the operator plan of a query without executing it.
func (db *DB) Explain(src string) (string, error) {
	return plan.ExplainString(src)
}
