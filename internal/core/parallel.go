package core

import (
	"context"
	"sync"

	"txmldb/internal/diff"
	"txmldb/internal/model"
	"txmldb/internal/parallel"
	"txmldb/internal/plan"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// Pool exposes the shared worker pool; the serving layer registers its
// counters on /metrics, and callers composing their own fan-out (batch
// endpoints) schedule through it so the per-process concurrency bound
// holds across requests.
func (db *DB) Pool() *parallel.Pool { return db.pool }

// PoolStats returns the worker-pool counters.
func (db *DB) PoolStats() parallel.Stats { return db.pool.Stats() }

// ReconstructBatch materializes many element versions, fanning the
// independent reconstructions out over the shared worker pool. Results
// are returned in input order; the first failure cancels the remaining
// work and is returned. Each reconstruction goes through the version
// cache (when enabled), so concurrent requests for the same version
// collapse into one flight.
func (db *DB) ReconstructBatch(ctx context.Context, teids []model.TEID) ([]*xmltree.Node, error) {
	return parallel.Map(ctx, db.pool, "reconstruct", len(teids), func(i int) (*xmltree.Node, error) {
		return db.ReconstructContext(ctx, teids[i])
	})
}

// minHistoryChunk is the smallest number of versions worth assigning to a
// history chunk: below it the per-chunk head reconstruction dominates the
// deltas it saves.
const minHistoryChunk = 2

// parallelDocHistory reconstructs the versions of the document overlapping
// iv by splitting the version range into contiguous chunks, one worker
// each: a chunk reconstructs its newest version (through the version
// cache when enabled, so snapshots and cached ancestors bound the replay)
// and walks backwards with inverted deltas, exactly like the sequential
// algorithm of Section 7.3.4 but on a sub-range.
//
// Version metadata is snapshotted once up front, so the returned Info
// entries are consistent with each other even if writers race the walk.
// Completed deltas and non-current snapshots are immutable, which makes
// the chunk walks safe; the one mutable extent (the formerly-current
// snapshot freed by a racing Update) is handled by reconstruction's
// fall-forward, and any chunk error abandons the parallel attempt in
// favor of the atomic sequential walk.
//
// ok is false when the parallel path does not apply (single worker, no
// snapshots or cache to bound chunk heads, too few versions) or failed;
// the caller then runs the sequential path.
func (db *DB) parallelDocHistory(ctx context.Context, id model.DocID, iv model.Interval) ([]store.VersionTree, bool) {
	workers := db.pool.Workers()
	if workers <= 1 {
		return nil, false
	}
	// Without interspersed snapshots or a version cache every chunk head
	// pays a full backward replay from the current version, which costs
	// more than the single pass it replaces.
	if db.store.SnapshotEvery() <= 0 && db.vcache == nil {
		return nil, false
	}
	versions, err := db.store.VersionsContext(ctx, id)
	if err != nil {
		return nil, false
	}
	// The versions overlapping [from, to) form one contiguous run, since
	// validity intervals partition the document's lifetime.
	first, last := -1, -1
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].Interval().Overlaps(iv) {
			last = i
			break
		}
	}
	if last < 0 {
		return nil, false
	}
	for i := 0; i <= last; i++ {
		if versions[i].Interval().Overlaps(iv) {
			first = i
			break
		}
	}
	n := last - first + 1
	chunks := workers
	if max := n / minHistoryChunk; chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		return nil, false
	}
	// Chunk c covers indices [first+c*n/chunks, first+(c+1)*n/chunks).
	parts, err := parallel.Map(ctx, db.pool, "history", chunks,
		func(c int) ([]store.VersionTree, error) {
			lo := first + c*n/chunks
			hi := first + (c+1)*n/chunks - 1
			return db.historyChunk(ctx, id, versions, lo, hi)
		})
	if err != nil {
		return nil, false
	}
	// Chunks are index-ascending; output is most recent first.
	var out []store.VersionTree
	for c := len(parts) - 1; c >= 0; c-- {
		out = append(out, parts[c]...)
	}
	return out, true
}

// historyChunk reconstructs versions[lo..hi] (indices into the snapshotted
// metadata), most recent first.
func (db *DB) historyChunk(ctx context.Context, id model.DocID, versions []store.VersionInfo, lo, hi int) ([]store.VersionTree, error) {
	vt, err := db.ReconstructVersionContext(ctx, id, versions[hi].Ver)
	if err != nil {
		return nil, err
	}
	tree := vt.Root // owned: ReconstructVersionContext returns a private tree
	out := make([]store.VersionTree, 0, hi-lo+1)
	for i := hi; i >= lo; i-- {
		out = append(out, store.VersionTree{Info: versions[i], Root: tree.Clone()})
		if i > lo {
			script, err := db.store.ReadDeltaContext(ctx, id, versions[i-1].Ver)
			if err != nil {
				return nil, err
			}
			if err := diff.Apply(tree, script.Invert()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// PrefetchVersions implements plan.Prefetcher: it materializes the given
// document versions on the worker pool, handing each to sink as it
// completes (serialized by a mutex, so the executor's tree cache needs no
// locking of its own). Reconstructions go through the version cache when
// enabled, so concurrent queries collapse duplicate flights. With a
// single worker it reports ran=false and does nothing — the executor's
// on-demand path is then byte-identical to the historical sequential
// plan.
func (db *DB) PrefetchVersions(ctx context.Context, keys []plan.VersionKey, sink func(plan.VersionKey, store.VersionTree)) (bool, error) {
	if db.pool.Workers() <= 1 {
		return false, nil
	}
	var mu sync.Mutex
	err := db.pool.Run(ctx, "plan", len(keys), func(i int) error {
		vt, err := db.ReconstructVersionContext(ctx, keys[i].Doc, keys[i].Ver)
		if err != nil {
			return err
		}
		mu.Lock()
		sink(keys[i], vt)
		mu.Unlock()
		return nil
	})
	return true, err
}
