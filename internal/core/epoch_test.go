package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

// TestEpochPinnedQueryIgnoresLaterWrites drives a query pinned before an
// update through the full stack — scan clamp, pinned version selection,
// reconstruction — and checks it answers from the pinned snapshot while an
// unpinned query sees the newer state.
func TestEpochPinnedQueryIgnoresLaterWrites(t *testing.T) {
	db, id := openFigure1(t, Config{})
	pin := db.Epoch()
	ctx := store.WithEpoch(context.Background(), pin)

	// A fourth version published after the pin.
	if _, _, err := db.Update(id, guide([2]string{"Napoli", "25"}), model.Date(2001, 2, 5)); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT R/price FROM doc("http://guide.com/restaurants.xml")[10/02/2001]/restaurant R WHERE R/name="Napoli"`
	res, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Doc().String()
	if !strings.Contains(s, "18") || strings.Contains(s, "25") {
		t.Fatalf("pinned query answered from the post-pin state: %s", s)
	}
	res, err = db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Doc().String(); !strings.Contains(s, "25") {
		t.Fatalf("unpinned query missed the post-pin state: %s", s)
	}
}

// TestEpochPinnedQueryQuiescedOracle runs pinned queries concurrently with
// writers and verifies the isolation contract directly: a query pinned at
// epoch e returns byte-identical results whether it raced the writers or
// re-ran at the same pin after the store quiesced. Runs with the version
// cache enabled, so the pinned cache-fetch path is exercised too.
func TestEpochPinnedQueryQuiescedOracle(t *testing.T) {
	db := Open(Config{
		Clock: func() model.Time { return 1_000_000 },
		Cache: vcache.Config{MaxBytes: 1 << 20},
	})
	const writers = 3
	const updates = 30
	mk := func(price int) *xmltree.Node {
		return xmltree.Elem("guide", xmltree.Elem("restaurant",
			xmltree.ElemText("name", "Napoli"),
			xmltree.ElemText("price", fmt.Sprint(price))))
	}
	ids := make([]model.DocID, writers)
	urls := make([]string, writers)
	for w := range ids {
		urls[w] = fmt.Sprintf("u%d", w)
		id, err := db.Put(urls[w], mk(1), 1000)
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}

	type pinnedRun struct {
		query string
		pin   uint64
		out   string
	}
	var (
		runsMu sync.Mutex
		runs   []pinnedRun
	)
	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 2; i <= updates; i++ {
				if _, _, err := db.Update(ids[w], mk(i), model.Time(1000+int64(i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := fmt.Sprintf(`SELECT TIME(R), R/price FROM doc(%q)[EVERY]/restaurant R`, urls[r%writers])
				pin := db.Epoch()
				ctx := store.WithEpoch(context.Background(), pin)
				res, err := db.QueryContext(ctx, q)
				if err != nil {
					t.Errorf("pinned query: %v", err)
					return
				}
				runsMu.Lock()
				runs = append(runs, pinnedRun{query: q, pin: pin, out: res.Doc().String()})
				runsMu.Unlock()
			}
		}(r)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	if len(runs) == 0 {
		t.Fatal("no pinned queries executed while writers ran")
	}
	// Quiesced oracle: the same query at the same pin must answer
	// byte-identically now that no writers race it.
	for _, run := range runs {
		ctx := store.WithEpoch(context.Background(), run.pin)
		res, err := db.QueryContext(ctx, run.query)
		if err != nil {
			t.Fatalf("quiesced rerun at pin %d: %v", run.pin, err)
		}
		if got := res.Doc().String(); got != run.out {
			t.Fatalf("pin %d: racing result differs from quiesced oracle:\nraced:    %s\nquiesced: %s", run.pin, run.out, got)
		}
	}
}
