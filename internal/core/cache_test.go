package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"txmldb/internal/model"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

func cachedDB() *DB {
	return Open(Config{Cache: vcache.Config{MaxBytes: 8 << 20}})
}

func docV(n int) *xmltree.Node {
	return xmltree.Elem("doc", xmltree.ElemText("val", fmt.Sprintf("s%d", n)))
}

// TestCacheDisabledByDefault: a zero Config must not construct a cache, so
// operator-level measurements stay comparable with earlier baselines.
func TestCacheDisabledByDefault(t *testing.T) {
	db := Open(Config{})
	if _, ok := db.CacheStats(); ok {
		t.Fatal("zero Config enabled the version cache")
	}
	// And the cached paths still work without one.
	id, err := db.Put("d", docV(1), model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReconstructVersion(id, 1); err != nil {
		t.Fatal(err)
	}
	db.PurgeCache() // no-op, must not panic
}

// TestCacheInvalidationOnUpdate is the acceptance test for write
// correctness: after Update returns, no read may observe the pre-update
// state — neither stale current content nor a stale Forever end stamp on
// the superseded version.
func TestCacheInvalidationOnUpdate(t *testing.T) {
	db := cachedDB()
	id, err := db.Put("d", docV(1), model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 30; n++ {
		cur := model.VersionNo(n - 1)
		if _, err := db.ReconstructVersion(id, cur); err != nil { // warm the cache
			t.Fatal(err)
		}
		stamp := model.Date(2001, 1, 1) + model.Time(n)
		if _, _, err := db.Update(id, docV(n), stamp); err != nil {
			t.Fatal(err)
		}
		// The new version is visible with the new content...
		vt, err := db.ReconstructVersion(id, model.VersionNo(n))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := vt.Root.Text(), fmt.Sprintf("s%d", n); got != want {
			t.Fatalf("after update to v%d: content %q, want %q", n, got, want)
		}
		if vt.Info.End != model.Forever {
			t.Fatalf("new current v%d has End %v", n, vt.Info.End)
		}
		// ...and the superseded version no longer reads as current even
		// though it was resident in the cache before the write.
		prev, err := db.ReconstructVersion(id, cur)
		if err != nil {
			t.Fatal(err)
		}
		if prev.Info.End != stamp {
			t.Fatalf("superseded v%d End = %v, want %v", cur, prev.Info.End, stamp)
		}
		if got, want := prev.Root.Text(), fmt.Sprintf("s%d", n-1); got != want {
			t.Fatalf("v%d content changed to %q", cur, got)
		}
	}
	st, ok := db.CacheStats()
	if !ok {
		t.Fatal("cache not enabled")
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Invalidations == 0 {
		t.Fatalf("updates never invalidated: %+v", st)
	}
}

func TestCacheInvalidationOnDelete(t *testing.T) {
	db := cachedDB()
	id, err := db.Put("d", docV(1), model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReconstructVersion(id, 1); err != nil {
		t.Fatal(err)
	}
	del := model.Date(2001, 3, 1)
	if err := db.Delete(id, del); err != nil {
		t.Fatal(err)
	}
	vt, err := db.ReconstructVersion(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Info.End != del {
		t.Fatalf("deleted doc's last version End = %v, want %v", vt.Info.End, del)
	}
}

// TestCachedOperatorsMatchUncached runs the reconstruction-based operators
// against two databases loaded identically — cache on and cache off — and
// requires identical answers.
func TestCachedOperatorsMatchUncached(t *testing.T) {
	plain := Open(Config{})
	cached := cachedDB()
	var id model.DocID
	for _, db := range []*DB{plain, cached} {
		var err error
		id, err = db.Put("d", docV(1), model.Date(2001, 1, 1))
		if err != nil {
			t.Fatal(err)
		}
		for n := 2; n <= 12; n++ {
			if _, _, err := db.Update(id, docV(n), model.Date(2001, 1, 1)+model.Time(n)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// DocHistory (twice: the second cached run reads its own fills).
	for pass := 0; pass < 2; pass++ {
		want, err := plain.DocHistory(id, model.Always)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.DocHistory(id, model.Always)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("DocHistory: %d versions cached vs %d plain", len(got), len(want))
		}
		for i := range want {
			if got[i].Info != want[i].Info || !xmltree.Equal(got[i].Root, want[i].Root) {
				t.Fatalf("DocHistory[%d] differs (pass %d)", i, pass)
			}
		}
	}
	st, _ := cached.CacheStats()
	if st.Fills == 0 {
		t.Fatalf("DocHistory did not fill the cache: %+v", st)
	}

	// ElementHistory of the <val> element.
	root, _, err := plain.Current(id)
	if err != nil {
		t.Fatal(err)
	}
	eid := model.EID{Doc: id, X: root.Children[0].XID}
	want, err := plain.ElementHistory(eid, model.Always)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.ElementHistory(eid, model.Always)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ElementHistory: %d cached vs %d plain", len(got), len(want))
	}
	for i := range want {
		if got[i].Info != want[i].Info || !xmltree.Equal(got[i].Root, want[i].Root) {
			t.Fatalf("ElementHistory[%d] differs", i)
		}
	}

	// Reconstruct by TEID.
	for n := 1; n <= 12; n++ {
		vi, err := plain.Store().ReconstructVersion(id, model.VersionNo(n))
		if err != nil {
			t.Fatal(err)
		}
		teid := model.TEID{E: model.EID{Doc: id, X: vi.Root.Children[0].XID}, T: vi.Info.Stamp}
		w, err := plain.Reconstruct(teid)
		if err != nil {
			t.Fatal(err)
		}
		g, err := cached.Reconstruct(teid)
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(g, w) {
			t.Fatalf("Reconstruct(v%d) differs", n)
		}
	}
}

// TestCacheConcurrentQueriesWithWriter drives the full DB under -race:
// one writer appending versions through db.Update (which invalidates),
// readers reconstructing random versions through the cache.
func TestCacheConcurrentQueriesWithWriter(t *testing.T) {
	db := cachedDB()
	id, err := db.Put("d", docV(1), model.Date(2001, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	const (
		extra   = 30
		readers = 6
		reads   = 200
	)
	var high atomic.Int64
	high.Store(1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 2; n <= extra; n++ {
			if _, _, err := db.Update(id, docV(n), model.Date(2001, 1, 1)+model.Time(n)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			high.Store(int64(n))
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < reads; i++ {
				ver := 1 + rng.Int63n(high.Load())
				vt, err := db.ReconstructVersion(id, model.VersionNo(ver))
				if err != nil {
					t.Errorf("reconstruct v%d: %v", ver, err)
					return
				}
				if got, want := vt.Root.Text(), fmt.Sprintf("s%d", ver); got != want {
					t.Errorf("v%d content = %q, want %q", ver, got, want)
					return
				}
			}
		}(int64(r) + 99)
	}
	wg.Wait()

	st, _ := db.CacheStats()
	if st.Hits+st.Misses != st.Lookups {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}
