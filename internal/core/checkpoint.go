package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"txmldb/internal/checkpoint"
	"txmldb/internal/model"
	"txmldb/internal/store"
)

// Checkpoint & compaction at the database level. DB.Checkpoint captures a
// consistent cut of the durable tier — pagestore extents, the document
// table, the in-memory indexes — under a short writer gate (db.wmu; reads
// are never blocked), then writes, publishes and compacts with no locks
// held. A database reopened from a checkpoint replays only the WAL suffix
// behind it and restores the indexes from the image instead of
// reconstructing every historical version.

var (
	// ErrNotDurable reports a checkpoint or compaction request against a
	// database without a segmented durable backend (in-memory, or a legacy
	// single-file WAL injected directly into Config.Store.Pages.Backend).
	ErrNotDurable = errors.New("core: checkpointing requires a durable database (OpenDurable)")
	// ErrCheckpointBusy reports a checkpoint request while another one is
	// still running.
	ErrCheckpointBusy = errors.New("core: checkpoint already in progress")
)

// Aux blob keys inside a checkpoint image.
const (
	auxFTI     = "fti"
	auxTidx    = "tidx"
	auxDocTime = "doctime"
)

// indexSnapshotter is satisfied by every index flavour that can serialize
// itself into a checkpoint image.
type indexSnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// CheckpointStats aggregates the database's checkpoint activity.
type CheckpointStats struct {
	Runs            int           // published checkpoints
	Errors          int           // failed attempts
	LastFile        string        // image file of the last published checkpoint
	LastBytes       int64         // its size
	LastDuration    time.Duration // wall time of the last run
	SegmentsDeleted int           // WAL segments reclaimed by compaction, cumulative
}

// horizonFile records, per document, how much history the index blobs of a
// checkpoint image already cover; the incremental reindex on reopen only
// feeds versions beyond it through index maintenance.
type horizonFile struct {
	Format int          `json:"format"`
	Docs   []horizonDoc `json:"docs"`
}

type horizonDoc struct {
	ID       int64 `json:"id"`
	Versions int   `json:"versions"`
	Deleted  bool  `json:"deleted"`
}

// Checkpoint writes, publishes and compacts a checkpoint now. Concurrent
// reads proceed throughout; writers are blocked only while the in-memory
// state is captured, never during file I/O. Returns ErrNotDurable on
// non-durable databases and ErrCheckpointBusy when a run is in flight.
func (db *DB) Checkpoint() (checkpoint.RunStats, error) {
	if db.ckpt == nil {
		return checkpoint.RunStats{}, ErrNotDurable
	}
	if !db.ckptBusy.CompareAndSwap(false, true) {
		return checkpoint.RunStats{}, ErrCheckpointBusy
	}
	defer db.ckptBusy.Store(false)
	db.wmu.Lock()
	snap, err := db.captureSnapshot()
	db.wmu.Unlock()
	if err != nil {
		db.noteCheckpointError()
		return checkpoint.RunStats{}, fmt.Errorf("core: checkpoint capture: %w", err)
	}
	stats, err := db.ckpt.Run(db.segwal, snap)
	if err != nil {
		db.noteCheckpointError()
		return stats, fmt.Errorf("core: checkpoint: %w", err)
	}
	db.store.NoteCheckpoint()
	db.ckptMu.Lock()
	db.ckptStats.Runs++
	db.ckptStats.LastFile = stats.File
	db.ckptStats.LastBytes = stats.Bytes
	db.ckptStats.LastDuration = stats.Duration
	db.ckptStats.SegmentsDeleted += stats.SegmentsDeleted
	db.ckptBytesMark = db.segwal.Stats().BytesAppended
	db.ckptMu.Unlock()
	return stats, nil
}

func (db *DB) noteCheckpointError() {
	db.ckptMu.Lock()
	db.ckptStats.Errors++
	db.ckptMu.Unlock()
}

// captureSnapshot assembles the checkpoint cut. Callers hold db.wmu
// exclusively, so no commit can move the log position while the extent
// table, document table, horizon and index images are read.
func (db *DB) captureSnapshot() (checkpoint.Snapshot, error) {
	state := db.segwal.StateSnapshot()
	meta, err := db.store.MarshalMeta()
	if err != nil {
		return checkpoint.Snapshot{}, err
	}
	horizon, err := db.marshalHorizon()
	if err != nil {
		return checkpoint.Snapshot{}, err
	}
	aux := make(map[string][]byte)
	if snap, ok := db.fti.(indexSnapshotter); ok {
		blob, err := snap.SnapshotState()
		if err != nil {
			return checkpoint.Snapshot{}, fmt.Errorf("serialize full-text index: %w", err)
		}
		aux[auxFTI] = blob
	}
	if db.times != nil {
		blob, err := db.times.SnapshotState()
		if err != nil {
			return checkpoint.Snapshot{}, fmt.Errorf("serialize time index: %w", err)
		}
		aux[auxTidx] = blob
	}
	if db.docTimes != nil {
		blob, err := db.docTimes.SnapshotState()
		if err != nil {
			return checkpoint.Snapshot{}, fmt.Errorf("serialize document-time index: %w", err)
		}
		aux[auxDocTime] = blob
	}
	return checkpoint.Snapshot{
		Extents: state.Extents,
		Next:    state.Next,
		Pos:     state.Pos,
		Meta:    meta,
		Horizon: horizon,
		Aux:     aux,
	}, nil
}

// marshalHorizon records the per-document version counts the index blobs
// cover at capture time.
func (db *DB) marshalHorizon() ([]byte, error) {
	hf := horizonFile{Format: 1}
	for _, id := range db.store.Docs() {
		info, err := db.store.Info(id)
		if err != nil {
			return nil, err
		}
		hf.Docs = append(hf.Docs, horizonDoc{
			ID:       int64(id),
			Versions: info.Versions,
			Deleted:  !info.Live(),
		})
	}
	return json.Marshal(hf)
}

func parseHorizon(data []byte) (map[model.DocID]horizonDoc, error) {
	var hf horizonFile
	if err := json.Unmarshal(data, &hf); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint horizon: %w", err)
	}
	if hf.Format != 1 {
		return nil, fmt.Errorf("core: checkpoint horizon format %d, want 1", hf.Format)
	}
	out := make(map[model.DocID]horizonDoc, len(hf.Docs))
	for _, hd := range hf.Docs {
		out[model.DocID(hd.ID)] = hd
	}
	return out, nil
}

// maybeCheckpoint fires a checkpoint when a configured trigger — commits or
// appended bytes since the last one — is reached. Called by writers after
// releasing the writer gate; failures are counted in CheckpointStats and do
// not fail the triggering write (the WAL alone is durable).
func (db *DB) maybeCheckpoint() {
	if db.ckpt == nil {
		return
	}
	trigger := db.ckptCfg.EveryCommits > 0 &&
		db.store.CommitsSinceCheckpoint() >= db.ckptCfg.EveryCommits
	if !trigger && db.ckptCfg.EveryBytes > 0 {
		db.ckptMu.Lock()
		mark := db.ckptBytesMark
		db.ckptMu.Unlock()
		trigger = db.segwal.Stats().BytesAppended-mark >= db.ckptCfg.EveryBytes
	}
	if !trigger {
		return
	}
	_, _ = db.Checkpoint() // errors land in CheckpointStats.Errors
}

// CheckpointStats returns the checkpoint counters; ok is false on
// non-durable databases.
func (db *DB) CheckpointStats() (CheckpointStats, bool) {
	if db.ckpt == nil {
		return CheckpointStats{}, false
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.ckptStats, true
}

// WALSegments reports how many log segments the durable tier currently
// keeps on disk (0 on non-durable databases).
func (db *DB) WALSegments() int64 {
	if db.segwal == nil {
		return 0
	}
	return db.segwal.Segments()
}

// Vacuum applies a retention policy to the version store (see
// store.Retention), drops the reconstruction cache, and — on durable
// databases — immediately checkpoints so compaction returns the reclaimed
// space to disk. The indexes are left untouched: pruned versions simply
// fail to materialize with store.ErrPruned.
func (db *DB) Vacuum(ret store.Retention) (store.VacuumReport, checkpoint.RunStats, error) {
	if err := db.checkWritable("vacuum"); err != nil {
		return store.VacuumReport{}, checkpoint.RunStats{}, err
	}
	db.wmu.Lock()
	rep, err := db.store.Vacuum(ret)
	db.wmu.Unlock()
	if err != nil {
		return rep, checkpoint.RunStats{}, err
	}
	if db.vcache != nil {
		for _, id := range db.store.Docs() {
			db.vcache.InvalidateDoc(id)
		}
	}
	if db.ckpt == nil {
		return rep, checkpoint.RunStats{}, nil
	}
	cs, err := db.Checkpoint()
	return rep, cs, err
}

// OpenReport describes how the last OpenDurable recovered the database; the
// C-series open-cost experiment and the CLIs' verbose open logging read it.
type OpenReport struct {
	UsedCheckpoint  bool   // state loaded from a checkpoint image
	CheckpointFile  string // which one
	Fallback        string // why a checkpoint was not (fully) used
	SegmentsScanned int64  // WAL segments replayed
	ReplayedCommits int64  // commits replayed from the WAL suffix
	ReplayedExtents int64  // extent records applied during replay
	ReplayedBytes   int64  // WAL bytes scanned during replay
	TruncatedBytes  int64  // torn tail discarded on open
	IndexesRestored bool   // index blobs restored from the image
	IndexedDocs     int    // documents fed through index maintenance
	IndexedVersions int    // versions fed through index maintenance
	ReplayDuration  time.Duration
	IndexDuration   time.Duration
}

// String renders the one-line open summary.
func (r OpenReport) String() string {
	src := "full replay"
	if r.UsedCheckpoint {
		src = fmt.Sprintf("checkpoint %s + wal suffix", r.CheckpointFile)
	}
	s := fmt.Sprintf("open: %s: %d segments, %d commits, %d extents, %d bytes replayed in %v; %d docs / %d versions indexed in %v",
		src, r.SegmentsScanned, r.ReplayedCommits, r.ReplayedExtents, r.ReplayedBytes,
		r.ReplayDuration.Round(time.Microsecond), r.IndexedDocs, r.IndexedVersions,
		r.IndexDuration.Round(time.Microsecond))
	if r.IndexesRestored {
		s += " (indexes restored from image)"
	}
	if r.TruncatedBytes > 0 {
		s += fmt.Sprintf("; %d torn bytes truncated", r.TruncatedBytes)
	}
	if r.Fallback != "" {
		s += fmt.Sprintf("; fallback: %s", r.Fallback)
	}
	return s
}

// OpenReport returns how the database was opened. Zero for databases not
// opened with OpenDurable.
func (db *DB) OpenReport() OpenReport { return db.openRep }
