// Package a is the cachealias fixture. It imports the real vcache so the
// analyzer is exercised against the actual taint-source types.
package a

import (
	"txmldb/internal/model"
	"txmldb/internal/vcache"
	"txmldb/internal/xmltree"
)

func writeThroughCachedRoot(c *vcache.Cache) error {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return err
	}
	vt.Root.Value = "edited" // want "write through vt mutates a tree shared with vcache.Cache.Get"
	return nil
}

func writeThroughAlias(c *vcache.Cache) error {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return err
	}
	r := vt.Root
	r.Name = "edited" // want "write through r mutates a tree shared with vcache.Cache.Get"
	return nil
}

func writeChildSlice(c *vcache.Cache) error {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return err
	}
	vt.Root.Children[0] = nil // want "write through vt mutates a tree shared with vcache.Cache.Get"
	return nil
}

func cloneThenWrite(c *vcache.Cache) (*xmltree.Node, error) {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return nil, err
	}
	root := vt.Root.Clone()
	root.Value = "edited" // owned copy: allowed
	return root, nil
}

func rebindClearsTaint(c *vcache.Cache, fresh *xmltree.Node) error {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return err
	}
	r := vt.Root
	r = fresh
	r.Value = "edited" // r no longer aliases the cache: allowed
	return nil
}

func valueFieldWrite(c *vcache.Cache) error {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return err
	}
	vt.Info.Ver = 9 // local struct copy, not shared memory: allowed
	_ = vt
	return nil
}

func readOnly(c *vcache.Cache) (string, error) {
	vt, err := c.Get(model.DocID(1), model.VersionNo(2))
	if err != nil {
		return "", err
	}
	return vt.Root.Name, nil // reads never need a clone
}
