// Package cachealias flags mutation of trees obtained from the shared
// version cache or from core reconstruction entry points without an
// intervening deep clone.
//
// PR 3's vcache keeps materialized VersionTrees resident and shared; its
// immutability discipline is that any tree crossing the cache boundary is
// deep-cloned before mutation, because an in-place edit of a shared tree
// corrupts every future cache hit for that version. The analyzer taints
// variables bound from vcache.Cache.Get and DB.Reconstruct* results,
// propagates the taint through simple assignments (r := vt.Root), clears
// it on Clone()/DeepClone(), and reports writes that reach shared state
// through a tainted base — i.e. writes whose access path crosses a
// pointer, slice, or map after the tainted variable. Writes to value
// fields of a tainted struct variable (vt.Info = ...) mutate only the
// local copy and are allowed.
//
// The check is per-function and flow-approximate (statements in source
// order); it is a convention guard, not an escape analysis.
package cachealias

import (
	"go/ast"
	"go/types"
	"strings"

	"txmldb/internal/analysis"
)

// Analyzer flags writes to cache-shared trees without a Clone.
var Analyzer = &analysis.Analyzer{
	Name: "cachealias",
	Doc: "flag mutations of trees obtained from vcache.Cache.Get or core " +
		"DB.Reconstruct* without an intervening Clone/DeepClone",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// The cache's own internals legitimately touch resident trees.
	if pass.Pkg.Path() == "txmldb/internal/vcache" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the taint walk over one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]string) // var -> source description
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own walk from run
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		handleAssign(pass, as, tainted)
		return true
	})
}

func handleAssign(pass *analysis.Pass, as *ast.AssignStmt, tainted map[types.Object]string) {
	// Writes through tainted bases are checked first, so `vt.Root.Value =`
	// is reported even when the RHS also mentions vt.
	for _, lhs := range as.Lhs {
		if obj, src, shared := taintedWrite(pass, lhs, tainted); shared {
			pass.Reportf(lhs.Pos(), "write through %s mutates a tree shared with %s; deep-clone before mutating",
				obj.Name(), src)
		}
	}

	// Taint bookkeeping for this assignment.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if src, ok := taintSource(pass, call); ok {
				// v, err := cache.Get(...): the tree is result 0.
				if id := lhsIdent(as.Lhs[0]); id != nil {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						tainted[obj] = src
					}
				}
				return
			}
			if isCloneCall(call) {
				// v = shared.Clone(): the result is owned.
				for _, lhs := range as.Lhs {
					if id := lhsIdent(lhs); id != nil {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							delete(tainted, obj)
						}
					}
				}
				return
			}
		}
	}
	// r := vt.Root and friends: aliasing a tainted value taints the alias;
	// rebinding a tainted variable from an untainted source clears it.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		id := lhsIdent(lhs)
		if id == nil {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		if src, ok := mentionsTainted(pass, as.Rhs[i], tainted); ok {
			tainted[obj] = src
		} else {
			delete(tainted, obj)
		}
	}
}

// taintedWrite reports whether lhs writes through a tainted variable via
// at least one pointer/slice/map hop (shared memory, not a local copy).
func taintedWrite(pass *analysis.Pass, lhs ast.Expr, tainted map[types.Object]string) (types.Object, string, bool) {
	crossesShared := false
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if isSharedType(pass.TypesInfo.TypeOf(x.X)) {
				crossesShared = true
			}
			e = x.X
		case *ast.IndexExpr:
			if isSharedType(pass.TypesInfo.TypeOf(x.X)) {
				crossesShared = true
			}
			e = x.X
		case *ast.StarExpr:
			crossesShared = true
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(x)
			if obj == nil {
				return nil, "", false
			}
			src, ok := tainted[obj]
			if !ok || !crossesShared {
				// Untainted base, plain rebinding (`vt = ...`), or a write
				// to a value field of the local copy (`vt.Info = ...`).
				return nil, "", false
			}
			return obj, src, true
		default:
			return nil, "", false
		}
	}
}

// isSharedType reports whether writes through t reach shared memory.
func isSharedType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// taintSource recognizes calls whose results alias cache-resident trees.
func taintSource(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	pkgPath, typeName, method := named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name
	switch {
	case strings.HasSuffix(pkgPath, "/vcache") && typeName == "Cache" && method == "Get":
		return "vcache.Cache.Get", true
	case strings.HasSuffix(pkgPath, "/core") && typeName == "DB" && strings.HasPrefix(method, "Reconstruct"):
		return "core.DB." + method, true
	}
	return "", false
}

// isCloneCall recognizes x.Clone() / x.DeepClone().
func isCloneCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "Clone" || sel.Sel.Name == "DeepClone"
}

// mentionsTainted reports whether expr reads any tainted variable, unless
// the read is wrapped in a Clone call (which launders ownership).
func mentionsTainted(pass *analysis.Pass, expr ast.Expr, tainted map[types.Object]string) (string, bool) {
	if call, ok := expr.(*ast.CallExpr); ok && isCloneCall(call) {
		return "", false
	}
	var src string
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isCloneCall(call) {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			if s, ok := tainted[obj]; ok {
				src, found = s, true
			}
		}
		return true
	})
	return src, found
}

// lhsIdent unwraps a plain identifier assignment target.
func lhsIdent(e ast.Expr) *ast.Ident {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		return id
	}
	return nil
}
