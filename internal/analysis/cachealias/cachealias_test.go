package cachealias_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/cachealias"
)

func TestCachealias(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", cachealias.Analyzer)
}
