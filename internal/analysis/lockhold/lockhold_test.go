package lockhold_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	// The fixture's path segment "pagestore" is inside the analyzer gate.
	analysistest.Run(t, "testdata/src/pagestore", lockhold.Analyzer)
}
