package lockhold_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	// The fixture's path segment "pagestore" is inside the analyzer gate.
	analysistest.Run(t, "testdata/src/pagestore", lockhold.Analyzer)
}

func TestLockholdCheckpoint(t *testing.T) {
	// The filesystem rules: no os.* or *os.File I/O under a held mutex in
	// the checkpoint pipeline.
	analysistest.Run(t, "testdata/src/checkpoint", lockhold.Analyzer)
}
