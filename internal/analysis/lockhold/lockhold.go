// Package lockhold flags slow or re-entrant work done while holding a
// storage-layer mutex.
//
// PR 4 moved the pagestore's simulated device latency outside the store
// mutex precisely so concurrent readers overlap their waits; a
// time.Sleep, a Backend I/O call, or an arbitrary user callback executed
// between mu.Lock() and the matching Unlock serializes every reader
// behind one straggler (and a callback that re-enters the store
// deadlocks). The analyzer walks each function in internal/pagestore,
// internal/vcache, and internal/store tracking which sync.Mutex /
// sync.RWMutex receivers are held — including `defer mu.Unlock()`, which
// holds to function end — and reports:
//
//   - time.Sleep calls,
//   - method calls on values whose type is a named interface ending in
//     "Backend" (the pluggable I/O surface),
//   - calls through function-typed struct fields (stored user callbacks),
//   - in internal/checkpoint only: filesystem calls — os.Rename/Remove/
//     Create/OpenFile/ReadFile/WriteFile and any method on an *os.File
//     (Write, Sync, Close, ...).
//
// The filesystem rules are scoped to internal/checkpoint: a checkpoint
// writes a multi-megabyte image and fsyncs it, and the whole point of the
// design is that this happens with no engine lock held — only the brief
// state capture is locked. A checkpoint that renamed or synced under a
// mutex would stall every writer for the duration of a disk flush. The
// WAL writer is deliberately exempt: there the mutex IS the commit-order
// discipline, and fsync under it is the group-commit design.
//
// The check is intraprocedural and does not follow calls into other
// functions or function literals; branch-level lock state is approximated
// by scanning statements in source order.
package lockhold

import (
	"go/ast"
	"go/types"

	"txmldb/internal/analysis"
)

// Analyzer flags blocking work under storage-layer mutexes.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "in pagestore/vcache/store/checkpoint: flag time.Sleep, Backend I/O, " +
		"filesystem calls, or stored callback invocation while a " +
		"sync.Mutex/RWMutex is held (defer-aware)",
	Run: run,
}

var targetSegments = map[string]bool{
	"pagestore": true, "vcache": true, "store": true, "checkpoint": true,
}

// osFilesystemFuncs are the package-level os calls that touch the disk;
// each is a rename/open/read/write the checkpoint pipeline performs and
// none may run under a storage mutex.
var osFilesystemFuncs = []string{
	"Rename", "Remove", "RemoveAll", "Create", "Open", "OpenFile",
	"ReadFile", "WriteFile", "Mkdir", "MkdirAll", "ReadDir",
}

func run(pass *analysis.Pass) error {
	seg := analysis.PathBase(pass.Pkg.Path())
	if !targetSegments[seg] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, held: map[string]bool{}, fsRules: seg == "checkpoint"}
			w.stmts(fd.Body.List)
		}
	}
	return nil
}

// walker tracks the set of held mutexes (keyed by the printed receiver
// expression, e.g. "s.mu") through one function body.
type walker struct {
	pass    *analysis.Pass
	held    map[string]bool
	fsRules bool // checkpoint package: also forbid filesystem I/O under locks
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := w.lockOp(s.X); ok {
			if locked {
				w.held[key] = true
			} else {
				delete(w.held, key)
			}
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function; deferred non-lock calls run after release, skip them.
		return
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.checkExpr(s.X)
		w.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		w.stmts(s.Body.List)
	case *ast.SelectStmt:
		w.stmts(s.Body.List)
	case *ast.CaseClause:
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmts(s.Body)
	case *ast.GoStmt:
		// A spawned goroutine does not run under the caller's lock.
		return
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt,
		*ast.LabeledStmt, *ast.SendStmt:
		// No lock-relevant calls, or handled conservatively.
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync mutexes and
// returns the receiver key and whether it acquires.
func (w *walker) lockOp(e ast.Expr) (key string, locked, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	if !isSyncMutex(w.pass.TypesInfo.TypeOf(sel.X)) {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExpr reports forbidden calls inside e while any lock is held.
func (w *walker) checkExpr(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Literal bodies run when invoked, typically after release
			// (deferred cleanup, pool tasks); out of intraprocedural scope.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkCall(call)
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr) {
	lock := w.anyHeld()
	if w.pass.PkgFunc(call, "time", "Sleep") {
		w.pass.Reportf(call.Pos(), "time.Sleep while holding %s: latency must be paid outside the mutex", lock)
		return
	}
	if w.fsRules {
		for _, fn := range osFilesystemFuncs {
			if w.pass.PkgFunc(call, "os", fn) {
				w.pass.Reportf(call.Pos(), "os.%s while holding %s: filesystem I/O must run outside the mutex", fn, lock)
				return
			}
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := w.pass.TypesInfo.Selections[sel]; s != nil {
		switch s.Kind() {
		case types.MethodVal:
			if name, ok := backendType(s.Recv()); ok {
				w.pass.Reportf(call.Pos(), "%s.%s I/O while holding %s: move device access outside the mutex",
					name, sel.Sel.Name, lock)
			} else if w.fsRules && isOSFile(s.Recv()) {
				w.pass.Reportf(call.Pos(), "os.File.%s while holding %s: file I/O must run outside the mutex",
					sel.Sel.Name, lock)
			}
		case types.FieldVal:
			if _, ok := s.Obj().Type().Underlying().(*types.Signature); ok {
				w.pass.Reportf(call.Pos(), "callback %s invoked while holding %s: user code must not run under the store mutex",
					types.ExprString(sel), lock)
			}
		}
	}
}

// isOSFile reports whether t (or *t) is os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// backendType reports whether t (or *t) is a named interface whose name
// ends in "Backend", returning the type name.
func backendType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return "", false
	}
	name := named.Obj().Name()
	if len(name) >= len("Backend") && name[len(name)-len("Backend"):] == "Backend" {
		return name, true
	}
	return "", false
}

// anyHeld returns one held lock key for diagnostics (the smallest, so
// messages are stable when several locks are held).
func (w *walker) anyHeld() string {
	best := ""
	for k := range w.held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
