// Package lockhold flags slow or re-entrant work done while holding a
// storage-layer mutex.
//
// PR 4 moved the pagestore's simulated device latency outside the store
// mutex precisely so concurrent readers overlap their waits; a
// time.Sleep, a Backend I/O call, or an arbitrary user callback executed
// between mu.Lock() and the matching Unlock serializes every reader
// behind one straggler (and a callback that re-enters the store
// deadlocks). The analyzer walks each function in internal/pagestore,
// internal/vcache, and internal/store tracking which sync.Mutex /
// sync.RWMutex receivers are held — including `defer mu.Unlock()`, which
// holds to function end — and reports:
//
//   - time.Sleep calls,
//   - method calls on values whose type is a named interface ending in
//     "Backend" (the pluggable I/O surface),
//   - calls through function-typed struct fields (stored user callbacks),
//   - in internal/checkpoint only: filesystem calls — os.Rename/Remove/
//     Create/OpenFile/ReadFile/WriteFile and any method on an *os.File
//     (Write, Sync, Close, ...).
//
// The filesystem rules are scoped to internal/checkpoint: a checkpoint
// writes a multi-megabyte image and fsyncs it, and the whole point of the
// design is that this happens with no engine lock held — only the brief
// state capture is locked. A checkpoint that renamed or synced under a
// mutex would stall every writer for the duration of a disk flush. The
// WAL writer is deliberately exempt: there the mutex IS the commit-order
// discipline, and fsync under it is the group-commit design.
//
// The check is intraprocedural and does not follow calls into other
// functions or function literals. Lock state is driven by the shared
// flow walker: branches fork and rejoin with a may-hold union, and
// deferred calls are applied in LIFO order at every exit — so a cleanup
// deferred after `defer mu.Unlock()` runs outside the lock, while one
// deferred before it (registered later, run earlier) is correctly seen
// as running under the mutex.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/flow"
)

// Analyzer flags blocking work under storage-layer mutexes.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "in pagestore/vcache/store/checkpoint: flag time.Sleep, Backend I/O, " +
		"filesystem calls, or stored callback invocation while a " +
		"sync.Mutex/RWMutex is held (defer-aware)",
	Run: run,
}

var targetSegments = map[string]bool{
	"pagestore": true, "vcache": true, "store": true, "checkpoint": true,
}

// osFilesystemFuncs are the package-level os calls that touch the disk;
// each is a rename/open/read/write the checkpoint pipeline performs and
// none may run under a storage mutex.
var osFilesystemFuncs = []string{
	"Rename", "Remove", "RemoveAll", "Create", "Open", "OpenFile",
	"ReadFile", "WriteFile", "Mkdir", "MkdirAll", "ReadDir",
}

func run(pass *analysis.Pass) error {
	seg := analysis.PathBase(pass.Pkg.Path())
	if !targetSegments[seg] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, fsRules: seg == "checkpoint", reported: map[token.Pos]bool{}}
			flow.Walk(fd.Body, flow.Hooks{
				Call: func(st flow.Facts, call *ast.CallExpr) {
					if key, locked, ok := w.lockOp(call); ok {
						if locked {
							st[key] = call.Pos()
						} else {
							delete(st, key)
						}
						return
					}
					if len(st) == 0 {
						return
					}
					w.checkCall(st, call)
				},
			})
		}
	}
	return nil
}

// walker holds the per-function reporting state; the held-lock set lives
// in the flow walker's facts.
type walker struct {
	pass    *analysis.Pass
	fsRules bool // checkpoint package: also forbid filesystem I/O under locks
	// reported dedupes diagnostics per call site: a deferred call is
	// replayed once per function exit, but is one site in the source.
	reported map[token.Pos]bool
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync mutexes and
// returns the receiver key and whether it acquires.
func (w *walker) lockOp(call *ast.CallExpr) (key string, locked, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	if !isSyncMutex(w.pass.TypesInfo.TypeOf(sel.X)) {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkCall reports a forbidden call made while a lock in st is held.
func (w *walker) checkCall(st flow.Facts, call *ast.CallExpr) {
	lock := anyHeld(st)
	if w.pass.PkgFunc(call, "time", "Sleep") {
		w.reportf(call.Pos(), "time.Sleep while holding %s: latency must be paid outside the mutex", lock)
		return
	}
	if w.fsRules {
		for _, fn := range osFilesystemFuncs {
			if w.pass.PkgFunc(call, "os", fn) {
				w.reportf(call.Pos(), "os.%s while holding %s: filesystem I/O must run outside the mutex", fn, lock)
				return
			}
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := w.pass.TypesInfo.Selections[sel]; s != nil {
		switch s.Kind() {
		case types.MethodVal:
			if name, ok := backendType(s.Recv()); ok {
				w.reportf(call.Pos(), "%s.%s I/O while holding %s: move device access outside the mutex",
					name, sel.Sel.Name, lock)
			} else if w.fsRules && isOSFile(s.Recv()) {
				w.reportf(call.Pos(), "os.File.%s while holding %s: file I/O must run outside the mutex",
					sel.Sel.Name, lock)
			}
		case types.FieldVal:
			if _, ok := s.Obj().Type().Underlying().(*types.Signature); ok {
				w.reportf(call.Pos(), "callback %s invoked while holding %s: user code must not run under the store mutex",
					types.ExprString(sel), lock)
			}
		}
	}
}

// reportf emits one diagnostic per call site: a deferred call replays at
// every exit but is a single site in the source.
func (w *walker) reportf(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// isOSFile reports whether t (or *t) is os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// backendType reports whether t (or *t) is a named interface whose name
// ends in "Backend", returning the type name.
func backendType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return "", false
	}
	name := named.Obj().Name()
	if len(name) >= len("Backend") && name[len(name)-len("Backend"):] == "Backend" {
		return name, true
	}
	return "", false
}

// anyHeld returns one held lock key for diagnostics (the smallest, so
// messages are stable when several locks are held).
func anyHeld(st flow.Facts) string {
	best := ""
	for k := range st {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
