// Package pagestore is the lockhold fixture; its path segment matches the
// real storage package so the analyzer gate admits it.
package pagestore

import (
	"sync"
	"time"
)

// FixtureBackend mimics the pluggable I/O surface: a named interface
// ending in "Backend".
type FixtureBackend interface {
	Get(page int64) ([]byte, error)
	Put(page int64, data []byte) error
}

// Store mirrors the real store shape: a mutex, a backend, a stored
// callback.
type Store struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	backend FixtureBackend
	onEvict func(page int64)
	lastPos int64
}

func (s *Store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
	s.mu.Unlock()
}

func (s *Store) sleepUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastPos++
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
}

func (s *Store) backendUnderLock(page int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend.Get(page) // want "FixtureBackend.Get I/O while holding s.mu"
}

func (s *Store) backendUnderRLock(page int64) ([]byte, error) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	data, err := s.backend.Get(page) // want "FixtureBackend.Get I/O while holding s.rw"
	return data, err
}

func (s *Store) callbackUnderLock(page int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onEvict(page) // want "callback s.onEvict invoked while holding s.mu"
}

// sleepAfterUnlock releases before sleeping: the PR 4 pattern, allowed.
func (s *Store) sleepAfterUnlock() {
	s.mu.Lock()
	s.lastPos++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// backendOutsideLock computes under the lock, does I/O after release.
func (s *Store) backendOutsideLock(page int64) ([]byte, error) {
	s.mu.Lock()
	pos := s.lastPos
	s.mu.Unlock()
	return s.backend.Get(pos + page)
}

// callbackAfterUnlock snapshots the callback under the lock and invokes
// it after release, the required discipline for user code.
func (s *Store) callbackAfterUnlock(page int64) {
	s.mu.Lock()
	cb := s.onEvict
	s.mu.Unlock()
	if cb != nil {
		cb(page)
	}
}
