// Package checkpoint is the lockhold fixture for the filesystem rules;
// its path segment matches internal/checkpoint so the analyzer gate
// admits it. A checkpointer must capture state under the lock and do all
// image/manifest I/O after release.
package checkpoint

import (
	"os"
	"sync"
)

// Checkpointer mirrors the real shape: a mutex guarding counters and a
// pipeline that writes images, fsyncs and renames manifests.
type Checkpointer struct {
	mu      sync.Mutex
	pending []byte
	runs    int
}

func (c *Checkpointer) renameUnderLock(tmp, final string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.Rename(tmp, final) // want "os.Rename while holding c.mu"
}

func (c *Checkpointer) writeUnderLock(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return os.WriteFile(path, c.pending, 0o644) // want "os.WriteFile while holding c.mu"
}

func (c *Checkpointer) removeUnderLock(path string) {
	c.mu.Lock()
	os.Remove(path) // want "os.Remove while holding c.mu"
	c.mu.Unlock()
}

func (c *Checkpointer) syncUnderLock(f *os.File) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := f.Write(c.pending); err != nil { // want "os.File.Write while holding c.mu"
		return err
	}
	return f.Sync() // want "os.File.Sync while holding c.mu"
}

// captureThenWrite is the required discipline: snapshot under the lock,
// write and publish after release.
func (c *Checkpointer) captureThenWrite(tmp, final string) error {
	c.mu.Lock()
	data := append([]byte(nil), c.pending...)
	c.runs++
	c.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// closeAfterUnlock opens and closes files with no lock held.
func (c *Checkpointer) closeAfterUnlock(path string) error {
	c.mu.Lock()
	c.runs++
	c.mu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
