// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest. A fixture line that should
// trigger a diagnostic carries a comment:
//
//	bad() // want "regexp matching the message"
//
// Multiple expectations on one line are written as separate quoted
// regexps: // want "first" "second". Every diagnostic must be wanted and
// every want must be matched, so a neutered analyzer (reporting nothing)
// fails the fixture test — this is what makes the fixtures a guard on the
// analyzers themselves, not just documentation.
//
// Fixture packages live under <analyzer>/testdata/src/<pkg>. The go tool
// skips testdata directories when expanding ./... wildcards, so fixtures
// may contain deliberate invariant violations without tripping the repo
// sweep; the loader reaches them by explicit directory path, and because
// they sit inside the txmldb module they may import real repo packages
// (vcache, metrics, ...) so analyzers are tested against the actual types
// they gate on.
//
// Interprocedural analyzers are supported two ways: every pass carries a
// Program built over all fixture packages of the run (so per-package
// analyzers can consult the call graph), and an analyzer declaring
// RunProgram instead of Run executes once over the whole fixture set.
// RunDirs loads several fixture directories into one program, which is
// how cross-package call-graph edges (e.g. through an interface defined
// in one fixture package and implemented in another) are exercised.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/load"
)

// TB is the subset of testing.TB the harness reports through; *testing.T
// satisfies it, and Recorder captures failures instead of failing — which
// is how the neutered-analyzer tests assert that a fixture WOULD fail.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Recorder is a TB that collects failures. Fatalf unwinds via panic like
// testing.T's FailNow; use RunRecorded rather than calling the harness
// with a Recorder directly.
type Recorder struct {
	Errors   []string
	FatalMsg string
}

type recorderStop struct{}

func (r *Recorder) Helper() {}
func (r *Recorder) Errorf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}
func (r *Recorder) Fatalf(format string, args ...any) {
	r.FatalMsg = fmt.Sprintf(format, args...)
	panic(recorderStop{})
}

// RunRecorded runs the analyzer over the fixture directories and returns
// the recorded failures instead of failing a test. A fixture guarding a
// working analyzer yields no errors; the same fixture run against a
// neutered analyzer yields unmatched-expectation errors.
func RunRecorded(a *analysis.Analyzer, dirs ...string) (rec *Recorder) {
	rec = &Recorder{}
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(recorderStop); !ok {
				panic(p)
			}
		}
	}()
	RunDirs(rec, a, dirs...)
	return rec
}

// expectation is one // want regexp at a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (a path relative to the test's
// working directory, e.g. "testdata/src/a"), applies the analyzer, and
// reports mismatches between diagnostics and // want expectations as test
// errors.
func Run(t TB, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunDirs(t, a, dir)
}

// RunDirs loads several fixture directories into one program — one Load
// call, one shared FileSet, one call graph — and applies the analyzer to
// all of them. Expectations are matched globally: a diagnostic may land
// in any of the fixture packages.
func RunDirs(t TB, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + strings.TrimPrefix(d, "./")
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	prog := analysis.NewProgram(pkgs)

	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }

	if a.Run != nil {
		for _, pkg := range pkgs {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Program:   prog,
				Report:    report,
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if a.RunProgram != nil {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     prog.Fset,
			Program:  prog,
			Report:   report,
		}
		if err := a.RunProgram(pass); err != nil {
			t.Fatalf("%s (program): %v", a.Name, err)
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if !claim(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose regexp
// matches msg.
func claim(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts // want expectations from the fixture sources.
func collectWants(t TB, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(text)
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWant parses a sequence of quoted regexps: "a" "b" ...
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("malformed // want: expected quoted regexp at %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("malformed // want: unterminated quote in %q", s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("malformed // want quote %q: %v", s[:end+1], err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad // want regexp %q: %v", lit, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty // want")
	}
	return out, nil
}
