// Fixture for the epochpin analyzer, query-plan side. The path segment
// "plan" puts this package inside the analyzer's gate and makes its
// exported Run entry point a reachability root. The Engine interface
// mirrors the real plan.Engine shape; the concrete implementation lives
// in the sibling core fixture, so the only route from RunContext to the
// Versions call there is a devirtualized interface edge — this is the
// cross-package call-graph fixture.
package plan

import "context"

// Engine is the interface the executor drives; the core fixture's DB
// implements it.
type Engine interface {
	QueryContext(ctx context.Context) context.Context
	Snapshot(doc string) []int
}

// RunContext is a reachability root (exported Run* in a plan package).
func RunContext(ctx context.Context, e Engine) []int {
	ctx = e.QueryContext(ctx)
	_ = ctx
	return e.Snapshot("doc")
}
