// Fixture for the epochpin analyzer, engine side. DB implements the plan
// fixture's Engine interface; Snapshot is reached from plan.RunContext
// only through the devirtualized interface edge, and its direct
// Versions() call is the positive finding. The pinned variant and the
// function outside any query path are the negatives.
package core

import "context"

type DB struct {
	versions map[string][]int
}

func (db *DB) QueryContext(ctx context.Context) context.Context {
	return ctx // the real one pins the epoch; the shape is what matters here
}

// Snapshot is on the pinned query path (RunContext → Snapshot via the
// Engine interface) and reads the live version list.
func (db *DB) Snapshot(doc string) []int {
	return db.Versions(doc) // want "unpinned Versions\\(\\) on pinned query path"
}

// SnapshotPinned uses the clamping API: clean.
func (db *DB) SnapshotPinned(ctx context.Context, doc string) []int {
	return db.VersionsContext(ctx, doc)
}

// Versions is the unpinned compatibility shim — exempt as a caller.
func (db *DB) Versions(doc string) []int {
	return db.versions[doc]
}

// VersionsContext clamps to the epoch pinned in ctx (elided here) —
// exempt as a caller even though it reads the live list.
func (db *DB) VersionsContext(ctx context.Context, doc string) []int {
	_ = ctx
	return db.versions[doc]
}

// Dump is not reachable from any QueryContext or plan entry point, so
// its direct Versions call is fine: maintenance paths need the live list.
func Dump(db *DB) []int {
	return db.Versions("doc")
}
