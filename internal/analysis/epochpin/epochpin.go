// Package epochpin defines an Analyzer enforcing the epoch-pinned read
// discipline from DESIGN.md §3j: every version-list read on a query path
// must go through the context-clamping API so a query observes one
// consistent snapshot.
//
// QueryContext pins the database epoch into the context; from that point
// on, version selection must use VersionsContext (or a pinned lister
// obtained from it), which clamps the returned versions to the pinned
// epoch. A direct Versions() call on such a path reads the live,
// unclamped version list — a version published by a concurrent committer
// mid-query becomes visible to some operators and not others, which is
// exactly the snapshot-consistency violation the temporal operators'
// correctness arguments exclude.
//
// The analyzer is interprocedural: it computes the set of functions
// reachable from the pinned-read roots — every function named
// QueryContext, plus the plan package's exported Run entry points — over
// the whole-program call graph (static calls plus bounded interface
// devirtualization, so a call through plan.Engine reaches the concrete
// engine methods). Any call to a method named Versions, declared in one
// of the version-owning packages (core, store, plan, shard, vcache),
// made from a reachable function is a finding; the diagnostic carries
// the call-graph witness path from the root so the report is actionable
// without re-deriving the reachability by hand.
//
// Functions that ARE the version-listing API — those named Versions or
// VersionsContext — are exempt as callers: the unpinned compatibility
// shim necessarily calls the underlying list, and VersionsContext reads
// the live list before clamping it.
package epochpin

import (
	"sort"
	"strings"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "epochpin",
	Doc:        "flags unclamped Versions() calls on paths reachable from QueryContext/plan execution; pinned query paths must use VersionsContext (DESIGN.md §3j)",
	RunProgram: run,
}

// calleePkgs are the package basenames whose Versions methods constitute
// an unclamped version-list read.
var calleePkgs = map[string]bool{
	"core":   true,
	"store":  true,
	"plan":   true,
	"shard":  true,
	"vcache": true,
}

// exemptCallers are function names allowed to call Versions: the
// version-listing API itself.
var exemptCallers = map[string]bool{
	"Versions":        true,
	"VersionsContext": true,
}

func run(pass *analysis.Pass) error {
	g := pass.Program.Graph

	// Roots: every QueryContext method, plus plan's exported entry points
	// (RunContext pins via the engine's QueryContext when available, but
	// the executor below it must still be pin-clean).
	var roots []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.Decl == nil || n.Fn == nil {
			continue
		}
		name := n.Fn.Name()
		if name == "QueryContext" {
			roots = append(roots, n)
			continue
		}
		if pkg := n.Fn.Pkg(); pkg != nil && analysis.PathBase(pkg.Path()) == "plan" &&
			strings.HasPrefix(name, "Run") && n.Fn.Exported() {
			roots = append(roots, n)
		}
	}

	parents := g.Reachable(roots)

	flagged := 0
	type siteKey struct {
		caller *callgraph.Node
		site   int
	}
	seen := make(map[siteKey]bool)
	var reached []*callgraph.Node
	for n := range parents {
		reached = append(reached, n)
	}
	sort.Slice(reached, func(i, j int) bool { return reached[i].Key < reached[j].Key })

	for _, n := range reached {
		if n.Fn == nil || exemptCallers[n.Fn.Name()] {
			continue
		}
		for _, e := range n.Out {
			callee := e.Callee
			if callee.Fn == nil || callee.Fn.Name() != "Versions" {
				continue
			}
			// Methods only: a receiver distinguishes the version-list API
			// from any free function that happens to share the name.
			if sig := callee.Fn.Signature(); sig == nil || sig.Recv() == nil {
				continue
			}
			pkg := callee.Fn.Pkg()
			if pkg == nil || !calleePkgs[analysis.PathBase(pkg.Path())] {
				continue
			}
			// One finding per call site, even when devirtualization fans
			// the site out to several concrete Versions methods.
			k := siteKey{caller: n, site: int(e.Site)}
			if seen[k] {
				continue
			}
			seen[k] = true
			flagged++
			pass.Reportf(e.Site,
				"unpinned Versions() on pinned query path (%s): use VersionsContext or a pinned lister",
				callgraph.PathTo(parents, n))
		}
	}
	pass.Notef("roots=%d reachable=%d flagged=%d", len(roots), len(parents), flagged)
	return nil
}
