package epochpin_test

import (
	"testing"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/epochpin"
)

func TestEpochpinCrossPackage(t *testing.T) {
	// Both fixture packages load into one program: the finding in core is
	// reachable from plan.RunContext only through the devirtualized
	// Engine-interface edge, so this exercises the cross-package call
	// graph end to end.
	analysistest.RunDirs(t, epochpin.Analyzer, "testdata/src/plan", "testdata/src/core")
}

func TestNeuteredEpochpinFailsFixture(t *testing.T) {
	neutered := *epochpin.Analyzer
	neutered.RunProgram = func(*analysis.Pass) error { return nil }
	rec := analysistest.RunRecorded(&neutered, "testdata/src/plan", "testdata/src/core")
	if rec.FatalMsg != "" {
		t.Fatalf("fixture load failed: %s", rec.FatalMsg)
	}
	if len(rec.Errors) == 0 {
		t.Fatal("neutered epochpin passed its fixture; the fixture no longer guards the analyzer")
	}
}
