// Package metricname keeps the /metrics exposition stable and greppable.
//
// Every metric the server exports is registered through
// internal/metrics.Registry (Counter, Gauge, Histogram, CounterFunc,
// GaugeFunc). Dashboards, the EXPERIMENTS harness, and the serving docs
// all address metrics by name, so names must be (a) string literals — a
// computed name cannot be audited or grepped — and (b) in the txserved
// namespace: ^txserved_[a-z0-9_]+(_total|_seconds)?$.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"txmldb/internal/analysis"
)

// Analyzer checks metric registration names.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric registration names must be string literals matching " +
		"^txserved_[a-z0-9_]+(_total|_seconds)?$",
	Run: run,
}

// namePattern is the required shape of an exported metric name.
var namePattern = regexp.MustCompile(`^txserved_[a-z0-9_]+(_total|_seconds)?$`)

// registrars are the Registry methods whose first argument is a metric
// name.
var registrars = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isRegistration(pass, call) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a string literal so the exposition is greppable; got %s",
					types.ExprString(call.Args[0]))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !namePattern.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q does not match %s", name, namePattern)
			}
			return true
		})
	}
	return nil
}

// isRegistration reports calls to the metrics.Registry registration
// methods.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrars[sel.Sel.Name] {
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/metrics") &&
		named.Obj().Name() == "Registry"
}
