// Package metricname keeps the /metrics exposition stable and greppable.
//
// Every metric the server exports is registered through
// internal/metrics.Registry (Counter, Gauge, Histogram, CounterFunc,
// GaugeFunc). Dashboards, the EXPERIMENTS harness, and the serving docs
// all address metrics by name, so names must be (a) string literals — a
// computed name cannot be audited or grepped — and (b) in the txserved
// namespace: ^txserved_[a-z0-9_]+(_total|_seconds)?$.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"txmldb/internal/analysis"
)

// Analyzer checks metric registration names.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "metric registration names must be string literals matching " +
		"^txserved_[a-z0-9_]+(_total|_seconds)?$; labeled registrars also " +
		"need a literal label key, and the shard label pairs exactly with " +
		"the txserved_shard_* family",
	Run: run,
}

// namePattern is the required shape of an exported metric name.
var namePattern = regexp.MustCompile(`^txserved_[a-z0-9_]+(_total|_seconds)?$`)

// labelPattern is the required shape of a label key on the labeled
// registrars (Prometheus label-name charset, lower-case by repo
// convention).
var labelPattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registrars are the Registry methods whose first argument is a metric
// name.
var registrars = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
	"LabeledCounterFunc": true, "LabeledGaugeFunc": true,
}

// labeled are the registrars that take (name, help, label, value, f): the
// label key is argument 2 and must be a literal too. The per-shard metric
// family is pinned both ways: a txserved_shard_* name must carry the
// "shard" label, and the "shard" label must only appear on that family —
// dashboards aggregate sum by (shard) over exactly this namespace.
var labeled = map[string]bool{
	"LabeledCounterFunc": true, "LabeledGaugeFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isRegistration(pass, call) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "metric name must be a string literal so the exposition is greppable; got %s",
					types.ExprString(call.Args[0]))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !namePattern.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q does not match %s", name, namePattern)
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && labeled[sel.Sel.Name] && len(call.Args) > 2 {
				checkLabel(pass, call, name)
			}
			return true
		})
	}
	return nil
}

// checkLabel validates the label-key argument of a labeled registrar and
// the two-way shard-family rule.
func checkLabel(pass *analysis.Pass, call *ast.CallExpr, name string) {
	lit, ok := call.Args[2].(*ast.BasicLit)
	if !ok {
		pass.Reportf(call.Args[2].Pos(), "metric label key must be a string literal so the exposition is greppable; got %s",
			types.ExprString(call.Args[2]))
		return
	}
	label, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !labelPattern.MatchString(label) {
		pass.Reportf(lit.Pos(), "metric label key %q does not match %s", label, labelPattern)
		return
	}
	if !namePattern.MatchString(name) {
		return // already diagnosed; the family rules presume a valid name
	}
	shardName := strings.HasPrefix(name, "txserved_shard_")
	if shardName && label != "shard" {
		pass.Reportf(lit.Pos(), "per-shard metric %q must use the \"shard\" label, not %q", name, label)
	}
	if !shardName && label == "shard" {
		pass.Reportf(lit.Pos(), "the \"shard\" label is reserved for the txserved_shard_* family; %q is outside it", name)
	}
}

// isRegistration reports calls to the metrics.Registry registration
// methods.
func isRegistration(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registrars[sel.Sel.Name] {
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/metrics") &&
		named.Obj().Name() == "Registry"
}
