package metricname_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", metricname.Analyzer)
}
