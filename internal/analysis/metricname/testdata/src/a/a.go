// Package a is the metricname fixture, registered against the real
// metrics.Registry type.
package a

import "txmldb/internal/metrics"

func register(reg *metrics.Registry, suffix string) {
	// Conforming literal names: allowed.
	reg.Counter("txserved_queries_total", "queries executed")
	reg.Gauge("txserved_inflight_queries", "in flight")
	reg.Histogram("txserved_query_latency_ms", "latency", nil)
	reg.CounterFunc("txserved_vcache_hits_total", "hits", func() int64 { return 0 })

	// Wrong namespace.
	reg.Counter("queries_total", "queries") // want "does not match"
	// Upper case is outside the charset.
	reg.Gauge("txserved_InFlight", "bad case") // want "does not match"
	// Computed names cannot be audited.
	reg.Counter("txserved_"+suffix, "computed") // want "metric name must be a string literal"
}

// lookalike has the same method names on a different type: not gated.
type lookalike struct{}

func (lookalike) Counter(name, help string) {}

func negatives(l lookalike) {
	l.Counter("anything goes here", "not a metrics.Registry")
}
