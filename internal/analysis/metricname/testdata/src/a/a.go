// Package a is the metricname fixture, registered against the real
// metrics.Registry type.
package a

import "txmldb/internal/metrics"

func register(reg *metrics.Registry, suffix string) {
	// Conforming literal names: allowed.
	reg.Counter("txserved_queries_total", "queries executed")
	reg.Gauge("txserved_inflight_queries", "in flight")
	reg.Histogram("txserved_query_latency_ms", "latency", nil)
	reg.CounterFunc("txserved_vcache_hits_total", "hits", func() int64 { return 0 })

	// Wrong namespace.
	reg.Counter("queries_total", "queries") // want "does not match"
	// Upper case is outside the charset.
	reg.Gauge("txserved_InFlight", "bad case") // want "does not match"
	// Computed names cannot be audited.
	reg.Counter("txserved_"+suffix, "computed") // want "metric name must be a string literal"

	// Labeled registrars: conforming per-shard series are allowed; the
	// value (here "00") may be computed — only name and label key are
	// pinned.
	reg.LabeledCounterFunc("txserved_shard_ops_total", "ops", "shard", suffix, func() int64 { return 0 })
	reg.LabeledGaugeFunc("txserved_shard_queue_depth", "depth", "shard", "00", func() int64 { return 0 })

	// Labeled names obey the same namespace rule.
	reg.LabeledGaugeFunc("shard_depth", "depth", "shard", "00", func() int64 { return 0 }) // want "does not match"
	// Label keys must be literals.
	reg.LabeledCounterFunc("txserved_shard_ops_total", "ops", suffix, "00", func() int64 { return 0 }) // want "metric label key must be a string literal"
	// Label keys share the lower-case charset.
	reg.LabeledCounterFunc("txserved_shard_ops_total", "ops", "Shard", "00", func() int64 { return 0 }) // want "metric label key"
	// A txserved_shard_* series must be labeled by shard…
	reg.LabeledGaugeFunc("txserved_shard_docs", "docs", "worker", "3", func() int64 { return 0 }) // want "must use the \"shard\" label"
	// …and the shard label must not leak outside the family.
	reg.LabeledCounterFunc("txserved_queries_total", "queries", "shard", "00", func() int64 { return 0 }) // want "reserved for the txserved_shard_"
}

// lookalike has the same method names on a different type: not gated.
type lookalike struct{}

func (lookalike) Counter(name, help string) {}

func negatives(l lookalike) {
	l.Counter("anything goes here", "not a metrics.Registry")
}
