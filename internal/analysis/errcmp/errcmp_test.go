package errcmp_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", errcmp.Analyzer)
}
