// Package a is the errcmp fixture: sentinel comparisons that must be
// flagged, and errors.Is / nil-comparison forms that must not.
package a

import (
	"context"
	"errors"
	"io"

	"txmldb/internal/pagestore"
)

// ErrLocal is a package-level sentinel in the fixture itself.
var ErrLocal = errors.New("local sentinel")

// errHidden is an unexported sentinel; the convention covers it too.
var errHidden = errors.New("hidden sentinel")

func positives(err error) bool {
	if err == io.EOF { // want "comparison == io.EOF"
		return true
	}
	if err != context.Canceled { // want "comparison != context.Canceled"
		return false
	}
	if err == context.DeadlineExceeded { // want "comparison == context.DeadlineExceeded"
		return true
	}
	if err == pagestore.ErrCorrupt { // want "comparison == pagestore.ErrCorrupt"
		return true
	}
	if ErrLocal == err { // want "comparison == a.ErrLocal"
		return true
	}
	if err == errHidden { // want "comparison == a.errHidden"
		return true
	}
	switch err {
	case io.EOF: // want "switch case compares io.EOF"
		return true
	}
	return false
}

func negatives(err error) bool {
	// errors.Is is the required form.
	if errors.Is(err, io.EOF) || errors.Is(err, pagestore.ErrCorrupt) {
		return true
	}
	// nil comparisons are fine: nil is not a sentinel.
	if err == nil {
		return false
	}
	// Comparing two plain local error variables is not a sentinel compare.
	var other error
	return err == other
}
