// Package errcmp flags ==/!= comparisons against sentinel error values.
//
// PR 1 introduced wrapped errors throughout the storage layer
// (pagestore.ErrCorrupt and friends arrive wrapped in "%w" chains), and
// PR 2/4 route context.Canceled / DeadlineExceeded through the plan
// executor and server the same way. A direct == against any of these
// sentinels silently stops matching the moment a layer adds wrapping, so
// the repo convention is errors.Is everywhere; this analyzer makes the
// convention mechanical.
package errcmp

import (
	"go/ast"
	"go/token"

	"txmldb/internal/analysis"
)

// Analyzer flags direct comparisons with sentinel error values.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "flag ==/!= comparisons against sentinel errors (repo Err* vars, " +
		"context.Canceled/DeadlineExceeded, io.EOF); require errors.Is so " +
		"wrapped errors keep matching",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, e := range []ast.Expr{n.X, n.Y} {
					if name, ok := pass.SentinelError(e); ok {
						pass.Reportf(n.Pos(), "comparison %s %s: use errors.Is so wrapped errors match", n.Op, name)
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case io.EOF: } is == in disguise.
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := pass.SentinelError(e); ok {
							pass.Reportf(e.Pos(), "switch case compares %s with ==: use errors.Is so wrapped errors match", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
