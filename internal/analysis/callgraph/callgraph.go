// Package callgraph builds a whole-program static call graph over the
// packages txvet loaded, so analyzers can reason interprocedurally —
// "is this function reachable from QueryContext?", "which locks does
// this callee acquire?" — instead of seeing one function body at a time.
//
// Nodes are functions and methods, keyed by their types.Func.FullName().
// The string key matters: txvet's loader type-checks each target package
// from source while its dependencies come from gc export data, so the
// *types.Func for (*core.DB).Versions seen from internal/plan is a
// different object than the one produced by checking internal/core
// itself. FullName ("(*txmldb/internal/core.DB).Versions") is identical
// across those universes and makes the cross-package edges line up.
//
// Edges come from three sources:
//
//   - static calls: a call whose Fun resolves (through go/types Uses) to
//     a declared function or a method on a concrete type;
//   - method values through concrete receivers, same resolution;
//   - interface calls, devirtualized: a call through an interface method
//     adds one edge per named type in the loaded program whose method
//     set implements that interface — bounded by a per-site limit, so a
//     fat interface with dozens of implementations degrades to "edges
//     unresolved" (counted in Stats) instead of an edge explosion.
//
// Function literals are attributed to their enclosing declaration: a
// call made inside a closure (including one launched by a go statement)
// is an edge out of the enclosing function. That approximation is sound
// for reachability — the literal cannot run unless its encloser was
// reached — and keeps the graph finite and positional.
//
// Calls through function-typed variables, fields, and parameters are not
// resolved (counted in Stats.UnresolvedSites); like the rest of txvet
// the graph trades whole-program soundness for a dependency-free build.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"txmldb/internal/analysis/load"
)

// DefaultDevirtLimit bounds how many concrete implementations one
// interface call site may fan out to before the site is left unresolved.
const DefaultDevirtLimit = 16

// Node is one function or method in the program.
type Node struct {
	// Key is the stable identity: types.Func.FullName().
	Key string
	// Fn is the function object from the package that declared it (nil
	// until the declaring package is seen; interface methods keep the
	// object from their first use).
	Fn *types.Func
	// Decl is the declaration body, nil for functions declared outside
	// the loaded packages (stdlib, export-data-only deps) and for
	// interface methods.
	Decl *ast.FuncDecl
	// Pkg is the loaded package containing Decl, nil when Decl is.
	Pkg *load.Package
	// Out and In are call edges, deterministically ordered by Build.
	Out []*Edge
	In  []*Edge
}

// Edge is one resolved call site.
type Edge struct {
	Caller, Callee *Node
	// Site is the call position in the caller.
	Site token.Pos
	// Devirtualized marks edges added by interface-implementation
	// matching rather than direct resolution.
	Devirtualized bool
}

// Stats summarizes graph construction for the txvet summary table.
type Stats struct {
	Funcs           int // nodes with a declaration in the loaded packages
	StaticEdges     int
	DevirtEdges     int
	IfaceSites      int // interface call sites seen
	UnresolvedSites int // call sites the builder could not resolve
}

// Graph is the whole-program call graph.
type Graph struct {
	nodes map[string]*Node
	Stats Stats
}

// Build constructs the call graph for the loaded packages. devirtLimit
// bounds interface devirtualization per call site; <= 0 means
// DefaultDevirtLimit.
func Build(pkgs []*load.Package, devirtLimit int) *Graph {
	if devirtLimit <= 0 {
		devirtLimit = DefaultDevirtLimit
	}
	g := &Graph{nodes: make(map[string]*Node)}

	// Pass 1: index every declaration so cross-package edges can land on
	// the declaring node, and collect the named types for devirtualization.
	var impls []types.Type // named types (by value) declared in the program
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.node(fn)
				n.Decl = fd
				n.Pkg = pkg
			}
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, ok := tn.Type().(*types.Named); ok {
				impls = append(impls, tn.Type())
			}
		}
	}

	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				from := g.node(caller)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					g.addCallEdges(pkg, from, call, impls, devirtLimit)
					return true
				})
			}
		}
	}

	// Deterministic edge order: by caller key, then site, then callee key.
	for _, n := range g.nodes {
		sortEdges(n.Out)
		sortEdges(n.In)
	}
	for _, n := range g.nodes {
		if n.Decl != nil {
			g.Stats.Funcs++
		}
	}
	return g
}

func sortEdges(es []*Edge) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Caller.Key != b.Caller.Key {
			return a.Caller.Key < b.Caller.Key
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Callee.Key < b.Callee.Key
	})
}

// node interns the graph node for fn.
func (g *Graph) node(fn *types.Func) *Node {
	key := fn.FullName()
	n, ok := g.nodes[key]
	if !ok {
		n = &Node{Key: key, Fn: fn}
		g.nodes[key] = n
	}
	if n.Fn == nil {
		n.Fn = fn
	}
	return n
}

// Lookup returns the node for fn, or nil if it never appeared.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.FullName()]
}

// LookupKey returns the node with the given FullName key, or nil.
func (g *Graph) LookupKey(key string) *Node { return g.nodes[key] }

// Nodes returns every node, sorted by key.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CalleesAt returns the callee nodes of the edges leaving caller at the
// given call position (several for a devirtualized interface call).
func (g *Graph) CalleesAt(caller *Node, site token.Pos) []*Node {
	var out []*Node
	for _, e := range caller.Out {
		if e.Site == site {
			out = append(out, e.Callee)
		}
	}
	return out
}

// addCallEdges resolves one call expression into graph edges.
func (g *Graph) addCallEdges(pkg *load.Package, from *Node, call *ast.CallExpr, impls []types.Type, devirtLimit int) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			g.addEdge(from, g.node(fn), call.Lparen, false)
			return
		}
		if _, ok := pkg.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return
		}
		if tv, ok := pkg.TypesInfo.Types[fun]; ok && tv.IsType() {
			return // conversion
		}
		g.Stats.UnresolvedSites++
	case *ast.SelectorExpr:
		obj := pkg.TypesInfo.Uses[fun.Sel]
		fn, ok := obj.(*types.Func)
		if !ok {
			if tv, ok := pkg.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return // conversion through a qualified type name
			}
			g.Stats.UnresolvedSites++
			return
		}
		sel := pkg.TypesInfo.Selections[fun]
		if sel == nil {
			// Package-qualified function: pkg.F(...).
			g.addEdge(from, g.node(fn), call.Lparen, false)
			return
		}
		recv := sel.Recv()
		if isInterface(recv) {
			g.Stats.IfaceSites++
			g.addEdge(from, g.node(fn), call.Lparen, false) // the interface method node
			g.devirtualize(from, call.Lparen, recv, fn.Name(), impls, devirtLimit)
			return
		}
		g.addEdge(from, g.node(fn), call.Lparen, false)
	default:
		if tv, ok := pkg.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			return // conversion
		}
		// Calls through function values (fields, parameters, results).
		g.Stats.UnresolvedSites++
	}
}

// devirtualize adds edges from an interface call site to every loaded
// concrete method implementing it, up to limit candidates.
func (g *Graph) devirtualize(from *Node, site token.Pos, recv types.Type, name string, impls []types.Type, limit int) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	var targets []*types.Func
	for _, t := range impls {
		if _, ok := t.Underlying().(*types.Interface); ok {
			continue // interface-to-interface: the method node covers it
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, pkgOf(t), name)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		targets = append(targets, m)
		if len(targets) > limit {
			// Too wide: keep the interface-method edge only.
			g.Stats.UnresolvedSites++
			return
		}
	}
	for _, m := range targets {
		g.addEdge(from, g.node(m), site, true)
		g.Stats.DevirtEdges++
	}
}

func pkgOf(t types.Type) *types.Package {
	if n, ok := t.(*types.Named); ok && n.Obj() != nil {
		return n.Obj().Pkg()
	}
	return nil
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func (g *Graph) addEdge(from, to *Node, site token.Pos, devirt bool) {
	for _, e := range from.Out {
		if e.Callee == to && e.Site == site {
			return
		}
	}
	e := &Edge{Caller: from, Callee: to, Site: site, Devirtualized: devirt}
	from.Out = append(from.Out, e)
	to.In = append(to.In, e)
	if !devirt {
		g.Stats.StaticEdges++
	}
}

// Reachable walks the graph forward from roots and returns, for every
// reached node, the edge through which it was first discovered (nil for
// the roots themselves). The parent chain is the witness path analyzers
// print in diagnostics.
func (g *Graph) Reachable(roots []*Node) map[*Node]*Edge {
	seen := make(map[*Node]*Edge)
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = e
			queue = append(queue, e.Callee)
		}
	}
	return seen
}

// PathTo renders the discovery chain from a root to n as "a → b → c",
// using short function names. parents is a Reachable result.
func PathTo(parents map[*Node]*Edge, n *Node) string {
	var names []string
	for cur := n; cur != nil; {
		names = append(names, cur.Fn.Name())
		e, ok := parents[cur]
		if !ok || e == nil {
			break
		}
		cur = e.Caller
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := ""
	for i, s := range names {
		if i > 0 {
			out += " → "
		}
		out += s
	}
	return out
}
