// Package determinism keeps the operator packages reproducible.
//
// The paper's operator semantics (Nørvåg §6–7) are deterministic: the
// same query over the same version history must produce the same rows in
// the same order, which is also what the byte-identical-at-N-workers test
// from PR 4 and the bench gate rely on. Three things silently break that
// inside internal/model, internal/pattern, internal/plan,
// internal/algebra, internal/diff:
//
//   - time.Now (wall-clock leaking into results),
//   - math/rand (any import of it),
//   - ranging over a map while appending to an outer slice or writing to
//     an io.Writer, without a later sort of that output in the same
//     function — Go randomizes map iteration order per run.
//
// The map-range rule allowlists the collect-then-sort idiom: appends
// inside the range are fine when the destination slice is passed to a
// sort.*/slices.* call after the loop.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"txmldb/internal/analysis"
)

// Analyzer flags nondeterminism sources in operator packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "in model/pattern/plan/algebra/diff: forbid time.Now, math/rand, " +
		"and map-range output into ordered sinks without a following sort",
	Run: run,
}

var targetSegments = map[string]bool{
	"model": true, "pattern": true, "plan": true, "algebra": true, "diff": true,
}

func run(pass *analysis.Pass) error {
	if !targetSegments[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s in a deterministic operator package", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if pass.PkgFunc(call, "time", "Now") {
					pass.Reportf(call.Pos(), "time.Now in a deterministic operator package: results must not depend on wall clock")
				}
				return true
			}
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkMapRanges(pass, fd.Body)
			return true
		})
	}
	return nil
}

// checkMapRanges finds range-over-map loops feeding ordered sinks.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	for _, rs := range ranges {
		checkMapRange(pass, body, rs)
	}
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	// Writer sinks are ordered the moment bytes leave: no sort can fix
	// them, so they are flagged directly.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWriterSink(pass, call) {
			pass.Reportf(call.Pos(), "write to an io.Writer inside range over map: emission order is randomized per run")
		}
		return true
	})

	// Appends to slices declared outside the loop are fine only if the
	// slice is sorted later in the function.
	sinks := make(map[types.Object]ast.Expr)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || obj.Pos() > rs.Pos() {
				continue // declared inside the loop: not an outer sink
			}
			sinks[obj] = as.Lhs[i]
		}
		return true
	})
	for obj, at := range sinks {
		if !sortedAfter(pass, fnBody, rs, obj) {
			pass.Reportf(at.Pos(), "append to %s inside range over map without a later sort: output order is randomized per run", obj.Name())
		}
	}
}

// isWriterSink reports calls that emit ordered output: methods named
// Write*/ on io.Writer-ish receivers, or fmt.Fprint* with a writer arg.
func isWriterSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, name := range []string{"Fprint", "Fprintf", "Fprintln"} {
		if pass.PkgFunc(call, "fmt", name) {
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	s := pass.TypesInfo.Selections[sel]
	return s != nil && s.Kind() == types.MethodVal
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// positioned after the range statement in the function body.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					mentions = true
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
