package determinism_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	// The fixture's path segment "model" is inside the analyzer gate.
	analysistest.Run(t, "testdata/src/model", determinism.Analyzer)
}
