// Package model is the determinism fixture; its path segment matches a
// gated operator package.
package model

import (
	"fmt"
	"io"
	"math/rand" // want "import of math/rand in a deterministic operator package"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic operator package"
}

func randomized() int {
	return rand.Int()
}

func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map without a later sort"
	}
	return out
}

func streamedValues(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "write to an io.Writer inside range over map"
	}
}

// sortedKeys is the canonical collect-then-sort idiom: allowed.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// aggregate ranges over a map into an order-free sink: allowed.
func aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localCollect appends to a slice declared inside the loop body: each
// iteration owns its slice, no cross-iteration ordering leaks out.
func localCollect(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
