// Package load turns Go package patterns into parsed, type-checked
// packages for txvet without depending on golang.org/x/tools/go/packages.
// It shells out to `go list -export -deps -json` — which compiles export
// data for every dependency into the build cache — parses the target
// packages' sources with full comments, and type-checks them with go/types
// using the stdlib gc importer fed from those cached export files. The
// result is the same (Fset, Files, Pkg, TypesInfo) quadruple x/tools
// loaders produce, built entirely from the standard library.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed and type-checked target package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string // absolute paths, as parsed
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load resolves patterns (./..., explicit directories — including
// testdata directories, which wildcards skip) from dir and returns the
// matched packages parsed and type-checked. Test files are not loaded:
// txvet's invariants target production code, and _test.go files are
// exempt from every check by construction.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("load: no packages matched %v", patterns)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Name:      t.Name,
		Dir:       t.Dir,
		GoFiles:   paths,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}
