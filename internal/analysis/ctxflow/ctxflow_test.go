package ctxflow_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	// The fixture's last path segment is "core", one of the gated names.
	analysistest.Run(t, "testdata/src/core", ctxflow.Analyzer)
}

func TestCtxflowSkipsUngatedPackages(t *testing.T) {
	// Same violations in a package named outside the gate: no diagnostics
	// expected, and the fixture has no // want comments, so any report
	// fails the test.
	analysistest.Run(t, "testdata/src/util", ctxflow.Analyzer)
}
