// Package core is the ctxflow fixture; its path segment "core" puts it
// inside the analyzer's gate.
package core

import "context"

// Store has both context-free and context-aware variants of Query.
type Store struct{}

func (s *Store) Query(q string) error                             { _ = q; return nil }
func (s *Store) QueryContext(ctx context.Context, q string) error { _ = ctx; _ = q; return nil }

// Exec has no *Context sibling, so calling it with a ctx in scope is fine.
func (s *Store) Exec(q string) error { _ = q; return nil }

// Run is a package-level pair.
func Run(q string) error { return nil }

// RunContext is Run's context-aware sibling.
func RunContext(ctx context.Context, q string) error { _ = ctx; return nil }

func freshRoot() context.Context {
	return context.Background() // want "context.Background\\(\\) in library code"
}

func todoRoot() context.Context {
	return context.TODO() // want "context.TODO\\(\\) in library code"
}

func droppedMethodCtx(ctx context.Context, s *Store) error {
	return s.Query("q") // want "Query drops the in-scope ctx; call QueryContext"
}

func droppedPkgCtx(ctx context.Context) error {
	return Run("q") // want "Run drops the in-scope ctx; call RunContext"
}

func negatives(ctx context.Context, s *Store) error {
	// Passing the ctx through is the required form.
	if err := s.QueryContext(ctx, "q"); err != nil {
		return err
	}
	if err := RunContext(ctx, "q"); err != nil {
		return err
	}
	// No *Context sibling exists: nothing to propagate into.
	return s.Exec("q")
}

// noCtxInScope has no ctx parameter, so the context-free variant is the
// only option and is not flagged.
func noCtxInScope(s *Store) error {
	return s.Query("q")
}
