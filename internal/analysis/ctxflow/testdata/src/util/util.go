// Package util is outside ctxflow's package gate: the same patterns that
// are violations in core/plan/server/parallel are permitted here, and the
// test asserts zero diagnostics.
package util

import "context"

// Helper may build a root context: util is not on the request path.
func Helper() context.Context {
	return context.Background()
}
