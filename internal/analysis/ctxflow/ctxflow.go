// Package ctxflow enforces context propagation in the request path.
//
// PR 2 threaded context deadlines from the HTTP server through the plan
// executor, and PR 4's parallel tier relies on that same context for
// first-error cancellation. A context.Background() (or context.TODO())
// materialized inside internal/core, internal/plan, internal/server, or
// internal/parallel severs that chain: the query keeps running after the
// client is gone. Likewise, calling the context-free variant of an API
// (Run, Query, ...) from a function that already holds a ctx drops the
// deadline on the floor when a *Context sibling (RunContext,
// QueryContext, ...) exists.
//
// The analyzer gates on the package's last path segment (core, plan,
// server, parallel) so fixture packages named the same way exercise it.
// Package main and _test.go files are exempt: entry points and tests are
// where fresh root contexts belong.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"txmldb/internal/analysis"
)

// Analyzer flags severed context chains in the query path.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "in core/plan/server/parallel: flag context.Background()/TODO() in " +
		"library code, and calls that drop an in-scope ctx when a *Context " +
		"sibling of the callee exists",
	Run: run,
}

// targetSegments are the last path segments of the gated packages.
var targetSegments = map[string]bool{
	"core": true, "plan": true, "server": true, "parallel": true,
}

func run(pass *analysis.Pass) error {
	if !targetSegments[analysis.PathBase(pass.Pkg.Path())] || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		// Rule 1: no fresh root contexts in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if pass.PkgFunc(call, "context", name) {
					pass.Reportf(call.Pos(), "context.%s() in library code severs cancellation; accept and propagate a ctx", name)
				}
			}
			return true
		})
		// Rule 2: a function holding a ctx must not call the context-free
		// variant of an API whose *Context sibling exists.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd) {
				continue
			}
			checkDroppedCtx(pass, fd)
		}
	}
	return nil
}

// hasCtxParam reports whether the function declares a context.Context
// parameter.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

func checkDroppedCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || takesContext(callee) {
			return true
		}
		sibling := contextSibling(pass, call, callee)
		if sibling == nil {
			return true
		}
		pass.Reportf(call.Pos(), "%s drops the in-scope ctx; call %s with it", callee.Name(), sibling.Name())
		return true
	})
}

// calleeFunc resolves the called function or method, or nil for calls of
// function-typed values, conversions, and builtins.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// takesContext reports whether the function's first parameter is a
// context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return analysis.IsContextType(sig.Params().At(0).Type())
}

// contextSibling finds a callable named <callee>Context that accepts a
// context: a method on the same receiver, or a function in the same
// package scope for package-level callees.
func contextSibling(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) *types.Func {
	name := callee.Name() + "Context"
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			obj, _, _ := types.LookupFieldOrMethod(s.Recv(), true, pass.Pkg, name)
			if fn, ok := obj.(*types.Func); ok && takesContext(fn) {
				return fn
			}
			return nil
		}
	}
	if callee.Pkg() == nil {
		return nil
	}
	if fn, ok := callee.Pkg().Scope().Lookup(name).(*types.Func); ok && takesContext(fn) {
		return fn
	}
	return nil
}
