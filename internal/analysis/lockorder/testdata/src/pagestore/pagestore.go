// Negative fixture for the lockorder analyzer: every path takes outer
// before inner — including the path where inner is acquired inside a
// callee — so the order graph has edges but no cycle, and nothing is
// reported.
package pagestore

import "sync"

type P struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (p *P) Flush() {
	p.outer.Lock()
	defer p.outer.Unlock()
	p.meta()
}

func (p *P) meta() {
	p.inner.Lock()
	defer p.inner.Unlock()
}

func (p *P) Stat() {
	p.outer.Lock()
	p.inner.Lock()
	p.inner.Unlock()
	p.outer.Unlock()
}
