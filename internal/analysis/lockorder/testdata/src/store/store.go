// Fixture for the lockorder analyzer: the canonical two-mutex AB/BA
// cycle, both orders taken directly within one package. The cycle is
// reported once, anchored at the acquisition that closes it, with the
// witness path naming both functions.
package store

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

func lockAB(s *S) {
	s.a.Lock()
	s.b.Lock() // want "lock-order cycle: store.S.a → store.S.b → store.S.a"
	s.b.Unlock()
	s.a.Unlock()
}

func lockBA(s *S) {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

// double locks the same plain mutex twice on one path: an immediate
// self-deadlock, reported directly.
func double(s *S) {
	s.a.Lock()
	s.a.Lock() // want "self-deadlock"
	s.a.Unlock()
	s.a.Unlock()
}
