// Fixture for the lockorder analyzer, interprocedural case: one half of
// the cycle is only visible through the call graph — XthenY holds x and
// acquires y by calling takeY, while YthenX takes the locks directly in
// the opposite order. The report lands on the call that closes the
// cycle and names the callee in the witness.
package core

import "sync"

type C struct {
	x sync.Mutex
	y sync.Mutex
}

func (c *C) takeY() {
	c.y.Lock()
	c.y.Unlock()
}

func (c *C) XthenY() {
	c.x.Lock()
	defer c.x.Unlock()
	c.takeY() // want "lock-order cycle: core.C.x → core.C.y → core.C.x"
}

func (c *C) YthenX() {
	c.y.Lock()
	defer c.y.Unlock()
	c.x.Lock()
	c.x.Unlock()
}
