// Package lockorder defines an Analyzer that builds a whole-program
// mutex-acquisition-order graph and reports cycles as potential
// deadlocks. If one code path locks A then B while another locks B then
// A, the two paths can each hold their first mutex and block forever on
// the second; the repo's layered lock discipline (pagestore below store
// below core, shard and vcache on the side) is exactly a claim that this
// graph is acyclic — this analyzer machine-checks it.
//
// Locks are identified structurally, not by object: a field mutex is
// "pkg.Type.field" (every instance of store.Store.mu is one graph node,
// because instances share the code paths that order them), a
// package-level mutex is "pkg.var", and a function-local one is
// "pkg.func.var". Acquisition order is computed with the flow walker:
// within each function the held set advances through Lock/RLock and
// Unlock/RUnlock (deferred unlocks applying at exits, so a mutex stays
// held through the body), and acquiring l while holding h adds the edge
// h → l. Order also flows through calls: a fixpoint over the call graph
// computes every lock a callee may acquire (directly or transitively),
// and a call made while holding h adds h → l for each such l — this is
// what catches an AB/BA split across functions or packages.
//
// Cycles are found per strongly connected component and reported once,
// with a witness: for each edge in the cycle, where the second lock was
// acquired while the first was held. Call-derived self-edges (a helper
// that re-acquires the lock its caller holds) are deliberately not
// reported here — the intraprocedural double-Lock case is, since locking
// a sync.Mutex already held by the same goroutine is an immediate
// self-deadlock, not just a potential one.
//
// Locks acquired inside function literals are attributed to nothing (the
// flow walker does not enter literals); like the rest of txvet this
// trades soundness at the edges for zero-dependency precision at the
// core.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/callgraph"
	"txmldb/internal/analysis/flow"
	"txmldb/internal/analysis/load"
)

var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "builds the global mutex-acquisition graph across engine packages and reports lock-order cycles (potential deadlocks) with witness paths",
	RunProgram: run,
}

// targetSegments are the engine packages participating in the global
// lock order.
var targetSegments = map[string]bool{
	"pagestore":  true,
	"store":      true,
	"core":       true,
	"shard":      true,
	"vcache":     true,
	"checkpoint": true,
}

// orderEdge is the first witness for "to acquired while holding from".
type orderEdge struct {
	from, to string
	fn       *callgraph.Node
	site     token.Pos
	via      *callgraph.Node // callee that (transitively) acquires to; nil for a direct acquire
}

type builder struct {
	pass  *analysis.Pass
	graph *callgraph.Graph

	edges map[[2]string]*orderEdge
	adj   map[string]map[string]bool
	locks map[string]bool

	// direct lock sets and call records feeding the interprocedural pass.
	direct map[*callgraph.Node]map[string]token.Pos
	calls  map[*callgraph.Node][]callRec
}

type callRec struct {
	site token.Pos
	held []string
}

func run(pass *analysis.Pass) error {
	b := &builder{
		pass:   pass,
		graph:  pass.Program.Graph,
		edges:  make(map[[2]string]*orderEdge),
		adj:    make(map[string]map[string]bool),
		locks:  make(map[string]bool),
		direct: make(map[*callgraph.Node]map[string]token.Pos),
		calls:  make(map[*callgraph.Node][]callRec),
	}

	var fns []*callgraph.Node
	for _, n := range b.graph.Nodes() {
		if n.Decl == nil || n.Pkg == nil || n.Decl.Body == nil {
			continue
		}
		if !targetSegments[analysis.PathBase(n.Pkg.PkgPath)] {
			continue
		}
		fns = append(fns, n)
	}

	for _, fn := range fns {
		b.walkFunc(fn)
	}
	acquired := b.fixpoint(fns)
	for _, fn := range fns {
		for _, rec := range b.calls[fn] {
			for _, callee := range b.graph.CalleesAt(fn, rec.site) {
				for _, l := range sortedKeys(acquired[callee]) {
					for _, h := range rec.held {
						if h == l {
							continue // call-derived self-edge: helper under caller's lock
						}
						b.addEdge(h, l, fn, rec.site, callee)
					}
				}
			}
		}
	}

	cycles := b.reportCycles()
	pass.Notef("locks=%d order-edges=%d cycles=%d", len(b.locks), len(b.edges), cycles)
	return nil
}

// walkFunc records direct acquisition order, double-locks, and the held
// set at every call site in one function.
func (b *builder) walkFunc(fn *callgraph.Node) {
	pkg := fn.Pkg
	flow.Walk(fn.Decl.Body, flow.Hooks{
		Call: func(st flow.Facts, call *ast.CallExpr) {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				b.recordCall(fn, st, call)
				return
			}
			op := sel.Sel.Name
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
			default:
				b.recordCall(fn, st, call)
				return
			}
			recvT, ok := pkg.TypesInfo.Types[sel.X]
			if !ok || !isMutex(recvT.Type) {
				b.recordCall(fn, st, call)
				return
			}
			id := b.lockID(pkg, fn, sel.X)
			switch op {
			case "Unlock", "RUnlock":
				delete(st, id)
			default:
				if prev, held := st[id]; held && op == "Lock" {
					b.pass.Reportf(call.Pos(),
						"mutex %s locked at %s is locked again on the same path: self-deadlock",
						id, b.pass.Fset.Position(prev))
				}
				b.locks[id] = true
				for _, h := range sortedKeys(st) {
					if h != id {
						b.addEdge(h, id, fn, call.Pos(), nil)
					}
				}
				if b.direct[fn] == nil {
					b.direct[fn] = make(map[string]token.Pos)
				}
				if _, ok := b.direct[fn][id]; !ok {
					b.direct[fn][id] = call.Pos()
				}
				st[id] = call.Pos()
			}
		},
	})
}

func (b *builder) recordCall(fn *callgraph.Node, st flow.Facts, call *ast.CallExpr) {
	if len(st) == 0 {
		return
	}
	b.calls[fn] = append(b.calls[fn], callRec{site: call.Lparen, held: sortedKeys(st)})
}

// fixpoint computes, for every function, the set of locks it may acquire
// directly or through any call chain.
func (b *builder) fixpoint(fns []*callgraph.Node) map[*callgraph.Node]map[string]token.Pos {
	acquired := make(map[*callgraph.Node]map[string]token.Pos, len(fns))
	for _, fn := range fns {
		acquired[fn] = make(map[string]token.Pos)
		for l, pos := range b.direct[fn] {
			acquired[fn][l] = pos
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			for _, e := range fn.Out {
				callee := acquired[e.Callee]
				if callee == nil {
					continue
				}
				for l, pos := range callee {
					if _, ok := acquired[fn][l]; !ok {
						acquired[fn][l] = pos
						changed = true
					}
				}
			}
		}
	}
	return acquired
}

func (b *builder) addEdge(from, to string, fn *callgraph.Node, site token.Pos, via *callgraph.Node) {
	b.locks[from] = true
	b.locks[to] = true
	k := [2]string{from, to}
	if _, ok := b.edges[k]; !ok {
		b.edges[k] = &orderEdge{from: from, to: to, fn: fn, site: site, via: via}
	}
	if b.adj[from] == nil {
		b.adj[from] = make(map[string]bool)
	}
	b.adj[from][to] = true
}

// reportCycles finds strongly connected components of the order graph
// and reports one witness cycle per non-trivial SCC.
func (b *builder) reportCycles() int {
	sccs := tarjan(sortedKeys(b.locks), func(n string) []string { return sortedKeys(b.adj[n]) })
	cycles := 0
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		cycles++
		cycle := b.witnessCycle(scc)
		var path strings.Builder
		for i, l := range cycle {
			if i > 0 {
				path.WriteString(" → ")
			}
			path.WriteString(l)
		}
		path.WriteString(" → ")
		path.WriteString(cycle[0])
		var wits []string
		var reportAt token.Pos
		for i := range cycle {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := b.edges[[2]string{from, to}]
			if e == nil {
				continue
			}
			if reportAt == token.NoPos {
				reportAt = e.site
			}
			w := fmt.Sprintf("%s acquired while holding %s in %s at %s",
				to, from, e.fn.Fn.Name(), b.pass.Fset.Position(e.site))
			if e.via != nil {
				w += fmt.Sprintf(" (via call to %s)", e.via.Fn.Name())
			}
			wits = append(wits, w)
		}
		b.pass.Reportf(reportAt, "lock-order cycle: %s; %s", path.String(), strings.Join(wits, "; "))
	}
	return cycles
}

// witnessCycle walks inside one SCC from its smallest lock, always
// taking the smallest in-SCC successor, until a lock repeats; it returns
// the cycle in deterministic order.
func (b *builder) witnessCycle(scc []string) []string {
	in := make(map[string]bool, len(scc))
	for _, l := range scc {
		in[l] = true
	}
	sort.Strings(scc)
	start := scc[0]
	var path []string
	index := make(map[string]int)
	cur := start
	for {
		if at, seen := index[cur]; seen {
			return path[at:]
		}
		index[cur] = len(path)
		path = append(path, cur)
		next := ""
		for _, s := range sortedKeys(b.adj[cur]) {
			if in[s] {
				next = s
				break
			}
		}
		if next == "" {
			return path // cannot happen in a real SCC; be defensive
		}
		cur = next
	}
}

// lockID names a mutex structurally; see the package comment.
func (b *builder) lockID(pkg *load.Package, fn *callgraph.Node, recv ast.Expr) string {
	base := analysis.PathBase(pkg.PkgPath)
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := namedName(sel.Recv()); owner != "" {
				return base + "." + owner + "." + e.Sel.Name
			}
		}
		return base + "." + types.ExprString(e)
	case *ast.Ident:
		if v, ok := pkg.TypesInfo.Uses[e].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return base + "." + e.Name
			}
		}
		return base + "." + fn.Fn.Name() + "." + e.Name
	default:
		return base + "." + types.ExprString(recv)
	}
}

func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// tarjan computes strongly connected components (iterative Tarjan) over
// nodes with the given successor function; components come out in a
// deterministic order because nodes and successors are pre-sorted.
func tarjan(nodes []string, succ func(string) []string) [][]string {
	type frame struct {
		node string
		next int
	}
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	counter := 0

	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			n := f.node
			if f.next == 0 {
				index[n] = counter
				low[n] = counter
				counter++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			ss := succ(n)
			for f.next < len(ss) {
				s := ss[f.next]
				f.next++
				if _, seen := index[s]; !seen {
					work = append(work, frame{node: s})
					advanced = true
					break
				}
				if onStack[s] && index[s] < low[n] {
					low[n] = index[s]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == n {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	return sccs
}
