package lockorder_test

import (
	"testing"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/lockorder"
)

func TestLockorderDirectCycle(t *testing.T) {
	// Two-mutex AB/BA cycle within one package, plus a direct double-Lock
	// self-deadlock.
	analysistest.Run(t, "testdata/src/store", lockorder.Analyzer)
}

func TestLockorderInterproceduralCycle(t *testing.T) {
	// One half of the cycle only exists through a call edge: x is held
	// while a callee acquires y.
	analysistest.Run(t, "testdata/src/core", lockorder.Analyzer)
}

func TestLockorderConsistentOrderClean(t *testing.T) {
	// Negative: outer-before-inner everywhere (directly and through a
	// callee) builds edges but no cycle.
	analysistest.Run(t, "testdata/src/pagestore", lockorder.Analyzer)
}

func TestNeuteredLockorderFailsFixture(t *testing.T) {
	neutered := *lockorder.Analyzer
	neutered.RunProgram = func(*analysis.Pass) error { return nil }
	rec := analysistest.RunRecorded(&neutered, "testdata/src/store")
	if rec.FatalMsg != "" {
		t.Fatalf("fixture load failed: %s", rec.FatalMsg)
	}
	if len(rec.Errors) == 0 {
		t.Fatal("neutered lockorder passed its fixture; the fixture no longer guards the analyzer")
	}
}
