// Package stagedfree defines an Analyzer enforcing the two-phase extent
// free protocol: a FreeStaged call stages extents for reuse but does not
// release them — the transaction must either publish and ReleaseStaged,
// or abandon and UnfreeStaged. A path that returns with a staging still
// open leaks the extents until restart (they are neither reusable nor
// accounted), and on the error path it silently converts a failed commit
// into permanent space loss.
//
// The check is a must-release obligation over the flow walker: every
// FreeStaged(x) plants an obligation keyed by the argument expression,
// ReleaseStaged(x) or UnfreeStaged(x) discharges it, and any function
// exit (including implicit final returns and error returns, with
// deferred calls applied) still holding the obligation is a finding at
// the FreeStaged site. The walker unions facts at joins, so the
// obligation is reported unless EVERY non-panic path discharges it —
// the conservative direction for a leak check. Panic paths are exempt:
// the process is going down and recovery-time accounting rebuilds the
// free map anyway.
package stagedfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "stagedfree",
	Doc:  "every FreeStaged must reach ReleaseStaged or UnfreeStaged on all non-panic paths, including error returns",
	Run:  run,
}

// targetSegments gates the check to the packages that participate in the
// two-phase free protocol.
var targetSegments = map[string]bool{
	"store":     true,
	"core":      true,
	"shard":     true,
	"pagestore": true,
}

func run(pass *analysis.Pass) error {
	if !targetSegments[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	staged := 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			staged += check(pass, fd)
		}
	}
	pass.Notef("staged-sites=%d", staged)
	return nil
}

// obligationKey names a staged free by its argument expression, so the
// release must mention the same extents: FreeStaged(old) pairs with
// ReleaseStaged(old), not with a release of some other batch.
func obligationKey(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return "()"
	}
	return types.ExprString(call.Args[0])
}

// methodName returns the selector name of a method-style call, or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) int {
	// leaks collects obligation positions still live at some exit; a map
	// dedupes the same FreeStaged reported from multiple exits.
	leaks := make(map[token.Pos]string)
	sites := 0
	flow.Walk(fd.Body, flow.Hooks{
		Call: func(st flow.Facts, call *ast.CallExpr) {
			switch methodName(call) {
			case "FreeStaged":
				sites++
				st["staged:"+obligationKey(call)] = call.Pos()
			case "ReleaseStaged", "UnfreeStaged":
				delete(st, "staged:"+obligationKey(call))
			}
		},
		Exit: func(st flow.Facts, at ast.Node) {
			for k, pos := range st {
				leaks[pos] = k
			}
		},
	})
	var positions []token.Pos
	for pos := range leaks {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		pass.Reportf(pos,
			"FreeStaged not released on all paths: some return is missing ReleaseStaged or UnfreeStaged for %s",
			leaks[pos][len("staged:"):])
	}
	return sites
}
