// Fixture for the stagedfree analyzer. The path segment "store" puts
// this package inside the gate. The shapes mirror the real commit path:
// stage the old extents, publish, release — with the error path required
// to unfree instead.
package store

import "errors"

type pages struct{}

func (pages) FreeStaged(ids []uint64)    {}
func (pages) ReleaseStaged(ids []uint64) {}
func (pages) UnfreeStaged(ids []uint64)  {}

var errBoom = errors.New("boom")

// commitGood discharges the staging on both the error and success paths.
func commitGood(p pages, old []uint64, fail bool) error {
	p.FreeStaged(old)
	if fail {
		p.UnfreeStaged(old)
		return errBoom
	}
	p.ReleaseStaged(old)
	return nil
}

// commitErrLeak forgets the error path: the staged extents leak when the
// publish fails.
func commitErrLeak(p pages, old []uint64, fail bool) error {
	p.FreeStaged(old) // want "FreeStaged not released on all paths"
	if fail {
		return errBoom
	}
	p.ReleaseStaged(old)
	return nil
}

// commitNoRelease never discharges at all.
func commitNoRelease(p pages, old []uint64) {
	p.FreeStaged(old) // want "FreeStaged not released on all paths"
}

// commitDeferred releases through a defer, which covers every return.
func commitDeferred(p pages, old []uint64, fail bool) error {
	p.FreeStaged(old)
	defer p.ReleaseStaged(old)
	if fail {
		return errBoom
	}
	return nil
}

// commitPanic is clean: panic paths are exempt (recovery-time accounting
// rebuilds the free map), and the surviving path releases.
func commitPanic(p pages, old []uint64, fail bool) {
	p.FreeStaged(old)
	if fail {
		panic("corrupt")
	}
	p.ReleaseStaged(old)
}

// wrongBatch releases a different batch than it staged: the obligation
// is keyed by argument, so this is still a leak of old.
func wrongBatch(p pages, old, other []uint64) {
	p.FreeStaged(old) // want "FreeStaged not released on all paths"
	p.ReleaseStaged(other)
}

// commitLoop stages and releases inside one loop iteration: clean.
func commitLoop(p pages, batches [][]uint64) {
	for _, b := range batches {
		p.FreeStaged(b)
		p.ReleaseStaged(b)
	}
}
