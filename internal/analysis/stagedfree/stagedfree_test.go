package stagedfree_test

import (
	"testing"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/stagedfree"
)

func TestStagedfree(t *testing.T) {
	// The fixture's path segment "store" is inside the analyzer gate:
	// every staged free must be released or unfreed on all non-panic
	// paths, including error returns.
	analysistest.Run(t, "testdata/src/store", stagedfree.Analyzer)
}

func TestNeuteredStagedfreeFailsFixture(t *testing.T) {
	neutered := *stagedfree.Analyzer
	neutered.Run = func(*analysis.Pass) error { return nil }
	rec := analysistest.RunRecorded(&neutered, "testdata/src/store")
	if rec.FatalMsg != "" {
		t.Fatalf("fixture load failed: %s", rec.FatalMsg)
	}
	if len(rec.Errors) == 0 {
		t.Fatal("neutered stagedfree passed its fixture; the fixture no longer guards the analyzer")
	}
}
