package fsyncpoint_test

import (
	"testing"

	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/fsyncpoint"
)

func TestFsyncpointEngineSide(t *testing.T) {
	// The fixture's path segment "store" is inside the analyzer gate: every
	// direct Backend.Commit/Sync and os.File.Sync is a finding there.
	analysistest.Run(t, "testdata/src/store", fsyncpoint.Analyzer)
}

func TestFsyncpointPagestore(t *testing.T) {
	// Storage side: the method-value flush wiring and decorator delegation
	// are allowed, direct barrier calls are findings.
	analysistest.Run(t, "testdata/src/pagestore", fsyncpoint.Analyzer)
}
