// Package pagestore is the fsyncpoint fixture for the storage side; its
// path segment matches the real page-store package so the analyzer gate
// admits it. Inside the page store the barrier may be wired into the
// batcher as a method value and delegated by backend decorators; any
// other direct call is a finding.
package pagestore

// FixtureBackend mimics the pluggable I/O surface.
type FixtureBackend interface {
	Commit() error
	Sync() error
}

// Committer mimics the group-commit batcher.
type Committer struct {
	flush func() error
}

// NewCommitter records the flush function — the batch's durability point.
func NewCommitter(flush func() error) *Committer {
	return &Committer{flush: flush}
}

// Store mirrors the real page store: a backend and an optional batcher.
type Store struct {
	backend FixtureBackend
	group   *Committer
}

// NewStore wires the backend barrier into the batcher as a method value —
// the intended flush wiring, not a call, so it is allowed.
func NewStore(b FixtureBackend) *Store {
	return &Store{backend: b, group: NewCommitter(b.Commit)}
}

// Commit falls back to a synchronous barrier when no batcher runs; the
// direct call is a finding unless justified.
func (s *Store) Commit() error {
	if s.group != nil {
		return s.group.flush()
	}
	return s.backend.Commit() // want "FixtureBackend.Commit called outside the batcher flush path"
}

func (s *Store) syncDirect() error {
	return s.backend.Sync() // want "FixtureBackend.Sync called outside the batcher flush path"
}

// Wrapper is a backend decorator (it implements FixtureBackend itself);
// forwarding the barrier to the inner backend is the legitimate shape.
type Wrapper struct {
	inner FixtureBackend
}

func (w *Wrapper) Commit() error { return w.inner.Commit() }
func (w *Wrapper) Sync() error   { return w.inner.Sync() }
