// Package store is the fsyncpoint fixture for the engine side; its path
// segment matches the real version-store package so the analyzer gate
// admits it. On the engine side every direct barrier is a finding: the
// engine must commit through the page store so group commit can batch
// the fsync.
package store

import "os"

// FixtureBackend mimics the pluggable I/O surface: a named interface
// ending in "Backend" with a durability barrier.
type FixtureBackend interface {
	Commit() error
	Sync() error
}

// Pages mimics the page store facade the engine is supposed to use.
type Pages struct{}

// Commit is the sanctioned commit path.
func (*Pages) Commit() error { return nil }

// Engine mirrors the store shape: a page store, a raw backend, a file.
type Engine struct {
	pages   *Pages
	backend FixtureBackend
	f       *os.File
}

// commitViaPages is the correct shape: the page store owns the barrier.
func (e *Engine) commitViaPages() error {
	return e.pages.Commit()
}

func (e *Engine) commitDirect() error {
	return e.backend.Commit() // want "FixtureBackend.Commit called from store"
}

func (e *Engine) syncDirect() error {
	return e.backend.Sync() // want "FixtureBackend.Sync called from store"
}

func (e *Engine) fsyncFile() error {
	return e.f.Sync() // want "os.File.Sync called from store"
}

// Commit delegation does not excuse the engine: even from a method named
// Commit, the barrier belongs to the page store.
func (e *Engine) Commit() error {
	return e.backend.Commit() // want "FixtureBackend.Commit called from store"
}

// closeFile is fine — only Sync is a barrier.
func (e *Engine) closeFile() error {
	return e.f.Close()
}
