// Package fsyncpoint guards the write path's single durability point.
//
// PR 9 introduced WAL group commit: concurrent commits collect in a
// batcher and share one backend fsync, so sustained commit throughput
// scales with writers instead of being bounded by the disk's sync
// latency. The whole design collapses if any code path issues its own
// durability barrier — a direct Backend.Commit from the engine is a
// per-commit fsync that silently bypasses the batch, and the workload
// measures single-writer throughput no matter how many writers run.
//
// The analyzer inspects internal/pagestore, internal/store, and
// internal/core and reports calls (not method values — passing
// backend.Commit as the batcher's flush function is exactly the intended
// wiring) named Commit or Sync through a value whose type is a named
// interface ending in "Backend":
//
//   - in store and core: every such call, plus (*os.File).Sync — the
//     engine must commit through (*pagestore.Store).Commit, which routes
//     into the group committer when a window is configured;
//   - in pagestore: every such call except delegation inside a backend
//     decorator (a method on a type that itself implements the same
//     Backend interface, e.g. the fault injector forwarding Commit to its
//     inner backend). The synchronous no-batcher fallback in
//     (*Store).Commit is a real finding and carries its //txvet:ignore
//     justification — it IS the durability point when batching is off.
//
// The check is intraprocedural; like the rest of txvet it trades whole-
// program soundness for zero dependencies and fast CI feedback.
package fsyncpoint

import (
	"go/ast"
	"go/types"
	"strings"

	"txmldb/internal/analysis"
)

// Analyzer flags durability barriers issued outside the batcher flush path.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncpoint",
	Doc: "in pagestore/store/core: flag Backend.Commit/Sync calls (and engine-side " +
		"os.File.Sync) outside the group-commit flush path — the fsync belongs to " +
		"the page store's commit path so batching can amortize it",
	Run: run,
}

var targetSegments = map[string]bool{
	"pagestore": true, "store": true, "core": true,
}

func run(pass *analysis.Pass) error {
	seg := analysis.PathBase(pass.Pkg.Path())
	if !targetSegments[seg] {
		return nil
	}
	engineSide := seg != "pagestore"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Commit" && name != "Sync" {
					return true
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.MethodVal {
					return true
				}
				if iface, ifname, ok := backendInterface(s.Recv()); ok {
					switch {
					case engineSide:
						pass.Reportf(call.Pos(), "%s.%s called from %s: commit through the page store so a configured group-commit window can batch the fsync",
							ifname, name, seg)
					case !delegates(pass, fd, iface):
						pass.Reportf(call.Pos(), "%s.%s called outside the batcher flush path: the backend barrier is the batch's single durability point",
							ifname, name)
					}
					return true
				}
				if engineSide && name == "Sync" && isOSFile(s.Recv()) {
					pass.Reportf(call.Pos(), "os.File.Sync called from %s: per-commit fsync belongs to the page store's commit path, not the engine", seg)
				}
				return true
			})
		}
	}
	return nil
}

// delegates reports whether fd is a method on a type that itself
// implements iface — a backend decorator forwarding the barrier to its
// inner backend, which is the one legitimate non-batcher call shape
// inside pagestore.
func delegates(pass *analysis.Pass, fd *ast.FuncDecl, iface *types.Named) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	rt := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	it, ok := iface.Underlying().(*types.Interface)
	if rt == nil || !ok {
		return false
	}
	return types.Implements(rt, it)
}

// backendInterface reports whether t (or *t) is a named interface whose
// name ends in "Backend", returning the type and its name.
func backendInterface(t types.Type) (*types.Named, string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, "", false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return nil, "", false
	}
	name := named.Obj().Name()
	if !strings.HasSuffix(name, "Backend") {
		return nil, "", false
	}
	return named, name, true
}

// isOSFile reports whether t (or *t) is os.File.
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
