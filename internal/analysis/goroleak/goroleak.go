// Package goroleak defines an Analyzer enforcing goroutine lifecycle
// discipline in the engine packages: every go statement must be bound to
// something that bounds its life — a context (cancellation reaches it),
// or a completion registration (WaitGroup.Done, a close/send on a stop
// channel) that some other path in the package waits on. An unbound
// goroutine outlives Close/Shutdown: it races engine teardown, holds
// references that keep files and caches alive, and turns clean process
// exit into a flake.
//
// A go statement is accepted when any of the following holds:
//
//   - context-bound: the spawned function's signature takes a
//     context.Context, an argument of context type is passed, or (for a
//     function literal) the body references a context-typed variable —
//     cancellation is wired in;
//   - WaitGroup-bound: the spawned literal calls Done() on a
//     sync.WaitGroup that the enclosing function Wait()s on (local
//     fork/join), or on a WaitGroup field that some function in the
//     package Wait()s on (Close/Shutdown joins the worker);
//   - channel-bound: the spawned literal closes or sends on a channel
//     that the enclosing function receives from, or a channel field some
//     function in the package receives from (completion is observed);
//   - method spawn (go x.run()): the method's body closes or Done()s a
//     field that the declaring package waits on, resolved through the
//     call graph — the batcher's `go g.run()` / `close(g.stopped)` /
//     `<-g.stopped` in Close is the canonical shape.
//
// The "somewhere in the package" half is deliberately name-based on the
// field (every instance shares the shutdown protocol its methods
// implement); the local half requires the wait in the same function.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/load"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in engine packages must be ctx-bound or register on a WaitGroup/stop channel that a Close/Shutdown path waits on",
	Run:  run,
}

// targetSegments are the packages whose goroutines must be
// lifecycle-bound.
var targetSegments = map[string]bool{
	"core":       true,
	"store":      true,
	"pagestore":  true,
	"shard":      true,
	"vcache":     true,
	"checkpoint": true,
	"parallel":   true,
	"server":     true,
	"txserved":   true,
}

func run(pass *analysis.Pass) error {
	if !targetSegments[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	c := &checker{
		pass:      pass,
		pkgAwaits: make(map[*load.Package]map[string]bool),
	}

	sites, flagged := 0, 0
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			local := awaitKeys(pass.TypesInfo, fd.Body, false)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				sites++
				if !c.bound(g, local) {
					flagged++
					pass.Reportf(g.Pos(),
						"goroutine is not bound to a context, or to a WaitGroup/stop channel that a shutdown path waits on")
				}
				return true
			})
		}
	}
	pass.Notef("go-sites=%d flagged=%d", sites, flagged)
	return nil
}

type checker struct {
	pass *analysis.Pass
	// pkgAwaits caches the field-scoped await keys per package (the
	// current one, plus any package a method spawn resolves into).
	pkgAwaits map[*load.Package]map[string]bool
}

// bound reports whether the go statement satisfies any binding rule.
// local is the await-key set of the enclosing function.
func (c *checker) bound(g *ast.GoStmt, local map[string]bool) bool {
	info := c.pass.TypesInfo
	call := g.Call

	// Rule 1: context-bound.
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	if fn := calledFunc(info, call); fn != nil && hasContextParam(fn) {
		return true
	}

	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return c.literalBound(lit, local)
	}

	// Rule 4: method/function spawn — resolve the body through the call
	// graph and look for a completion signal on a field the declaring
	// package waits on.
	fn := calledFunc(info, call)
	if fn == nil {
		return false
	}
	node := c.pass.Program.Graph.Lookup(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil || node.Pkg == nil {
		return false
	}
	signals := signalKeys(node.Pkg.TypesInfo, node.Decl.Body)
	awaited := c.awaitsOf(node.Pkg)
	for k := range signals {
		if awaited[k] {
			return true
		}
	}
	return false
}

// literalBound checks rules 1–3 for a spawned function literal.
func (c *checker) literalBound(lit *ast.FuncLit, local map[string]bool) bool {
	info := c.pass.TypesInfo
	ctxBound := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && analysis.IsContextType(v.Type()) {
			ctxBound = true
		}
		return !ctxBound
	})
	if ctxBound {
		return true
	}
	pkg := c.currentPackage()
	awaited := c.awaitsOf(pkg)
	for k := range signalKeys(info, lit.Body) {
		if local[k] || awaited[k] {
			return true
		}
	}
	return false
}

func (c *checker) currentPackage() *load.Package {
	for _, p := range c.pass.Program.Packages {
		if p.Pkg == c.pass.Pkg {
			return p
		}
	}
	return nil
}

// awaitsOf returns (cached) the field-scoped await keys of a package:
// every WaitGroup field Wait()ed on and channel field received from, in
// any of its functions.
func (c *checker) awaitsOf(pkg *load.Package) map[string]bool {
	if pkg == nil {
		return nil
	}
	if keys, ok := c.pkgAwaits[pkg]; ok {
		return keys
	}
	keys := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for k := range awaitKeys(pkg.TypesInfo, fd.Body, true) {
				keys[k] = true
			}
		}
	}
	c.pkgAwaits[pkg] = keys
	return keys
}

// awaitKeys collects the wait-side keys in a body: "wg:<name>" for
// WaitGroup.Wait receivers, "ch:<name>" for channel receives (unary <-
// and range). fieldsOnly restricts to shared (field or package-level)
// objects for the package-wide scan.
func awaitKeys(info *types.Info, body ast.Node, fieldsOnly bool) map[string]bool {
	keys := make(map[string]bool)
	add := func(kind string, e ast.Expr) {
		name, field := objKey(info, e)
		if name == "" || (fieldsOnly && !field) {
			return
		}
		keys[kind+":"+name] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
					add("wg", sel.X)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add("ch", n.X)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					add("ch", n.X)
				}
			}
		}
		return true
	})
	return keys
}

// signalKeys collects the completion-signal keys in a body: "wg:<name>"
// for WaitGroup.Done calls, "ch:<name>" for close() and channel sends.
func signalKeys(info *types.Info, body ast.Node) map[string]bool {
	keys := make(map[string]bool)
	add := func(kind string, e ast.Expr) {
		name, _ := objKey(info, e)
		if name != "" {
			keys[kind+":"+name] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := info.Types[sel.X]; ok && isWaitGroup(tv.Type) {
					add("wg", sel.X)
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				add("ch", n.Args[0])
			}
		case *ast.SendStmt:
			add("ch", n.Chan)
		}
		return true
	})
	return keys
}

// objKey names the synchronization object behind an expression: field
// selectors and package-level variables key by name and are shared
// (field=true); locals key by name within their function (field=false).
func objKey(info *types.Info, e ast.Expr) (name string, field bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name, true
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return e.Name, true
		}
		return e.Name, false
	case *ast.CallExpr, *ast.IndexExpr:
		return "", false
	default:
		return "", false
	}
}

// calledFunc resolves the spawned callee to its function object, if the
// call is direct (identifier or selector, not a function value).
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
