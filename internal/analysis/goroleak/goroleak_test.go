package goroleak_test

import (
	"testing"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/analysistest"
	"txmldb/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	// The fixture's path segment "core" is inside the analyzer gate: every
	// accepted spawn shape from the repo is represented as a negative, and
	// the unbound literal and method spawns are the findings.
	analysistest.Run(t, "testdata/src/core", goroleak.Analyzer)
}

func TestNeuteredGoroleakFailsFixture(t *testing.T) {
	neutered := *goroleak.Analyzer
	neutered.Run = func(*analysis.Pass) error { return nil }
	rec := analysistest.RunRecorded(&neutered, "testdata/src/core")
	if rec.FatalMsg != "" {
		t.Fatalf("fixture load failed: %s", rec.FatalMsg)
	}
	if len(rec.Errors) == 0 {
		t.Fatal("neutered goroleak passed its fixture; the fixture no longer guards the analyzer")
	}
}
