// Fixture for the goroleak analyzer. The path segment "core" puts this
// package inside the gate. Each accepted shape mirrors a real spawn in
// the repo: the ctx-bound worker, the local fork/join WaitGroup, the
// completion channel received in the same function, the WaitGroup field
// joined by Close, and the batcher-style method spawn whose stop channel
// Close receives. The two findings are goroutines nothing waits for.
package core

import (
	"context"
	"sync"
)

func work() {}

// leakLiteral spawns a goroutine bound to nothing.
func leakLiteral() {
	go func() { // want "goroutine is not bound"
		work()
	}()
}

// ctxLiteral is bound by referencing a context in the body.
func ctxLiteral(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func worker(ctx context.Context) {}

// ctxArg is bound by passing a context to the spawned function.
func ctxArg(ctx context.Context) {
	go worker(ctx)
}

// wgLocal is the fork/join shape: Done in the literal, Wait in the same
// function.
func wgLocal(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// chanLocal signals completion on a channel received in this function.
func chanLocal() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// W joins its worker through a WaitGroup field that Close waits on.
type W struct {
	wg sync.WaitGroup
}

func (w *W) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		work()
	}()
}

func (w *W) Close() {
	w.wg.Wait()
}

// G is the batcher shape: a method spawn whose body closes a stop
// channel that Close receives.
type G struct {
	stopped chan struct{}
}

func (g *G) run() {
	work()
	close(g.stopped)
}

func (g *G) Start() {
	go g.run()
}

func (g *G) Close() {
	<-g.stopped
}

// H spawns a method no shutdown path ever waits for.
type H struct{}

func (h *H) run() {
	work()
}

func (h *H) Start() {
	go h.run() // want "goroutine is not bound"
}
