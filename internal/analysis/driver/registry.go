package driver

import (
	"txmldb/internal/analysis"
	"txmldb/internal/analysis/cachealias"
	"txmldb/internal/analysis/ctxflow"
	"txmldb/internal/analysis/determinism"
	"txmldb/internal/analysis/errcmp"
	"txmldb/internal/analysis/fsyncpoint"
	"txmldb/internal/analysis/lockhold"
	"txmldb/internal/analysis/metricname"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachealias.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		errcmp.Analyzer,
		fsyncpoint.Analyzer,
		lockhold.Analyzer,
		metricname.Analyzer,
	}
}
