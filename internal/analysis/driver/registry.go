package driver

import (
	"txmldb/internal/analysis"
	"txmldb/internal/analysis/cachealias"
	"txmldb/internal/analysis/ctxflow"
	"txmldb/internal/analysis/determinism"
	"txmldb/internal/analysis/epochpin"
	"txmldb/internal/analysis/errcmp"
	"txmldb/internal/analysis/fsyncpoint"
	"txmldb/internal/analysis/goroleak"
	"txmldb/internal/analysis/lockhold"
	"txmldb/internal/analysis/lockorder"
	"txmldb/internal/analysis/metricname"
	"txmldb/internal/analysis/stagedfree"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachealias.Analyzer,
		ctxflow.Analyzer,
		determinism.Analyzer,
		epochpin.Analyzer,
		errcmp.Analyzer,
		fsyncpoint.Analyzer,
		goroleak.Analyzer,
		lockhold.Analyzer,
		lockorder.Analyzer,
		metricname.Analyzer,
		stagedfree.Analyzer,
	}
}
