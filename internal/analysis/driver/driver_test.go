package driver_test

import (
	"strings"
	"testing"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/driver"
	"txmldb/internal/analysis/load"
)

// TestSuppression runs the full suite over a fixture containing one
// errcmp violation with a valid //txvet:ignore, one without, and one
// malformed directive, and checks the driver's live/suppressed split.
func TestSuppression(t *testing.T) {
	pkgs, err := load.Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers, err := driver.Select(nil)
	if err != nil {
		t.Fatalf("Select(all): %v", err)
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if n := len(res.Suppressed); n != 2 {
		t.Errorf("suppressed findings = %d, want 2 (same-line and line-above directives): %v", n, res.Suppressed)
	}
	for _, s := range res.Suppressed {
		if s.Analyzer != "errcmp" {
			t.Errorf("suppressed finding from %s, want errcmp", s.Analyzer)
		}
		if s.SuppressedBy == "" {
			t.Errorf("suppressed finding lost its justification: %+v", s)
		}
	}
	if res.SuppressedCounts["errcmp"] != 2 {
		t.Errorf("SuppressedCounts[errcmp] = %d, want 2", res.SuppressedCounts["errcmp"])
	}

	// Live findings: the unsuppressed comparison, the malformed directive,
	// and the directive naming an unknown analyzer.
	var live, badDirective, unknownName int
	for _, f := range res.Findings {
		switch {
		case f.Analyzer == "errcmp":
			live++
		case f.Analyzer == "txvet" && strings.Contains(f.Message, "malformed"):
			badDirective++
		case f.Analyzer == "txvet" && strings.Contains(f.Message, "unknown analyzer"):
			unknownName++
		default:
			t.Errorf("unexpected live finding: %s", f)
		}
	}
	if live != 1 || badDirective != 1 || unknownName != 1 {
		t.Errorf("live=%d badDirective=%d unknownName=%d, want 1 each; findings: %v",
			live, badDirective, unknownName, res.Findings)
	}
	if res.Counts["errcmp"] != 1 {
		t.Errorf("Counts[errcmp] = %d, want 1", res.Counts["errcmp"])
	}
	// Analyzers that found nothing still report a zero, so CI summaries
	// show the full suite ran.
	if n, ok := res.Counts["determinism"]; !ok || n != 0 {
		t.Errorf("Counts[determinism] = %d,%v; want explicit 0", n, ok)
	}
}

// TestDirectiveAudit checks the used/stale bookkeeping behind the
// audit-ignores subcommand: both well-formed directives in the fixture
// match a diagnostic, so neither is stale; malformed and unknown-name
// directives are not recorded as directives at all (they are findings).
func TestDirectiveAudit(t *testing.T) {
	pkgs, err := load.Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers, err := driver.Select(nil)
	if err != nil {
		t.Fatalf("Select(all): %v", err)
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Directives) != 2 {
		t.Fatalf("Directives = %d, want 2 (the well-formed ones): %+v", len(res.Directives), res.Directives)
	}
	for _, d := range res.Directives {
		if !d.Used {
			t.Errorf("directive at %s is stale, want used (its errcmp finding fired)", d.Pos)
		}
		if d.Reason == "" || len(d.Names) == 0 {
			t.Errorf("directive at %s lost its names/reason: %+v", d.Pos, d)
		}
	}
}

// TestProgramAnalyzer checks the whole-program analyzer contract: one
// RunProgram invocation over the full package set (not one per package),
// a shared Program with a built call graph, and per-package Note strings
// aggregating by key across packages.
func TestProgramAnalyzer(t *testing.T) {
	pkgs, err := load.Load(".", "./testdata/src/suppress", "./testdata/src/progb")
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}

	programRuns := 0
	prog := &analysis.Analyzer{
		Name: "progprobe",
		Doc:  "test probe",
		RunProgram: func(p *analysis.Pass) error {
			programRuns++
			if p.Program == nil || p.Program.Graph == nil {
				t.Error("RunProgram pass has no Program/Graph")
			} else if len(p.Program.Packages) != 2 {
				t.Errorf("Program.Packages = %d, want 2", len(p.Program.Packages))
			}
			p.Notef("graphs=%d", 1)
			return nil
		},
	}
	perPkg := &analysis.Analyzer{
		Name: "pkgprobe",
		Doc:  "test probe",
		Run: func(p *analysis.Pass) error {
			if p.Program == nil || p.Program.Graph == nil {
				t.Error("per-package pass has no Program/Graph")
			}
			p.Notef("pkgs=%d", 1)
			return nil
		},
	}

	res, err := driver.Run(pkgs, []*analysis.Analyzer{prog, perPkg})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if programRuns != 1 {
		t.Errorf("RunProgram invoked %d times, want exactly 1", programRuns)
	}
	if got := res.Stats["progprobe"]; got != "graphs=1" {
		t.Errorf("Stats[progprobe] = %q, want graphs=1", got)
	}
	if got := res.Stats["pkgprobe"]; got != "pkgs=2" {
		t.Errorf("Stats[pkgprobe] = %q, want pkgs=2 (notes summed across packages)", got)
	}
	if res.CallGraph == "" {
		t.Error("Result.CallGraph is empty, want build stats")
	}
}

// TestSelectUnknownAnalyzer asserts a typo in -run is an error, not a
// silently empty run.
func TestSelectUnknownAnalyzer(t *testing.T) {
	_, err := driver.Select([]string{"errcmp", "nosuchcheck"})
	if err == nil {
		t.Fatal("Select with unknown analyzer name succeeded, want error")
	}
	if !strings.Contains(err.Error(), "nosuchcheck") {
		t.Errorf("error %q does not name the unknown analyzer", err)
	}
}

// TestSelectSubset checks -run style selection by name.
func TestSelectSubset(t *testing.T) {
	as, err := driver.Select([]string{"errcmp"})
	if err != nil {
		t.Fatalf("Select(errcmp): %v", err)
	}
	if len(as) != 1 || as[0].Name != "errcmp" {
		t.Errorf("Select(errcmp) = %v", as)
	}
}
