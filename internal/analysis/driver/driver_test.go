package driver_test

import (
	"strings"
	"testing"

	"txmldb/internal/analysis/driver"
	"txmldb/internal/analysis/load"
)

// TestSuppression runs the full suite over a fixture containing one
// errcmp violation with a valid //txvet:ignore, one without, and one
// malformed directive, and checks the driver's live/suppressed split.
func TestSuppression(t *testing.T) {
	pkgs, err := load.Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers, err := driver.Select(nil)
	if err != nil {
		t.Fatalf("Select(all): %v", err)
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if n := len(res.Suppressed); n != 2 {
		t.Errorf("suppressed findings = %d, want 2 (same-line and line-above directives): %v", n, res.Suppressed)
	}
	for _, s := range res.Suppressed {
		if s.Analyzer != "errcmp" {
			t.Errorf("suppressed finding from %s, want errcmp", s.Analyzer)
		}
		if s.SuppressedBy == "" {
			t.Errorf("suppressed finding lost its justification: %+v", s)
		}
	}
	if res.SuppressedCounts["errcmp"] != 2 {
		t.Errorf("SuppressedCounts[errcmp] = %d, want 2", res.SuppressedCounts["errcmp"])
	}

	// Live findings: the unsuppressed comparison, the malformed directive,
	// and the directive naming an unknown analyzer.
	var live, badDirective, unknownName int
	for _, f := range res.Findings {
		switch {
		case f.Analyzer == "errcmp":
			live++
		case f.Analyzer == "txvet" && strings.Contains(f.Message, "malformed"):
			badDirective++
		case f.Analyzer == "txvet" && strings.Contains(f.Message, "unknown analyzer"):
			unknownName++
		default:
			t.Errorf("unexpected live finding: %s", f)
		}
	}
	if live != 1 || badDirective != 1 || unknownName != 1 {
		t.Errorf("live=%d badDirective=%d unknownName=%d, want 1 each; findings: %v",
			live, badDirective, unknownName, res.Findings)
	}
	if res.Counts["errcmp"] != 1 {
		t.Errorf("Counts[errcmp] = %d, want 1", res.Counts["errcmp"])
	}
	// Analyzers that found nothing still report a zero, so CI summaries
	// show the full suite ran.
	if n, ok := res.Counts["determinism"]; !ok || n != 0 {
		t.Errorf("Counts[determinism] = %d,%v; want explicit 0", n, ok)
	}
}

// TestSelectUnknownAnalyzer asserts a typo in -run is an error, not a
// silently empty run.
func TestSelectUnknownAnalyzer(t *testing.T) {
	_, err := driver.Select([]string{"errcmp", "nosuchcheck"})
	if err == nil {
		t.Fatal("Select with unknown analyzer name succeeded, want error")
	}
	if !strings.Contains(err.Error(), "nosuchcheck") {
		t.Errorf("error %q does not name the unknown analyzer", err)
	}
}

// TestSelectSubset checks -run style selection by name.
func TestSelectSubset(t *testing.T) {
	as, err := driver.Select([]string{"errcmp"})
	if err != nil {
		t.Fatalf("Select(errcmp): %v", err)
	}
	if len(as) != 1 || as[0].Name != "errcmp" {
		t.Errorf("Select(errcmp) = %v", as)
	}
}
