// Package driver orchestrates the txvet analyzers: it builds the shared
// interprocedural facts (the whole-program call graph) once, runs each
// per-package analyzer over each loaded package and each whole-program
// analyzer once over everything, applies //txvet:ignore suppression
// directives, and aggregates per-analyzer finding counts and stats for
// the CLI and the CI job summary.
//
// Suppression: a comment of the form
//
//	//txvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the same line as a diagnostic, or on the line immediately above it,
// suppresses that diagnostic. The reason is mandatory — a suppression
// without a justification is itself reported as a finding (analyzer name
// "txvet"), as is a directive naming an analyzer that does not exist.
// Suppressed findings are retained (and counted) so the CI summary shows
// how much is being waived, not just how much is clean. Every directive
// is also retained with a used/stale flag, which is what the
// `txvet audit-ignores` subcommand reports on.
package driver

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"txmldb/internal/analysis"
	"txmldb/internal/analysis/load"
)

// Finding is one diagnostic, resolved to a file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// SuppressedBy is the justification from the //txvet:ignore directive
	// that waived this finding, empty if the finding is live.
	SuppressedBy string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Directive is one //txvet:ignore comment, with whether any diagnostic
// actually matched it in this run.
type Directive struct {
	Pos    token.Position
	Names  []string // analyzer names the directive waives, sorted
	Reason string
	Used   bool
}

// Result is the outcome of one driver run.
type Result struct {
	// Findings are live (unsuppressed) diagnostics, sorted by position.
	Findings []Finding
	// Suppressed are diagnostics waived by //txvet:ignore directives.
	Suppressed []Finding
	// Counts maps analyzer name to live finding count; every analyzer that
	// ran has an entry, so zeros are visible in summaries.
	Counts map[string]int
	// SuppressedCounts maps analyzer name to suppressed finding count.
	SuppressedCounts map[string]int
	// Directives are every well-formed //txvet:ignore in the loaded
	// packages, sorted by position. A directive with Used == false after
	// a full-suite run is stale: the analyzer no longer fires there.
	Directives []Directive
	// Stats maps analyzer name to a short statistics note (call-graph
	// reachability, lock-graph size, ...) recorded via Pass.Note.
	Stats map[string]string
	// CallGraph summarizes the shared call graph the run was built on.
	CallGraph string
}

// Select resolves analyzer names to analyzers from the registry. Empty
// names selects all. Unknown names are an error, so a typo in -run (or a
// CI config) cannot silently run nothing.
func Select(names []string) ([]*analysis.Analyzer, error) {
	all := All()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("driver: unknown analyzer %q (known: %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("driver: no analyzers selected")
	}
	return out, nil
}

// Names returns the registered analyzer names, sorted.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// ignoreDirective is one parsed //txvet:ignore comment.
type ignoreDirective struct {
	names  map[string]bool
	reason string
	pos    token.Position
	used   bool
}

// Run applies analyzers to packages and resolves suppressions. The
// whole-program facts (call graph) are built once and shared: every
// per-package pass sees them through Pass.Program, and analyzers with
// RunProgram execute a single pass over the entire package set.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) (*Result, error) {
	res := &Result{
		Counts:           make(map[string]int),
		SuppressedCounts: make(map[string]int),
		Stats:            make(map[string]string),
	}
	for _, a := range analyzers {
		res.Counts[a.Name] = 0
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	prog := analysis.NewProgram(pkgs)
	res.CallGraph = fmt.Sprintf("funcs=%d static=%d devirt=%d iface-sites=%d unresolved=%d",
		prog.Graph.Stats.Funcs, prog.Graph.Stats.StaticEdges, prog.Graph.Stats.DevirtEdges,
		prog.Graph.Stats.IfaceSites, prog.Graph.Stats.UnresolvedSites)

	// Directives are collected across the whole program up front: a
	// whole-program analyzer may report into any file.
	directives := make(map[string][]*ignoreDirective)
	for _, pkg := range pkgs {
		bad := collectDirectives(pkg, known, directives)
		res.Findings = append(res.Findings, bad...)
	}

	var diags []Finding
	report := func(a *analysis.Analyzer, fset *token.FileSet) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			diags = append(diags, Finding{
				Analyzer: a.Name,
				Pos:      fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
	}
	note := func(a *analysis.Analyzer) func(string) {
		return func(s string) { res.Stats[a.Name] = mergeNote(res.Stats[a.Name], s) }
	}

	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Program:   prog,
				Report:    report(a, pkg.Fset),
				Note:      note(a),
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     prog.Fset,
			Program:  prog,
			Report:   report(a, prog.Fset),
			Note:     note(a),
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("driver: analyzer %s (program): %v", a.Name, err)
		}
	}

	for _, d := range diags {
		if dir := matchDirective(directives, d); dir != nil {
			dir.used = true
			d.SuppressedBy = dir.reason
			res.Suppressed = append(res.Suppressed, d)
			res.SuppressedCounts[d.Analyzer]++
		} else {
			res.Findings = append(res.Findings, d)
			res.Counts[d.Analyzer]++
		}
	}
	for _, dirs := range directives {
		for _, dir := range dirs {
			var names []string
			for n := range dir.names {
				names = append(names, n)
			}
			sort.Strings(names)
			res.Directives = append(res.Directives, Directive{
				Pos: dir.pos, Names: names, Reason: dir.reason, Used: dir.used,
			})
		}
	}
	sort.Slice(res.Directives, func(i, j int) bool {
		a, b := res.Directives[i], res.Directives[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

// mergeNote combines per-package analyzer notes of the space-separated
// "key=int" form by summing values per key, so a per-package analyzer's
// stats aggregate across the whole run ("go-sites=3" + "go-sites=1" →
// "go-sites=4"). Notes that don't parse replace the previous value.
func mergeNote(old, new string) string {
	if old == "" {
		return new
	}
	parse := func(s string) ([]string, map[string]int, bool) {
		var order []string
		vals := make(map[string]int)
		for _, f := range strings.Fields(s) {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, nil, false
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, nil, false
			}
			if _, seen := vals[k]; !seen {
				order = append(order, k)
			}
			vals[k] += n
		}
		return order, vals, len(order) > 0
	}
	order, vals, ok := parse(old)
	newOrder, newVals, ok2 := parse(new)
	if !ok || !ok2 {
		return new
	}
	for _, k := range newOrder {
		if _, seen := vals[k]; !seen {
			order = append(order, k)
		}
		vals[k] += newVals[k]
	}
	var b strings.Builder
	for i, k := range order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, vals[k])
	}
	return b.String()
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// collectDirectives parses //txvet:ignore comments in a package into
// byFile. Malformed directives (missing reason, unknown analyzer name)
// are returned as findings under the reserved analyzer name "txvet".
func collectDirectives(pkg *load.Package, known map[string]bool, byFile map[string][]*ignoreDirective) []Finding {
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//txvet:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				namesPart, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				reason = strings.TrimSpace(reason)
				if namesPart == "" || reason == "" {
					bad = append(bad, Finding{
						Analyzer: "txvet",
						Pos:      pos,
						Message:  "malformed //txvet:ignore: want \"//txvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				names := make(map[string]bool)
				valid := true
				for _, n := range strings.Split(namesPart, ",") {
					if !known[n] {
						bad = append(bad, Finding{
							Analyzer: "txvet",
							Pos:      pos,
							Message:  fmt.Sprintf("//txvet:ignore names unknown analyzer %q", n),
						})
						valid = false
						break
					}
					names[n] = true
				}
				if !valid {
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], &ignoreDirective{
					names: names, reason: reason, pos: pos,
				})
			}
		}
	}
	return bad
}

// matchDirective finds a directive covering the diagnostic: same file,
// naming its analyzer, on the same line or the line immediately above.
func matchDirective(directives map[string][]*ignoreDirective, d Finding) *ignoreDirective {
	for _, dir := range directives[d.Pos.Filename] {
		if !dir.names[d.Analyzer] {
			continue
		}
		if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
			return dir
		}
	}
	return nil
}
