package driver

import "testing"

func TestMergeNote(t *testing.T) {
	cases := []struct {
		old, new, want string
	}{
		{"", "a=1", "a=1"},
		{"a=1", "a=2", "a=3"},
		{"a=1 b=2", "a=1", "a=2 b=2"},
		{"a=1", "b=5", "a=1 b=5"},
		{"free-form note", "a=1", "a=1"},            // unparsable old: replaced
		{"a=1", "free-form note", "free-form note"}, // unparsable new: replaced
	}
	for _, c := range cases {
		if got := mergeNote(c.old, c.new); got != c.want {
			t.Errorf("mergeNote(%q, %q) = %q, want %q", c.old, c.new, got, c.want)
		}
	}
}
