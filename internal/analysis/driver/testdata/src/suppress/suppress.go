// Package suppress is the driver fixture for //txvet:ignore handling.
package suppress

import "io"

func sameLine(err error) bool {
	return err == io.EOF //txvet:ignore errcmp fixture: same-line suppression form
}

func lineAbove(err error) bool {
	//txvet:ignore errcmp fixture: line-above suppression form
	return err == io.EOF
}

func unsuppressed(err error) bool {
	return err == io.EOF // live finding: no directive
}

func missingReason(err error) bool {
	return err != nil //txvet:ignore errcmp
}

func unknownAnalyzer(err error) bool {
	return err != nil //txvet:ignore nosuchcheck this analyzer does not exist
}
