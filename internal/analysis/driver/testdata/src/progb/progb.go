// Second fixture package: gives the driver tests a two-package program
// so they can assert whole-program analyzers run once, not per package.
package progb

func Ping() int { return 1 }
