// Package analysis is a small, stdlib-only static-analysis framework
// modelled on golang.org/x/tools/go/analysis. The x/tools module is not a
// dependency of this repo (the module graph is intentionally empty), so
// txvet carries its own minimal Analyzer/Pass contract: an Analyzer is a
// named check, a Pass hands it one type-checked package, and diagnostics
// flow back through Report. Loading (go list -export + go/types) lives in
// the sibling load package; orchestration, suppression, and exit-code
// policy live in driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"txmldb/internal/analysis/callgraph"
	"txmldb/internal/analysis/load"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run filters, and
	// //txvet:ignore directives. Lower-case identifier.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run applies the check to one package. Diagnostics are delivered via
	// pass.Report / pass.Reportf; the error return is for operational
	// failures (not findings). Exactly one of Run and RunProgram is set.
	Run func(*Pass) error
	// RunProgram applies a whole-program check once over every loaded
	// package: the pass carries Program (call graph + all packages)
	// instead of a single package's Files/Pkg/TypesInfo. Interprocedural
	// analyzers — reachability, global lock ordering — use this so a
	// cross-package invariant produces one deduplicated set of findings.
	RunProgram func(*Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package — or, for RunProgram analyzers,
// the whole loaded program — through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program is the whole loaded package set plus the interprocedural
	// facts shared by every analyzer (the call graph). Always set by the
	// driver; per-package analyzers may consult it for cross-package
	// facts, RunProgram analyzers work from it exclusively.
	Program *Program
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
	// Note records a short per-analyzer statistics string (call-graph
	// roots reached, lock-graph size, ...) surfaced in the -summary
	// table. Set by the driver; may be nil in tests.
	Note func(string)
}

// Program is the whole loaded package set with shared interprocedural
// facts, built once per driver run and handed to every pass.
type Program struct {
	Fset     *token.FileSet
	Packages []*load.Package
	// Graph is the whole-program call graph (static calls, method sets,
	// bounded interface devirtualization).
	Graph *callgraph.Graph
}

// NewProgram builds the shared facts for a loaded package set.
func NewProgram(pkgs []*load.Package) *Program {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	return &Program{
		Fset:     fset,
		Packages: pkgs,
		Graph:    callgraph.Build(pkgs, 0),
	}
}

// PackageOf returns the loaded package whose Fset position owns pos
// (matched by file name), or nil.
func (p *Program) PackageOf(pos token.Pos) *load.Package {
	if !pos.IsValid() || p.Fset == nil {
		return nil
	}
	file := p.Fset.Position(pos).Filename
	for _, pkg := range p.Packages {
		for _, gf := range pkg.GoFiles {
			if gf == file {
				return pkg
			}
		}
	}
	return nil
}

// Notef formats and records a statistics note (see Pass.Note).
func (p *Pass) Notef(format string, args ...any) {
	if p.Note != nil {
		p.Note(fmt.Sprintf(format, args...))
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// --- shared type/AST helpers used by several analyzers ---

// PkgFunc reports whether the call expression invokes the package-level
// function pkgPath.name (e.g. "context".Background), resolving through
// import aliases via the type information.
func (p *Pass) PkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// PathBase returns the last slash-separated segment of an import path.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ErrorType is the universe error interface.
var ErrorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// sentinelName matches the naming convention for package-level sentinel
// error variables in this repo (ErrCorrupt, errNotCached, ...).
var sentinelName = regexp.MustCompile(`^(Err|err)[A-Z0-9]`)

// SentinelError reports whether expr denotes a sentinel error value that
// must be compared with errors.Is: a package-level error variable whose
// name matches ^(Err|err)[A-Z0-9], or one of the well-known stdlib
// sentinels context.Canceled, context.DeadlineExceeded, io.EOF.
// It returns a display name for diagnostics.
func (p *Pass) SentinelError(expr ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", false
	}
	// Package-level only: locals named err... are not sentinels.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Implements(v.Type(), ErrorType) {
		return "", false
	}
	display := v.Pkg().Name() + "." + v.Name()
	switch v.Pkg().Path() {
	case "context":
		if v.Name() == "Canceled" || v.Name() == "DeadlineExceeded" {
			return display, true
		}
		return "", false
	case "io":
		if v.Name() == "EOF" || v.Name() == "ErrUnexpectedEOF" || v.Name() == "ErrClosedPipe" {
			return display, true
		}
		return "", false
	}
	return display, sentinelName.MatchString(v.Name())
}
