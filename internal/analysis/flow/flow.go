// Package flow is txvet's forward, path-insensitive dataflow walker: it
// drives a string-keyed fact set through one function body in control
// order, forking at branches and unioning the surviving states where
// control rejoins. Analyzers plug in through hooks — the Call hook sees
// every call expression with the facts live at that point and may add or
// remove facts (acquire a lock, stage a free, release it), and the Exit
// hook sees the facts live on every path that leaves the function
// (explicit returns and falling off the end).
//
// The walker is path-insensitive in the classic sense: it does not track
// branch conditions, so a fact surviving on any incoming path survives
// the join. For "must eventually release" obligations that union is the
// conservative direction — an obligation is reported unless every path
// discharges it. For "may hold" facts (lock sets) the union is likewise
// conservative — a lock possibly held at a point is treated as held.
//
// Deferred calls are applied at each exit, in LIFO registration order,
// before the Exit hook runs — matching the language: defer mu.Unlock()
// keeps the mutex held through the body and releases on every path, and
// a cleanup deferred before the unlock runs after it (outside the lock)
// while one deferred after it runs first (still under the lock).
//
// Panics terminate a path without reaching Exit: obligations checked at
// Exit are therefore "on all non-panic paths". Function literals are not
// entered — a literal body runs when invoked, not where written; callers
// walk literal bodies as functions of their own if they care. Bodies of
// go statements are skipped for the same reason.
package flow

import (
	"go/ast"
	"go/token"
)

// Facts is the dataflow state: fact key → position that established it.
type Facts map[string]token.Pos

// Clone copies the fact set.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// union folds o into f, keeping f's position for keys present in both.
func (f Facts) union(o Facts) {
	for k, v := range o {
		if _, ok := f[k]; !ok {
			f[k] = v
		}
	}
}

// Hooks are the analyzer-supplied transfer functions.
type Hooks struct {
	// Call is invoked for every call expression reached in control order
	// — including calls inside conditions, assignments, and other
	// expressions — and may mutate the fact set.
	Call func(st Facts, call *ast.CallExpr)
	// Exit is invoked once per path leaving the function normally, after
	// that path's deferred calls have been applied. at is the return
	// statement, or the function body for the implicit final return.
	Exit func(st Facts, at ast.Node)
}

// state is one path's walker state: live facts plus the defers
// registered so far (applied LIFO at exit).
type state struct {
	facts  Facts
	defers []*ast.CallExpr
}

func (s *state) clone() *state {
	return &state{facts: s.facts.Clone(), defers: append([]*ast.CallExpr(nil), s.defers...)}
}

// join unions o's facts and defers into s (defers are approximated as a
// set union in registration order: a defer registered on either branch
// may run at exit).
func (s *state) join(o *state) {
	s.facts.union(o.facts)
	for _, d := range o.defers {
		found := false
		for _, e := range s.defers {
			if e == d {
				found = true
				break
			}
		}
		if !found {
			s.defers = append(s.defers, d)
		}
	}
}

// Walk runs the hooks over body.
func Walk(body *ast.BlockStmt, h Hooks) {
	w := &walker{h: h}
	st := &state{facts: make(Facts)}
	if terminated := w.stmts(body.List, st); !terminated {
		w.exit(st, body)
	}
}

type walker struct {
	h Hooks
}

// exit applies the path's defers (LIFO) and fires the Exit hook.
func (w *walker) exit(st *state, at ast.Node) {
	for i := len(st.defers) - 1; i >= 0; i-- {
		w.call(st, st.defers[i])
	}
	if w.h.Exit != nil {
		w.h.Exit(st.facts, at)
	}
}

// call fires the Call hook for one call expression and the calls nested
// in its arguments (arguments evaluate before the call).
func (w *walker) call(st *state, call *ast.CallExpr) {
	for _, arg := range call.Args {
		w.expr(st, arg)
	}
	w.expr(st, call.Fun)
	if w.h.Call != nil {
		w.h.Call(st.facts, call)
	}
}

// expr fires the Call hook for every call inside e, syntactically
// outer-to-inner, skipping function literals.
func (w *walker) expr(st *state, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.h.Call != nil {
				w.h.Call(st.facts, n)
			}
		}
		return true
	})
}

// stmts walks a statement list; the return reports whether every path
// through the list terminated (returned, panicked, or branched away).
func (w *walker) stmts(list []ast.Stmt, st *state) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt walks one statement, mutating st in place; it reports whether the
// path terminated inside the statement.
func (w *walker) stmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isPanic(call) {
				w.call(st, call)
				return true // panic: path ends without Exit
			}
			w.call(st, call)
			return false
		}
		w.expr(st, s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(st, r)
		}
		for _, l := range s.Lhs {
			w.expr(st, l)
		}
	case *ast.DeclStmt:
		w.expr(st, nil)
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(st, v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(st, r)
		}
		w.exit(st, s)
		return true
	case *ast.DeferStmt:
		// Arguments evaluate at the defer statement; the call runs at exit.
		for _, arg := range s.Call.Args {
			w.expr(st, arg)
		}
		st.defers = append(st.defers, s.Call)
	case *ast.GoStmt:
		// The spawned body runs on another goroutine; only the argument
		// expressions evaluate here.
		for _, arg := range s.Call.Args {
			w.expr(st, arg)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(st, s.Cond)
		then := st.clone()
		thenDone := w.stmts(s.Body.List, then)
		var elseDone bool
		var els *state
		if s.Else != nil {
			els = st.clone()
			elseDone = w.stmt(s.Else, els)
		}
		switch {
		case s.Else == nil:
			// Fall-through = pre-state ∪ then-exit (if then didn't return).
			if !thenDone {
				st.join(then)
			}
			return false
		case thenDone && elseDone:
			return true
		case thenDone:
			*st = *els
			return false
		case elseDone:
			*st = *then
			return false
		default:
			*st = *then
			st.join(els)
			return false
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(st, s.Cond)
		}
		body := st.clone()
		if !w.stmts(s.Body.List, body) {
			if s.Post != nil {
				w.stmt(s.Post, body)
			}
			st.join(body) // body may run 0+ times
		}
		return false
	case *ast.RangeStmt:
		w.expr(st, s.X)
		body := st.clone()
		if !w.stmts(s.Body.List, body) {
			st.join(body)
		}
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the loop/switch
		// approximation above already unions body states conservatively.
		return true
	case *ast.SendStmt:
		w.expr(st, s.Chan)
		w.expr(st, s.Value)
	case *ast.IncDecStmt:
		w.expr(st, s.X)
	}
	return false
}

// branches handles switch/type-switch/select: every clause walks on a
// fork of the incoming state and the survivors union into the result.
// A switch without a default may match nothing, so the pre-state joins
// too; a select always takes some clause.
func (w *walker) branches(s ast.Stmt, st *state) bool {
	var body *ast.BlockStmt
	hasDefault := false
	mustBranch := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(st, s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		mustBranch = true
	}
	var survivors []*state
	n := 0
	for _, c := range body.List {
		var clauseBody []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(st, e)
			}
			if c.List == nil {
				hasDefault = true
			}
			clauseBody = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, st)
			} else {
				hasDefault = true
			}
			clauseBody = c.Body
		}
		n++
		fork := st.clone()
		if !w.stmts(clauseBody, fork) {
			survivors = append(survivors, fork)
		}
	}
	if n == 0 {
		return false
	}
	terminated := len(survivors) == 0 && (hasDefault || mustBranch)
	if terminated {
		return true
	}
	if hasDefault || mustBranch {
		// Some clause definitely ran: result = union of survivors.
		*st = *survivors[0]
		for _, sv := range survivors[1:] {
			st.join(sv)
		}
		return false
	}
	// No default: the pre-state is itself a survivor.
	for _, sv := range survivors {
		st.join(sv)
	}
	return false
}

// isPanic recognizes the builtin panic.
func isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
