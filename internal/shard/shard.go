// Package shard is the horizontal scale-out tier of the temporal XML
// database: a router that owns N independent core.DB engines (each with
// its own version store, WAL, vcache and checkpoint schedule), partitions
// documents across them, and exposes the exact query surface of a single
// engine — plan's executor, the public facade and txserved all run
// unmodified on top of it.
//
// Partitioning and identity. A document's home shard is the FNV-1a hash
// of its URL modulo the shard count, so placement is stable across
// restarts and independent of insertion order. Each engine assigns its
// own dense local DocIDs, so the router also maintains a global DocID
// space: globals are allocated in put order (1, 2, 3, …) — exactly the
// IDs a single unsharded engine would have assigned — and a two-way
// map translates global↔(shard, local) on every operator boundary. That
// is what makes scatter-gathered results byte-identical to a single
// engine at every shard count: merged matches sorted by global DocID
// reproduce the single engine's ascending-DocID merge order, TEIDs
// included.
//
// Durability. A durable router lives under one root directory holding a
// shards.json manifest (the shard count is part of the on-disk format;
// reopening with a different -shards fails with ErrShardCountMismatch),
// one shard-%02d/ subdirectory per engine, and docmap.log — an
// append-only record of every put (global, shard, local, url) replayed
// on open to rebuild the global DocID space in its original order. The
// log is appended after the shard's WAL commit; a crash between the two
// leaves an orphaned shard document, which reopen detects by comparing
// per-shard document counts and deterministically re-adopts at the tail
// of the global sequence.
//
// Failure semantics. Single-document operators touch one shard: an
// outage elsewhere is invisible to them. Multi-document operators
// scatter to every shard and fail typed (propagating the sick shard's
// resilience errors) rather than silently returning partial results.
// Health aggregates the same way /readyz reports it: one failing shard
// degrades the service, it does not take it down; only every shard
// failing does.
package shard

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/parallel"
	"txmldb/internal/resilience"
)

// Typed errors, matched with errors.Is.
var (
	// ErrShardCountMismatch reports a durable root opened with a shard
	// count different from the one recorded in its manifest. The shard
	// count is part of the on-disk format: documents are placed by
	// hash(url) mod N, so reading with a different N would route lookups
	// to the wrong engines.
	ErrShardCountMismatch = errors.New("shard: shard count differs from the manifest")
	// ErrUnknownDoc reports a global DocID outside the allocated space.
	ErrUnknownDoc = errors.New("shard: unknown document")
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of engine instances (default 1).
	Shards int
	// Engine supplies the i-th engine's configuration (its own cache,
	// workers, resilience and checkpoint schedule). Nil means the zero
	// core.Config for every shard. Clocks should agree across shards.
	Engine func(i int) core.Config
	// Workers bounds the router's scatter-gather pool — the concurrency
	// of multi-document fan-out across shards. 0 defaults to the shard
	// count (full fan-out); 1 forces the inline sequential path, whose
	// results every parallel run reproduces byte-for-byte.
	Workers int
	// ShardInflight bounds operations concurrently inside any one shard
	// (per-shard admission; default 32). Excess operations queue.
	ShardInflight int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers == 0 {
		c.Workers = c.Shards
	}
	if c.ShardInflight <= 0 {
		c.ShardInflight = 32
	}
	return c
}

func (c Config) engineConfig(i int) core.Config {
	if c.Engine == nil {
		return core.Config{}
	}
	return c.Engine(i)
}

// loc is the physical address of a global DocID.
type loc struct {
	shard int
	local model.DocID
}

// gate is the per-shard admission control: a counting semaphore with
// queue-depth and throughput counters feeding the txserved_shard_*
// metrics. Acquisition blocks (backpressure), it never rejects — the
// server's own two-level gate bounds total load above this.
type gate struct {
	sem    chan struct{}
	active atomic.Int64
	queued atomic.Int64
	total  atomic.Int64
}

func newGate(capacity int) *gate {
	return &gate{sem: make(chan struct{}, capacity)}
}

// enter admits one operation and returns its release function.
func (g *gate) enter() func() {
	g.total.Add(1)
	g.queued.Add(1)
	g.sem <- struct{}{}
	g.queued.Add(-1)
	g.active.Add(1)
	return func() {
		g.active.Add(-1)
		<-g.sem
	}
}

// Router partitions documents across N engines and scatter-gathers the
// multi-document temporal operators. It implements plan.Engine and the
// optional executor extensions, so it is a drop-in engine for the query
// planner and the HTTP server.
type Router struct {
	cfg    Config
	n      int
	shards []*core.DB
	gates  []*gate
	pool   *parallel.Pool

	// mu guards the global DocID space. Writers hold it exclusively for
	// the whole put (global allocation order must equal shard commit
	// order for the docmap to replay deterministically); readers only
	// hold it around map access, never across engine calls.
	mu     sync.RWMutex
	homes  []loc           // homes[g-1] locates global DocID g
	toGlob [][]model.DocID // toGlob[s][l-1] is the global of shard s's local l
	logf   *os.File        // docmap.log appender; nil on in-memory routers
	logw   *bufio.Writer
}

// Open creates an empty in-memory sharded database.
func Open(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := newRouter(cfg)
	for i := 0; i < cfg.Shards; i++ {
		r.shards[i] = core.Open(cfg.engineConfig(i))
	}
	return r
}

func newRouter(cfg Config) *Router {
	r := &Router{
		cfg:    cfg,
		n:      cfg.Shards,
		shards: make([]*core.DB, cfg.Shards),
		gates:  make([]*gate, cfg.Shards),
		toGlob: make([][]model.DocID, cfg.Shards),
		pool:   parallel.New(parallel.Config{Workers: cfg.Workers}),
	}
	for i := range r.gates {
		r.gates[i] = newGate(cfg.ShardInflight)
	}
	return r
}

// manifest is the shards.json root manifest.
type manifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

const (
	manifestName = "shards.json"
	docmapName   = "docmap.log"
)

// ShardDirName returns the subdirectory name of shard i under a durable
// root ("shard-00", "shard-01", …).
func ShardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// Layout inspects a durable root directory. It returns the shard count
// and the shard data directories when root holds a sharded database
// (a shards.json manifest), and ok=false when it does not (a plain
// single-engine datadir).
func Layout(root string) (shards int, dirs []string, ok bool, err error) {
	data, rerr := os.ReadFile(filepath.Join(root, manifestName))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, nil, false, nil
		}
		return 0, nil, false, rerr
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, nil, false, fmt.Errorf("shard: bad manifest %s: %w", manifestName, err)
	}
	if m.Shards < 1 {
		return 0, nil, false, fmt.Errorf("shard: bad manifest %s: %d shards", manifestName, m.Shards)
	}
	for i := 0; i < m.Shards; i++ {
		dirs = append(dirs, filepath.Join(root, ShardDirName(i)))
	}
	return m.Shards, dirs, true, nil
}

// OpenDurable opens (or creates) a durable sharded database under root:
// one write-ahead-logged engine per shard-%02d subdirectory, plus the
// shard-count manifest and the global DocID map. Reopening an existing
// root with a different Config.Shards fails with ErrShardCountMismatch.
func OpenDurable(cfg Config, root string) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, err
	}
	mpath := filepath.Join(root, manifestName)
	if data, err := os.ReadFile(mpath); err == nil {
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("shard: bad manifest %s: %w", mpath, err)
		}
		if m.Shards != cfg.Shards {
			return nil, fmt.Errorf("%w: manifest has %d, Config.Shards is %d",
				ErrShardCountMismatch, m.Shards, cfg.Shards)
		}
	} else if os.IsNotExist(err) {
		data, _ := json.Marshal(manifest{Format: 1, Shards: cfg.Shards})
		if err := os.WriteFile(mpath, append(data, '\n'), 0o666); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	r := newRouter(cfg)
	opened := 0
	var err error
	for i := 0; i < cfg.Shards; i++ {
		r.shards[i], err = core.OpenDurable(cfg.engineConfig(i), filepath.Join(root, ShardDirName(i)))
		if err != nil {
			err = fmt.Errorf("shard %d: %w", i, err)
			break
		}
		opened++
	}
	if err != nil {
		for i := 0; i < opened; i++ {
			r.shards[i].Close()
		}
		return nil, err
	}
	if err := r.recoverDocmap(filepath.Join(root, docmapName)); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// recoverDocmap replays docmap.log, verifies it against the opened
// shards, re-adopts orphaned documents (committed to a shard's WAL but
// lost from the log by a crash between the two appends), and leaves the
// log open for appending.
func (r *Router) recoverDocmap(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var g, s, l uint64
		var url string
		if _, err := fmt.Sscanf(text, "%d %d %d %s", &g, &s, &l, &url); err != nil {
			f.Close()
			return fmt.Errorf("shard: %s:%d: bad record %q: %v", docmapName, line, text, err)
		}
		if int(s) >= r.n {
			f.Close()
			return fmt.Errorf("shard: %s:%d: shard %d out of range (have %d)", docmapName, line, s, r.n)
		}
		if g != uint64(len(r.homes)+1) {
			f.Close()
			return fmt.Errorf("shard: %s:%d: global %d out of order (want %d)", docmapName, line, g, len(r.homes)+1)
		}
		r.adopt(int(s), model.DocID(l))
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return err
	}
	// Verify and reconcile: every shard document must be in the map. A
	// record can only be missing at the very tail of a shard's sequence
	// (the log is appended after the WAL commit), so re-adopting in
	// (shard, local) order is deterministic.
	r.logf, r.logw = f, bufio.NewWriter(f)
	for s, db := range r.shards {
		locals := db.Docs()
		for _, l := range locals {
			if int(l) > len(r.toGlob[s]) || r.toGlob[s][l-1] == 0 {
				info, err := db.Info(l)
				if err != nil {
					return fmt.Errorf("shard %d: doc %d missing from docmap and unreadable: %v", s, l, err)
				}
				g := r.adopt(s, l)
				if err := r.appendRecord(g, s, l, info.Name); err != nil {
					return err
				}
			}
		}
		if len(locals) != len(r.toGlob[s]) {
			return fmt.Errorf("shard %d: %s lists %d documents, engine has %d",
				s, docmapName, len(r.toGlob[s]), len(locals))
		}
	}
	return nil
}

// adopt appends the next global DocID for shard s's local l and returns
// it. Caller holds mu (or is single-threaded during open).
func (r *Router) adopt(s int, l model.DocID) model.DocID {
	g := model.DocID(len(r.homes) + 1)
	r.homes = append(r.homes, loc{shard: s, local: l})
	for len(r.toGlob[s]) < int(l) {
		r.toGlob[s] = append(r.toGlob[s], 0)
	}
	r.toGlob[s][l-1] = g
	return g
}

// appendRecord durably appends one docmap record. Caller holds mu.
func (r *Router) appendRecord(g model.DocID, s int, l model.DocID, url string) error {
	if r.logf == nil {
		return nil
	}
	if _, err := fmt.Fprintf(r.logw, "%d %d %d %s\n", g, s, l, url); err != nil {
		return err
	}
	if err := r.logw.Flush(); err != nil {
		return err
	}
	return r.logf.Sync()
}

// homeShard places a URL: FNV-1a mod shard count, stable across restarts
// and independent of insertion order.
func (r *Router) homeShard(url string) int {
	h := fnv.New32a()
	h.Write([]byte(url))
	return int(h.Sum32() % uint32(r.n))
}

// HomeShard reports which shard a URL routes to (exported for the
// routing tests and operational tooling).
func (r *Router) HomeShard(url string) int { return r.homeShard(url) }

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Shard exposes the i-th engine (maintenance tooling and tests).
func (r *Router) Shard(i int) *core.DB { return r.shards[i] }

// locate translates a global DocID to its shard and local DocID.
func (r *Router) locate(g model.DocID) (int, model.DocID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if g < 1 || int(g) > len(r.homes) {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownDoc, g)
	}
	l := r.homes[g-1]
	return l.shard, l.local, nil
}

// ShardOf reports the shard owning a global DocID (routing tests,
// operational tooling).
func (r *Router) ShardOf(g model.DocID) (int, error) {
	s, _, err := r.locate(g)
	return s, err
}

// globalOf translates shard s's local DocID to the global space.
func (r *Router) globalOf(s int, local model.DocID) (model.DocID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if local < 1 || int(local) > len(r.toGlob[s]) {
		return 0, false
	}
	g := r.toGlob[s][local-1]
	return g, g != 0
}

// docCount returns the number of global DocIDs allocated.
func (r *Router) docCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.homes)
}

// Close closes every shard engine and the docmap log.
func (r *Router) Close() error {
	var errs []error
	for i, db := range r.shards {
		if db == nil {
			continue
		}
		if err := db.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	r.mu.Lock()
	if r.logf != nil {
		if err := r.logw.Flush(); err != nil {
			errs = append(errs, err)
		}
		if err := r.logf.Close(); err != nil {
			errs = append(errs, err)
		}
		r.logf, r.logw = nil, nil
	}
	r.mu.Unlock()
	return errors.Join(errs...)
}

// Pool exposes the router's scatter-gather pool.
func (r *Router) Pool() *parallel.Pool { return r.pool }

// PoolStats returns the scatter-gather pool's counters (the per-shard
// engines own their pools; their load shows up in ShardStats).
func (r *Router) PoolStats() parallel.Stats { return r.pool.Stats() }

// ShardHealth is one shard's health as aggregated into /readyz.
type ShardHealth struct {
	Shard   int
	Enabled bool // resilience tier configured on this shard
	State   resilience.State
	Breaker resilience.BreakerState
}

// ShardHealth reports every shard's resilience state.
func (r *Router) ShardHealth() []ShardHealth {
	out := make([]ShardHealth, r.n)
	for i, db := range r.shards {
		out[i] = ShardHealth{Shard: i}
		if snap, ok := db.Health(); ok {
			out[i].Enabled = true
			out[i].State = snap.State
			out[i].Breaker = snap.Breaker.State
		}
	}
	return out
}

// Health aggregates the shards' resilience tiers into one snapshot: all
// healthy ⇒ healthy, all failing ⇒ failing, anything in between ⇒
// degraded (one failing shard degrades the service, it does not take it
// down — single-document traffic for the other shards still succeeds).
// Counters are summed; the breaker reports the worst position. ok is
// false when no shard carries a tier.
func (r *Router) Health() (resilience.Snapshot, bool) {
	var agg resilience.Snapshot
	enabled, healthy, failing := 0, 0, 0
	for _, db := range r.shards {
		snap, ok := db.Health()
		if !ok {
			continue
		}
		enabled++
		switch snap.State {
		case resilience.Healthy:
			healthy++
		case resilience.Failing:
			failing++
		}
		agg.Backend.Transitions += snap.Backend.Transitions
		agg.Data.Transitions += snap.Data.Transitions
		if snap.Backend.State > agg.Backend.State {
			agg.Backend.State = snap.Backend.State
		}
		if snap.Data.State > agg.Data.State {
			agg.Data.State = snap.Data.State
		}
		if snap.Breaker.State > agg.Breaker.State {
			agg.Breaker.State = snap.Breaker.State
		}
		agg.Breaker.Opens += snap.Breaker.Opens
		agg.Breaker.FastFails += snap.Breaker.FastFails
		agg.Breaker.Probes += snap.Breaker.Probes
		agg.DegradedServes += snap.DegradedServes
		agg.DegradedRejects += snap.DegradedRejects
	}
	if enabled == 0 {
		return resilience.Snapshot{}, false
	}
	switch {
	case healthy == enabled:
		agg.State = resilience.Healthy
	case failing == enabled:
		agg.State = resilience.Failing
	default:
		agg.State = resilience.Degraded
	}
	return agg, true
}

// DegradedMode implements plan.DegradedReporter: the service is degraded
// while any shard is, so results that may have had coverage limited by a
// sick shard are flagged.
func (r *Router) DegradedMode() bool {
	for _, db := range r.shards {
		if db.Resilience() != nil && db.DegradedMode() {
			return true
		}
	}
	return false
}

// RetryAfter suggests the longest retry hint across shards.
func (r *Router) RetryAfter() (d time.Duration) {
	for _, db := range r.shards {
		if db.Resilience() == nil {
			continue
		}
		if ra := db.RetryAfter(); ra > d {
			d = ra
		}
	}
	return d
}

// Stats is one shard's serving counters, feeding the txserved_shard_*
// metric family.
type Stats struct {
	Shard          int
	Docs           int   // documents homed on this shard
	Ops            int64 // operations admitted through the shard gate
	Active         int64 // operations inside the engine now
	Queued         int64 // operations waiting for admission now
	Health         resilience.State
	HealthEnabled  bool
	CheckpointRuns int
	Durable        bool
	WALSegments    int64
}

// ShardStats snapshots every shard's serving counters.
func (r *Router) ShardStats() []Stats {
	counts := make([]int, r.n)
	r.mu.RLock()
	for _, l := range r.homes {
		counts[l.shard]++
	}
	r.mu.RUnlock()
	out := make([]Stats, r.n)
	for i, db := range r.shards {
		st := Stats{
			Shard:  i,
			Docs:   counts[i],
			Ops:    r.gates[i].total.Load(),
			Active: r.gates[i].active.Load(),
			Queued: r.gates[i].queued.Load(),
		}
		if snap, ok := db.Health(); ok {
			st.Health, st.HealthEnabled = snap.State, true
		}
		if cs, ok := db.CheckpointStats(); ok {
			st.CheckpointRuns, st.Durable = cs.Runs, true
			st.WALSegments = db.WALSegments()
		}
		out[i] = st
	}
	return out
}
