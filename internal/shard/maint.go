package shard

import (
	"errors"
	"fmt"

	"txmldb/internal/checkpoint"
	"txmldb/internal/core"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
	"txmldb/internal/vcache"
)

// Maintenance fans out to every shard and keeps going past per-shard
// failures: a checkpoint that succeeds on seven shards and fails on one
// should persist the seven, and the joined error names the eighth.

// Checkpoint runs a checkpoint on every durable shard and returns the
// summed run statistics (File summarizes the fan-out; per-shard image
// names are in each shard's CheckpointStats).
func (r *Router) Checkpoint() (checkpoint.RunStats, error) {
	var agg checkpoint.RunStats
	var errs []error
	ran := 0
	for i, db := range r.shards {
		st, err := db.Checkpoint()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		ran++
		agg.Bytes += st.Bytes
		agg.Extents += st.Extents
		agg.SegmentsDeleted += st.SegmentsDeleted
		agg.CheckpointsDeleted += st.CheckpointsDeleted
		agg.Duration += st.Duration
	}
	agg.File = fmt.Sprintf("%d/%d shards", ran, r.n)
	return agg, errors.Join(errs...)
}

// CheckpointStats sums the per-shard checkpointer counters; ok is false
// when no shard is durable. LastFile/LastBytes/LastDuration report the
// highest-numbered durable shard's last image (a representative; the
// full per-shard view is ShardStats).
func (r *Router) CheckpointStats() (core.CheckpointStats, bool) {
	var agg core.CheckpointStats
	any := false
	for _, db := range r.shards {
		st, ok := db.CheckpointStats()
		if !ok {
			continue
		}
		any = true
		agg.Runs += st.Runs
		agg.Errors += st.Errors
		agg.SegmentsDeleted += st.SegmentsDeleted
		agg.LastFile = st.LastFile
		agg.LastBytes = st.LastBytes
		agg.LastDuration = st.LastDuration
	}
	return agg, any
}

// WALSegments sums the live WAL segment counts across shards.
func (r *Router) WALSegments() (n int64) {
	for _, db := range r.shards {
		n += db.WALSegments()
	}
	return n
}

// WALStats sums the per-shard WAL counters; ok is false when no shard is
// durable.
func (r *Router) WALStats() (pagestore.WALStats, bool) {
	var agg pagestore.WALStats
	any := false
	for _, db := range r.shards {
		st, ok := db.WALStats()
		if !ok {
			continue
		}
		any = true
		agg.Records += st.Records
		agg.Commits += st.Commits
		agg.Syncs += st.Syncs
		agg.BytesAppended += st.BytesAppended
		agg.PayloadBytes += st.PayloadBytes
		agg.RecoveredBytes += st.RecoveredBytes
		agg.TruncatedOnOpen += st.TruncatedOnOpen
		agg.ReplayedCommits += st.ReplayedCommits
		agg.ReplayedExtents += st.ReplayedExtents
		agg.SegmentsScanned += st.SegmentsScanned
	}
	return agg, any
}

// CommitBatchStats sums the per-shard WAL group-commit counters; ok is
// false when no shard has commit batching configured. Each shard owns an
// independent batcher (its engine's page store), so MaxBatch is the
// largest any one shard amortized into a single fsync.
func (r *Router) CommitBatchStats() (pagestore.GroupStats, bool) {
	var agg pagestore.GroupStats
	any := false
	for _, db := range r.shards {
		st, ok := db.CommitBatchStats()
		if !ok {
			continue
		}
		any = true
		agg.Commits += st.Commits
		agg.Batches += st.Batches
		agg.Failures += st.Failures
		if st.MaxBatch > agg.MaxBatch {
			agg.MaxBatch = st.MaxBatch
		}
	}
	return agg, any
}

// Vacuum applies the retention policy on every shard and merges the
// reports; the checkpoint half of the return sums like Checkpoint's.
func (r *Router) Vacuum(ret store.Retention) (store.VacuumReport, checkpoint.RunStats, error) {
	var rep store.VacuumReport
	var run checkpoint.RunStats
	var errs []error
	ran := 0
	for i, db := range r.shards {
		vr, cs, err := db.Vacuum(ret)
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			continue
		}
		ran++
		rep.Docs += vr.Docs
		rep.VersionsPruned += vr.VersionsPruned
		rep.ExtentsFreed += vr.ExtentsFreed
		rep.BytesFreed += vr.BytesFreed
		rep.SnapshotsAdded += vr.SnapshotsAdded
		run.Bytes += cs.Bytes
		run.Extents += cs.Extents
		run.SegmentsDeleted += cs.SegmentsDeleted
		run.CheckpointsDeleted += cs.CheckpointsDeleted
		run.Duration += cs.Duration
	}
	run.File = fmt.Sprintf("%d/%d shards", ran, r.n)
	return rep, run, errors.Join(errs...)
}

// Fsck walks every shard's store and merges the reports, with each
// problem's DocID translated to the global space (a zero Doc means the
// shard document predates the docmap — it should not happen, and is left
// untranslated so the problem still surfaces).
func (r *Router) Fsck() store.FsckReport {
	var agg store.FsckReport
	for s, db := range r.shards {
		rep := db.Fsck()
		agg.Docs += rep.Docs
		agg.Versions += rep.Versions
		agg.Extents += rep.Extents
		for _, p := range rep.Problems {
			if g, ok := r.globalOf(s, p.Doc); ok {
				p.Doc = g
			}
			agg.Problems = append(agg.Problems, p)
		}
	}
	return agg
}

// CacheStats sums the per-shard version-cache counters; ok is false when
// no shard has a cache.
func (r *Router) CacheStats() (vcache.Stats, bool) {
	var agg vcache.Stats
	any := false
	for _, db := range r.shards {
		st, ok := db.CacheStats()
		if !ok {
			continue
		}
		any = true
		agg.Lookups += st.Lookups
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.AncestorHits += st.AncestorHits
		agg.CollapsedFlights += st.CollapsedFlights
		agg.Evictions += st.Evictions
		agg.Invalidations += st.Invalidations
		agg.Fills += st.Fills
		agg.ResidentBytes += st.ResidentBytes
		agg.Entries += st.Entries
	}
	return agg, any
}

// PurgeCache empties every shard's version cache.
func (r *Router) PurgeCache() {
	for _, db := range r.shards {
		db.PurgeCache()
	}
}

// IOStats sums the simulated-disk counters across shards.
func (r *Router) IOStats() pagestore.IOStats {
	var agg pagestore.IOStats
	for _, db := range r.shards {
		agg = agg.Add(db.IOStats())
	}
	return agg
}
