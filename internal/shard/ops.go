package shard

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"txmldb/internal/core"
	"txmldb/internal/diff"
	"txmldb/internal/fti"
	"txmldb/internal/model"
	"txmldb/internal/parallel"
	"txmldb/internal/pattern"
	"txmldb/internal/plan"
	"txmldb/internal/store"
	"txmldb/internal/xmltree"
)

// --- write path ---
//
// Writes hold the router lock exclusively for the whole operation: global
// DocIDs must be allocated in shard-commit order so docmap.log replays to
// the same space, and so the allocation sequence matches what a single
// unsharded engine (whose store also serializes writes) would produce.

// Put stores the first version of a new document on its home shard and
// returns its global DocID.
func (r *Router) Put(url string, root *xmltree.Node, t model.Time) (model.DocID, error) {
	return r.put(url, func(db *core.DB) (model.DocID, error) { return db.Put(url, root, t) })
}

// PutXML parses and stores the first version of a new document.
func (r *Router) PutXML(url string, rd io.Reader, t model.Time) (model.DocID, error) {
	return r.put(url, func(db *core.DB) (model.DocID, error) { return db.PutXML(url, rd, t) })
}

func (r *Router) put(url string, fn func(db *core.DB) (model.DocID, error)) (model.DocID, error) {
	s := r.homeShard(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	release := r.gates[s].enter()
	local, err := fn(r.shards[s])
	release()
	if err != nil {
		return 0, err
	}
	g := r.adopt(s, local)
	if err := r.appendRecord(g, s, local, url); err != nil {
		return 0, fmt.Errorf("shard: docmap append: %w", err)
	}
	return g, nil
}

// Update stores a new version of the document.
func (r *Router) Update(id model.DocID, root *xmltree.Node, t model.Time) (model.VersionNo, *diff.Script, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return 0, nil, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].Update(local, root, t)
}

// UpdateXML parses and stores a new version of the document.
func (r *Router) UpdateXML(id model.DocID, rd io.Reader, t model.Time) (model.VersionNo, *diff.Script, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return 0, nil, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].UpdateXML(local, rd, t)
}

// Delete ends the document's life at t. Its history stays queryable.
func (r *Router) Delete(id model.DocID, t model.Time) error {
	s, local, err := r.locate(id)
	if err != nil {
		return err
	}
	defer r.gates[s].enter()()
	return r.shards[s].Delete(local, t)
}

// --- identity and metadata ---

// Now implements plan.Engine. Shard clocks are expected to agree; shard 0
// answers for the ensemble.
func (r *Router) Now() model.Time { return r.shards[0].Now() }

// LookupDoc implements plan.Engine: URL to global DocID.
func (r *Router) LookupDoc(url string) (model.DocID, bool) {
	s := r.homeShard(url)
	local, ok := r.shards[s].LookupDoc(url)
	if !ok {
		return 0, false
	}
	return r.globalOf(s, local)
}

// Info returns document metadata with the global DocID.
func (r *Router) Info(id model.DocID) (store.DocInfo, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return store.DocInfo{}, err
	}
	info, err := r.shards[s].Info(local)
	if err != nil {
		return store.DocInfo{}, err
	}
	info.ID = id
	return info, nil
}

// Docs lists all documents ever stored, ascending. Globals are allocated
// densely in put order, so this is 1..N exactly as a single engine lists.
func (r *Router) Docs() []model.DocID {
	n := r.docCount()
	out := make([]model.DocID, n)
	for i := range out {
		out[i] = model.DocID(i + 1)
	}
	return out
}

// Current returns the live current version of a document.
func (r *Router) Current(id model.DocID) (*xmltree.Node, store.VersionInfo, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return nil, store.VersionInfo{}, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].Current(local)
}

// Versions implements plan.Engine.
func (r *Router) Versions(id model.DocID) ([]store.VersionInfo, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return nil, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].Versions(local)
}

// --- scatter-gather scans ---

// scatter fans one index scan out to every shard through the router pool
// (per-shard admission applies), translates each shard's matches into the
// global DocID space, and merges deterministically: concatenate in shard
// order, then stable-sort by global DocID. Locals are assigned in put
// order per shard and globals in put order overall, so a shard's
// local-ascending output is already global-ascending; the stable sort is
// a pure interleave that reproduces the single engine's ascending-DocID
// merge byte for byte. A failing shard fails the scan typed ("shard %d:"
// wrapping the engine's resilience error) — multi-document operators do
// not silently return partial results.
func (r *Router) scatter(ctx context.Context, scope string, fn func(db *core.DB) ([]pattern.Match, error)) ([]pattern.Match, error) {
	per, err := parallel.Map(ctx, r.pool, scope, r.n, func(s int) ([]pattern.Match, error) {
		release := r.gates[s].enter()
		ms, err := fn(r.shards[s])
		release()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		return r.translateMatches(s, ms)
	})
	if err != nil {
		return nil, err
	}
	var all []pattern.Match
	for _, ms := range per {
		all = append(all, ms...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Doc < all[j].Doc })
	return all, nil
}

// translateMatches rewrites one shard's matches into the global DocID
// space: the match's Doc and every binding's posting Doc (TEIDs are built
// from postings, so both must agree).
func (r *Router) translateMatches(s int, ms []pattern.Match) ([]pattern.Match, error) {
	out := make([]pattern.Match, len(ms))
	for i, m := range ms {
		g, ok := r.globalOf(s, m.Doc)
		if !ok {
			return nil, fmt.Errorf("shard %d: local doc %d has no global id", s, m.Doc)
		}
		nb := make(map[*pattern.PNode]fti.Posting, len(m.Bindings))
		for pn, post := range m.Bindings {
			post.Doc = g
			nb[pn] = post
		}
		out[i] = pattern.Match{Doc: g, Bindings: nb, Span: m.Span}
	}
	return out, nil
}

// ScanTContext implements plan.ContextScanner: the pattern against the
// snapshot valid at t, across all shards.
func (r *Router) ScanTContext(ctx context.Context, p *pattern.PNode, t model.Time) ([]pattern.Match, error) {
	return r.scatter(ctx, "shardscan", func(db *core.DB) ([]pattern.Match, error) {
		return db.ScanTContext(ctx, p, t)
	})
}

// ScanT implements plan.Engine by delegating to ScanTContext.
func (r *Router) ScanT(p *pattern.PNode, t model.Time) ([]pattern.Match, error) {
	return r.ScanTContext(context.Background(), p, t)
}

// ScanAllContext implements plan.ContextScanner: the pattern against all
// versions of all documents, across all shards.
func (r *Router) ScanAllContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error) {
	return r.scatter(ctx, "shardscan", func(db *core.DB) ([]pattern.Match, error) {
		return db.ScanAllContext(ctx, p)
	})
}

// ScanAll implements plan.Engine by delegating to ScanAllContext.
func (r *Router) ScanAll(p *pattern.PNode) ([]pattern.Match, error) {
	return r.ScanAllContext(context.Background(), p)
}

// ScanCurrentContext implements plan.ContextScanner: the non-temporal
// PatternScan across all shards.
func (r *Router) ScanCurrentContext(ctx context.Context, p *pattern.PNode) ([]pattern.Match, error) {
	return r.scatter(ctx, "shardscan", func(db *core.DB) ([]pattern.Match, error) {
		return db.ScanCurrentContext(ctx, p)
	})
}

// ScanCurrent implements plan.Engine by delegating to ScanCurrentContext.
func (r *Router) ScanCurrent(p *pattern.PNode) ([]pattern.Match, error) {
	return r.ScanCurrentContext(context.Background(), p)
}

// --- the TEID-level operators of Section 6.1 ---

// TPatternScan matches the pattern at time t and returns projected TEIDs
// in the global space.
func (r *Router) TPatternScan(p *pattern.PNode, t model.Time) ([]model.TEID, error) {
	ms, err := r.ScanT(p, t)
	if err != nil {
		return nil, err
	}
	return teidsOf(ms, p, func(pattern.Match) model.Time { return t }), nil
}

// TPatternScanAll matches against all versions of all documents; each
// TEID is stamped with the start of its match's temporal overlap.
func (r *Router) TPatternScanAll(p *pattern.PNode) ([]model.TEID, error) {
	ms, err := r.ScanAll(p)
	if err != nil {
		return nil, err
	}
	return teidsOf(ms, p, func(m pattern.Match) model.Time { return m.Span.Start }), nil
}

// PatternScan matches against the current database state.
func (r *Router) PatternScan(p *pattern.PNode) ([]model.TEID, error) {
	ms, err := r.ScanCurrent(p)
	if err != nil {
		return nil, err
	}
	now := r.Now()
	return teidsOf(ms, p, func(pattern.Match) model.Time { return now }), nil
}

// teidsOf projects matches to deduplicated TEIDs in first-match order —
// the same projection core runs, applied to globally-translated matches
// so the output is identical to a single engine's.
func teidsOf(ms []pattern.Match, p *pattern.PNode, stamp func(pattern.Match) model.Time) []model.TEID {
	proj := p.Projected()
	seen := make(map[model.TEID]bool)
	var out []model.TEID
	for _, m := range ms {
		for _, pn := range proj {
			teid := m.TEID(pn, stamp(m))
			if !seen[teid] {
				seen[teid] = true
				out = append(out, teid)
			}
		}
	}
	return out
}

// --- single-document history and reconstruction ---

// DocHistory returns all versions of the document valid in the interval,
// most recent first.
func (r *Router) DocHistory(id model.DocID, iv model.Interval) ([]store.VersionTree, error) {
	return r.DocHistoryContext(context.Background(), id, iv)
}

// DocHistoryContext is DocHistory under a caller context.
func (r *Router) DocHistoryContext(ctx context.Context, id model.DocID, iv model.Interval) ([]store.VersionTree, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return nil, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].DocHistoryContext(ctx, local, iv)
}

// ElementHistory returns all versions of the element valid in the
// interval, most recent first.
func (r *Router) ElementHistory(eid model.EID, iv model.Interval) ([]store.VersionTree, error) {
	return r.ElementHistoryContext(context.Background(), eid, iv)
}

// ElementHistoryContext is ElementHistory under a caller context.
func (r *Router) ElementHistoryContext(ctx context.Context, eid model.EID, iv model.Interval) ([]store.VersionTree, error) {
	s, local, err := r.locate(eid.Doc)
	if err != nil {
		return nil, err
	}
	defer r.gates[s].enter()()
	eid.Doc = local
	return r.shards[s].ElementHistoryContext(ctx, eid, iv)
}

// Reconstruct rebuilds the element version identified by the TEID.
func (r *Router) Reconstruct(teid model.TEID) (*xmltree.Node, error) {
	return r.ReconstructContext(context.Background(), teid)
}

// ReconstructContext is Reconstruct under a caller context.
func (r *Router) ReconstructContext(ctx context.Context, teid model.TEID) (*xmltree.Node, error) {
	s, local, err := r.locate(teid.E.Doc)
	if err != nil {
		return nil, err
	}
	defer r.gates[s].enter()()
	teid.E.Doc = local
	return r.shards[s].ReconstructContext(ctx, teid)
}

// ReconstructVersion implements plan.Engine.
func (r *Router) ReconstructVersion(id model.DocID, ver model.VersionNo) (store.VersionTree, error) {
	return r.ReconstructVersionContext(context.Background(), id, ver)
}

// ReconstructVersionContext implements plan.ContextReconstructor, routed
// to the owning shard's cache-aware reconstruction.
func (r *Router) ReconstructVersionContext(ctx context.Context, id model.DocID, ver model.VersionNo) (store.VersionTree, error) {
	s, local, err := r.locate(id)
	if err != nil {
		return store.VersionTree{}, err
	}
	defer r.gates[s].enter()()
	return r.shards[s].ReconstructVersionContext(ctx, local, ver)
}

// ReconstructBatch reconstructs many element versions on the router pool;
// each TEID routes to its owning shard.
func (r *Router) ReconstructBatch(ctx context.Context, teids []model.TEID) ([]*xmltree.Node, error) {
	return parallel.Map(ctx, r.pool, "shardreconstruct", len(teids), func(i int) (*xmltree.Node, error) {
		return r.ReconstructContext(ctx, teids[i])
	})
}

// PrefetchVersions implements plan.Prefetcher: keys group by owning
// shard, each group prefetches on its shard's pool, and the sink is
// serialized by a router-level mutex (the contract is that it is never
// called concurrently) with keys translated back to the global space.
func (r *Router) PrefetchVersions(ctx context.Context, keys []plan.VersionKey, sink func(plan.VersionKey, store.VersionTree)) (bool, error) {
	groups := make(map[int][]plan.VersionKey) // shard -> local keys
	toGlobal := make(map[int]map[plan.VersionKey]plan.VersionKey)
	for _, k := range keys {
		s, local, err := r.locate(k.Doc)
		if err != nil {
			return false, err
		}
		lk := plan.VersionKey{Doc: local, Ver: k.Ver}
		groups[s] = append(groups[s], lk)
		if toGlobal[s] == nil {
			toGlobal[s] = make(map[plan.VersionKey]plan.VersionKey)
		}
		toGlobal[s][lk] = k
	}
	shards := make([]int, 0, len(groups))
	for s := range groups {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var sinkMu sync.Mutex
	ranAny := false
	var ranMu sync.Mutex
	err := r.pool.Run(ctx, "shardprefetch", len(shards), func(i int) error {
		s := shards[i]
		release := r.gates[s].enter()
		defer release()
		back := toGlobal[s]
		ran, err := r.shards[s].PrefetchVersions(ctx, groups[s], func(lk plan.VersionKey, vt store.VersionTree) {
			sinkMu.Lock()
			defer sinkMu.Unlock()
			if gk, ok := back[lk]; ok {
				sink(gk, vt)
			}
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if ran {
			ranMu.Lock()
			ranAny = true
			ranMu.Unlock()
		}
		return nil
	})
	return ranAny, err
}

// --- timestamp operators ---

// CreTime implements plan.Engine: the element's creation time.
func (r *Router) CreTime(eid model.EID) (model.Time, error) {
	s, local, err := r.locate(eid.Doc)
	if err != nil {
		return 0, err
	}
	defer r.gates[s].enter()()
	eid.Doc = local
	return r.shards[s].CreTime(eid)
}

// CreTimeAt is CreTime(TEID).
func (r *Router) CreTimeAt(teid model.TEID) (model.Time, error) {
	s, local, err := r.locate(teid.E.Doc)
	if err != nil {
		return 0, err
	}
	defer r.gates[s].enter()()
	teid.E.Doc = local
	return r.shards[s].CreTimeAt(teid)
}

// DelTime implements plan.Engine: the element's deletion time.
func (r *Router) DelTime(eid model.EID) (model.Time, error) {
	s, local, err := r.locate(eid.Doc)
	if err != nil {
		return 0, err
	}
	defer r.gates[s].enter()()
	eid.Doc = local
	return r.shards[s].DelTime(eid)
}

// DelTimeAt is DelTime(TEID).
func (r *Router) DelTimeAt(teid model.TEID) (model.Time, error) {
	s, local, err := r.locate(teid.E.Doc)
	if err != nil {
		return 0, err
	}
	defer r.gates[s].enter()()
	teid.E.Doc = local
	return r.shards[s].DelTimeAt(teid)
}

// PreviousTS returns the document version preceding the TEID's timestamp.
func (r *Router) PreviousTS(teid model.TEID) (store.VersionInfo, error) {
	s, local, err := r.locate(teid.E.Doc)
	if err != nil {
		return store.VersionInfo{}, err
	}
	defer r.gates[s].enter()()
	teid.E.Doc = local
	return r.shards[s].PreviousTS(teid)
}

// NextTS returns the document version following the TEID's timestamp.
func (r *Router) NextTS(teid model.TEID) (store.VersionInfo, error) {
	s, local, err := r.locate(teid.E.Doc)
	if err != nil {
		return store.VersionInfo{}, err
	}
	defer r.gates[s].enter()()
	teid.E.Doc = local
	return r.shards[s].NextTS(teid)
}

// CurrentTS returns the current version of the element's document.
func (r *Router) CurrentTS(eid model.EID) (store.VersionInfo, error) {
	s, local, err := r.locate(eid.Doc)
	if err != nil {
		return store.VersionInfo{}, err
	}
	defer r.gates[s].enter()()
	eid.Doc = local
	return r.shards[s].CurrentTS(eid)
}

// --- diff ---

// Diff computes the edit script between two element versions, possibly
// on different shards: the pair reconstructs concurrently on the router
// pool, the (pure) tree diff runs on shard 0.
func (r *Router) Diff(a, b model.TEID) (*xmltree.Node, error) {
	return r.DiffContext(context.Background(), a, b)
}

// DiffContext is Diff under a caller context.
func (r *Router) DiffContext(ctx context.Context, a, b model.TEID) (*xmltree.Node, error) {
	pair := [2]model.TEID{a, b}
	nodes, err := parallel.Map(ctx, r.pool, "diff", 2, func(i int) (*xmltree.Node, error) {
		return r.ReconstructContext(ctx, pair[i])
	})
	if err != nil {
		return nil, err
	}
	return r.DiffNodes(nodes[0], nodes[1])
}

// DiffNodes implements plan.Engine. The tree diff is pure computation;
// shard 0 hosts it.
func (r *Router) DiffNodes(a, b *xmltree.Node) (*xmltree.Node, error) {
	return r.shards[0].DiffNodes(a, b)
}

// --- queries ---

// Query parses and executes a temporal query against the sharded
// ensemble: the plan executor runs unmodified on the router.
func (r *Router) Query(src string) (*plan.Result, error) {
	return plan.RunString(r, src)
}

// QueryContext is Query under a caller context. Degraded-serving
// accounting happens inside each shard's engine (cache-hit fallbacks note
// themselves); the result's Degraded flag reflects the ensemble via the
// router's DegradedMode.
func (r *Router) QueryContext(ctx context.Context, src string) (*plan.Result, error) {
	return plan.RunStringContext(ctx, r, src)
}

// Explain returns the operator plan of a query without executing it.
func (r *Router) Explain(src string) (string, error) {
	return plan.ExplainString(src)
}
