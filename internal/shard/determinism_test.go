package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pattern"
	"txmldb/internal/plan"
	"txmldb/internal/store"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

// The determinism contract: every multi-document operator is byte-identical
// to a single unsharded engine at every shard count and every router worker
// count. The single core.DB is the reference; shards × workers are the
// configurations that must reproduce it exactly.

func detCorpus() tdocgen.Config {
	return tdocgen.Config{
		Seed:          7,
		Docs:          12,
		InitialElems:  5,
		Versions:      4,
		OpsPerVersion: 2,
		Start:         model.Date(2001, 1, 1),
	}
}

func detClock() model.Time { return model.Date(2001, 6, 1) }

func detPattern() *pattern.PNode {
	r := &pattern.PNode{Name: "restaurant", Rel: pattern.Child, Project: true}
	return &pattern.PNode{Name: "guide", Rel: pattern.Child, Children: []*pattern.PNode{r}}
}

// renderMatches flattens scan output for byte comparison: match order, the
// global DocID, the temporal overlap and every binding's posting (sorted by
// pattern-node name — the map itself has no order).
func renderMatches(p *pattern.PNode, ms []pattern.Match) string {
	var b strings.Builder
	for _, m := range ms {
		type bound struct{ name, post string }
		var bs []bound
		for pn, post := range m.Bindings {
			bs = append(bs, bound{pn.Name, fmt.Sprintf("%d/%d[%s,%s)", post.Doc, post.X, post.Span.Start, post.Span.End)})
		}
		sort.Slice(bs, func(i, j int) bool {
			if bs[i].name != bs[j].name {
				return bs[i].name < bs[j].name
			}
			return bs[i].post < bs[j].post
		})
		fmt.Fprintf(&b, "doc=%d span=[%s,%s)", m.Doc, m.Span.Start, m.Span.End)
		for _, bd := range bs {
			fmt.Fprintf(&b, " %s=%s", bd.name, bd.post)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// engineSurface is the slice of the operator surface the determinism test
// drives, satisfied by both *core.DB and *Router.
type engineSurface interface {
	TPatternScanAll(p *pattern.PNode) ([]model.TEID, error)
	PatternScan(p *pattern.PNode) ([]model.TEID, error)
	ScanAll(p *pattern.PNode) ([]pattern.Match, error)
	ScanT(p *pattern.PNode, t model.Time) ([]pattern.Match, error)
	ReconstructBatch(ctx context.Context, teids []model.TEID) ([]*xmltree.Node, error)
	Versions(id model.DocID) ([]store.VersionInfo, error)
	Diff(a, b model.TEID) (*xmltree.Node, error)
	Query(src string) (*plan.Result, error)
}

// snapshot renders every multi-document operator's output on one engine.
func snapshot(t *testing.T, db engineSurface, ids []model.DocID) map[string]string {
	t.Helper()
	p := detPattern()
	out := map[string]string{}

	// TPatternScanAll + batch reconstruction: TEIDs and trees.
	teids, err := db.TPatternScanAll(p)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := db.ReconstructBatch(context.Background(), teids)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for i, n := range trees {
		fmt.Fprintf(&sb, "%s=%s\n", teids[i], n.String())
	}
	out["tpatternscanall"] = sb.String()

	// ScanAll: the raw merged matches.
	ms, err := db.ScanAll(p)
	if err != nil {
		t.Fatal(err)
	}
	out["scanall"] = renderMatches(p, ms)

	// ScanT at a mid-corpus instant.
	mid := model.Date(2001, 1, 2)
	ts, err := db.ScanT(p, mid)
	if err != nil {
		t.Fatal(err)
	}
	out["scant"] = renderMatches(p, ts)

	// PatternScan against the current state (stamps with the fixed clock).
	cur, err := db.PatternScan(p)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	for _, teid := range cur {
		fmt.Fprintf(&sb, "%s\n", teid)
	}
	out["patternscan"] = sb.String()

	// Diff between the first and last version of every document.
	sb.Reset()
	for _, id := range ids {
		vs, err := db.Versions(id)
		if err != nil {
			t.Fatal(err)
		}
		a := model.TEID{E: model.EID{Doc: id, X: 1}, T: vs[0].Stamp}
		z := model.TEID{E: model.EID{Doc: id, X: 1}, T: vs[len(vs)-1].Stamp}
		dn, err := db.Diff(a, z)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "doc%d:%s\n", id, dn.String())
	}
	out["diff"] = sb.String()

	// A multi-version query through the plan executor.
	g := tdocgen.New(detCorpus())
	res, err := db.Query(fmt.Sprintf(
		`SELECT TIME(R), R/price FROM doc(%q)[EVERY]/restaurant R`, g.URL(3)))
	if err != nil {
		t.Fatal(err)
	}
	out["query"] = fmt.Sprintf("%v", res.Rows)
	return out
}

// TestShardedOperatorsMatchSingleEngine loads the same tdocgen corpus into
// one unsharded core.DB and into routers at 1, 2, 4 and 8 shards × 1 and 4
// scatter-gather workers, and requires byte-identical operator output
// everywhere — TEIDs, matches, reconstructed trees, diffs and query rows.
func TestShardedOperatorsMatchSingleEngine(t *testing.T) {
	gen := tdocgen.New(detCorpus())

	single := core.Open(core.Config{Clock: detClock})
	ids, err := gen.Load(single)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, single, ids)

	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			r := Open(Config{
				Shards:  shards,
				Workers: workers,
				Engine:  func(int) core.Config { return core.Config{Clock: detClock} },
			})
			rids, err := gen.Load(r)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: load: %v", shards, workers, err)
			}
			for i := range ids {
				if rids[i] != ids[i] {
					t.Fatalf("shards=%d workers=%d: corpus doc %d got global id %d, single engine assigned %d",
						shards, workers, i, rids[i], ids[i])
				}
			}
			got := snapshot(t, r, rids)
			for _, op := range []string{"tpatternscanall", "scanall", "scant", "patternscan", "diff", "query"} {
				if got[op] != want[op] {
					t.Errorf("shards=%d workers=%d: %s diverges from the single engine\n got: %q\nwant: %q",
						shards, workers, op, clip(got[op]), clip(want[op]))
				}
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "…"
	}
	return s
}
