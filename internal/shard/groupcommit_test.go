package shard

import (
	"sync"
	"testing"
	"time"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/pagestore"
	"txmldb/internal/store"
)

// TestShardGroupCommitBatchers verifies the Engine config passthrough
// gives every shard its own WAL group-commit batcher: concurrent writers
// landing on different shards amortize fsyncs per shard, and the router
// aggregates the counters.
func TestShardGroupCommitBatchers(t *testing.T) {
	root := t.TempDir()
	cfg := Config{
		Shards: 3,
		Engine: func(int) core.Config {
			return core.Config{
				Store: store.Config{Pages: pagestore.Config{
					GroupWindow: time.Millisecond,
				}},
				Clock: func() model.Time { return 1_000_000 },
			}
		},
	}
	r, err := OpenDurable(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const writers = 6
	const docsPer = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPer; i++ {
				url := testURL(w*docsPer + i)
				if _, err := r.Put(url, testTree(w*docsPer+i, 1), 1000); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	agg, ok := r.CommitBatchStats()
	if !ok {
		t.Fatal("CommitBatchStats: no shard has commit batching despite GroupWindow > 0")
	}
	if agg.Commits == 0 || agg.Batches == 0 {
		t.Fatalf("aggregated group stats empty: %+v", agg)
	}
	if agg.Batches > agg.Commits {
		t.Fatalf("more batches than commits: %+v", agg)
	}
	perShard := 0
	for i := 0; i < r.Shards(); i++ {
		if st, ok := r.Shard(i).CommitBatchStats(); ok && st.Commits > 0 {
			perShard++
		}
	}
	if perShard == 0 {
		t.Fatal("no shard recorded batched commits")
	}

	// Everything written through the batchers is durable across reopen.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenDurable(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := len(r2.Docs()); got != writers*docsPer {
		t.Fatalf("reopened router has %d docs, want %d", got, writers*docsPer)
	}
}
