package shard

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"txmldb/internal/core"
	"txmldb/internal/model"
	"txmldb/internal/tdocgen"
	"txmldb/internal/xmltree"
)

func testTree(d, v int) *xmltree.Node {
	g := xmltree.NewElement("guide")
	g.AppendChild(xmltree.Elem("restaurant",
		xmltree.ElemText("name", fmt.Sprintf("place-%d", d)),
		xmltree.ElemText("price", fmt.Sprint(10+v))))
	return g
}

func testURL(i int) string { return fmt.Sprintf("http://doc%03d.example.com/x.xml", i) }

// TestHomeShardStable pins the placement function: FNV-1a(url) mod N,
// independent of insertion order and identical for every router with the
// same shard count.
func TestHomeShardStable(t *testing.T) {
	a := Open(Config{Shards: 4})
	defer a.Close()
	b := Open(Config{Shards: 4})
	defer b.Close()
	for i := 0; i < 64; i++ {
		url := testURL(i)
		h := fnv.New32a()
		h.Write([]byte(url))
		want := int(h.Sum32() % 4)
		if got := a.HomeShard(url); got != want {
			t.Fatalf("HomeShard(%q) = %d, want fnv mod 4 = %d", url, got, want)
		}
		if a.HomeShard(url) != b.HomeShard(url) {
			t.Fatalf("HomeShard(%q) differs between routers", url)
		}
	}
}

// TestRoutingStableAcrossRestarts reopens a durable sharded root and
// checks every document keeps its global DocID, its home shard and its
// content.
func TestRoutingStableAcrossRestarts(t *testing.T) {
	root := t.TempDir()
	cfg := Config{Shards: 3}
	r, err := OpenDurable(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	const docs = 12
	type placement struct {
		id    model.DocID
		shard int
	}
	want := make(map[string]placement, docs)
	for i := 0; i < docs; i++ {
		url := testURL(i)
		id, err := r.Put(url, testTree(i, 1), model.Time(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		if id != model.DocID(i+1) {
			t.Fatalf("global DocIDs must be dense in put order: put %d got id %d", i, id)
		}
		s, err := r.ShardOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if s != r.HomeShard(url) {
			t.Fatalf("doc %q placed on shard %d, home is %d", url, s, r.HomeShard(url))
		}
		want[url] = placement{id: id, shard: s}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenDurable(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := len(r2.Docs()); got != docs {
		t.Fatalf("reopen lists %d docs, want %d", got, docs)
	}
	for url, p := range want {
		id, ok := r2.LookupDoc(url)
		if !ok || id != p.id {
			t.Fatalf("reopen: LookupDoc(%q) = %d,%v, want %d", url, id, ok, p.id)
		}
		s, err := r2.ShardOf(id)
		if err != nil {
			t.Fatal(err)
		}
		if s != p.shard {
			t.Fatalf("reopen: doc %q moved from shard %d to %d", url, p.shard, s)
		}
		info, err := r2.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.ID != id || info.Name != url {
			t.Fatalf("reopen: Info(%d) = {ID:%d Name:%q}, want {%d %q}", id, info.ID, info.Name, id, url)
		}
		if _, _, err := r2.Current(id); err != nil {
			t.Fatalf("reopen: Current(%d): %v", id, err)
		}
	}
}

// TestShardCountMismatch: the shard count is part of the on-disk format;
// reopening with a different -shards must fail typed, not reshuffle.
func TestShardCountMismatch(t *testing.T) {
	root := t.TempDir()
	r, err := OpenDurable(Config{Shards: 2}, root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(testURL(0), testTree(0, 1), 1000); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(Config{Shards: 4}, root); !errors.Is(err, ErrShardCountMismatch) {
		t.Fatalf("reopen with 4 shards of a 2-shard root: err = %v, want ErrShardCountMismatch", err)
	}
	// The matching count still opens.
	r2, err := OpenDurable(Config{Shards: 2}, root)
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
}

// TestLayout recognizes sharded roots and rejects nothing else.
func TestLayout(t *testing.T) {
	root := t.TempDir()
	if _, _, ok, err := Layout(root); ok || err != nil {
		t.Fatalf("Layout of a plain dir = ok %v err %v, want false nil", ok, err)
	}
	r, err := OpenDurable(Config{Shards: 3}, root)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	n, dirs, ok, err := Layout(root)
	if err != nil || !ok || n != 3 {
		t.Fatalf("Layout = %d,%v,%v, want 3,true,nil", n, ok, err)
	}
	for i, d := range dirs {
		if want := filepath.Join(root, ShardDirName(i)); d != want {
			t.Fatalf("Layout dir %d = %q, want %q", i, d, want)
		}
		if _, err := os.Stat(d); err != nil {
			t.Fatalf("shard dir %q missing: %v", d, err)
		}
	}
}

// TestDistributionSkew: hashing the tdocgen corpus URLs must spread
// documents across shards without pathological skew. The bound is loose
// (max/min ratio ≤ 2) — FNV-1a over hundreds of distinct URLs lands well
// inside it; the test exists to catch a broken or truncated hash.
func TestDistributionSkew(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		r := Open(Config{Shards: shards})
		g := tdocgen.New(tdocgen.Config{Seed: 1, Docs: 512})
		counts := make([]int, shards)
		for i := 0; i < 512; i++ {
			counts[r.HomeShard(g.URL(i))]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 || float64(max)/float64(min) > 2 {
			t.Errorf("shards=%d: skewed distribution %v (max/min > 2)", shards, counts)
		}
		r.Close()
	}
}

// TestShardStatsAndGates: after a mixed workload the admission counters
// balance (nothing active or queued at rest), per-shard doc counts sum to
// the corpus, and ops flowed through every populated shard.
func TestShardStatsAndGates(t *testing.T) {
	r := Open(Config{Shards: 4, ShardInflight: 2})
	defer r.Close()
	const docs = 16
	for i := 0; i < docs; i++ {
		id, err := r.Put(testURL(i), testTree(i, 1), model.Time(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Update(id, testTree(i, 2), model.Time(2000+i)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Current(id); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, st := range r.ShardStats() {
		if st.Active != 0 || st.Queued != 0 {
			t.Errorf("shard %d at rest reports active=%d queued=%d", st.Shard, st.Active, st.Queued)
		}
		if st.Docs > 0 && st.Ops == 0 {
			t.Errorf("shard %d holds %d docs but counted no ops", st.Shard, st.Docs)
		}
		total += st.Docs
	}
	if total != docs {
		t.Errorf("per-shard doc counts sum to %d, want %d", total, docs)
	}
}

// TestDocmapOrphanAdoption simulates the crash window between a shard's
// WAL commit and the docmap append: a document written directly into a
// shard engine (bypassing the router, as a torn put would leave it) must
// be re-adopted at the tail of the global sequence on reopen, and the
// repaired docmap must survive the next restart.
func TestDocmapOrphanAdoption(t *testing.T) {
	root := t.TempDir()
	r, err := OpenDurable(Config{Shards: 2}, root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Put(testURL(i), testTree(i, 1), model.Time(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Find a URL that homes on shard 0 and is not yet stored.
	orphanURL := ""
	for i := 100; i < 200; i++ {
		if r.HomeShard(testURL(i)) == 0 {
			orphanURL = testURL(i)
			break
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Write the orphan straight into shard 0's engine.
	db, err := core.OpenDurable(core.Config{}, filepath.Join(root, ShardDirName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Put(orphanURL, testTree(99, 1), 5000); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenDurable(Config{Shards: 2}, root)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := r2.LookupDoc(orphanURL)
	if !ok {
		t.Fatal("orphaned document not adopted on reopen")
	}
	if id != 4 {
		t.Fatalf("orphan adopted as global %d, want tail of sequence 4", id)
	}
	if s, _ := r2.ShardOf(id); s != 0 {
		t.Fatalf("orphan located on shard %d, want 0", s)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// The repair was logged: a third restart replays it without re-adopting.
	f, err := os.Open(filepath.Join(root, "docmap.log"))
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
	}
	f.Close()
	if lines != 4 {
		t.Fatalf("docmap.log has %d records after repair, want 4", lines)
	}
	r3, err := OpenDurable(Config{Shards: 2}, root)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if id3, ok := r3.LookupDoc(orphanURL); !ok || id3 != id {
		t.Fatalf("orphan id changed across restarts: %d,%v want %d", id3, ok, id)
	}
}

// TestUnknownDoc: operators on unallocated globals fail typed.
func TestUnknownDoc(t *testing.T) {
	r := Open(Config{Shards: 2})
	defer r.Close()
	if _, err := r.Info(7); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("Info(7) err = %v, want ErrUnknownDoc", err)
	}
	if _, _, err := r.Update(7, testTree(0, 1), 1); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("Update(7) err = %v, want ErrUnknownDoc", err)
	}
}
