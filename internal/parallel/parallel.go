// Package parallel is the shared execution tier beneath the multi-document
// temporal operators. The paper's cost arguments for TPatternScan /
// TPatternScanAll, DocHistory and Diff (Sections 6.2, 7.1–7.3) are stated
// per document, which makes the multi-document read path embarrassingly
// parallel: a Pool bounds how many of those per-document (or per-version)
// units run at once, merges their results in deterministic order, converts
// worker panics into errors, and cancels the remaining units on the first
// error.
//
// One Pool is shared by the whole database (core.DB owns it), so operator
// fan-out from many concurrent queries competes for the same bounded set
// of execution slots: a single wide query cannot monopolize the machine,
// because every task acquires one slot at a time and slot handoff
// interleaves fairly across callers. This is what lets the pool compose
// with the query server's admission control — admission bounds the number
// of in-flight queries, the pool bounds the number of in-flight per-query
// work units, and neither bound multiplies the other.
//
// With Workers <= 1 every call degenerates to an inline sequential loop on
// the caller's goroutine — same results, same order, no goroutines — which
// keeps the sequential path byte-identical and benchmarkable.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Pool.
type Config struct {
	// Workers bounds concurrently executing tasks. 0 means GOMAXPROCS;
	// 1 (or less) selects the inline sequential path.
	Workers int
}

// PanicError wraps a panic recovered in a pool worker so the failure
// surfaces as an ordinary error on the submitting goroutine instead of
// crashing the process from an anonymous worker.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v", e.Value)
}

// scopeStats accumulates per-operator counters; see Stats.Scopes.
type scopeStats struct {
	calls     atomic.Int64
	tasks     atomic.Int64
	taskNanos atomic.Int64
	wallNanos atomic.Int64
}

// ScopeStats describe one operator family's use of the pool. The ratio
// TaskTime/WallTime is the live parallel-speedup proxy: how much summed
// task work the pool retired per unit of caller wall-clock time.
type ScopeStats struct {
	// Calls counts Run/Map invocations under this scope.
	Calls int64
	// Tasks counts tasks submitted under this scope.
	Tasks int64
	// TaskTime is the summed execution time of those tasks.
	TaskTime time.Duration
	// WallTime is the summed caller-observed duration of the calls.
	WallTime time.Duration
}

// Speedup returns TaskTime/WallTime, the effective parallelism achieved
// (1.0 on the sequential path); 0 before any call completed.
func (s ScopeStats) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.TaskTime) / float64(s.WallTime)
}

// Stats is a snapshot of a Pool's counters. The balance invariant is
//
//	Submitted == Completed + Cancelled + Panicked
//
// once no call is in flight: every task the pool accounted for either ran
// to its end, was skipped or aborted by cancellation, or panicked.
type Stats struct {
	// Workers is the configured concurrency bound.
	Workers int
	// Submitted counts tasks handed to the pool (including tasks accounted
	// and immediately cancelled by first-error cancellation).
	Submitted int64
	// Completed counts tasks that ran to completion (returning nil or an
	// error).
	Completed int64
	// Cancelled counts tasks that never ran, or were skipped, because the
	// context was cancelled or an earlier task failed.
	Cancelled int64
	// Panicked counts tasks that panicked (the panic is returned to the
	// caller as a *PanicError).
	Panicked int64
	// Active is the number of tasks executing right now.
	Active int64
	// Queued is the number of tasks waiting for an execution slot right now.
	Queued int64
	// QueueWait is the cumulative time tasks spent waiting for a slot.
	QueueWait time.Duration
	// Scopes breaks the usage down per operator family.
	Scopes map[string]ScopeStats
}

// Pool is a bounded, context-aware worker pool. The zero value and the nil
// pool are valid and run everything inline sequentially. A Pool has no
// background goroutines and nothing to close: workers are spawned per call
// and bounded by a shared slot channel, so an idle pool costs nothing.
type Pool struct {
	workers int
	slots   chan struct{}

	submitted atomic.Int64
	completed atomic.Int64
	cancelled atomic.Int64
	panicked  atomic.Int64
	active    atomic.Int64
	queued    atomic.Int64
	waitNanos atomic.Int64

	mu     sync.Mutex
	scopes map[string]*scopeStats
}

// New builds a pool. Workers = 0 defaults to GOMAXPROCS.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	p := &Pool{workers: w, scopes: make(map[string]*scopeStats)}
	if w > 1 {
		p.slots = make(chan struct{}, w)
	}
	return p
}

// Workers returns the concurrency bound (1 for nil pools).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Stats returns a snapshot of the pool's counters; zero for nil pools.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{Workers: 1}
	}
	st := Stats{
		Workers:   p.Workers(),
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Cancelled: p.cancelled.Load(),
		Panicked:  p.panicked.Load(),
		Active:    p.active.Load(),
		Queued:    p.queued.Load(),
		QueueWait: time.Duration(p.waitNanos.Load()),
		Scopes:    make(map[string]ScopeStats),
	}
	p.mu.Lock()
	for name, sc := range p.scopes {
		st.Scopes[name] = ScopeStats{
			Calls:    sc.calls.Load(),
			Tasks:    sc.tasks.Load(),
			TaskTime: time.Duration(sc.taskNanos.Load()),
			WallTime: time.Duration(sc.wallNanos.Load()),
		}
	}
	p.mu.Unlock()
	return st
}

// scope returns (creating on first use) the named scope's counters.
func (p *Pool) scope(name string) *scopeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	sc := p.scopes[name]
	if sc == nil {
		sc = &scopeStats{}
		if p.scopes == nil {
			p.scopes = make(map[string]*scopeStats)
		}
		p.scopes[name] = sc
	}
	return sc
}

// Run executes fn(0) … fn(n-1) under the pool's concurrency bound and
// returns the first error (all later tasks are cancelled). A panicking
// task is returned as *PanicError. ctx cancellation aborts unstarted
// tasks; started tasks observe it through their own ctx plumbing. scope
// names the operator family for the per-scope stats.
//
// On pools with Workers <= 1 (including nil pools) the tasks run inline on
// the calling goroutine in index order, so results and side effects are
// identical to a plain sequential loop.
func (p *Pool) Run(ctx context.Context, scope string, n int, fn func(i int) error) error {
	if ctx == nil {
		//txvet:ignore ctxflow defensive default for nil-ctx callers; real contexts flow through unchanged
		ctx = context.Background()
	}
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil {
		return runSeq(ctx, nil, nil, n, fn)
	}
	sc := p.scope(scope)
	sc.calls.Add(1)
	start := time.Now()
	defer func() { sc.wallNanos.Add(int64(time.Since(start))) }()
	if p.workers <= 1 || n == 1 {
		return runSeq(ctx, p, sc, n, fn)
	}
	return p.runParallel(ctx, sc, n, fn)
}

// runSeq is the inline sequential path; pool and scope may be nil (nil
// pool). Accounting keeps the same balance invariant as the parallel path.
func runSeq(ctx context.Context, p *Pool, sc *scopeStats, n int, fn func(int) error) error {
	account := func(f func()) {
		if p != nil {
			f()
		}
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			account(func() {
				p.submitted.Add(int64(n - i))
				p.cancelled.Add(int64(n - i))
			})
			return err
		}
		account(func() {
			p.submitted.Add(1)
			sc.tasks.Add(1)
		})
		err, pv := runTask(p, sc, i, fn)
		if pv != nil {
			account(func() {
				p.panicked.Add(1)
				p.submitted.Add(int64(n - 1 - i))
				p.cancelled.Add(int64(n - 1 - i))
			})
			return pv
		}
		account(func() { p.completed.Add(1) })
		if err != nil {
			account(func() {
				p.submitted.Add(int64(n - 1 - i))
				p.cancelled.Add(int64(n - 1 - i))
			})
			return err
		}
	}
	return nil
}

// runTask runs one task with panic capture and task-time accounting.
func runTask(p *Pool, sc *scopeStats, i int, fn func(int) error) (err error, panicErr error) {
	t0 := time.Now()
	defer func() {
		if sc != nil {
			sc.taskNanos.Add(int64(time.Since(t0)))
		}
		if r := recover(); r != nil {
			panicErr = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i), nil
}

func (p *Pool) runParallel(ctx context.Context, sc *scopeStats, n int, fn func(int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			p.submitted.Add(int64(n - i))
			p.cancelled.Add(int64(n - i))
			break
		}
		// Acquire one execution slot; tasks from concurrent calls
		// interleave here, which is the pool's fairness point.
		p.queued.Add(1)
		tw := time.Now()
		var acquired bool
		select {
		case p.slots <- struct{}{}:
			acquired = true
		case <-ctx.Done():
		}
		p.queued.Add(-1)
		p.waitNanos.Add(int64(time.Since(tw)))
		if !acquired {
			p.submitted.Add(int64(n - i))
			p.cancelled.Add(int64(n - i))
			break
		}
		p.submitted.Add(1)
		sc.tasks.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-p.slots }()
			p.active.Add(1)
			defer p.active.Add(-1)
			if ctx.Err() != nil {
				p.cancelled.Add(1)
				return
			}
			err, pv := runTask(p, sc, i, fn)
			if pv != nil {
				p.panicked.Add(1)
				fail(pv)
				return
			}
			p.completed.Add(1)
			if err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(0) … fn(n-1) under the pool's bound and returns the results
// merged in index order — the ordered-merge primitive the operators build
// on: output order never depends on worker scheduling.
func Map[T any](ctx context.Context, p *Pool, scope string, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Run(ctx, scope, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
