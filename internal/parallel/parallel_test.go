package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// balance asserts the pool's accounting invariant after all calls drained.
func balance(t *testing.T, p *Pool) {
	t.Helper()
	st := p.Stats()
	if st.Submitted != st.Completed+st.Cancelled+st.Panicked {
		t.Fatalf("metrics imbalance: submitted=%d completed=%d cancelled=%d panicked=%d",
			st.Submitted, st.Completed, st.Cancelled, st.Panicked)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("idle pool has active=%d queued=%d", st.Active, st.Queued)
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		p := New(Config{Workers: w})
		got, err := Map(context.Background(), p, "test", 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
		balance(t, p)
	}
}

func TestNilPoolRunsSequentially(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers = %d, want 1", p.Workers())
	}
	var order []int
	err := p.Run(context.Background(), "test", 5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
}

func TestFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	for _, w := range []int{1, 4} {
		p := New(Config{Workers: w})
		var ran atomic.Int64
		err := p.Run(context.Background(), "test", 64, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			// Give the failing task a chance to cancel the rest.
			time.Sleep(time.Millisecond)
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", w, err)
		}
		if n := ran.Load(); n == 64 && w > 1 {
			t.Logf("workers=%d: all 64 tasks ran despite error (legal but unexpected)", w)
		}
		balance(t, p)
		st := p.Stats()
		if st.Cancelled == 0 && w > 1 {
			t.Logf("workers=%d: no tasks cancelled (timing-dependent)", w)
		}
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	for _, w := range []int{1, 4} {
		p := New(Config{Workers: w})
		err := p.Run(context.Background(), "test", 8, func(i int) error {
			if i == 2 {
				panic(fmt.Sprintf("kaboom %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", w, err)
		}
		if pe.Value != "kaboom 2" {
			t.Fatalf("workers=%d: panic value = %v", w, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic stack not captured", w)
		}
		balance(t, p)
		if st := p.Stats(); st.Panicked != 1 {
			t.Fatalf("workers=%d: panicked = %d, want 1", w, st.Panicked)
		}
	}
}

func TestContextCancellationAbortsUnstartedTasks(t *testing.T) {
	p := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.Run(ctx, "test", 100, func(i int) error {
		if ran.Add(1) == 2 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 100 {
		t.Fatalf("cancellation did not stop submissions (all 100 ran)")
	}
	balance(t, p)
}

func TestConcurrencyNeverExceedsWorkers(t *testing.T) {
	const workers = 3
	p := New(Config{Workers: workers})
	var active, peak atomic.Int64
	err := p.Run(context.Background(), "test", 50, func(i int) error {
		n := active.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(500 * time.Microsecond)
		active.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pk := peak.Load(); pk > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", pk, workers)
	}
	balance(t, p)
}

func TestScopeStatsAndSpeedupProxy(t *testing.T) {
	p := New(Config{Workers: 4})
	err := p.Run(context.Background(), "scanall", 16, func(i int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	sc, ok := st.Scopes["scanall"]
	if !ok {
		t.Fatalf("scope scanall missing: %v", st.Scopes)
	}
	if sc.Calls != 1 || sc.Tasks != 16 {
		t.Fatalf("scope stats = %+v", sc)
	}
	if sc.TaskTime < 16*2*time.Millisecond {
		t.Fatalf("task time %v < 32ms", sc.TaskTime)
	}
	// Sleeps overlap even on one CPU: the speedup proxy must beat 1.5x.
	if s := sc.Speedup(); s < 1.5 {
		t.Fatalf("speedup proxy = %.2f, want >= 1.5 (task %v wall %v)", s, sc.TaskTime, sc.WallTime)
	}
}

func TestSharedPoolBoundsAcrossConcurrentCalls(t *testing.T) {
	const workers = 4
	p := New(Config{Workers: workers})
	var active, peak atomic.Int64
	done := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func() {
			done <- p.Run(context.Background(), "caller", 20, func(i int) error {
				n := active.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				active.Add(-1)
				return nil
			})
		}()
	}
	for c := 0; c < 3; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if pk := peak.Load(); pk > workers {
		t.Fatalf("3 concurrent calls reached %d concurrent tasks, shared bound is %d", pk, workers)
	}
	balance(t, p)
}

func TestDefaultWorkersIsGOMAXPROCS(t *testing.T) {
	p := New(Config{})
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d", p.Workers())
	}
}
