// Package metrics is a minimal, stdlib-only observability layer for the
// query server: atomic counters and gauges, fixed-bucket latency
// histograms, and a Registry that renders a Prometheus-style text
// exposition for the /metrics endpoint. Everything is safe for concurrent
// use and allocation-free on the hot path (Inc/Observe are a handful of
// atomic adds), so instrumenting the request path costs next to nothing.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down (in-flight requests,
// queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the upper bounds, in milliseconds, of the
// default latency histogram: roughly logarithmic from half a millisecond
// to ten seconds.
var DefaultLatencyBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (conventionally: milliseconds of latency). Buckets are cumulative-style
// on render but stored disjoint; observation is two atomic adds plus a
// binary search over the (small, immutable) bound slice.
type Histogram struct {
	bounds   []float64      // sorted upper bounds; implicit +Inf last
	counts   []atomic.Int64 // len(bounds)+1
	count    atomic.Int64
	sumMicro atomic.Int64 // sum in thousandths of a unit, to stay integral
}

// NewHistogram builds a histogram with the given upper bounds (sorted
// ascending; a copy is taken). Nil bounds mean DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(int64(v * 1000))
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return float64(h.sumMicro.Load()) / 1000 }

// Quantile estimates the q-th quantile (0 < q < 1) by linear
// interpolation inside the bucket that contains it, the standard
// fixed-bucket estimate. It returns NaN with no observations; values in
// the overflow bucket clamp to the largest bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is anything the registry can render.
type metric interface {
	writeText(w io.Writer, name, help string)
}

// funcMetric renders a value pulled from a callback at exposition time.
// It lets the registry export counters owned by other subsystems (the
// buffer pool's hit/miss counters, the version cache's residency) without
// double accounting on their hot paths.
type funcMetric struct {
	typ string // "counter" or "gauge"
	f   func() int64
}

func (m *funcMetric) writeText(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, m.typ, name, m.f())
}

func (c *Counter) writeText(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
}

func (g *Gauge) writeText(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, g.Value())
}

func (h *Histogram) writeText(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// Registry holds named metrics and renders them in registration order.
// Lookup/registration takes a mutex; the returned metric handles are then
// lock-free, so callers should hold on to them rather than re-look them
// up per request.
type Registry struct {
	mu    sync.Mutex
	order []string
	byN   map[string]metric
	helps map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]metric), helps: make(map[string]string)}
}

// Counter returns the counter with the given name, creating it on first
// use. Registering the same name as a different metric type panics: that
// is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, help, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %s already registered as %T", name, m))
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, help, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %s already registered as %T", name, m))
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bounds (nil = DefaultLatencyBuckets) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.lookup(name, help, func() metric { return NewHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %s already registered as %T", name, m))
	}
	return h
}

// CounterFunc registers a counter whose value is pulled from f at
// exposition time. The value must be monotonically non-decreasing.
// Re-registering an existing name keeps the first callback.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	m := r.lookup(name, help, func() metric { return &funcMetric{typ: "counter", f: f} })
	if fm, ok := m.(*funcMetric); !ok || fm.typ != "counter" {
		panic(fmt.Sprintf("metrics: %s already registered as %T", name, m))
	}
}

// GaugeFunc registers a gauge whose value is pulled from f at exposition
// time.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	m := r.lookup(name, help, func() metric { return &funcMetric{typ: "gauge", f: f} })
	if fm, ok := m.(*funcMetric); !ok || fm.typ != "gauge" {
		panic(fmt.Sprintf("metrics: %s already registered as %T", name, m))
	}
}

// labeledFunc is one series of a labeled metric family: the family name
// stays the Prometheus metric name, the (label, value) pair distinguishes
// the series. Consecutively registered series of the same family share one
// HELP/TYPE header in the exposition.
type labeledFunc struct {
	typ    string // "counter" or "gauge"
	family string
	label  string
	value  string
	f      func() int64
}

func (m *labeledFunc) writeText(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.family, help, m.family, m.typ)
	m.writeSample(w)
}

func (m *labeledFunc) writeSample(w io.Writer) {
	fmt.Fprintf(w, "%s{%s=%q} %d\n", m.family, m.label, m.value, m.f())
}

// checkLabel rejects label keys/values that would corrupt the text
// exposition. Keys are further constrained (to literals in the txserved
// namespace) by the metricname analyzer; values are runtime data like a
// shard index, so only the quoting-sensitive characters are banned.
func checkLabel(family, label, value string) {
	for _, s := range []string{label, value} {
		if strings.ContainsAny(s, "{}\"\\\n") {
			panic(fmt.Sprintf("metrics: %s: label %s=%q contains exposition metacharacters", family, label, value))
		}
	}
}

// LabeledCounterFunc registers one series of a labeled counter family,
// rendered as family{label="value"}. Series registered consecutively for
// the same family share a single HELP/TYPE header. The value must be
// monotonically non-decreasing. Re-registering an existing series keeps
// the first callback.
func (r *Registry) LabeledCounterFunc(name, help, label, value string, f func() int64) {
	checkLabel(name, label, value)
	key := fmt.Sprintf("%s{%s=%q}", name, label, value)
	m := r.lookup(key, help, func() metric {
		return &labeledFunc{typ: "counter", family: name, label: label, value: value, f: f}
	})
	if lm, ok := m.(*labeledFunc); !ok || lm.typ != "counter" {
		panic(fmt.Sprintf("metrics: %s already registered as %T", key, m))
	}
}

// LabeledGaugeFunc registers one series of a labeled gauge family,
// rendered as family{label="value"}; see LabeledCounterFunc.
func (r *Registry) LabeledGaugeFunc(name, help, label, value string, f func() int64) {
	checkLabel(name, label, value)
	key := fmt.Sprintf("%s{%s=%q}", name, label, value)
	m := r.lookup(key, help, func() metric {
		return &labeledFunc{typ: "gauge", family: name, label: label, value: value, f: f}
	})
	if lm, ok := m.(*labeledFunc); !ok || lm.typ != "gauge" {
		panic(fmt.Sprintf("metrics: %s already registered as %T", key, m))
	}
}

func (r *Registry) lookup(name, help string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byN[name]; ok {
		return m
	}
	m := mk()
	r.byN[name] = m
	r.helps[name] = help
	r.order = append(r.order, name)
	return m
}

// WriteText renders every metric in registration order in the Prometheus
// text exposition format. Consecutive series of one labeled family emit a
// single HELP/TYPE header followed by all their samples.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	lastFamily := ""
	for _, name := range names {
		r.mu.Lock()
		m, help := r.byN[name], r.helps[name]
		r.mu.Unlock()
		if lf, ok := m.(*labeledFunc); ok {
			if lf.family == lastFamily {
				lf.writeSample(w)
				continue
			}
			lastFamily = lf.family
			lf.writeText(w, name, help)
			continue
		}
		lastFamily = ""
		m.writeText(w, name, help)
	}
}
