package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty histogram quantile = %v, want NaN", h.Quantile(0.5))
	}
	// 100 observations uniform in (0, 100): quantiles should land near the
	// true values within bucket resolution.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 0.5 {
		t.Errorf("Sum = %v, want 5050", got)
	}
	// p50 must be inside the (10, 100] bucket; p99 likewise.
	if q := h.Quantile(0.50); q <= 10 || q > 100 {
		t.Errorf("p50 = %v, want in (10, 100]", q)
	}
	// Everything at or below 1 is one observation, so p0.01 lands in the
	// first bucket.
	if q := h.Quantile(0.01); q > 1 {
		t.Errorf("p1 = %v, want <= 1", q)
	}
	// Overflow clamps to the top bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want 2 (clamped)", q)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-250) > 0.01 {
		t.Errorf("Sum = %v ms, want 250", got)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", "queries served")
	g := r.Gauge("inflight", "in-flight requests")
	h := r.Histogram("latency_ms", "query latency", []float64{1, 10})
	c.Add(3)
	g.Set(2)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	// Second lookup returns the same instance.
	if r.Counter("queries_total", "") != c {
		t.Error("Counter lookup did not return the registered instance")
	}

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		"queries_total 3",
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE latency_ms histogram",
		`latency_ms_bucket{le="1"} 1`,
		`latency_ms_bucket{le="10"} 2`,
		`latency_ms_bucket{le="+Inf"} 3`,
		"latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is stable.
	if strings.Index(out, "queries_total") > strings.Index(out, "inflight") {
		t.Error("metrics not rendered in registration order")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentUse drives all metric types from many goroutines; run
// under -race this checks the lock-free paths.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i % 97))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counts = %d/%d/%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}

// TestLabeledFamilies checks the labeled registrars: per-series samples,
// one shared HELP/TYPE header for consecutive series of a family, and the
// header re-emitted when a different metric interrupts the family.
func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	vals := []int64{10, 20, 30}
	for i := range vals {
		i := i
		r.LabeledCounterFunc("shard_ops_total", "ops per shard", "shard",
			fmt.Sprintf("%02d", i), func() int64 { return vals[i] })
	}
	r.Gauge("inflight", "interrupts the family").Set(7)
	r.LabeledGaugeFunc("shard_ops_total_depth", "queue depth", "shard", "00", func() int64 { return 3 })

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`shard_ops_total{shard="00"} 10`,
		`shard_ops_total{shard="01"} 20`,
		`shard_ops_total{shard="02"} 30`,
		`shard_ops_total_depth{shard="00"} 3`,
		"# TYPE shard_ops_total counter",
		"# TYPE shard_ops_total_depth gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# HELP shard_ops_total ops"); got != 1 {
		t.Errorf("family header emitted %d times, want 1:\n%s", got, out)
	}

	// Values are live: the next render sees the new value.
	vals[0] = 11
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), `shard_ops_total{shard="00"} 11`) {
		t.Errorf("labeled func not re-evaluated:\n%s", b.String())
	}

	// Re-registering an existing series keeps the first callback.
	r.LabeledCounterFunc("shard_ops_total", "ops per shard", "shard", "00", func() int64 { return -1 })
	b.Reset()
	r.WriteText(&b)
	if strings.Contains(b.String(), "-1") {
		t.Error("re-registration replaced the first callback")
	}
}

// TestLabeledMetacharactersPanic: label keys or values that would corrupt
// the text exposition are refused at registration time.
func TestLabeledMetacharactersPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("metacharacter label value did not panic")
		}
	}()
	r.LabeledGaugeFunc("shard_docs", "", "shard", "0\"}\ninjected 1", func() int64 { return 0 })
}

// TestLabeledTypeMismatchPanics: one series cannot be a counter and a
// gauge at once.
func TestLabeledTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounterFunc("shard_x", "", "shard", "00", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("re-registering a labeled counter series as a gauge did not panic")
		}
	}()
	r.LabeledGaugeFunc("shard_x", "", "shard", "00", func() int64 { return 0 })
}
