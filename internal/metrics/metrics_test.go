package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Errorf("empty histogram quantile = %v, want NaN", h.Quantile(0.5))
	}
	// 100 observations uniform in (0, 100): quantiles should land near the
	// true values within bucket resolution.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5050) > 0.5 {
		t.Errorf("Sum = %v, want 5050", got)
	}
	// p50 must be inside the (10, 100] bucket; p99 likewise.
	if q := h.Quantile(0.50); q <= 10 || q > 100 {
		t.Errorf("p50 = %v, want in (10, 100]", q)
	}
	// Everything at or below 1 is one observation, so p0.01 lands in the
	// first bucket.
	if q := h.Quantile(0.01); q > 1 {
		t.Errorf("p1 = %v, want <= 1", q)
	}
	// Overflow clamps to the top bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want 2 (clamped)", q)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveDuration(250 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-250) > 0.01 {
		t.Errorf("Sum = %v ms, want 250", got)
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", "queries served")
	g := r.Gauge("inflight", "in-flight requests")
	h := r.Histogram("latency_ms", "query latency", []float64{1, 10})
	c.Add(3)
	g.Set(2)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	// Second lookup returns the same instance.
	if r.Counter("queries_total", "") != c {
		t.Error("Counter lookup did not return the registered instance")
	}

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queries_total counter",
		"queries_total 3",
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE latency_ms histogram",
		`latency_ms_bucket{le="1"} 1`,
		`latency_ms_bucket{le="10"} 2`,
		`latency_ms_bucket{le="+Inf"} 3`,
		"latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is stable.
	if strings.Index(out, "queries_total") > strings.Index(out, "inflight") {
		t.Error("metrics not rendered in registration order")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentUse drives all metric types from many goroutines; run
// under -race this checks the lock-free paths.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i % 97))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counts = %d/%d/%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}
