package metrics

import (
	"strings"
	"testing"
)

func TestCounterFuncAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	hits := int64(0)
	r.CounterFunc("pool_hits_total", "buffer pool hits", func() int64 { return hits })
	r.GaugeFunc("resident_bytes", "cache residency", func() int64 { return 4096 })

	hits = 7
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, w := range []string{
		"# TYPE pool_hits_total counter",
		"pool_hits_total 7",
		"# TYPE resident_bytes gauge",
		"resident_bytes 4096",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q:\n%s", w, out)
		}
	}

	// The callback is read at exposition time, not registration time.
	hits = 11
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), "pool_hits_total 11") {
		t.Errorf("func counter not re-read: %s", b.String())
	}

	// Re-registering keeps the first callback and must not panic.
	r.CounterFunc("pool_hits_total", "dup", func() int64 { return -1 })
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), "pool_hits_total 11") {
		t.Errorf("re-registration replaced the callback: %s", b.String())
	}
}

func TestFuncMetricTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "a plain counter").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("CounterFunc over an existing plain counter did not panic")
		}
	}()
	r.CounterFunc("x_total", "dup", func() int64 { return 0 })
}
