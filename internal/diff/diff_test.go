package diff

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// alloc returns a sequential XID allocator starting after the given value.
func alloc(start model.XID) func() model.XID {
	next := start
	return func() model.XID {
		next++
		return next
	}
}

// prepared parses XML and assigns XIDs 1..n in document order with stamp t.
func prepared(t *testing.T, src string, stamp model.Time) (*xmltree.Node, func() model.XID) {
	t.Helper()
	root, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	var n model.XID
	a := func() model.XID { n++; return n }
	AssignXIDs(root, a, stamp)
	return root, a
}

func mustDiff(t *testing.T, old, new *xmltree.Node, a func() model.XID, from, to model.Time) (*Script, *xmltree.Node) {
	t.Helper()
	s, annotated, err := Diff(old, new, Options{
		Alloc: a, Stamp: to, FromStamp: from, FromVer: 1, ToVer: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, annotated
}

func TestDiffIdenticalTreesEmptyScript(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r></g>`, 100)
	s, res := mustDiff(t, old, old.Clone(), a, 100, 200)
	if !s.Empty() {
		t.Fatalf("expected empty script, got %d ops", len(s.Ops))
	}
	if !xmltree.Equal(old, res) {
		t.Fatal("result tree differs")
	}
}

func TestDiffTextUpdate(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r></g>`, 100)
	new := xmltree.MustParse(`<g><r><n>Napoli</n><p>18</p></r></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	if len(s.Ops) != 1 || s.Ops[0].Kind != OpUpdateText {
		t.Fatalf("ops = %v, want single text update", s.Ops)
	}
	if s.Ops[0].OldValue != "15" || s.Ops[0].NewValue != "18" {
		t.Fatalf("update values = %q → %q", s.Ops[0].OldValue, s.Ops[0].NewValue)
	}
	// XID persistence: the price element keeps its identity.
	oldPrice := old.SelectPath("r/p")[0]
	newPrice := res.SelectPath("r/p")[0]
	if oldPrice.XID != newPrice.XID {
		t.Errorf("price XID changed: %d → %d", oldPrice.XID, newPrice.XID)
	}
	// Changed node and its ancestors restamped; sibling untouched.
	if newPrice.Stamp != 200 {
		t.Errorf("price stamp = %d, want 200", newPrice.Stamp)
	}
	if res.Stamp != 200 {
		t.Errorf("root stamp = %d, want 200 (ancestor of change)", res.Stamp)
	}
	if name := res.SelectPath("r/n")[0]; name.Stamp != 100 {
		t.Errorf("untouched sibling restamped to %d", name.Stamp)
	}
}

func TestDiffInsertDelete(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n></r></g>`, 100)
	new := xmltree.MustParse(`<g><r><n>Napoli</n></r><r><n>Akropolis</n></r></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	st := s.Stats()
	if st.Inserts != 1 || st.Deletes != 0 {
		t.Fatalf("stats = %+v, want one insert", st)
	}
	rs := res.ChildElements("r")
	if len(rs) != 2 {
		t.Fatalf("result has %d restaurants", len(rs))
	}
	if rs[1].XID == 0 || rs[1].XID == rs[0].XID {
		t.Fatalf("inserted element got XID %d", rs[1].XID)
	}
	if rs[1].Stamp != 200 {
		t.Errorf("inserted element stamp = %d, want 200", rs[1].Stamp)
	}

	// Now delete it again; the XID must not be reused.
	gone := xmltree.MustParse(`<g><r><n>Napoli</n></r></g>`)
	s2, res2 := mustDiff(t, res, gone, a, 200, 300)
	if s2.Stats().Deletes != 1 {
		t.Fatalf("stats = %+v, want one delete", s2.Stats())
	}
	if s2.Ops[len(s2.Ops)-1].Node == nil {
		t.Fatal("completed delete must carry the deleted subtree")
	}
	if got := res2.ChildElements("r"); len(got) != 1 || got[0].XID != rs[0].XID {
		t.Fatal("surviving restaurant lost identity")
	}
}

func TestDiffMoveDetection(t *testing.T) {
	old, a := prepared(t, `<g><a><big><x>one</x><y>two</y></big></a><b/></g>`, 100)
	bigXID := old.SelectPath("a/big")[0].XID
	new := xmltree.MustParse(`<g><a/><b><big><x>one</x><y>two</y></big></b></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	st := s.Stats()
	if st.Moves != 1 || st.Inserts != 0 || st.Deletes != 0 {
		t.Fatalf("stats = %+v, want a single move", st)
	}
	moved := res.SelectPath("b/big")
	if len(moved) != 1 || moved[0].XID != bigXID {
		t.Fatal("moved subtree lost its XID")
	}
}

func TestDiffReorderBecomesMove(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r><r><n>Akropolis</n><p>13</p></r></g>`, 100)
	first := old.ChildElements("r")[0].XID
	second := old.ChildElements("r")[1].XID
	new := xmltree.MustParse(`<g><r><n>Akropolis</n><p>13</p></r><r><n>Napoli</n><p>15</p></r></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	if st := s.Stats(); st.Inserts != 0 || st.Deletes != 0 {
		t.Fatalf("reorder should not insert/delete: %+v", st)
	}
	rs := res.ChildElements("r")
	if rs[0].XID != second || rs[1].XID != first {
		t.Fatalf("XIDs after reorder: %d,%d want %d,%d", rs[0].XID, rs[1].XID, second, first)
	}
}

func TestDiffRootRename(t *testing.T) {
	old, a := prepared(t, `<guide><r/></guide>`, 100)
	new := xmltree.MustParse(`<list><r/></list>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	if s.Stats().Renames != 1 {
		t.Fatalf("stats = %+v, want one rename", s.Stats())
	}
	if res.Name != "list" || res.XID != old.XID {
		t.Fatal("root rename must keep root identity")
	}
}

func TestDiffAttrUpdate(t *testing.T) {
	old, a := prepared(t, `<g><r stars="3" cuisine="it"/></g>`, 100)
	new := xmltree.MustParse(`<g><r stars="4" cuisine="it"/></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)
	if len(s.Ops) != 1 || s.Ops[0].Kind != OpUpdateAttrs {
		t.Fatalf("ops = %v", s.Ops)
	}
	if v, _ := res.ChildElements("r")[0].Attr("stars"); v != "4" {
		t.Fatal("attr not updated")
	}
	if res.ChildElements("r")[0].XID != old.ChildElements("r")[0].XID {
		t.Fatal("attr update must keep XID")
	}
}

func TestForwardApplyMatchesDiffResult(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r><r><n>Akropolis</n><p>13</p></r></g>`, 100)
	new := xmltree.MustParse(`<g><r><n>Napoli</n><p>18</p></r><x>fresh</x></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)

	replay := old.Clone()
	if err := Apply(replay, s); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(replay, res) {
		t.Fatalf("replayed tree differs:\n%s\n%s", replay, res)
	}
	// XIDs and stamps must match as well.
	assertSameIdentity(t, replay, res)
}

func TestBackwardApplyRestoresOldVersion(t *testing.T) {
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r><r><n>Akropolis</n><p>13</p></r></g>`, 100)
	new := xmltree.MustParse(`<g><r><n>Akropolis</n><p>14</p></r><x><y>deep</y></x></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)

	back := res.Clone()
	if err := Apply(back, s.Invert()); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(back, old) {
		t.Fatalf("backward apply differs:\n%s\n%s", back, old)
	}
	assertSameIdentity(t, back, old)
}

func assertSameIdentity(t *testing.T, a, b *xmltree.Node) {
	t.Helper()
	type pair struct{ a, b *xmltree.Node }
	stack := []pair{{a, b}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.a.XID != p.b.XID {
			t.Fatalf("XID mismatch at %q: %d vs %d", p.a.Name+p.a.Value, p.a.XID, p.b.XID)
		}
		if p.a.Stamp != p.b.Stamp {
			t.Fatalf("stamp mismatch at %q (xid %d): %d vs %d", p.a.Name+p.a.Value, p.a.XID, p.a.Stamp, p.b.Stamp)
		}
		if len(p.a.Children) != len(p.b.Children) {
			t.Fatalf("child count mismatch at %q", p.a.Name)
		}
		for i := range p.a.Children {
			stack = append(stack, pair{p.a.Children[i], p.b.Children[i]})
		}
	}
}

func TestScriptXMLRoundTrip(t *testing.T) {
	old, a := prepared(t, `<g><r cuisine="it"><n>Napoli</n><p>15</p></r><d/></g>`, 100)
	new := xmltree.MustParse(`<g><r cuisine="gr"><n>Napoli</n><p>18</p></r><e>added</e></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)

	parsed, err := FromXML(s.ToXML())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.FromVer != s.FromVer || parsed.ToVer != s.ToVer ||
		parsed.FromStamp != s.FromStamp || parsed.ToStamp != s.ToStamp {
		t.Fatalf("header lost: %+v", parsed)
	}
	if len(parsed.Ops) != len(s.Ops) || len(parsed.Restamps) != len(s.Restamps) {
		t.Fatalf("ops %d/%d restamps %d/%d", len(parsed.Ops), len(s.Ops), len(parsed.Restamps), len(s.Restamps))
	}
	replay := old.Clone()
	if err := Apply(replay, parsed); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(replay, res) {
		t.Fatal("script lost information through XML round trip")
	}
	assertSameIdentity(t, replay, res)
}

func TestScriptXMLSurvivesSerialization(t *testing.T) {
	// The delta must survive being written out as an XML *document* and
	// parsed back (Section 7.1: each delta is stored as a separate XML
	// document).
	old, a := prepared(t, `<g><r><n>Napoli</n><p>15</p></r></g>`, 100)
	new := xmltree.MustParse(`<g><r><n>Napoli</n><p>18</p></r><x/></g>`)
	s, res := mustDiff(t, old, new, a, 100, 200)

	data := xmltree.Marshal(s.ToXML())
	back, err := xmltree.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := FromXML(back)
	if err != nil {
		t.Fatal(err)
	}
	replay := old.Clone()
	if err := Apply(replay, parsed); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(replay, res) {
		t.Fatal("delta document round trip corrupted the script")
	}
	assertSameIdentity(t, replay, res)
}

func TestFromXMLErrors(t *testing.T) {
	cases := []string{
		`<notadelta/>`,
		`<txdelta tover="2" fromstamp="0" tostamp="1"/>`,                                     // missing fromver
		`<txdelta fromver="1" tover="2" fromstamp="0" tostamp="1"><weird/></txdelta>`,        // unknown op
		`<txdelta fromver="1" tover="2" fromstamp="0" tostamp="1"><move xid="1"/></txdelta>`, // missing attrs
	}
	for _, c := range cases {
		if _, err := FromXML(xmltree.MustParse(c)); err == nil {
			t.Errorf("FromXML(%s): expected error", c)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	root, _ := prepared(t, `<g><a/></g>`, 100)
	cases := []Script{
		{Ops: []Op{{Kind: OpDelete, XID: 99}}},
		{Ops: []Op{{Kind: OpInsert, Parent: 99, Node: xmltree.NewElement("x")}}},
		{Ops: []Op{{Kind: OpUpdateText, XID: 99}}},
		{Ops: []Op{{Kind: OpUpdateText, XID: root.XID}}}, // element, not text
		{Ops: []Op{{Kind: OpMove, XID: 99, Parent: root.XID}}},
		{Ops: []Op{{Kind: OpInsert, Parent: root.XID, Pos: 7, Node: xmltree.NewElement("x")}}},
	}
	for i, s := range cases {
		if err := Apply(root.Clone(), &s); err == nil {
			t.Errorf("case %d: expected apply error", i)
		}
	}
}

func TestDiffRequiresXIDs(t *testing.T) {
	old := xmltree.MustParse(`<g/>`) // no XIDs assigned
	if _, _, err := Diff(old, xmltree.MustParse(`<g/>`), Options{Alloc: alloc(0)}); err == nil {
		t.Fatal("Diff must reject old trees without XIDs")
	}
	withIDs, _ := prepared(t, `<g/>`, 1)
	if _, _, err := Diff(withIDs, xmltree.MustParse(`<g/>`), Options{}); err == nil {
		t.Fatal("Diff must reject missing Alloc")
	}
}

// --- property tests ---

// mutate applies n random edits to the tree and returns the result.
func mutate(r *rand.Rand, root *xmltree.Node, edits int) *xmltree.Node {
	out := root.Clone()
	out.Walk(func(n *xmltree.Node) bool { n.XID = 0; n.Stamp = 0; return true })
	words := []string{"alpha", "beta", "gamma", "delta", "15", "18", "Napoli"}
	names := []string{"r", "n", "p", "item", "info"}
	for i := 0; i < edits; i++ {
		var elems []*xmltree.Node
		out.Walk(func(n *xmltree.Node) bool {
			if n.IsElement() {
				elems = append(elems, n)
			}
			return true
		})
		target := elems[r.Intn(len(elems))]
		switch r.Intn(5) {
		case 0: // insert element with text
			target.InsertChild(r.Intn(len(target.Children)+1),
				xmltree.ElemText(names[r.Intn(len(names))], words[r.Intn(len(words))]))
		case 1: // delete a child
			if len(target.Children) > 0 {
				target.RemoveChildAt(r.Intn(len(target.Children)))
			}
		case 2: // update a text node
			var texts []*xmltree.Node
			out.Walk(func(n *xmltree.Node) bool {
				if n.IsText() {
					texts = append(texts, n)
				}
				return true
			})
			if len(texts) > 0 {
				texts[r.Intn(len(texts))].Value = words[r.Intn(len(words))]
			}
		case 3: // attribute change
			target.SetAttr("k", words[r.Intn(len(words))])
		case 4: // move a subtree elsewhere (avoiding cycles)
			if len(elems) > 2 {
				sub := elems[1+r.Intn(len(elems)-1)]
				dst := elems[r.Intn(len(elems))]
				cyclic := false
				for p := dst; p != nil; p = p.Parent {
					if p == sub {
						cyclic = true
						break
					}
				}
				if !cyclic && sub.Parent != nil {
					sub.Detach()
					dst.InsertChild(r.Intn(len(dst.Children)+1), sub)
				}
			}
		}
	}
	return out
}

func seedTree(r *rand.Rand) *xmltree.Node {
	g := xmltree.NewElement("guide")
	for i := 0; i < 3+r.Intn(5); i++ {
		rest := xmltree.Elem("restaurant",
			xmltree.ElemText("name", "R"+string(rune('A'+i))),
			xmltree.ElemText("price", "10"))
		if r.Intn(2) == 0 {
			rest.SetAttr("cuisine", "it")
		}
		g.AppendChild(rest)
	}
	return g
}

func TestPropertyDiffApplyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var n model.XID
		a := func() model.XID { n++; return n }
		old := seedTree(r)
		AssignXIDs(old, a, 100)
		new := mutate(r, old, 1+r.Intn(6))

		s, res, err := Diff(old, new, Options{Alloc: a, Stamp: 200, FromStamp: 100, FromVer: 1, ToVer: 2})
		if err != nil {
			t.Logf("seed %d: diff error: %v", seed, err)
			return false
		}
		if !xmltree.Equal(res, new) {
			t.Logf("seed %d: result != new", seed)
			return false
		}
		// Forward replay.
		fwd := old.Clone()
		if err := Apply(fwd, s); err != nil || !xmltree.Equal(fwd, res) {
			t.Logf("seed %d: forward replay failed: %v", seed, err)
			return false
		}
		// Backward replay.
		back := res.Clone()
		if err := Apply(back, s.Invert()); err != nil || !xmltree.Equal(back, old) {
			t.Logf("seed %d: backward replay failed: %v", seed, err)
			return false
		}
		// Backward must also restore identity and stamps exactly.
		match := true
		var walk func(a, b *xmltree.Node)
		walk = func(a, b *xmltree.Node) {
			if a.XID != b.XID || a.Stamp != b.Stamp || len(a.Children) != len(b.Children) {
				match = false
				return
			}
			for i := range a.Children {
				walk(a.Children[i], b.Children[i])
			}
		}
		walk(back, old)
		if !match {
			t.Logf("seed %d: backward identity mismatch", seed)
		}
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScriptXMLRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var n model.XID
		a := func() model.XID { n++; return n }
		old := seedTree(r)
		AssignXIDs(old, a, 100)
		new := mutate(r, old, 1+r.Intn(5))
		s, res, err := Diff(old, new, Options{Alloc: a, Stamp: 200, FromStamp: 100})
		if err != nil {
			return false
		}
		parsed, err := FromXML(s.ToXML())
		if err != nil {
			t.Logf("seed %d: FromXML: %v", seed, err)
			return false
		}
		fwd := old.Clone()
		if err := Apply(fwd, parsed); err != nil {
			t.Logf("seed %d: apply parsed: %v", seed, err)
			return false
		}
		return xmltree.Equal(fwd, res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOpKindString(t *testing.T) {
	kinds := map[OpKind]string{
		OpInsert: "insert", OpDelete: "delete", OpUpdateText: "update",
		OpUpdateAttrs: "updateattrs", OpRename: "rename", OpMove: "move",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestStatsCounts(t *testing.T) {
	old, a := prepared(t, `<g><a><b>x</b></a><c>y</c></g>`, 100)
	new := xmltree.MustParse(`<g><a><b>z</b></a><d>fresh</d></g>`)
	s, _ := mustDiff(t, old, new, a, 100, 200)
	st := s.Stats()
	if st.Updates < 1 || st.Inserts < 1 || st.Deletes < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.NodesInserted < 2 || st.NodesDeleted < 2 {
		t.Fatalf("node counts = %+v", st)
	}
}

// TestSingleEditInLargeTreeStaysSmall: the script for one text change in a
// 1000-element tree is one operation — delta size tracks change size, not
// document size, which is what makes delta storage pay off (§7.1).
func TestSingleEditInLargeTreeStaysSmall(t *testing.T) {
	big := xmltree.NewElement("guide")
	for i := 0; i < 500; i++ {
		big.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", fmt.Sprintf("r%d", i)),
			xmltree.ElemText("price", fmt.Sprint(i%40))))
	}
	var n model.XID
	a := func() model.XID { n++; return n }
	AssignXIDs(big, a, 100)

	next := big.Clone()
	next.Walk(func(nd *xmltree.Node) bool { nd.XID = 0; nd.Stamp = 0; return true })
	next.Children[250].SelectPath("price")[0].Children[0].Value = "999"

	s, _, err := Diff(big, next, Options{Alloc: a, Stamp: 200, FromStamp: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 1 || s.Ops[0].Kind != OpUpdateText {
		t.Fatalf("ops = %d (%v), want a single text update", len(s.Ops), s.Stats())
	}
	// Restamps cover the changed path only: text node + price + restaurant
	// + guide.
	if len(s.Restamps) > 4 {
		t.Fatalf("restamps = %d, want <= 4", len(s.Restamps))
	}
	// The delta document is tiny compared to the full serialization.
	deltaLen := len(xmltree.Marshal(s.ToXML()))
	fullLen := len(xmltree.Marshal(next))
	if deltaLen*10 > fullLen {
		t.Fatalf("delta %dB vs full %dB: delta should be <10%%", deltaLen, fullLen)
	}
}

func BenchmarkDiffSingleEdit(b *testing.B) {
	big := xmltree.NewElement("guide")
	for i := 0; i < 200; i++ {
		big.AppendChild(xmltree.Elem("restaurant",
			xmltree.ElemText("name", fmt.Sprintf("r%d", i)),
			xmltree.ElemText("price", fmt.Sprint(i%40))))
	}
	var n model.XID
	a := func() model.XID { n++; return n }
	AssignXIDs(big, a, 100)
	next := big.Clone()
	next.Walk(func(nd *xmltree.Node) bool { nd.XID = 0; nd.Stamp = 0; return true })
	next.Children[100].SelectPath("price")[0].Children[0].Value = "999"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := big.Clone()
		fresh := next.Clone()
		if _, _, err := Diff(old, fresh, Options{Alloc: a, Stamp: 200, FromStamp: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyInvertedScript(b *testing.B) {
	old := xmltree.MustParse(`<g><r><n>Napoli</n><p>15</p></r><r><n>Akropolis</n><p>13</p></r></g>`)
	var n model.XID
	a := func() model.XID { n++; return n }
	AssignXIDs(old, a, 100)
	next := xmltree.MustParse(`<g><r><n>Napoli</n><p>18</p></r><x>fresh</x></g>`)
	s, res, err := Diff(old, next, Options{Alloc: a, Stamp: 200, FromStamp: 100})
	if err != nil {
		b.Fatal(err)
	}
	inv := s.Invert()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := res.Clone()
		if err := Apply(tree, inv); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPropertyPermutationIsMoves: shuffling children produces only move
// operations — never deletes or inserts — and identity is fully preserved.
func TestPropertyPermutationIsMoves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		old := xmltree.NewElement("g")
		n := 3 + r.Intn(8)
		for i := 0; i < n; i++ {
			old.AppendChild(xmltree.Elem("r",
				xmltree.ElemText("name", fmt.Sprintf("e%d", i))))
		}
		var x model.XID
		a := func() model.XID { x++; return x }
		AssignXIDs(old, a, 100)

		next := old.Clone()
		next.Walk(func(nd *xmltree.Node) bool { nd.XID = 0; nd.Stamp = 0; return true })
		r.Shuffle(len(next.Children), func(i, j int) {
			next.Children[i], next.Children[j] = next.Children[j], next.Children[i]
		})

		s, res, err := Diff(old, next, Options{Alloc: a, Stamp: 200, FromStamp: 100})
		if err != nil {
			return false
		}
		st := s.Stats()
		if st.Inserts != 0 || st.Deletes != 0 || st.Updates != 0 {
			t.Logf("seed %d: stats %+v", seed, st)
			return false
		}
		// Every child kept its XID.
		oldByName := map[string]model.XID{}
		for _, c := range old.Children {
			oldByName[c.Text()] = c.XID
		}
		for _, c := range res.Children {
			if oldByName[c.Text()] != c.XID {
				t.Logf("seed %d: %q changed identity", seed, c.Text())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
