// Package diff implements the XML change-detection engine of the database:
// an XID-preserving tree matcher in the spirit of XyDiff (Cobéna, Abiteboul,
// Marian — reference [7] of the paper) and *completed* edit scripts that can
// be applied both forward and backward (Section 7.1: "completed deltas can
// be used both as forward and backward deltas").
//
// Edit scripts are themselves representable as XML documents, which is what
// makes the paper's Diff operator closed under the data model (Section 6.1)
// and what lets the version store keep every delta "as a separate XML
// document" (Section 7.1).
package diff

import (
	"fmt"
	"sort"
	"strconv"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// OpKind enumerates the edit operations of a script.
type OpKind uint8

const (
	// OpInsert inserts Node (a subtree with assigned XIDs and stamps) as
	// child Pos of element Parent.
	OpInsert OpKind = iota
	// OpDelete removes the subtree rooted at XID. The completed form keeps
	// the removed subtree in Node and its old location in OldParent/OldPos.
	OpDelete
	// OpUpdateText replaces the value of text node XID (OldValue→NewValue).
	OpUpdateText
	// OpUpdateAttrs replaces the attribute list of element XID.
	OpUpdateAttrs
	// OpRename changes the name of element XID (OldValue→NewValue). The
	// matcher only emits renames for document roots, which cannot be
	// expressed as delete+insert; everywhere else a renamed element is
	// treated as a deletion plus an insertion, like in XyDiff.
	OpRename
	// OpMove relocates the subtree rooted at XID from OldParent/OldPos to
	// Parent/Pos.
	OpMove
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdateText:
		return "update"
	case OpUpdateAttrs:
		return "updateattrs"
	case OpRename:
		return "rename"
	case OpMove:
		return "move"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one completed edit operation. Which fields are meaningful depends
// on Kind; see the OpKind constants.
type Op struct {
	Kind      OpKind
	XID       model.XID     // target node (delete/update/rename/move)
	Parent    model.XID     // new parent (insert/move)
	Pos       int           // new position (insert/move)
	OldParent model.XID     // previous parent (delete/move)
	OldPos    int           // previous position (delete/move)
	Node      *xmltree.Node // payload subtree (insert/delete)
	OldValue  string        // previous text value / element name
	NewValue  string        // new text value / element name
	OldAttrs  []xmltree.Attr
	NewAttrs  []xmltree.Attr
}

// Restamp records the timestamp change of one element caused by a version
// transition: forward application sets the node's stamp to New, backward
// application restores Old. The set of restamped nodes is exactly the
// targets of the ops plus all their ancestors, per the paper's Section 4
// rule that "every update of an element also implies update of the element
// it is contained in".
type Restamp struct {
	XID model.XID
	Old model.Time
	New model.Time
}

// Script is a completed delta between two consecutive document versions.
type Script struct {
	Ops       []Op
	Restamps  []Restamp
	FromVer   model.VersionNo
	ToVer     model.VersionNo
	FromStamp model.Time
	ToStamp   model.Time
}

// Empty reports whether the script performs no edits.
func (s *Script) Empty() bool { return len(s.Ops) == 0 }

// Invert returns the script transforming the "to" version back into the
// "from" version: ops are reversed and individually inverted, restamps
// swapped.
func (s *Script) Invert() *Script {
	inv := &Script{
		Ops:       make([]Op, 0, len(s.Ops)),
		Restamps:  make([]Restamp, len(s.Restamps)),
		FromVer:   s.ToVer,
		ToVer:     s.FromVer,
		FromStamp: s.ToStamp,
		ToStamp:   s.FromStamp,
	}
	for i := len(s.Ops) - 1; i >= 0; i-- {
		inv.Ops = append(inv.Ops, invertOp(s.Ops[i]))
	}
	for i, r := range s.Restamps {
		inv.Restamps[i] = Restamp{XID: r.XID, Old: r.New, New: r.Old}
	}
	return inv
}

func invertOp(op Op) Op {
	switch op.Kind {
	case OpInsert:
		return Op{Kind: OpDelete, XID: op.Node.XID, OldParent: op.Parent, OldPos: op.Pos, Node: op.Node}
	case OpDelete:
		return Op{Kind: OpInsert, Parent: op.OldParent, Pos: op.OldPos, Node: op.Node}
	case OpUpdateText:
		return Op{Kind: OpUpdateText, XID: op.XID, OldValue: op.NewValue, NewValue: op.OldValue}
	case OpUpdateAttrs:
		return Op{Kind: OpUpdateAttrs, XID: op.XID, OldAttrs: op.NewAttrs, NewAttrs: op.OldAttrs}
	case OpRename:
		return Op{Kind: OpRename, XID: op.XID, OldValue: op.NewValue, NewValue: op.OldValue}
	case OpMove:
		return Op{Kind: OpMove, XID: op.XID,
			Parent: op.OldParent, Pos: op.OldPos,
			OldParent: op.Parent, OldPos: op.Pos}
	default:
		panic(fmt.Sprintf("diff: invertOp: unknown kind %d", op.Kind))
	}
}

// Apply transforms the tree rooted at root in place by executing the script
// forward. Applying an inverted script performs backward reconstruction.
func Apply(root *xmltree.Node, s *Script) error {
	idx := buildXIDIndex(root)
	for i, op := range s.Ops {
		if err := applyOp(root, op, idx); err != nil {
			return fmt.Errorf("diff: apply op %d (%s): %w", i, op.Kind, err)
		}
	}
	for _, r := range s.Restamps {
		if n := idx[r.XID]; n != nil {
			n.Stamp = r.New
		}
	}
	return nil
}

func buildXIDIndex(root *xmltree.Node) map[model.XID]*xmltree.Node {
	idx := make(map[model.XID]*xmltree.Node)
	root.Walk(func(n *xmltree.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}

func applyOp(root *xmltree.Node, op Op, idx map[model.XID]*xmltree.Node) error {
	switch op.Kind {
	case OpInsert:
		parent := idx[op.Parent]
		if parent == nil {
			return fmt.Errorf("insert parent %d not found", op.Parent)
		}
		if op.Pos < 0 || op.Pos > len(parent.Children) {
			return fmt.Errorf("insert position %d out of range (parent has %d children)", op.Pos, len(parent.Children))
		}
		sub := op.Node.Clone()
		parent.InsertChild(op.Pos, sub)
		sub.Walk(func(n *xmltree.Node) bool {
			if n.XID != 0 {
				idx[n.XID] = n
			}
			return true
		})
	case OpDelete:
		n := idx[op.XID]
		if n == nil {
			return fmt.Errorf("delete target %d not found", op.XID)
		}
		n.Detach()
		n.Walk(func(d *xmltree.Node) bool {
			delete(idx, d.XID)
			return true
		})
	case OpUpdateText:
		n := idx[op.XID]
		if n == nil {
			return fmt.Errorf("update target %d not found", op.XID)
		}
		if !n.IsText() {
			return fmt.Errorf("update target %d is not a text node", op.XID)
		}
		n.Value = op.NewValue
	case OpUpdateAttrs:
		n := idx[op.XID]
		if n == nil {
			return fmt.Errorf("updateattrs target %d not found", op.XID)
		}
		n.Attrs = append([]xmltree.Attr(nil), op.NewAttrs...)
	case OpRename:
		n := idx[op.XID]
		if n == nil {
			return fmt.Errorf("rename target %d not found", op.XID)
		}
		n.Name = op.NewValue
	case OpMove:
		n := idx[op.XID]
		if n == nil {
			return fmt.Errorf("move target %d not found", op.XID)
		}
		parent := idx[op.Parent]
		if parent == nil {
			return fmt.Errorf("move destination parent %d not found", op.Parent)
		}
		for p := parent; p != nil; p = p.Parent {
			if p == n {
				return fmt.Errorf("move of %d into its own subtree", op.XID)
			}
		}
		n.Detach()
		if op.Pos < 0 || op.Pos > len(parent.Children) {
			return fmt.Errorf("move position %d out of range", op.Pos)
		}
		parent.InsertChild(op.Pos, n)
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// ToXML renders the script as an XML tree rooted at <txdelta>, the
// representation stored by the version store and returned by the Diff
// query operator.
func (s *Script) ToXML() *xmltree.Node {
	root := xmltree.NewElement("txdelta")
	root.SetAttr("fromver", strconv.Itoa(int(s.FromVer)))
	root.SetAttr("tover", strconv.Itoa(int(s.ToVer)))
	root.SetAttr("fromstamp", strconv.FormatInt(int64(s.FromStamp), 10))
	root.SetAttr("tostamp", strconv.FormatInt(int64(s.ToStamp), 10))
	for _, op := range s.Ops {
		e := xmltree.NewElement(op.Kind.String())
		switch op.Kind {
		case OpInsert:
			e.SetAttr("parent", xidStr(op.Parent))
			e.SetAttr("pos", strconv.Itoa(op.Pos))
			e.AppendChild(op.Node.Clone())
		case OpDelete:
			e.SetAttr("xid", xidStr(op.XID))
			e.SetAttr("oldparent", xidStr(op.OldParent))
			e.SetAttr("oldpos", strconv.Itoa(op.OldPos))
			if op.Node != nil {
				e.AppendChild(op.Node.Clone())
			}
		case OpUpdateText, OpRename:
			e.SetAttr("xid", xidStr(op.XID))
			e.AppendChild(xmltree.ElemText("old", op.OldValue))
			e.AppendChild(xmltree.ElemText("new", op.NewValue))
		case OpUpdateAttrs:
			e.SetAttr("xid", xidStr(op.XID))
			e.AppendChild(attrsToXML("old", op.OldAttrs))
			e.AppendChild(attrsToXML("new", op.NewAttrs))
		case OpMove:
			e.SetAttr("xid", xidStr(op.XID))
			e.SetAttr("parent", xidStr(op.Parent))
			e.SetAttr("pos", strconv.Itoa(op.Pos))
			e.SetAttr("oldparent", xidStr(op.OldParent))
			e.SetAttr("oldpos", strconv.Itoa(op.OldPos))
		}
		root.AppendChild(e)
	}
	for _, r := range s.Restamps {
		e := xmltree.NewElement("restamp")
		e.SetAttr("xid", xidStr(r.XID))
		e.SetAttr("old", strconv.FormatInt(int64(r.Old), 10))
		e.SetAttr("new", strconv.FormatInt(int64(r.New), 10))
		root.AppendChild(e)
	}
	return root
}

func xidStr(x model.XID) string { return strconv.FormatUint(uint64(x), 10) }

func attrsToXML(name string, attrs []xmltree.Attr) *xmltree.Node {
	e := xmltree.NewElement(name)
	for _, a := range attrs {
		ae := xmltree.NewElement("attr")
		ae.SetAttr("name", a.Name)
		ae.SetAttr("value", a.Value)
		e.AppendChild(ae)
	}
	return e
}

// FromXML parses a <txdelta> tree produced by ToXML.
func FromXML(root *xmltree.Node) (*Script, error) {
	if root.Name != "txdelta" {
		return nil, fmt.Errorf("diff: FromXML: root is <%s>, want <txdelta>", root.Name)
	}
	s := &Script{}
	var err error
	if s.FromVer, err = verAttr(root, "fromver"); err != nil {
		return nil, err
	}
	if s.ToVer, err = verAttr(root, "tover"); err != nil {
		return nil, err
	}
	if s.FromStamp, err = timeAttr(root, "fromstamp"); err != nil {
		return nil, err
	}
	if s.ToStamp, err = timeAttr(root, "tostamp"); err != nil {
		return nil, err
	}
	for _, e := range root.Children {
		if !e.IsElement() {
			continue
		}
		switch e.Name {
		case "insert":
			op := Op{Kind: OpInsert}
			if op.Parent, err = xidAttr(e, "parent"); err != nil {
				return nil, err
			}
			if op.Pos, err = intAttr(e, "pos"); err != nil {
				return nil, err
			}
			subs := e.ChildElements("")
			if len(subs) != 1 && len(e.Children) != 1 {
				return nil, fmt.Errorf("diff: FromXML: insert payload must be one node")
			}
			op.Node = e.Children[0].Clone()
			s.Ops = append(s.Ops, op)
		case "delete":
			op := Op{Kind: OpDelete}
			if op.XID, err = xidAttr(e, "xid"); err != nil {
				return nil, err
			}
			if op.OldParent, err = xidAttr(e, "oldparent"); err != nil {
				return nil, err
			}
			if op.OldPos, err = intAttr(e, "oldpos"); err != nil {
				return nil, err
			}
			if len(e.Children) == 1 {
				op.Node = e.Children[0].Clone()
			}
			s.Ops = append(s.Ops, op)
		case "update", "rename":
			op := Op{Kind: OpUpdateText}
			if e.Name == "rename" {
				op.Kind = OpRename
			}
			if op.XID, err = xidAttr(e, "xid"); err != nil {
				return nil, err
			}
			for _, c := range e.ChildElements("") {
				switch c.Name {
				case "old":
					op.OldValue = c.Text()
				case "new":
					op.NewValue = c.Text()
				}
			}
			s.Ops = append(s.Ops, op)
		case "updateattrs":
			op := Op{Kind: OpUpdateAttrs}
			if op.XID, err = xidAttr(e, "xid"); err != nil {
				return nil, err
			}
			for _, c := range e.ChildElements("") {
				attrs := xmlToAttrs(c)
				switch c.Name {
				case "old":
					op.OldAttrs = attrs
				case "new":
					op.NewAttrs = attrs
				}
			}
			s.Ops = append(s.Ops, op)
		case "move":
			op := Op{Kind: OpMove}
			if op.XID, err = xidAttr(e, "xid"); err != nil {
				return nil, err
			}
			if op.Parent, err = xidAttr(e, "parent"); err != nil {
				return nil, err
			}
			if op.Pos, err = intAttr(e, "pos"); err != nil {
				return nil, err
			}
			if op.OldParent, err = xidAttr(e, "oldparent"); err != nil {
				return nil, err
			}
			if op.OldPos, err = intAttr(e, "oldpos"); err != nil {
				return nil, err
			}
			s.Ops = append(s.Ops, op)
		case "restamp":
			r := Restamp{}
			if r.XID, err = xidAttr(e, "xid"); err != nil {
				return nil, err
			}
			if r.Old, err = timeAttr(e, "old"); err != nil {
				return nil, err
			}
			if r.New, err = timeAttr(e, "new"); err != nil {
				return nil, err
			}
			s.Restamps = append(s.Restamps, r)
		default:
			return nil, fmt.Errorf("diff: FromXML: unknown op element <%s>", e.Name)
		}
	}
	return s, nil
}

func xmlToAttrs(e *xmltree.Node) []xmltree.Attr {
	var out []xmltree.Attr
	for _, c := range e.ChildElements("attr") {
		name, _ := c.Attr("name")
		value, _ := c.Attr("value")
		out = append(out, xmltree.Attr{Name: name, Value: value})
	}
	return out
}

func xidAttr(e *xmltree.Node, name string) (model.XID, error) {
	v, ok := e.Attr(name)
	if !ok {
		return 0, fmt.Errorf("diff: FromXML: <%s> missing attribute %q", e.Name, name)
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("diff: FromXML: bad %s=%q: %w", name, v, err)
	}
	return model.XID(u), nil
}

func intAttr(e *xmltree.Node, name string) (int, error) {
	v, ok := e.Attr(name)
	if !ok {
		return 0, fmt.Errorf("diff: FromXML: <%s> missing attribute %q", e.Name, name)
	}
	return strconv.Atoi(v)
}

func timeAttr(e *xmltree.Node, name string) (model.Time, error) {
	v, ok := e.Attr(name)
	if !ok {
		return 0, fmt.Errorf("diff: FromXML: <%s> missing attribute %q", e.Name, name)
	}
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, err
	}
	return model.Time(i), nil
}

func verAttr(e *xmltree.Node, name string) (model.VersionNo, error) {
	i, err := intAttr(e, name)
	return model.VersionNo(i), err
}

// Stats summarizes a script for change-oriented queries and monitoring.
type Stats struct {
	Inserts, Deletes, Updates, Moves, Renames int
	// NodesInserted and NodesDeleted count whole subtree sizes.
	NodesInserted, NodesDeleted int
}

// Stats computes per-kind operation counts.
func (s *Script) Stats() Stats {
	var st Stats
	for _, op := range s.Ops {
		switch op.Kind {
		case OpInsert:
			st.Inserts++
			st.NodesInserted += op.Node.Size()
		case OpDelete:
			st.Deletes++
			if op.Node != nil {
				st.NodesDeleted += op.Node.Size()
			}
		case OpUpdateText, OpUpdateAttrs:
			st.Updates++
		case OpMove:
			st.Moves++
		case OpRename:
			st.Renames++
		}
	}
	return st
}

// sortRestamps orders restamps by XID for deterministic serialization.
func sortRestamps(rs []Restamp) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].XID < rs[j].XID })
}
