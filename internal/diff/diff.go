package diff

import (
	"fmt"
	"hash/fnv"
	"sort"

	"txmldb/internal/model"
	"txmldb/internal/xmltree"
)

// Options parameterizes Diff.
type Options struct {
	// Alloc returns a fresh, never-reused XID for nodes inserted by the new
	// version. Required.
	Alloc func() model.XID
	// Stamp is the transaction timestamp of the new version; it becomes the
	// script's ToStamp and the stamp of every touched element.
	Stamp model.Time
	// FromStamp is the timestamp of the old version.
	FromStamp model.Time
	// FromVer and ToVer number the two versions.
	FromVer, ToVer model.VersionNo
}

// AssignXIDs gives every node of a fresh tree (XID 0 everywhere) an
// identifier from alloc and stamps the tree with stamp. It is used when the
// first version of a document enters the database.
func AssignXIDs(root *xmltree.Node, alloc func() model.XID, stamp model.Time) {
	root.Walk(func(n *xmltree.Node) bool {
		if n.XID == 0 {
			n.XID = alloc()
		}
		n.Stamp = stamp
		return true
	})
}

// Diff matches the new tree against the old tree (which must have XIDs on
// every node), assigns XIDs into new — matched nodes inherit the old node's
// XID, fresh nodes get allocated ones — and returns a completed edit script
// transforming old into new, together with the annotated result tree (a
// fully stamped copy equal to new). Neither input tree is structurally
// modified; new is annotated in place with XIDs and stamps.
//
// The matcher follows the XyDiff approach: bottom-up subtree-hash matching
// for exact (possibly moved) subtrees, then top-down propagation aligning
// the children of matched pairs, then a reorder pass. Renames are emitted
// only for the forced root match; elsewhere a rename is a delete+insert.
func Diff(old, new *xmltree.Node, opts Options) (*Script, *xmltree.Node, error) {
	if opts.Alloc == nil {
		return nil, nil, fmt.Errorf("diff: Options.Alloc is required")
	}
	oldStamps := make(map[model.XID]model.Time)
	var invalid error
	old.Walk(func(n *xmltree.Node) bool {
		if n.XID == 0 {
			invalid = fmt.Errorf("diff: old tree has a node without XID (%s %q)", n.Kind, n.Name+n.Value)
			return false
		}
		oldStamps[n.XID] = n.Stamp
		return true
	})
	if invalid != nil {
		return nil, nil, invalid
	}

	m := match(old, new)

	// Assign XIDs into the new tree: matched nodes inherit.
	new.Walk(func(n *xmltree.Node) bool {
		if o := m.newToOld[n]; o != nil {
			n.XID = o.XID
			n.Stamp = o.Stamp // provisional; restamping fixes touched nodes
		} else {
			n.XID = 0
		}
		return true
	})

	g := &generator{
		opts:    opts,
		byXID:   make(map[model.XID]*xmltree.Node),
		anchors: make(map[model.XID]bool),
	}
	work := old.Clone()
	work.Walk(func(n *xmltree.Node) bool {
		g.byXID[n.XID] = n
		return true
	})

	if err := g.reconcile(work, new); err != nil {
		return nil, nil, err
	}
	g.sweepDeletes(work, new)

	// Restamps: every op anchor that survives into the new version, plus
	// all its ancestors, gets the new version's stamp.
	restampSet := make(map[model.XID]bool)
	for xid := range g.anchors {
		n := g.byXID[xid]
		for ; n != nil; n = n.Parent {
			if restampSet[n.XID] {
				break
			}
			restampSet[n.XID] = true
		}
	}
	script := &Script{
		Ops:       g.ops,
		FromVer:   opts.FromVer,
		ToVer:     opts.ToVer,
		FromStamp: opts.FromStamp,
		ToStamp:   opts.Stamp,
	}
	for xid := range restampSet {
		oldStamp, existed := oldStamps[xid]
		if !existed {
			continue // node inserted by this version: stamped at creation
		}
		script.Restamps = append(script.Restamps, Restamp{XID: xid, Old: oldStamp, New: opts.Stamp})
		g.byXID[xid].Stamp = opts.Stamp
	}
	sortRestamps(script.Restamps)

	// Mirror final stamps and XIDs onto the annotated input tree and verify
	// that the script reproduces it exactly.
	if err := mirror(work, new); err != nil {
		return nil, nil, fmt.Errorf("diff: internal verification failed: %w", err)
	}
	return script, work, nil
}

// mirror copies XIDs and stamps from the work tree onto the structurally
// equal new tree, failing if the trees disagree.
func mirror(work, new *xmltree.Node) error {
	if work.Kind != new.Kind || work.Name != new.Name || work.Value != new.Value ||
		len(work.Children) != len(new.Children) {
		return fmt.Errorf("script result diverges at %s %q vs %s %q",
			work.Kind, work.Name+work.Value, new.Kind, new.Name+new.Value)
	}
	if work.XID != new.XID && new.XID != 0 {
		return fmt.Errorf("XID mismatch at %q: %d vs %d", work.Name, work.XID, new.XID)
	}
	new.XID = work.XID
	new.Stamp = work.Stamp
	for i := range work.Children {
		if err := mirror(work.Children[i], new.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

// --- matching ---

type matching struct {
	oldToNew map[*xmltree.Node]*xmltree.Node
	newToOld map[*xmltree.Node]*xmltree.Node
}

func (m *matching) pair(o, n *xmltree.Node) {
	m.oldToNew[o] = n
	m.newToOld[n] = o
}

func label(n *xmltree.Node) string {
	if n.IsText() {
		return "\x00#text"
	}
	return n.Name
}

// subtreeHashes computes a structural hash for every node, bottom-up.
func subtreeHashes(root *xmltree.Node, out map[*xmltree.Node]uint64) {
	var rec func(n *xmltree.Node) uint64
	rec = func(n *xmltree.Node) uint64 {
		h := fnv.New64a()
		if n.IsText() {
			h.Write([]byte{0x06})
			h.Write([]byte(n.Value))
		} else {
			h.Write([]byte{0x01})
			h.Write([]byte(n.Name))
			attrs := append([]xmltree.Attr(nil), n.Attrs...)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
			for _, a := range attrs {
				h.Write([]byte{0x02})
				h.Write([]byte(a.Name))
				h.Write([]byte{0x03})
				h.Write([]byte(a.Value))
			}
			var buf [8]byte
			for _, c := range n.Children {
				ch := rec(c)
				for i := 0; i < 8; i++ {
					buf[i] = byte(ch >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
		v := h.Sum64()
		out[n] = v
		return v
	}
	rec(root)
}

// match computes the 1-1 node matching between the two trees.
func match(old, new *xmltree.Node) *matching {
	m := &matching{
		oldToNew: make(map[*xmltree.Node]*xmltree.Node),
		newToOld: make(map[*xmltree.Node]*xmltree.Node),
	}

	oldHash := make(map[*xmltree.Node]uint64)
	newHash := make(map[*xmltree.Node]uint64)
	subtreeHashes(old, oldHash)
	subtreeHashes(new, newHash)

	byHash := make(map[uint64][]*xmltree.Node)
	old.Walk(func(n *xmltree.Node) bool {
		byHash[oldHash[n]] = append(byHash[oldHash[n]], n)
		return true
	})

	// Force-match the roots; a changed root name becomes a rename op.
	m.pair(old, new)
	queue := []*xmltree.Node{new} // new-side nodes of pairs to propagate from

	// Phase 1: exact subtree matching, largest first, so that moved or
	// copied subtrees keep their identity. Subtrees smaller than 3 nodes
	// are left to the alignment phase: matching a lone "15" text across the
	// document would produce nonsense moves.
	var newNodes []*xmltree.Node
	new.Walk(func(n *xmltree.Node) bool {
		newNodes = append(newNodes, n)
		return true
	})
	sizes := make(map[*xmltree.Node]int, len(newNodes))
	for i := len(newNodes) - 1; i >= 0; i-- {
		n := newNodes[i]
		s := 1
		for _, c := range n.Children {
			s += sizes[c]
		}
		sizes[n] = s
	}
	sort.SliceStable(newNodes, func(i, j int) bool { return sizes[newNodes[i]] > sizes[newNodes[j]] })
	for _, n := range newNodes {
		if m.newToOld[n] != nil || sizes[n] < 3 {
			continue
		}
		var chosen *xmltree.Node
		for _, cand := range byHash[newHash[n]] {
			if m.oldToNew[cand] != nil {
				continue
			}
			if !xmltree.Equal(cand, n) {
				continue // hash collision
			}
			if chosen == nil {
				chosen = cand
			}
			// Prefer a candidate under the matched counterpart of n's parent.
			if n.Parent != nil && cand.Parent != nil && m.oldToNew[cand.Parent] == n.Parent {
				chosen = cand
				break
			}
		}
		if chosen != nil {
			zipMatch(m, chosen, n, &queue)
		}
	}

	// Phase 2: propagate along the queue — align unmatched children of
	// matched pairs (LCS on labels, then an in-order reorder pass), and
	// propagate matches upward to same-label unmatched parents.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		o := m.newToOld[n]
		if o == nil {
			continue
		}
		alignChildren(m, o, n, &queue)
		// Bottom-up: match unmatched parents with equal labels.
		if o.Parent != nil && n.Parent != nil &&
			m.oldToNew[o.Parent] == nil && m.newToOld[n.Parent] == nil &&
			label(o.Parent) == label(n.Parent) {
			m.pair(o.Parent, n.Parent)
			queue = append(queue, n.Parent)
		}
	}
	return m
}

// zipMatch pairs two structurally equal subtrees node by node.
func zipMatch(m *matching, o, n *xmltree.Node, queue *[]*xmltree.Node) {
	if m.oldToNew[o] != nil || m.newToOld[n] != nil {
		return
	}
	m.pair(o, n)
	*queue = append(*queue, n)
	for i := range o.Children {
		zipMatch(m, o.Children[i], n.Children[i], queue)
	}
}

// alignChildren matches the unmatched children of a matched pair.
func alignChildren(m *matching, o, n *xmltree.Node, queue *[]*xmltree.Node) {
	var oc, nc []*xmltree.Node
	for _, c := range o.Children {
		if m.oldToNew[c] == nil {
			oc = append(oc, c)
		}
	}
	for _, c := range n.Children {
		if m.newToOld[c] == nil {
			nc = append(nc, c)
		}
	}
	if len(oc) == 0 || len(nc) == 0 {
		return
	}
	// LCS on labels keeps in-order same-label children together.
	for _, p := range lcsPairs(oc, nc) {
		m.pair(oc[p[0]], nc[p[1]])
		*queue = append(*queue, nc[p[1]])
	}
	// Reorder pass: remaining same-label children match greedily, so a
	// child that merely changed position becomes a move, not delete+insert.
	remaining := map[string][]*xmltree.Node{}
	for _, c := range oc {
		if m.oldToNew[c] == nil {
			remaining[label(c)] = append(remaining[label(c)], c)
		}
	}
	for _, c := range nc {
		if m.newToOld[c] != nil {
			continue
		}
		cands := remaining[label(c)]
		if len(cands) == 0 {
			continue
		}
		m.pair(cands[0], c)
		*queue = append(*queue, c)
		remaining[label(c)] = cands[1:]
	}
}

// lcsPairs returns index pairs of a longest common subsequence of the two
// child lists, comparing labels.
func lcsPairs(a, b []*xmltree.Node) [][2]int {
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if label(a[i]) == label(b[j]) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out [][2]int
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case label(a[i]) == label(b[j]):
			out = append(out, [2]int{i, j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// --- script generation ---

type generator struct {
	opts    Options
	ops     []Op
	byXID   map[model.XID]*xmltree.Node // work-tree index
	anchors map[model.XID]bool          // nodes whose subtree changed
}

func (g *generator) emit(op Op) { g.ops = append(g.ops, op) }

// reconcile makes work node w (matched to new node n) equal to n, emitting
// and applying ops as it goes.
func (g *generator) reconcile(w, n *xmltree.Node) error {
	if w.Name != n.Name && w.IsElement() {
		g.emit(Op{Kind: OpRename, XID: w.XID, OldValue: w.Name, NewValue: n.Name})
		g.anchors[w.XID] = true
		w.Name = n.Name
	}
	if w.IsText() && w.Value != n.Value {
		g.emit(Op{Kind: OpUpdateText, XID: w.XID, OldValue: w.Value, NewValue: n.Value})
		g.anchors[w.XID] = true
		w.Value = n.Value
	}
	if w.IsElement() && !attrsEqualUnordered(w.Attrs, n.Attrs) {
		g.emit(Op{
			Kind:     OpUpdateAttrs,
			XID:      w.XID,
			OldAttrs: append([]xmltree.Attr(nil), w.Attrs...),
			NewAttrs: append([]xmltree.Attr(nil), n.Attrs...),
		})
		g.anchors[w.XID] = true
		w.Attrs = append([]xmltree.Attr(nil), n.Attrs...)
	}
	for i, want := range n.Children {
		if want.XID != 0 {
			wc := g.byXID[want.XID]
			if wc == nil {
				return fmt.Errorf("diff: matched node %d missing from work tree", want.XID)
			}
			if wc.Parent != w || w.ChildIndex(wc) != i {
				oldParent := wc.Parent
				oldPos := oldParent.ChildIndex(wc)
				g.emit(Op{
					Kind: OpMove, XID: wc.XID,
					Parent: w.XID, Pos: i,
					OldParent: oldParent.XID, OldPos: oldPos,
				})
				g.anchors[wc.XID] = true
				g.anchors[oldParent.XID] = true
				g.anchors[w.XID] = true
				wc.Detach()
				w.InsertChild(i, wc)
			}
			if err := g.reconcile(wc, want); err != nil {
				return err
			}
		} else {
			skel := g.skeleton(want)
			g.emit(Op{Kind: OpInsert, Parent: w.XID, Pos: i, Node: skel})
			g.anchors[w.XID] = true
			inserted := skel.Clone()
			w.InsertChild(i, inserted)
			inserted.Walk(func(d *xmltree.Node) bool {
				g.byXID[d.XID] = d
				return true
			})
			if err := g.reconcile(inserted, want); err != nil {
				return err
			}
		}
	}
	return nil
}

// skeleton clones the unmatched parts of a new subtree, assigning fresh
// XIDs (into both the clone and the new tree) and stamping with the new
// version's timestamp. Matched descendants are omitted; reconcile moves
// them in afterwards.
func (g *generator) skeleton(n *xmltree.Node) *xmltree.Node {
	n.XID = g.opts.Alloc()
	n.Stamp = g.opts.Stamp
	cp := &xmltree.Node{
		Kind:  n.Kind,
		Name:  n.Name,
		Value: n.Value,
		XID:   n.XID,
		Stamp: n.Stamp,
		Attrs: append([]xmltree.Attr(nil), n.Attrs...),
	}
	for _, c := range n.Children {
		if c.XID != 0 {
			continue // matched: moved in by reconcile
		}
		cp.AppendChild(g.skeleton(c))
	}
	return cp
}

// sweepDeletes removes every work subtree whose root does not exist in the
// new version. After reconcile, all surviving nodes are in their final
// positions, so the doomed subtrees contain no survivors.
func (g *generator) sweepDeletes(work, new *xmltree.Node) {
	alive := make(map[model.XID]bool)
	new.Walk(func(n *xmltree.Node) bool {
		alive[n.XID] = true
		return true
	})
	var doomed []*xmltree.Node
	var collect func(n *xmltree.Node)
	collect = func(n *xmltree.Node) {
		if !alive[n.XID] {
			doomed = append(doomed, n)
			return // maximal subtree; children go with it
		}
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(work)
	for _, d := range doomed {
		parent := d.Parent
		pos := parent.ChildIndex(d)
		g.emit(Op{
			Kind: OpDelete, XID: d.XID,
			OldParent: parent.XID, OldPos: pos,
			Node: d.Clone(),
		})
		g.anchors[parent.XID] = true
		d.Detach()
		d.Walk(func(x *xmltree.Node) bool {
			delete(g.byXID, x.XID)
			return true
		})
	}
}

func attrsEqualUnordered(a, b []xmltree.Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
